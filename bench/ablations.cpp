// Ablations of DUO's design choices (DESIGN.md §5) plus the paper's two
// forward-looking directions (§I untargeted mode, §V-D ensemble defense):
//
//  A1  ℓp-box ADMM pixel selection  vs  plain top-k
//  A2  dual frame-pixel search       vs  random support (Vanilla-style init)
//  A3  grouped SparseQuery steps     vs  single-coordinate steps
//  A4  single-backbone victim        vs  ensemble victim (defense)
//  A5  untargeted DUO: how far the adversarial list drifts from R(v)

#include <iostream>

#include "attack/sparse_transfer.hpp"
#include "baselines/vanilla.hpp"
#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "nn/losses.hpp"
#include "retrieval/ensemble.hpp"
#include "retrieval/trainer.hpp"

using namespace duo;

namespace {

attack::AttackEvaluation eval_duo(const attack::DuoConfig& cfg,
                                  models::FeatureExtractor& surrogate,
                                  retrieval::RetrievalSystem& victim,
                                  const std::vector<attack::AttackPair>& pairs,
                                  std::size_t m) {
  attack::DuoAttack duo(surrogate, cfg);
  return attack::evaluate_attack(duo, victim, pairs, m);
}

}  // namespace

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Ablations (scale: " << bench::scale_name(params.scale)
            << ")\n\n";
  const auto& spec = params.hmdb;  // the denser-overlap world

  bench::VictimWorld world = bench::make_victim(
      spec, models::ModelKind::kTPN, nn::VictimLossKind::kArcFace, params,
      18100);
  bench::SurrogateWorld sw = bench::make_surrogate(
      world, models::ModelKind::kC3D, bench::kDefaultSurrogateTriplets,
      params.feature_dim, params, 18200);
  const auto pairs =
      attack::sample_attack_pairs(world.dataset.train, params.pairs, 18300);
  const double wo =
      attack::evaluate_without_attack(*world.system, pairs, params.m);

  TableWriter table("Ablations on " + spec.name + " / TPN (w/o attack AP@m = " +
                    std::to_string(wo).substr(0, 5) + ")");
  table.set_header({"Variant", "AP@m (%)", "Spa", "PScore"});

  const attack::DuoConfig base = bench::make_duo_config(params, spec.geometry);

  // A1: ADMM vs plain top-k pixel selection.
  {
    auto eval = eval_duo(base, *sw.model, *world.system, pairs, params.m);
    table.add_row({std::string("DUO (ADMM pixel select)"),
                   eval.mean_ap_m_after_pct,
                   static_cast<long long>(eval.mean_spa), eval.mean_pscore});
    attack::DuoConfig topk = base;
    topk.transfer.use_admm = false;
    eval = eval_duo(topk, *sw.model, *world.system, pairs, params.m);
    table.add_row({std::string("A1: plain top-k select"),
                   eval.mean_ap_m_after_pct,
                   static_cast<long long>(eval.mean_spa), eval.mean_pscore});
  }

  // A2: random support instead of the dual search (Vanilla's strategy with
  // the same query budget).
  {
    baselines::VanillaConfig vcfg;
    vcfg.k = base.transfer.k;
    vcfg.n = base.transfer.n;
    vcfg.query.iter_numQ = params.iter_num_q;
    vcfg.query.tau = params.tau;
    vcfg.query.m = params.m;
    baselines::VanillaAttack vanilla(vcfg);
    const auto eval =
        attack::evaluate_attack(vanilla, *world.system, pairs, params.m);
    table.add_row({std::string("A2: random support (Vanilla)"),
                   eval.mean_ap_m_after_pct,
                   static_cast<long long>(eval.mean_spa), eval.mean_pscore});
  }

  // A3: single-coordinate SparseQuery steps (the paper's literal Cartesian
  // basis at miniature scale).
  {
    attack::DuoConfig single = base;
    single.query.coords_per_step = 1;
    const auto eval =
        eval_duo(single, *sw.model, *world.system, pairs, params.m);
    table.add_row({std::string("A3: single-coordinate steps"),
                   eval.mean_ap_m_after_pct,
                   static_cast<long long>(eval.mean_spa), eval.mean_pscore});
  }

  // A4: ensemble victim (defense). The attacker's surrogate was stolen from
  // the single-backbone service; the ensemble fuses two extra backbones.
  {
    retrieval::EnsembleRetrievalSystem ensemble;
    for (const auto kind :
         {models::ModelKind::kTPN, models::ModelKind::kSlowFast,
          models::ModelKind::kResNet34}) {
      Rng rng(18400 + static_cast<std::uint64_t>(kind));
      auto extractor = models::make_extractor(kind, spec.geometry,
                                              params.feature_dim, rng);
      nn::ArcFaceLoss loss(params.feature_dim, spec.num_classes, rng);
      retrieval::TrainerConfig tcfg;
      tcfg.epochs = params.victim_epochs;
      tcfg.seed = 18500 + static_cast<std::uint64_t>(kind);
      retrieval::train_extractor(*extractor, loss, world.dataset.train, tcfg);
      auto member = std::make_unique<retrieval::RetrievalSystem>(
          std::move(extractor), params.retrieval_nodes);
      member->add_all(world.dataset.train);
      ensemble.add_member(std::move(member));
    }

    attack::DuoAttack duo(*sw.model, base);
    double ap = 0.0, spa = 0.0, pscore = 0.0;
    for (const auto& pair : pairs) {
      retrieval::BlackBoxHandle handle(
          [&ensemble](const video::Video& v, std::size_t m) {
            return ensemble.retrieve(v, m);
          });
      const auto outcome = duo.run(pair.v, pair.v_t, handle);
      const auto list_adv = ensemble.retrieve(outcome.adversarial, params.m);
      const auto list_vt = ensemble.retrieve(pair.v_t, params.m);
      ap += metrics::ap_at_m(list_adv, list_vt) * 100.0;
      spa += static_cast<double>(metrics::sparsity(outcome.perturbation));
      pscore += metrics::pscore(outcome.perturbation);
    }
    const double n = static_cast<double>(pairs.size());
    table.add_row({std::string("A4: ensemble victim (3 backbones)"), ap / n,
                   static_cast<long long>(spa / n), pscore / n});
  }

  // A5: untargeted mode — report how much the adversarial list departs from
  // R(v) (1 − NDCG similarity; higher = stronger untargeted effect).
  {
    attack::DuoConfig ucfg = base;
    ucfg.goal = attack::AttackGoal::kUntargeted;
    attack::DuoAttack duo(*sw.model, ucfg);
    double drift = 0.0, spa = 0.0, pscore = 0.0;
    for (const auto& pair : pairs) {
      retrieval::BlackBoxHandle handle(*world.system);
      const auto outcome = duo.run(pair.v, pair.v_t, handle);
      const auto list_v = world.system->retrieve(pair.v, params.m);
      const auto list_adv =
          world.system->retrieve(outcome.adversarial, params.m);
      drift += (1.0 - metrics::ndcg_similarity(list_adv, list_v)) * 100.0;
      spa += static_cast<double>(metrics::sparsity(outcome.perturbation));
      pscore += metrics::pscore(outcome.perturbation);
    }
    const double n = static_cast<double>(pairs.size());
    table.add_row({std::string("A5: untargeted DUO (list drift %)"),
                   drift / n, static_cast<long long>(spa / n), pscore / n});
  }

  bench::emit(table, "ablations.csv");
  bench::print_paper_note(
      "expected: ADMM ≥ top-k; DUO ≫ random support; grouped steps ≥ "
      "single-coordinate at miniature scale; ensemble victim cuts the "
      "targeted AP@m (the paper's proposed defense); untargeted drift > 0.");
  return 0;
}
