#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <thread>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "retrieval/trainer.hpp"

namespace duo::bench {

Scale scale_from_env() {
  const char* env = std::getenv("DUO_BENCH_SCALE");
  if (env == nullptr) return Scale::kQuick;
  const std::string value(env);
  if (value == "smoke") return Scale::kSmoke;
  if (value == "full") return Scale::kFull;
  if (value == "quick") return Scale::kQuick;
  DUO_LOG_WARN("unknown DUO_BENCH_SCALE '%s', using quick", value.c_str());
  return Scale::kQuick;
}

const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kSmoke: return "smoke";
    case Scale::kQuick: return "quick";
    case Scale::kFull: return "full";
  }
  return "?";
}

std::int64_t BenchParams::scale_k(std::int64_t paper_k,
                                  const video::VideoGeometry& geometry) const {
  // Fraction of the paper's 16×112×112×3 tensor, applied to ours.
  const double fraction =
      static_cast<double>(paper_k) /
      static_cast<double>(video::VideoGeometry::paper_scale().total_elements());
  const auto k = static_cast<std::int64_t>(
      fraction * static_cast<double>(geometry.total_elements()));
  return std::max<std::int64_t>(k, 8);
}

BenchParams params_for(Scale scale) {
  BenchParams p;
  p.scale = scale;
  p.ucf = video::DatasetSpec::ucf101_like();
  p.hmdb = video::DatasetSpec::hmdb51_like();
  switch (scale) {
    case Scale::kSmoke:
      p.ucf.num_classes = 6;
      p.ucf.train_per_class = 4;
      p.ucf.test_per_class = 2;
      p.ucf.geometry = {8, 12, 12, 3};
      p.hmdb = p.ucf;
      p.hmdb.name = "HMDB51";
      p.hmdb.seed = 51;
      p.hmdb.num_classes = 4;
      p.pairs = 1;
      p.iter_num_q = 15;
      p.victim_epochs = 2;
      p.feature_dim = 12;
      break;
    case Scale::kQuick:
      p.ucf.num_classes = 10;
      p.ucf.train_per_class = 8;
      p.ucf.test_per_class = 3;
      p.ucf.geometry = {8, 16, 16, 3};
      p.hmdb = p.ucf;
      p.hmdb.name = "HMDB51";
      p.hmdb.seed = 51;
      p.hmdb.num_classes = 6;  // keeps the 101:51 class ratio
      p.hmdb.train_per_class = 6;
      p.pairs = 2;
      p.iter_num_q = 80;
      p.victim_epochs = 6;
      p.feature_dim = 16;
      break;
    case Scale::kFull:
      // Paper-shaped budgets on a reduced-but-larger world. Full 112×112
      // geometry is supported by the library but takes hours per bench on
      // one CPU core; this "full" profile restores the query/pair budgets.
      p.ucf.num_classes = 20;
      p.ucf.train_per_class = 8;
      p.ucf.test_per_class = 4;
      p.ucf.geometry = {16, 24, 24, 3};
      p.hmdb = p.ucf;
      p.hmdb.name = "HMDB51";
      p.hmdb.seed = 51;
      p.hmdb.num_classes = 10;
      p.pairs = 10;
      p.iter_num_q = 1000;
      p.victim_epochs = 6;
      p.feature_dim = 32;
      break;
  }
  return p;
}

VictimWorld make_victim(const video::DatasetSpec& spec,
                        models::ModelKind victim_kind,
                        nn::VictimLossKind loss_kind,
                        const BenchParams& params, std::uint64_t seed) {
  Stopwatch watch;
  VictimWorld world;
  world.dataset = video::SyntheticGenerator(spec).generate();

  Rng rng(seed);
  auto extractor = models::make_extractor(victim_kind, spec.geometry,
                                          params.feature_dim, rng);
  auto loss = nn::make_victim_loss(loss_kind, params.feature_dim,
                                   spec.num_classes, rng);
  retrieval::TrainerConfig tcfg;
  tcfg.epochs = params.victim_epochs;
  tcfg.batch_size = 12;
  tcfg.learning_rate = 3e-3f;
  tcfg.seed = seed ^ 0x5bd1e995;
  retrieval::train_extractor(*extractor, *loss, world.dataset.train, tcfg);

  world.system = std::make_unique<retrieval::RetrievalSystem>(
      std::move(extractor), params.retrieval_nodes);
  world.system->add_all(world.dataset.train);
  world.store = std::make_unique<attack::VideoStore>(world.dataset.train);
  DUO_LOG_INFO("victim %s/%s on %s ready in %.1fs",
               models::model_kind_name(victim_kind),
               nn::victim_loss_name(loss_kind), spec.name.c_str(),
               watch.elapsed_seconds());
  return world;
}

SurrogateWorld make_surrogate(VictimWorld& world,
                              models::ModelKind surrogate_kind,
                              std::size_t target_triplets,
                              std::int64_t feature_dim,
                              const BenchParams& params, std::uint64_t seed) {
  Stopwatch watch;
  SurrogateWorld out;
  Rng rng(seed);

  retrieval::BlackBoxHandle handle(*world.system);
  attack::SurrogateHarvestConfig hcfg;
  hcfg.m = params.m;
  hcfg.rounds = 8;
  hcfg.target_video_count = world.dataset.train.size() / 2;
  hcfg.target_triplets = target_triplets;
  hcfg.seed = seed ^ 0x1234567;
  // Seeds: two random videos the attacker "owns".
  const auto& train = world.dataset.train;
  std::vector<std::int64_t> seeds{
      train[rng.uniform_index(train.size())].id(),
      train[rng.uniform_index(train.size())].id()};
  if (seeds[0] == seeds[1]) seeds.pop_back();
  out.harvested =
      attack::harvest_surrogate_dataset(handle, *world.store, seeds, hcfg);

  out.model = models::make_extractor(
      surrogate_kind, world.dataset.spec.geometry, feature_dim, rng);
  attack::SurrogateTrainConfig scfg;
  scfg.epochs = params.scale == Scale::kSmoke ? 2 : 12;
  scfg.triplets_per_epoch = params.scale == Scale::kSmoke ? 16 : 128;
  scfg.seed = seed ^ 0x9e3779b9;
  attack::train_surrogate(*out.model, out.harvested, *world.store, scfg);
  DUO_LOG_INFO("surrogate %s ready (%zu videos, %zu triplets, %lld queries) in %.1fs",
               models::model_kind_name(surrogate_kind),
               out.harvested.video_ids.size(),
               out.harvested.triplets.size(),
               static_cast<long long>(out.harvested.queries_spent),
               watch.elapsed_seconds());
  return out;
}

std::vector<std::unique_ptr<attack::Attack>> make_attack_suite(
    models::FeatureExtractor& surrogate_c3d,
    models::FeatureExtractor& surrogate_res18, const BenchParams& params,
    const video::VideoGeometry& geometry) {
  std::vector<std::unique_ptr<attack::Attack>> attacks;
  const std::int64_t k = params.default_k(geometry);
  const std::int64_t n = params.default_n();

  baselines::TimiConfig timi;
  timi.iterations = params.scale == Scale::kSmoke ? 3 : 10;
  attacks.push_back(std::make_unique<baselines::TimiAttack>(surrogate_c3d, timi));
  attacks.push_back(
      std::make_unique<baselines::TimiAttack>(surrogate_res18, timi));

  baselines::HeuConfig heu;
  heu.k = k;
  heu.n = n;
  heu.tau = params.tau;
  heu.m = params.m;
  heu.nes_population = 4;
  heu.nes_iterations =
      std::max(2, params.iter_num_q / (2 * heu.nes_population));
  attacks.push_back(std::make_unique<baselines::HeuAttack>(
      baselines::HeuStrategy::kNatureEstimated, heu));
  attacks.push_back(std::make_unique<baselines::HeuAttack>(
      baselines::HeuStrategy::kRandom, heu));

  baselines::VanillaConfig vanilla;
  vanilla.k = k;
  vanilla.n = n;
  vanilla.query.iter_numQ = params.iter_num_q;
  vanilla.query.tau = params.tau;
  vanilla.query.m = params.m;
  attacks.push_back(std::make_unique<baselines::VanillaAttack>(vanilla));

  const attack::DuoConfig duo = make_duo_config(params, geometry);
  attacks.push_back(std::make_unique<attack::DuoAttack>(surrogate_c3d, duo));
  attacks.push_back(std::make_unique<attack::DuoAttack>(surrogate_res18, duo));
  return attacks;
}

attack::DuoConfig make_duo_config(const BenchParams& params,
                                  const video::VideoGeometry& geometry) {
  attack::DuoConfig cfg;
  cfg.transfer.k = params.default_k(geometry);
  cfg.transfer.n = params.default_n();
  cfg.transfer.tau = params.tau;
  cfg.transfer.outer_iterations = params.scale == Scale::kSmoke ? 2 : 4;
  cfg.transfer.theta_steps = params.scale == Scale::kSmoke ? 4 : 10;
  cfg.query.iter_numQ = params.iter_num_q;
  cfg.iter_numH = params.iter_num_h;
  cfg.m = params.m;
  return cfg;
}

void append_attack_cells(TableWriter& table, std::vector<TableWriter::Cell>& row,
                         const attack::AttackEvaluation& eval) {
  (void)table;
  row.emplace_back(eval.mean_ap_m_after_pct);
  row.emplace_back(static_cast<long long>(eval.mean_spa));
  row.emplace_back(eval.mean_pscore);
}

void emit(TableWriter& table, const std::string& csv_name) {
  table.print(std::cout);
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/" + csv_name;
  if (table.write_csv(path)) {
    std::cout << "[csv] " << path << "\n";
  }
}

void print_paper_note(const std::string& note) {
  std::cout << "paper reference: " << note << "\n\n";
}

SoakWorld make_soak_world(bool smoke, std::uint64_t seed) {
  auto spec = video::DatasetSpec::hmdb51_like(37);
  spec.num_classes = 4;
  spec.train_per_class = smoke ? 4 : 8;
  spec.test_per_class = 2;
  spec.geometry = {8, 16, 16, 3};

  SoakWorld world;
  world.dataset = video::SyntheticGenerator(spec).generate();
  Rng rng(seed);
  auto extractor =
      models::make_extractor(models::ModelKind::kC3D, spec.geometry, 16, rng);
  world.system = std::make_unique<retrieval::RetrievalSystem>(
      std::move(extractor), 2);
  world.system->add_all(world.dataset.train);
  world.expected.reserve(world.dataset.test.size());
  for (const auto& v : world.dataset.test) {
    world.expected.push_back(world.system->retrieve(v, world.m));
  }
  return world;
}

std::int64_t run_soak_clients(
    const SoakWorld& world, std::size_t clients, int queries_per_client,
    const std::function<metrics::RetrievalList(
        std::size_t, const video::Video&, std::size_t)>& retrieve) {
  std::vector<std::thread> threads;
  std::vector<std::int64_t> mismatches(clients, 0);
  threads.reserve(clients);
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < queries_per_client; ++q) {
        const std::size_t vi =
            (t + static_cast<std::size_t>(q) * clients) %
            world.dataset.test.size();
        const auto got = retrieve(t, world.dataset.test[vi], world.m);
        if (got != world.expected[vi]) ++mismatches[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t bad = 0;
  for (const auto c : mismatches) bad += c;
  return bad;
}

}  // namespace duo::bench
