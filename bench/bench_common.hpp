#pragma once

// Shared infrastructure for the experiment benches (one binary per paper
// table/figure; see DESIGN.md §4).
//
// Scaling: paper experiments run on 16×112×112×3 videos (602,112 elements)
// with k up to 50K and 1,000 queries. The default "quick" scale shrinks the
// geometry and budgets proportionally so every bench completes on a laptop
// CPU core; DUO_BENCH_SCALE=full restores paper-sized budgets (slow), and
// DUO_BENCH_SCALE=smoke is a seconds-long sanity pass. Benches print both
// raw values and the paper-equivalent normalization where relevant.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack.hpp"
#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "attack/surrogate.hpp"
#include "baselines/heu.hpp"
#include "baselines/timi.hpp"
#include "baselines/vanilla.hpp"
#include "common/table.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "video/synthetic.hpp"

namespace duo::bench {

enum class Scale { kSmoke, kQuick, kFull };

// Default surrogate dataset size (training triplets harvested via queries).
inline constexpr std::size_t kDefaultSurrogateTriplets = 400;

Scale scale_from_env();
const char* scale_name(Scale scale);

struct BenchParams {
  Scale scale = Scale::kQuick;
  video::DatasetSpec ucf;   // miniature UCF101 analogue
  video::DatasetSpec hmdb;  // miniature HMDB51 analogue
  std::size_t pairs = 2;    // paper: 10 (v, v_t) pairs
  int iter_num_q = 80;      // paper: 1,000
  int iter_num_h = 2;
  int victim_epochs = 4;
  std::int64_t feature_dim = 16;  // paper: 768 (victims), 512 (surrogate)
  std::size_t m = 15;
  float tau = 30.0f;
  std::size_t retrieval_nodes = 4;

  // Paper-k → miniature-k by fraction of total tensor elements.
  std::int64_t scale_k(std::int64_t paper_k,
                       const video::VideoGeometry& geometry) const;
  // Paper default k = 40K.
  std::int64_t default_k(const video::VideoGeometry& geometry) const {
    return scale_k(40000, geometry);
  }
  std::int64_t default_n() const { return 4; }
};

BenchParams params_for(Scale scale);
inline BenchParams default_params() { return params_for(scale_from_env()); }

// A trained victim retrieval service plus its world.
struct VictimWorld {
  video::Dataset dataset;
  std::unique_ptr<retrieval::RetrievalSystem> system;
  std::unique_ptr<attack::VideoStore> store;  // public video site
};

VictimWorld make_victim(const video::DatasetSpec& spec,
                        models::ModelKind victim_kind,
                        nn::VictimLossKind loss_kind,
                        const BenchParams& params, std::uint64_t seed);

// A trained surrogate plus its harvest statistics.
struct SurrogateWorld {
  std::unique_ptr<models::FeatureExtractor> model;
  attack::SurrogateDataset harvested;
};

// `target_triplets` is the surrogate dataset size (the quantity Table III
// and Fig. 4 sweep); the video-count target follows from the crawl.
SurrogateWorld make_surrogate(VictimWorld& world,
                              models::ModelKind surrogate_kind,
                              std::size_t target_triplets,
                              std::int64_t feature_dim,
                              const BenchParams& params, std::uint64_t seed);

// The full attack suite of Table II: TIMI-C3D, TIMI-Res18, HEU-Nes,
// HEU-Sim, Vanilla, DUO-C3D, DUO-Res18 (query budgets matched across the
// query-based attacks). The surrogates must outlive the suite.
std::vector<std::unique_ptr<attack::Attack>> make_attack_suite(
    models::FeatureExtractor& surrogate_c3d,
    models::FeatureExtractor& surrogate_res18, const BenchParams& params,
    const video::VideoGeometry& geometry);

// Standard DUO configuration from bench params.
attack::DuoConfig make_duo_config(const BenchParams& params,
                                  const video::VideoGeometry& geometry);

// Formats a (AP@m, Spa, PScore) triple into table cells.
void append_attack_cells(TableWriter& table, std::vector<TableWriter::Cell>& row,
                         const attack::AttackEvaluation& eval);

// An untrained served-victim world for the serve-layer soaks (fault_soak,
// overload_soak). Fault handling and overload policy depend on the serving
// path, not on feature quality, so no victim training is needed; `expected`
// holds the fault-free reference answer per test video, the bitwise target
// every soaked answer must hit.
struct SoakWorld {
  video::Dataset dataset;
  std::unique_ptr<retrieval::RetrievalSystem> system;
  std::vector<metrics::RetrievalList> expected;
  std::size_t m = 10;
};

SoakWorld make_soak_world(bool smoke, std::uint64_t seed);

// Hammers `retrieve` from `clients` concurrent threads, each issuing
// `queries_per_client` retrievals over a deterministic round-robin of the
// test videos, and compares every answer bitwise against world.expected.
// `retrieve(client, v, m)` runs on the client's thread. Returns the number
// of mismatched answers (0 = the determinism contract held).
std::int64_t run_soak_clients(
    const SoakWorld& world, std::size_t clients, int queries_per_client,
    const std::function<metrics::RetrievalList(
        std::size_t, const video::Video&, std::size_t)>& retrieve);

// Emit the table and mirror it to CSV under bench_results/.
void emit(TableWriter& table, const std::string& csv_name);

// Paper-reported reference values for EXPERIMENTS.md cross-checks; printed
// as a reminder footer under each bench table.
void print_paper_note(const std::string& note);

}  // namespace duo::bench
