// Campaign soak: the full multi-tenant campaign loop — N sparse attack
// sessions and M benign query streams against one served victim, under
// per-client rate limiting, a shared client-side pacer, and injected
// transient faults — run three ways:
//
//   1. reference:  the uninterrupted campaign;
//   2. killed:     the same campaign with the victim dying mid-run
//                  (fault_error_from), every session checkpointing;
//   3. resumed:    the same manifest again, healthy, resuming from the
//                  checkpoints.
//
// The resumed campaign must land bitwise on the reference per-session
// outcomes (answer-stream hashes for benign sessions, adversarial-video
// hashes and T trajectories for attacks), and every run's billing ledger
// must reconcile: client-side billed == served + faulted + expired + shed,
// globally and per client.
//
//   ./build/bench/campaign_soak            # quick scale
//   ./build/bench/campaign_soak --smoke    # seconds-long CI smoke pass
//
// Exits nonzero on any outcome mismatch or accounting violation.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "common/stopwatch.hpp"

using namespace duo;

namespace {

campaign::CampaignManifest make_manifest(bool smoke) {
  campaign::CampaignManifest m;
  m.name = smoke ? "campaign-soak-smoke" : "campaign-soak";
  m.seed = 59;
  m.client_rate = 500.0;
  m.client_burst = 2.0;
  m.fault_error_prob = 0.05;
  m.fault_seed = 23;
  m.pacer_rate = 4000.0;
  m.pacer_burst = 4.0;
  m.max_attempts = 8;
  m.circuit_threshold = 0;  // kills are detected by retry exhaustion
  m.query_timeout_ms = 5000.0;
  m.submit_deadline_ms = 5000.0;

  const int attackers = smoke ? 2 : 4;
  const int readers = smoke ? 4 : 8;
  for (int i = 0; i < attackers; ++i) {
    campaign::SessionSpec s;
    s.client_id = "attacker-" + std::to_string(i);
    s.role = campaign::SessionRole::kSparse;
    s.seed = 100 + static_cast<std::uint64_t>(i);
    s.m = 8;
    s.iterations = smoke ? 6 : 20;
    s.support_k = 60;
    s.support_n = 3;
    s.source_index = i;
    s.target_index = i + attackers;
    m.sessions.push_back(s);
  }
  for (int i = 0; i < readers; ++i) {
    campaign::SessionSpec s;
    s.client_id = "reader-" + std::to_string(i);
    s.role = campaign::SessionRole::kBenign;
    s.seed = 200 + static_cast<std::uint64_t>(i);
    s.m = 8;
    s.queries = smoke ? 12 : 40;
    s.think_ms = i % 2 == 0 ? 2.0 : 0.0;
    m.sessions.push_back(s);
  }
  return m;
}

bool same_outcomes(const campaign::CampaignOutcome& a,
                   const campaign::CampaignOutcome& b) {
  if (a.sessions.size() != b.sessions.size()) return false;
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const auto& sa = a.sessions[i];
    const auto& sb = b.sessions[i];
    if (!sa.completed || !sb.completed) return false;
    if (sa.outcome_hash != sb.outcome_hash || sa.final_t != sb.final_t ||
        sa.t_history != sb.t_history) {
      std::fprintf(stderr, "outcome mismatch: %s\n", sa.client_id.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::scale_from_env() == bench::Scale::kSmoke;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::SoakWorld world = bench::make_soak_world(smoke, 59);
  const std::vector<video::Video>& roster = world.dataset.test;
  const campaign::CampaignManifest healthy = make_manifest(smoke);

  Stopwatch wall;
  campaign::CampaignOutcome reference =
      campaign::CampaignRunner(*world.system, roster, healthy).run();

  const std::string ck_dir = "bench_results/campaign_soak_ck";
  std::filesystem::remove_all(ck_dir);
  campaign::CampaignManifest dying = healthy;
  dying.checkpoint_dir = ck_dir;
  dying.fault_error_from = smoke ? 25 : 150;
  campaign::CampaignOutcome killed =
      campaign::CampaignRunner(*world.system, roster, dying).run();

  campaign::CampaignManifest resuming = dying;
  resuming.fault_error_from = -1;
  campaign::CampaignOutcome resumed =
      campaign::CampaignRunner(*world.system, roster, resuming).run();
  const double wall_ms = wall.elapsed_ms();
  std::filesystem::remove_all(ck_dir);

  TableWriter sessions = campaign::session_table(resumed);
  bench::emit(sessions, "campaign_soak_sessions.csv");
  TableWriter fairness = campaign::fairness_table(resumed);
  bench::emit(fairness, "campaign_soak_fairness.csv");
  std::printf(
      "reference billed=%lld  killed billed=%lld (completed %s)  resumed "
      "billed=%lld  jain_served=%.3f  wall_ms=%.0f\n",
      static_cast<long long>(reference.server_billed),
      static_cast<long long>(killed.server_billed),
      killed.all_completed() ? "yes" : "no",
      static_cast<long long>(resumed.server_billed),
      resumed.fairness.jain_served, wall_ms);
  bench::print_paper_note(
      "No paper counterpart: soaks the campaign driver — concurrent attack "
      "sessions and benign streams against one victim. A campaign killed "
      "mid-run and resumed must reproduce the uninterrupted campaign's "
      "per-session outcomes bitwise, and every run's billing ledger must "
      "reconcile globally and per client.");

  bool ok = true;
  if (!reference.all_completed()) {
    std::fprintf(stderr, "CAMPAIGN SOAK FAILED: reference did not complete\n");
    ok = false;
  }
  if (killed.all_completed()) {
    std::fprintf(stderr,
                 "CAMPAIGN SOAK FAILED: kill run finished unscathed "
                 "(fault_error_from too high?)\n");
    ok = false;
  }
  if (!resumed.all_completed()) {
    std::fprintf(stderr, "CAMPAIGN SOAK FAILED: resumed run incomplete\n");
    ok = false;
  }
  for (const auto* run : {&reference, &killed, &resumed}) {
    if (!run->ledger_ok) {
      std::fprintf(stderr,
                   "CAMPAIGN SOAK FAILED: ledger mismatch (client %lld vs "
                   "server %lld)\n",
                   static_cast<long long>(run->client_billed),
                   static_cast<long long>(run->server_billed));
      ok = false;
    }
  }
  if (!same_outcomes(reference, resumed)) {
    std::fprintf(stderr,
                 "CAMPAIGN SOAK FAILED: resumed outcomes diverge from the "
                 "uninterrupted reference\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
