// Crash soak: the ISSUE 10 acceptance loop at bench scale. One served victim
// under multi-tenant traffic — sparse attack sessions plus think-time benign
// readers, per-client rate limiting — run twice:
//
//   1. reference:  the crash-free campaign;
//   2. crashed:    the same campaign with the victim abruptly crashing and
//                  restarting mid-run (two cycles), each restart restored
//                  from an accounting snapshot round-tripped through durable
//                  files (server.snap + gallery.idx in checkpoint_dir).
//
// The crashed campaign must land bitwise on the reference per-session
// outcomes — crash timing may only perturb billing — and both runs' ledgers
// must reconcile: client billed == served + faulted + expired + shed,
// globally and per client, with crash casualties folded in as faulted+lost.
//
//   ./build/bench/crash_soak            # quick scale
//   ./build/bench/crash_soak --smoke    # seconds-long CI smoke pass
//
// Exits nonzero on any outcome divergence or accounting violation.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "common/stopwatch.hpp"

using namespace duo;

namespace {

campaign::CampaignManifest make_manifest(bool smoke) {
  campaign::CampaignManifest m;
  m.name = smoke ? "crash-soak-smoke" : "crash-soak";
  m.seed = 67;
  m.client_rate = 500.0;  // bucket levels must survive the restarts
  m.client_burst = 2.0;
  m.max_attempts = 8;
  m.circuit_threshold = 0;
  m.query_timeout_ms = 5000.0;
  m.submit_deadline_ms = 5000.0;

  const int attackers = smoke ? 2 : 4;
  const int readers = smoke ? 4 : 8;
  for (int i = 0; i < attackers; ++i) {
    campaign::SessionSpec s;
    s.client_id = "attacker-" + std::to_string(i);
    s.role = campaign::SessionRole::kSparse;
    s.seed = 300 + static_cast<std::uint64_t>(i);
    s.m = 8;
    s.iterations = smoke ? 6 : 20;
    s.support_k = 60;
    s.support_n = 3;
    s.source_index = i;
    s.target_index = i + attackers;
    m.sessions.push_back(s);
  }
  for (int i = 0; i < readers; ++i) {
    campaign::SessionSpec s;
    s.client_id = "reader-" + std::to_string(i);
    s.role = campaign::SessionRole::kBenign;
    s.seed = 400 + static_cast<std::uint64_t>(i);
    s.m = 8;
    s.queries = smoke ? 12 : 40;
    // Every reader thinks: the crash schedule reads the campaign clock, and
    // virtual time only moves while some session sleeps on it.
    s.think_ms = i % 2 == 0 ? 3.0 : 2.0;
    m.sessions.push_back(s);
  }
  return m;
}

bool same_outcomes(const campaign::CampaignOutcome& a,
                   const campaign::CampaignOutcome& b) {
  if (a.sessions.size() != b.sessions.size()) return false;
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const auto& sa = a.sessions[i];
    const auto& sb = b.sessions[i];
    if (!sa.completed || !sb.completed) return false;
    if (sa.outcome_hash != sb.outcome_hash || sa.final_t != sb.final_t ||
        sa.t_history != sb.t_history) {
      std::fprintf(stderr, "outcome mismatch: %s\n", sa.client_id.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::scale_from_env() == bench::Scale::kSmoke;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::SoakWorld world = bench::make_soak_world(smoke, 67);
  const std::vector<video::Video>& roster = world.dataset.test;
  const campaign::CampaignManifest healthy = make_manifest(smoke);

  Stopwatch wall;
  campaign::CampaignOutcome reference =
      campaign::CampaignRunner(*world.system, roster, healthy).run();

  const std::string ck_dir = "bench_results/crash_soak_ck";
  std::filesystem::remove_all(ck_dir);
  campaign::CampaignManifest crashy = healthy;
  crashy.checkpoint_dir = ck_dir;
  campaign::CrashEvent first;
  first.at_ms = 3.0;
  first.restart_after_ms = 1.0;
  campaign::CrashEvent second;
  second.at_ms = 8.0;
  second.restart_after_ms = 1.0;
  crashy.crashes = {first, second};
  campaign::CampaignOutcome crashed =
      campaign::CampaignRunner(*world.system, roster, crashy).run();
  const double wall_ms = wall.elapsed_ms();

  TableWriter fairness = campaign::fairness_table(crashed);
  bench::emit(fairness, "crash_soak_fairness.csv");
  std::printf(
      "reference billed=%lld  crashed billed=%lld  crashes_survived=%lld  "
      "requests_lost=%lld  queries_replayed=%lld  epoch=%lld  wall_ms=%.0f\n",
      static_cast<long long>(reference.server_billed),
      static_cast<long long>(crashed.server_billed),
      static_cast<long long>(crashed.crashes_survived),
      static_cast<long long>(crashed.requests_lost),
      static_cast<long long>(crashed.queries_replayed),
      static_cast<long long>(crashed.server.server_epoch), wall_ms);
  bench::print_paper_note(
      "No paper counterpart: soaks crash recovery — a campaign whose victim "
      "abruptly dies and restarts mid-run (snapshot-restored through durable "
      "files) must reproduce the crash-free campaign's per-session outcomes "
      "bitwise, with the billing ledger reconciled globally and per client.");

  bool ok = true;
  if (!reference.all_completed()) {
    std::fprintf(stderr, "CRASH SOAK FAILED: reference did not complete\n");
    ok = false;
  }
  if (!crashed.all_completed()) {
    std::fprintf(stderr,
                 "CRASH SOAK FAILED: a session did not survive the crashes\n");
    ok = false;
  }
  if (crashed.crashes_survived != 2) {
    std::fprintf(stderr,
                 "CRASH SOAK FAILED: expected 2 crash/restart cycles, got "
                 "%lld\n",
                 static_cast<long long>(crashed.crashes_survived));
    ok = false;
  }
  if (crashed.server.server_epoch != 3) {
    std::fprintf(stderr, "CRASH SOAK FAILED: epoch %lld after 2 restarts\n",
                 static_cast<long long>(crashed.server.server_epoch));
    ok = false;
  }
  for (const auto* run : {&reference, &crashed}) {
    if (!run->ledger_ok) {
      std::fprintf(stderr,
                   "CRASH SOAK FAILED: ledger mismatch (client %lld vs "
                   "server %lld)\n",
                   static_cast<long long>(run->client_billed),
                   static_cast<long long>(run->server_billed));
      ok = false;
    }
  }
  if (crashed.queries_replayed < crashed.requests_lost) {
    std::fprintf(stderr,
                 "CRASH SOAK FAILED: %lld requests lost but only %lld "
                 "replayed\n",
                 static_cast<long long>(crashed.requests_lost),
                 static_cast<long long>(crashed.queries_replayed));
    ok = false;
  }
  if (!std::filesystem::exists(ck_dir + "/server.snap") ||
      !std::filesystem::exists(ck_dir + "/gallery.idx")) {
    std::fprintf(stderr,
                 "CRASH SOAK FAILED: durable snapshot files missing from %s\n",
                 ck_dir.c_str());
    ok = false;
  }
  if (!same_outcomes(reference, crashed)) {
    std::fprintf(stderr,
                 "CRASH SOAK FAILED: crashed-campaign outcomes diverge from "
                 "the crash-free reference\n");
    ok = false;
  }
  std::filesystem::remove_all(ck_dir);
  return ok ? 0 : 1;
}
