// Fault soak: the resilient client policy against a faulty victim service.
// Stands up a RetrievalServer with a 10% mixed fault schedule (transient
// errors, delays, dropped responses), hammers it from concurrent
// ResilientHandle clients, and verifies every answer matches the fault-free
// retrieval — the determinism contract behind the bitwise-identical attack
// guarantee (src/serve/resilient.hpp). Reports the cost of resilience:
// victim-side billed queries vs. logical queries, retries, faults, and
// latency percentiles.
//
//   ./build/bench/fault_soak            # quick scale
//   ./build/bench/fault_soak --smoke    # seconds-long CI smoke pass
//
// Exits nonzero if any answer diverges from the fault-free reference.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "serve/async_handle.hpp"
#include "serve/fault_injection.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace duo;
  bool smoke = bench::scale_from_env() == bench::Scale::kSmoke;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // An untrained victim is enough: fault handling depends on the serving
  // path, not on how good the features are.
  auto spec = video::DatasetSpec::hmdb51_like(37);
  spec.num_classes = 4;
  spec.train_per_class = smoke ? 4 : 8;
  spec.test_per_class = 2;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();

  Rng rng(53);
  auto extractor =
      models::make_extractor(models::ModelKind::kC3D, spec.geometry, 16, rng);
  retrieval::RetrievalSystem system(std::move(extractor), 2);
  system.add_all(dataset.train);

  // Fault-free reference answers for every probe.
  const std::size_t m = 10;
  std::vector<metrics::RetrievalList> expected;
  expected.reserve(dataset.test.size());
  for (const auto& v : dataset.test) {
    expected.push_back(system.retrieve(v, m));
  }

  // 10% mixed faults, deterministic schedule.
  serve::FaultConfig faults;
  faults.error_prob = 0.04;
  faults.delay_prob = 0.03;
  faults.drop_prob = 0.03;
  faults.delay_ms = 2.0;
  faults.seed = 31;

  serve::ServerConfig scfg;
  scfg.max_batch = 4;
  scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
  serve::RetrievalServer server(system, scfg);
  serve::AsyncBlackBoxHandle async(server);
  serve::RetryPolicy policy;
  policy.query_timeout = std::chrono::milliseconds(250);
  serve::ResilientHandle handle(async, policy);

  const std::size_t clients = smoke ? 2 : 4;
  const int queries_per_client = smoke ? 25 : 200;

  Stopwatch wall;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(clients, 0);
  threads.reserve(clients);
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (int q = 0; q < queries_per_client; ++q) {
        const std::size_t vi =
            (t + static_cast<std::size_t>(q) * clients) % dataset.test.size();
        const auto got = handle.retrieve(dataset.test[vi], m);
        if (got != expected[vi]) ++mismatches[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  const double wall_ms = wall.elapsed_ms();
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  const auto logical =
      static_cast<long long>(clients) * queries_per_client;

  TableWriter table("Fault soak: resilient clients vs 10% mixed faults");
  table.set_header({"clients", "logical_q", "billed_q", "retries", "faults",
                    "server_faults", "wall_ms", "p50_ms", "p95_ms", "max_ms"});
  table.set_precision(2);
  table.add_row({static_cast<long long>(clients), logical,
                 static_cast<long long>(handle.queries_billed()),
                 static_cast<long long>(handle.retries()),
                 static_cast<long long>(handle.faults_seen()),
                 static_cast<long long>(stats.faults_injected), wall_ms,
                 stats.p50_latency_ms, stats.p95_latency_ms,
                 stats.max_latency_ms});
  bench::emit(table, "fault_soak.csv");
  bench::print_paper_note(
      "No paper counterpart: soaks the retry policy a query-budgeted "
      "attacker needs against a flaky black-box API. Every answer must "
      "match the fault-free retrieval bitwise; billed_q - logical_q is the "
      "query-budget price of the faults.");

  int bad = 0;
  for (const int c : mismatches) bad += c;
  if (bad > 0) {
    std::fprintf(stderr, "FAULT SOAK FAILED: %d mismatched answers\n", bad);
    return 1;
  }
  if (handle.queries_billed() < logical) {
    std::fprintf(stderr, "FAULT SOAK FAILED: billed %lld < logical %lld\n",
                 static_cast<long long>(handle.queries_billed()), logical);
    return 1;
  }
  std::printf("fault soak OK: %lld logical queries, %lld billed, "
              "%lld retries absorbed\n",
              logical, static_cast<long long>(handle.queries_billed()),
              static_cast<long long>(handle.retries()));
  return 0;
}
