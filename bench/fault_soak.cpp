// Fault soak: the resilient client policy against a faulty victim service.
// Stands up a RetrievalServer with a 10% mixed fault schedule (transient
// errors, delays, dropped responses), hammers it from concurrent
// ResilientHandle clients, and verifies every answer matches the fault-free
// retrieval — the determinism contract behind the bitwise-identical attack
// guarantee (src/serve/resilient.hpp). Reports the cost of resilience:
// victim-side billed queries vs. logical queries, retries, faults, and
// latency percentiles.
//
//   ./build/bench/fault_soak            # quick scale
//   ./build/bench/fault_soak --smoke    # seconds-long CI smoke pass
//
// Exits nonzero if any answer diverges from the fault-free reference.

#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "serve/async_handle.hpp"
#include "serve/fault_injection.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace duo;
  bool smoke = bench::scale_from_env() == bench::Scale::kSmoke;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // An untrained victim is enough: fault handling depends on the serving
  // path, not on how good the features are.
  bench::SoakWorld world = bench::make_soak_world(smoke, 53);

  // 10% mixed faults, deterministic schedule.
  serve::FaultConfig faults;
  faults.error_prob = 0.04;
  faults.delay_prob = 0.03;
  faults.drop_prob = 0.03;
  faults.delay_ms = 2.0;
  faults.seed = 31;

  serve::ServerConfig scfg;
  scfg.max_batch = 4;
  scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
  serve::RetrievalServer server(*world.system, scfg);
  serve::AsyncBlackBoxHandle async(server);
  serve::RetryPolicy policy;
  policy.query_timeout = std::chrono::milliseconds(250);
  serve::ResilientHandle handle(async, policy);

  const std::size_t clients = smoke ? 2 : 4;
  const int queries_per_client = smoke ? 25 : 200;

  Stopwatch wall;
  const std::int64_t bad = bench::run_soak_clients(
      world, clients, queries_per_client,
      [&](std::size_t, const video::Video& v, std::size_t m) {
        return handle.retrieve(v, m);
      });
  const double wall_ms = wall.elapsed_ms();
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  const auto logical =
      static_cast<long long>(clients) * queries_per_client;

  TableWriter table("Fault soak: resilient clients vs 10% mixed faults");
  table.set_header({"clients", "logical_q", "billed_q", "retries", "faults",
                    "server_faults", "wall_ms", "p50_ms", "p95_ms", "max_ms"});
  table.set_precision(2);
  table.add_row({static_cast<long long>(clients), logical,
                 static_cast<long long>(handle.queries_billed()),
                 static_cast<long long>(handle.retries()),
                 static_cast<long long>(handle.faults_seen()),
                 static_cast<long long>(stats.faults_injected), wall_ms,
                 stats.p50_latency_ms, stats.p95_latency_ms,
                 stats.max_latency_ms});
  bench::emit(table, "fault_soak.csv");
  bench::print_paper_note(
      "No paper counterpart: soaks the retry policy a query-budgeted "
      "attacker needs against a flaky black-box API. Every answer must "
      "match the fault-free retrieval bitwise; billed_q - logical_q is the "
      "query-budget price of the faults.");

  if (bad > 0) {
    std::fprintf(stderr, "FAULT SOAK FAILED: %lld mismatched answers\n",
                 static_cast<long long>(bad));
    return 1;
  }
  if (handle.queries_billed() < logical) {
    std::fprintf(stderr, "FAULT SOAK FAILED: billed %lld < logical %lld\n",
                 static_cast<long long>(handle.queries_billed()), logical);
    return 1;
  }
  std::printf("fault soak OK: %lld logical queries, %lld billed, "
              "%lld retries absorbed\n",
              logical, static_cast<long long>(handle.queries_billed()),
              static_cast<long long>(handle.retries()));
  return 0;
}
