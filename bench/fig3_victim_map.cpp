// Figure 3: mAP of the victim video retrieval systems — four feature
// extractors × three training losses × two datasets.
//
// Paper shape to reproduce: trained systems achieve usable mAP on both
// datasets; the best extractor/loss combination depends on the dataset
// (SlowFast strongest on UCF101; ArcFace tends to help on HMDB51).

#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Fig. 3 — victim mAP (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  for (const auto& spec : {params.ucf, params.hmdb}) {
    TableWriter table("Fig. 3 — mAP (%) of victim systems on " + spec.name);
    table.set_header({"Extractor", "ArcFaceLoss", "LiftedLoss", "AngularLoss"});

    std::uint64_t seed = 1000;
    for (const auto victim_kind : models::victim_model_kinds()) {
      std::vector<TableWriter::Cell> row;
      row.emplace_back(std::string(models::model_kind_name(victim_kind)));
      for (const auto loss_kind :
           {nn::VictimLossKind::kArcFace, nn::VictimLossKind::kLifted,
            nn::VictimLossKind::kAngular}) {
        bench::VictimWorld world =
            bench::make_victim(spec, victim_kind, loss_kind, params, ++seed);
        const double map =
            retrieval::evaluate_map(*world.system, world.dataset.test,
                                    params.m) *
            100.0;
        row.emplace_back(map);
      }
      table.add_row(std::move(row));
    }
    bench::emit(table, "fig3_" + spec.name + ".csv");
  }
  bench::print_paper_note(
      "Fig. 3: UCF101 mAP ≈ 40–60% with SlowFast best; HMDB51 favors "
      "ArcFaceLoss; loss choice matters more on the smaller dataset.");
  return 0;
}
