// Figure 4: mAP of the surrogate model as a function of (a) the number of
// query-harvested training samples and (b) the output feature size.
//
// Paper shape to reproduce: mAP grows substantially with the harvest size
// (19.91% → 50.92% on UCF101 from 165 → 3,616 samples) while the output
// feature size has little impact.

#include <iostream>

#include "bench_common.hpp"
#include "retrieval/trainer.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Fig. 4 — surrogate mAP (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  // Paper harvest sizes on UCF101: {165, 1111, 3616, 8421} training samples.
  // Mapped onto miniature triplet budgets with the same growth profile.
  const std::size_t triplet_targets[] = {60, 160, 320, 520};
  const char* paper_sizes[] = {"165", "1,111", "3,616", "8,421"};

  for (const auto& spec : {params.ucf, params.hmdb}) {
    bench::VictimWorld world = bench::make_victim(
        spec, models::ModelKind::kI3D, nn::VictimLossKind::kArcFace, params,
        4242);

    TableWriter by_size("Fig. 4a — surrogate mAP (%) vs harvest size on " +
                        spec.name);
    by_size.set_header({"paper #samples", "harvested videos", "triplets",
                        "mAP (%)"});
    for (int i = 0; i < 4; ++i) {
      bench::SurrogateWorld sw = bench::make_surrogate(
          world, models::ModelKind::kC3D, triplet_targets[i],
          params.feature_dim, params, 5000 + static_cast<std::uint64_t>(i));

      // Index the gallery with surrogate features and evaluate mAP.
      retrieval::RetrievalSystem system(std::move(sw.model), 1);
      system.add_all(world.dataset.train);
      const double map =
          retrieval::evaluate_map(system, world.dataset.test, params.m) * 100.0;
      by_size.add_row({std::string(paper_sizes[i]),
                       static_cast<long long>(sw.harvested.video_ids.size()),
                       static_cast<long long>(sw.harvested.triplets.size()),
                       map});
    }
    bench::emit(by_size, "fig4a_" + spec.name + ".csv");

    TableWriter by_dim("Fig. 4b — surrogate mAP (%) vs feature size on " +
                       spec.name);
    by_dim.set_header({"paper feature size", "ours", "mAP (%)"});
    const std::int64_t paper_dims[] = {256, 512, 768, 1024};
    for (int i = 0; i < 4; ++i) {
      // Scale the paper's dimensions onto the miniature feature head.
      const std::int64_t dim = params.feature_dim * (i + 1) / 2 + 4;
      bench::SurrogateWorld sw = bench::make_surrogate(
          world, models::ModelKind::kC3D, bench::kDefaultSurrogateTriplets, dim,
          params, 6000 + static_cast<std::uint64_t>(i));
      retrieval::RetrievalSystem system(std::move(sw.model), 1);
      system.add_all(world.dataset.train);
      const double map =
          retrieval::evaluate_map(system, world.dataset.test, params.m) * 100.0;
      by_dim.add_row({static_cast<long long>(paper_dims[i]),
                      static_cast<long long>(dim), map});
    }
    bench::emit(by_dim, "fig4b_" + spec.name + ".csv");
  }

  bench::print_paper_note(
      "Fig. 4: surrogate mAP rises with harvest size (19.91% → 50.92% on "
      "UCF101); output feature size has little impact.");
  return 0;
}
