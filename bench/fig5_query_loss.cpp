// Figure 5: the ranking loss T (Eq. 2) versus the number of queries in
// SparseQuery, for DUO-C3D, DUO-Res18, Vanilla, and HEU-Nes.
//
// Shape to reproduce: T decreases with queries for all query-based attacks
// (the queries genuinely rectify the perturbation), and DUO's curves sit
// below Vanilla's — the sparse prior gives a better starting point and a
// better-directed search.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Fig. 5 — T vs #queries (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  for (const auto& spec : {params.ucf, params.hmdb}) {
    bench::VictimWorld world = bench::make_victim(
        spec, models::ModelKind::kTPN, nn::VictimLossKind::kArcFace, params,
        13100);
    bench::SurrogateWorld c3d = bench::make_surrogate(
        world, models::ModelKind::kC3D, bench::kDefaultSurrogateTriplets,
        params.feature_dim, params, 13200);
    bench::SurrogateWorld res18 = bench::make_surrogate(
        world, models::ModelKind::kResNet18, bench::kDefaultSurrogateTriplets,
        params.feature_dim, params, 13300);

    const auto pairs =
        attack::sample_attack_pairs(world.dataset.train, 1, 13400);

    // Assemble the compared attacks with one SparseQuery phase each so the
    // x-axes align.
    attack::DuoConfig duo_cfg = bench::make_duo_config(params, spec.geometry);
    duo_cfg.iter_numH = 1;
    attack::DuoAttack duo_c3d(*c3d.model, duo_cfg);
    attack::DuoAttack duo_res(*res18.model, duo_cfg);

    baselines::VanillaConfig vcfg;
    vcfg.k = duo_cfg.transfer.k;
    vcfg.n = duo_cfg.transfer.n;
    vcfg.query.iter_numQ = params.iter_num_q;
    vcfg.query.m = params.m;
    baselines::VanillaAttack vanilla(vcfg);

    baselines::HeuConfig hcfg;
    hcfg.k = duo_cfg.transfer.k;
    hcfg.n = duo_cfg.transfer.n;
    hcfg.m = params.m;
    hcfg.nes_population = 4;
    hcfg.nes_iterations = std::max(2, params.iter_num_q / 8);
    baselines::HeuAttack heu(baselines::HeuStrategy::kNatureEstimated, hcfg);

    std::vector<attack::Attack*> attacks{&duo_c3d, &duo_res, &vanilla, &heu};
    std::vector<std::vector<double>> histories;
    for (auto* atk : attacks) {
      retrieval::BlackBoxHandle handle(*world.system);
      const auto outcome = atk->run(pairs[0].v, pairs[0].v_t, handle);
      histories.push_back(outcome.t_history);
    }

    // Print a downsampled table: one row per ~5% of the longest history.
    std::size_t longest = 0;
    for (const auto& h : histories) longest = std::max(longest, h.size());
    TableWriter table("Fig. 5 — ranking loss T vs query iteration on " +
                      spec.name);
    table.set_header({"iteration", "DUO-C3D", "DUO-Res18", "Vanilla",
                      "HEU-Nes"});
    table.set_precision(4);
    const std::size_t stride = std::max<std::size_t>(1, longest / 20);
    for (std::size_t i = 0; i < longest; i += stride) {
      std::vector<TableWriter::Cell> row;
      row.emplace_back(static_cast<long long>(i));
      for (const auto& h : histories) {
        const std::size_t j = std::min(i, h.size() - 1);
        row.emplace_back(h[j]);
      }
      table.add_row(std::move(row));
    }
    bench::emit(table, "fig5_" + spec.name + ".csv");

    // Sanity summary: final T per attack.
    std::cout << "final T:";
    const char* names[] = {"DUO-C3D", "DUO-Res18", "Vanilla", "HEU-Nes"};
    for (std::size_t a = 0; a < histories.size(); ++a) {
      std::cout << "  " << names[a] << "=" << histories[a].back();
    }
    std::cout << "\n\n";
  }

  bench::print_paper_note(
      "Fig. 5: T decreases monotonically with queries for every attack; "
      "DUO's T ends below Vanilla's, which matches DUO's higher AP@m in "
      "Table II.");
  return 0;
}
