// Gallery-scale sweep (ROADMAP "million-video gallery"): how retrieval cost
// and quality move as the gallery grows 10^3 → 10^5(+), flat exact scan vs
// the sharded IVF index with int8-quantized cell scans and exact re-rank.
// This is the scenario axis the paper never measured: a black-box attack
// pays one index scan per query, so scan cost × query budget is the
// attacker's wall-clock bill (the atk_1k column extrapolates a 1,000-query
// SimBA-style budget, the paper's iterNumQ).
//
//   ./build/bench/gallery_scale            # quick scale (up to 10^5)
//   ./build/bench/gallery_scale --smoke    # seconds-long CI sanity pass
//   DUO_BENCH_SCALE=full ...               # adds the 10^6-entry row (slow)
//
// Feature vectors are drawn from a clustered synthetic distribution (IVF's
// natural habitat; a trained extractor clusters by class the same way) —
// the extractor is deliberately out of the loop so the index itself is the
// measured system. The bench FAILS (exit 1) if IVF results diverge across
// shard counts, or if nprobe = all cells does not reproduce the exact
// index's lists — the determinism/identity contracts, checked at every
// size.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "retrieval/ivf_index.hpp"

namespace {

using namespace duo;

std::vector<retrieval::GalleryEntry> clustered_gallery(std::size_t n,
                                                       std::int64_t dim,
                                                       std::size_t centers,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> mu(
      centers, std::vector<float>(static_cast<std::size_t>(dim)));
  for (auto& c : mu) {
    for (auto& v : c) v = rng.uniform_f(-4.0f, 4.0f);
  }
  std::vector<retrieval::GalleryEntry> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(rng.uniform_index(centers));
    retrieval::GalleryEntry e;
    e.id = static_cast<std::int64_t>(i);
    e.label = static_cast<int>(c);
    std::vector<float> f(static_cast<std::size_t>(dim));
    for (std::size_t j = 0; j < f.size(); ++j) {
      f[j] = mu[c][j] + rng.normal_f(0.0f, 0.35f);
    }
    e.feature = Tensor({dim}, std::move(f));
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<std::int64_t> ids_of(const std::vector<retrieval::Neighbor>& v) {
  std::vector<std::int64_t> out;
  out.reserve(v.size());
  for (const auto& n : v) out.push_back(n.id);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = duo::bench::scale_from_env() == duo::bench::Scale::kSmoke;
  bool full = duo::bench::scale_from_env() == duo::bench::Scale::kFull;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::int64_t dim = smoke ? 16 : 32;
  const std::size_t m = 10;
  const std::size_t shards = 4;
  const std::size_t num_queries = smoke ? 8 : 16;
  std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1000, 5000}
            : std::vector<std::size_t>{1000, 10000, 100000};
  if (full) sizes.push_back(1000000);

  TableWriter table("Gallery scale: flat exact scan vs sharded IVF + int8 re-rank");
  table.set_header({"gallery", "cells", "nprobe", "flat_ms_q", "ivf_ms_q",
                    "speedup", "recall_at_m", "scanned_frac", "atk_1k_s"});
  table.set_precision(3);

  int failures = 0;
  for (const std::size_t n : sizes) {
    const std::size_t centers = std::max<std::size_t>(16, n / 256);
    const auto gallery = clustered_gallery(n, dim, centers, /*seed=*/17 + n);

    // Queries: perturbed gallery points (the attack regime — a perturbed
    // video stays near its source in feature space).
    Rng qrng(91);
    std::vector<Tensor> queries;
    for (std::size_t q = 0; q < num_queries; ++q) {
      const auto& src =
          gallery[static_cast<std::size_t>(qrng.uniform_index(n))].feature;
      std::vector<float> f(src.data(), src.data() + dim);
      for (auto& v : f) v += qrng.normal_f(0.0f, 0.05f);
      queries.emplace_back(Tensor::Shape{dim}, std::move(f));
    }

    retrieval::RetrievalIndex flat(dim, shards);
    for (const auto& e : gallery) flat.add(e);

    const std::size_t cells = std::max<std::size_t>(
        8, static_cast<std::size_t>(std::sqrt(static_cast<double>(n)) * 2));
    retrieval::IndexConfig cfg;
    cfg.kind = retrieval::IndexKind::kIvf;
    cfg.num_nodes = shards;
    cfg.num_cells = cells;
    cfg.quantize = true;

    // Contract check 1: nprobe = all cells (quantized, 4× re-rank pool)
    // reproduces the exact lists on this distribution.
    {
      retrieval::IndexConfig all_cfg = cfg;
      all_cfg.nprobe = cells;
      retrieval::IvfIndex probe_all(dim, all_cfg);
      for (const auto& e : gallery) probe_all.add(e);
      probe_all.finalize();
      for (const auto& q : queries) {
        if (ids_of(flat.query(q, m, true)) != ids_of(probe_all.query(q, m, true))) {
          std::fprintf(stderr,
                       "FAIL: nprobe=all != exact at gallery size %zu\n", n);
          ++failures;
          break;
        }
      }
    }

    const std::size_t nprobe = std::max<std::size_t>(1, cells / 16);
    retrieval::IndexConfig swept = cfg;
    swept.nprobe = nprobe;
    retrieval::IvfIndex ivf_swept(dim, swept);
    retrieval::IndexConfig swept1 = swept;
    swept1.num_nodes = 1;
    retrieval::IvfIndex ivf_swept1(dim, swept1);
    for (const auto& e : gallery) {
      ivf_swept.add(e);
      ivf_swept1.add(e);
    }
    ivf_swept.finalize();
    ivf_swept1.finalize();

    // Contract check 2: shard-count determinism at the swept nprobe.
    for (const auto& q : queries) {
      if (ids_of(ivf_swept.query(q, m, true)) !=
          ids_of(ivf_swept1.query(q, m, false))) {
        std::fprintf(stderr, "FAIL: shard-count divergence at size %zu\n", n);
        ++failures;
        break;
      }
    }

    // Timed passes + recall/scan accounting.
    double flat_ms = 0.0, ivf_ms = 0.0;
    std::size_t hits = 0, total = 0, scanned = 0;
    for (const auto& q : queries) {
      Stopwatch sw_flat;
      const auto exact = ids_of(flat.query(q, m, /*parallel=*/true));
      flat_ms += sw_flat.elapsed_ms();
      retrieval::IvfQueryStats stats;
      Stopwatch sw_ivf;
      const auto approx =
          ids_of(ivf_swept.query_with_stats(q, m, /*parallel=*/true, &stats));
      ivf_ms += sw_ivf.elapsed_ms();
      scanned += stats.vectors_scanned;
      for (const auto id : approx) {
        if (std::find(exact.begin(), exact.end(), id) != exact.end()) ++hits;
      }
      total += exact.size();
    }
    flat_ms /= static_cast<double>(num_queries);
    ivf_ms /= static_cast<double>(num_queries);
    const double scanned_frac =
        static_cast<double>(scanned) /
        static_cast<double>(num_queries * n);
    table.add_row({static_cast<long long>(n), static_cast<long long>(cells),
                   static_cast<long long>(nprobe), flat_ms, ivf_ms,
                   flat_ms / std::max(ivf_ms, 1e-9),
                   static_cast<double>(hits) / static_cast<double>(total),
                   scanned_frac, ivf_ms * 1000.0 / 1e3});
  }

  duo::bench::emit(table, "gallery_scale.csv");
  duo::bench::print_paper_note(
      "No paper counterpart: DUO evaluates ~10^3-video galleries; this sweeps "
      "the production-scale axis (QAIR-style coarse index + re-rank victim). "
      "atk_1k_s = projected index-side seconds for a 1,000-query attack "
      "budget at that gallery size.");
  if (failures != 0) {
    std::fprintf(stderr, "gallery_scale: %d contract violations\n", failures);
    return 1;
  }
  return 0;
}
