// Microbenchmarks (google-benchmark) for the hot paths underneath the
// experiment harnesses: tensor algebra, convolution, model forward/backward,
// retrieval queries, the ranking-similarity metric, and the two pixel
// selectors (ADMM vs plain top-k — the DESIGN.md §5 ablation).

#include <benchmark/benchmark.h>

#include "attack/lp_box_admm.hpp"
#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "retrieval/index.hpp"
#include "video/synthetic.hpp"

namespace {

using namespace duo;

void BM_TensorAxpy(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  const Tensor b = Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    a.axpy(0.5f, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorAxpy)->Arg(1 << 12)->Arg(1 << 16);

void BM_TensorMatmul(benchmark::State& state) {
  Rng rng(2);
  const std::int64_t n = state.range(0);
  const Tensor a = Tensor::uniform({n, n}, -1.0f, 1.0f, rng);
  const Tensor b = Tensor::uniform({n, n}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64);

void BM_ModelExtract(benchmark::State& state) {
  const video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(3);
  auto model = models::make_extractor(
      static_cast<models::ModelKind>(state.range(0)), g, 16, rng);
  model->set_training(false);
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = g;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->extract(v));
  }
}
BENCHMARK(BM_ModelExtract)
    ->Arg(static_cast<int>(models::ModelKind::kC3D))
    ->Arg(static_cast<int>(models::ModelKind::kI3D))
    ->Arg(static_cast<int>(models::ModelKind::kTPN))
    ->Arg(static_cast<int>(models::ModelKind::kSlowFast))
    ->Arg(static_cast<int>(models::ModelKind::kResNet34));

void BM_ModelBackwardToInput(benchmark::State& state) {
  const video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(4);
  auto model = models::make_extractor(models::ModelKind::kC3D, g, 16, rng);
  model->set_training(false);
  auto spec = video::DatasetSpec::hmdb51_like(4);
  spec.geometry = g;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 8);
  const Tensor grad = Tensor::ones({16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->extract(v));
    benchmark::DoNotOptimize(model->backward_to_input(grad));
  }
}
BENCHMARK(BM_ModelBackwardToInput);

void BM_RetrievalQuery(benchmark::State& state) {
  const std::int64_t dim = 32;
  retrieval::RetrievalIndex index(dim, static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    retrieval::GalleryEntry e;
    e.id = i;
    e.label = i % 50;
    e.feature = Tensor::uniform({dim}, -1.0f, 1.0f, rng);
    index.add(e);
  }
  const Tensor q = Tensor::uniform({dim}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query(q, 10));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RetrievalQuery)->Arg(1)->Arg(4)->Arg(16);

void BM_NdcgSimilarity(benchmark::State& state) {
  metrics::RetrievalList a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(i);
    b.push_back(state.range(0) - i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ndcg_similarity(a, b));
  }
}
BENCHMARK(BM_NdcgSimilarity)->Arg(10)->Arg(100);

void BM_PixelSelect_Admm(benchmark::State& state) {
  Rng rng(6);
  const Tensor scores =
      Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::lp_box_admm_select(scores, state.range(0) / 16,
                                   attack::LpBoxAdmmConfig{}));
  }
}
BENCHMARK(BM_PixelSelect_Admm)->Arg(1 << 12)->Arg(1 << 15);

void BM_PixelSelect_Topk(benchmark::State& state) {
  Rng rng(7);
  const Tensor scores =
      Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::topk_select(scores, state.range(0) / 16));
  }
}
BENCHMARK(BM_PixelSelect_Topk)->Arg(1 << 12)->Arg(1 << 15);

void BM_SyntheticVideo(benchmark::State& state) {
  auto spec = video::DatasetSpec::ucf101_like();
  video::SyntheticGenerator gen(spec);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.make_video(0, 0, ++seed));
  }
}
BENCHMARK(BM_SyntheticVideo);

}  // namespace

BENCHMARK_MAIN();
