// Microbenchmarks (google-benchmark) for the hot paths underneath the
// experiment harnesses: tensor algebra, convolution, model forward/backward,
// retrieval queries, the ranking-similarity metric, and the two pixel
// selectors (ADMM vs plain top-k — the DESIGN.md §5 ablation).

#include <benchmark/benchmark.h>

#include "attack/lp_box_admm.hpp"
#include "attack/surrogate.hpp"
#include "common/thread_pool.hpp"
#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "nn/conv3d.hpp"
#include "retrieval/index.hpp"
#include "video/synthetic.hpp"

namespace {

using namespace duo;

// Pins the compute pool to the benchmark's thread-count argument for the
// serial-vs-parallel comparisons below (Arg(1) = serial baseline).
class ComputePoolGuard {
 public:
  explicit ComputePoolGuard(std::size_t threads) : pool_(threads) {
    set_compute_pool(&pool_);
  }
  ~ComputePoolGuard() { set_compute_pool(nullptr); }

 private:
  ThreadPool pool_;
};

void BM_TensorAxpy(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  const Tensor b = Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    a.axpy(0.5f, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorAxpy)->Arg(1 << 12)->Arg(1 << 16);

void BM_TensorMatmul(benchmark::State& state) {
  Rng rng(2);
  const std::int64_t n = state.range(0);
  const Tensor a = Tensor::uniform({n, n}, -1.0f, 1.0f, rng);
  const Tensor b = Tensor::uniform({n, n}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64);

// Conv3d forward at a paper-relevant size, sharded over the given number of
// threads (Arg = pool size; 0 = hardware concurrency). Outputs are bitwise
// identical across thread counts, so the only observable difference is time.
void BM_Conv3dForward(benchmark::State& state) {
  ComputePoolGuard guard(static_cast<std::size_t>(state.range(0)));
  Rng rng(21);
  nn::Conv3dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  nn::Conv3d conv(spec, rng);
  const Tensor input = Tensor::uniform({8, 8, 28, 28}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(input));
  }
  state.SetItemsProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_Conv3dForward)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0);

void BM_Conv3dBackward(benchmark::State& state) {
  ComputePoolGuard guard(static_cast<std::size_t>(state.range(0)));
  Rng rng(22);
  nn::Conv3dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  nn::Conv3d conv(spec, rng);
  const Tensor input = Tensor::uniform({8, 8, 28, 28}, -1.0f, 1.0f, rng);
  const Tensor out = conv.forward(input);
  const Tensor grad = Tensor::uniform(out.shape(), -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_Conv3dBackward)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0);

// Whole-extractor forward pass (the victim-query hot path) at 1..N threads.
void BM_ExtractThreads(benchmark::State& state) {
  ComputePoolGuard guard(static_cast<std::size_t>(state.range(0)));
  const video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(23);
  auto model = models::make_extractor(models::ModelKind::kC3D, g, 16, rng);
  model->set_training(false);
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = g;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->extract(v));
  }
}
BENCHMARK(BM_ExtractThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0);

void BM_ModelExtract(benchmark::State& state) {
  const video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(3);
  auto model = models::make_extractor(
      static_cast<models::ModelKind>(state.range(0)), g, 16, rng);
  model->set_training(false);
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = g;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->extract(v));
  }
}
BENCHMARK(BM_ModelExtract)
    ->Arg(static_cast<int>(models::ModelKind::kC3D))
    ->Arg(static_cast<int>(models::ModelKind::kI3D))
    ->Arg(static_cast<int>(models::ModelKind::kTPN))
    ->Arg(static_cast<int>(models::ModelKind::kSlowFast))
    ->Arg(static_cast<int>(models::ModelKind::kResNet34));

void BM_ModelBackwardToInput(benchmark::State& state) {
  const video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(4);
  auto model = models::make_extractor(models::ModelKind::kC3D, g, 16, rng);
  model->set_training(false);
  auto spec = video::DatasetSpec::hmdb51_like(4);
  spec.geometry = g;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 8);
  const Tensor grad = Tensor::ones({16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->extract(v));
    benchmark::DoNotOptimize(model->backward_to_input(grad));
  }
}
BENCHMARK(BM_ModelBackwardToInput);

// Data-parallel surrogate training (SparseTransfer Alg. 1 step 1) at 1..N
// threads, default SurrogateTrainConfig (batch accumulated across replica
// groups). Results are bitwise identical across thread counts, so time is
// the only observable difference.
void BM_TrainSurrogateThreads(benchmark::State& state) {
  ComputePoolGuard guard(static_cast<std::size_t>(state.range(0)));
  const video::VideoGeometry g{8, 16, 16, 3};
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = g;
  video::SyntheticGenerator gen(spec);
  attack::VideoStore store;
  std::vector<std::int64_t> ids;
  attack::SurrogateDataset ds;
  for (int i = 0; i < 16; ++i) {
    const video::Video v = gen.make_video(i % 4, i, 500 + i);
    store.add(v);
    ids.push_back(v.id());
    ds.video_ids.push_back(v.id());
  }
  Rng trng(11);
  for (int i = 0; i < 128; ++i) {
    const std::int64_t a = ids[trng.uniform_index(ids.size())];
    std::int64_t c = ids[trng.uniform_index(ids.size())];
    while (c == a) c = ids[trng.uniform_index(ids.size())];
    std::int64_t f = ids[trng.uniform_index(ids.size())];
    while (f == a || f == c) f = ids[trng.uniform_index(ids.size())];
    ds.triplets.push_back({a, c, f});
  }
  Rng mrng(12);
  auto model = models::make_extractor(models::ModelKind::kC3D, g, 16, mrng);
  attack::SurrogateTrainConfig cfg;  // default batch_size: the paper config
  cfg.epochs = 1;
  cfg.triplets_per_epoch = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::train_surrogate(*model, ds, store, cfg));
  }
  state.SetItemsProcessed(state.iterations() * cfg.triplets_per_epoch);
}
BENCHMARK(BM_TrainSurrogateThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_RetrievalQuery(benchmark::State& state) {
  const std::int64_t dim = 32;
  retrieval::RetrievalIndex index(dim, static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    retrieval::GalleryEntry e;
    e.id = i;
    e.label = i % 50;
    e.feature = Tensor::uniform({dim}, -1.0f, 1.0f, rng);
    index.add(e);
  }
  const Tensor q = Tensor::uniform({dim}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query(q, 10));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RetrievalQuery)->Arg(1)->Arg(4)->Arg(16);

void BM_NdcgSimilarity(benchmark::State& state) {
  metrics::RetrievalList a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(i);
    b.push_back(state.range(0) - i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ndcg_similarity(a, b));
  }
}
BENCHMARK(BM_NdcgSimilarity)->Arg(10)->Arg(100);

void BM_PixelSelect_Admm(benchmark::State& state) {
  Rng rng(6);
  const Tensor scores =
      Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::lp_box_admm_select(scores, state.range(0) / 16,
                                   attack::LpBoxAdmmConfig{}));
  }
}
BENCHMARK(BM_PixelSelect_Admm)->Arg(1 << 12)->Arg(1 << 15);

void BM_PixelSelect_Topk(benchmark::State& state) {
  Rng rng(7);
  const Tensor scores =
      Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::topk_select(scores, state.range(0) / 16));
  }
}
BENCHMARK(BM_PixelSelect_Topk)->Arg(1 << 12)->Arg(1 << 15);

void BM_SyntheticVideo(benchmark::State& state) {
  auto spec = video::DatasetSpec::ucf101_like();
  video::SyntheticGenerator gen(spec);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.make_video(0, 0, ++seed));
  }
}
BENCHMARK(BM_SyntheticVideo);

}  // namespace

BENCHMARK_MAIN();
