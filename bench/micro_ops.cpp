// Microbenchmarks (google-benchmark) for the hot paths underneath the
// experiment harnesses: tensor algebra, convolution, model forward/backward,
// retrieval queries, the ranking-similarity metric, and the two pixel
// selectors (ADMM vs plain top-k — the DESIGN.md §5 ablation).

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <string_view>
#include <vector>

#include "attack/lp_box_admm.hpp"
#include "attack/surrogate.hpp"
#include "common/thread_pool.hpp"
#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "nn/conv3d.hpp"
#include "retrieval/index.hpp"
#include "video/synthetic.hpp"

namespace {

using namespace duo;

// Pins the compute pool to the benchmark's thread-count argument for the
// serial-vs-parallel comparisons below (Arg(1) = serial baseline).
class ComputePoolGuard {
 public:
  explicit ComputePoolGuard(std::size_t threads) : pool_(threads) {
    set_compute_pool(&pool_);
  }
  ~ComputePoolGuard() { set_compute_pool(nullptr); }

 private:
  ThreadPool pool_;
};

void BM_TensorAxpy(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  const Tensor b = Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    a.axpy(0.5f, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorAxpy)->Arg(1 << 12)->Arg(1 << 16);

void BM_TensorMatmul(benchmark::State& state) {
  Rng rng(2);
  const std::int64_t n = state.range(0);
  const Tensor a = Tensor::uniform({n, n}, -1.0f, 1.0f, rng);
  const Tensor b = Tensor::uniform({n, n}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64);

// Conv3d forward at a paper-relevant size, sharded over the given number of
// threads (first arg = pool size; 0 = hardware concurrency) and running the
// given kernel (second arg: 0 = direct reference loops, 1 = im2col/GEMM).
// Outputs are bitwise identical across thread counts and across the two
// kernels, so the only observable difference is time.
nn::Conv3dSpec conv_bench_spec(std::int64_t kernel_arg) {
  nn::Conv3dSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 16;
  spec.kernel_impl =
      kernel_arg == 0 ? nn::Conv3dKernel::kDirect : nn::Conv3dKernel::kGemm;
  return spec;
}

void BM_Conv3dForward(benchmark::State& state) {
  ComputePoolGuard guard(static_cast<std::size_t>(state.range(0)));
  Rng rng(21);
  nn::Conv3d conv(conv_bench_spec(state.range(1)), rng);
  const Tensor input = Tensor::uniform({8, 8, 28, 28}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(input));
  }
  state.SetItemsProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_Conv3dForward)
    ->ArgNames({"threads", "gemm"})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({0, 1});

void BM_Conv3dBackward(benchmark::State& state) {
  ComputePoolGuard guard(static_cast<std::size_t>(state.range(0)));
  Rng rng(22);
  nn::Conv3d conv(conv_bench_spec(state.range(1)), rng);
  const Tensor input = Tensor::uniform({8, 8, 28, 28}, -1.0f, 1.0f, rng);
  const Tensor out = conv.forward(input);
  const Tensor grad = Tensor::uniform(out.shape(), -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_Conv3dBackward)
    ->ArgNames({"threads", "gemm"})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({0, 1});

// Whole-extractor forward pass (the victim-query hot path) at 1..N threads.
void BM_ExtractThreads(benchmark::State& state) {
  ComputePoolGuard guard(static_cast<std::size_t>(state.range(0)));
  const video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(23);
  auto model = models::make_extractor(models::ModelKind::kC3D, g, 16, rng);
  model->set_training(false);
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = g;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->extract(v));
  }
}
BENCHMARK(BM_ExtractThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0);

void BM_ModelExtract(benchmark::State& state) {
  const video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(3);
  auto model = models::make_extractor(
      static_cast<models::ModelKind>(state.range(0)), g, 16, rng);
  model->set_training(false);
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = g;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->extract(v));
  }
}
BENCHMARK(BM_ModelExtract)
    ->Arg(static_cast<int>(models::ModelKind::kC3D))
    ->Arg(static_cast<int>(models::ModelKind::kI3D))
    ->Arg(static_cast<int>(models::ModelKind::kTPN))
    ->Arg(static_cast<int>(models::ModelKind::kSlowFast))
    ->Arg(static_cast<int>(models::ModelKind::kResNet34));

void BM_ModelBackwardToInput(benchmark::State& state) {
  const video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(4);
  auto model = models::make_extractor(models::ModelKind::kC3D, g, 16, rng);
  model->set_training(false);
  auto spec = video::DatasetSpec::hmdb51_like(4);
  spec.geometry = g;
  const video::Video v = video::SyntheticGenerator(spec).make_video(0, 0, 8);
  const Tensor grad = Tensor::ones({16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->extract(v));
    benchmark::DoNotOptimize(model->backward_to_input(grad));
  }
}
BENCHMARK(BM_ModelBackwardToInput);

// Data-parallel surrogate training (SparseTransfer Alg. 1 step 1) at 1..N
// threads, default SurrogateTrainConfig (batch accumulated across replica
// groups). Results are bitwise identical across thread counts, so time is
// the only observable difference.
void BM_TrainSurrogateThreads(benchmark::State& state) {
  ComputePoolGuard guard(static_cast<std::size_t>(state.range(0)));
  const video::VideoGeometry g{8, 16, 16, 3};
  auto spec = video::DatasetSpec::hmdb51_like(3);
  spec.geometry = g;
  video::SyntheticGenerator gen(spec);
  attack::VideoStore store;
  std::vector<std::int64_t> ids;
  attack::SurrogateDataset ds;
  for (int i = 0; i < 16; ++i) {
    const video::Video v = gen.make_video(i % 4, i, 500 + i);
    store.add(v);
    ids.push_back(v.id());
    ds.video_ids.push_back(v.id());
  }
  Rng trng(11);
  for (int i = 0; i < 128; ++i) {
    const std::int64_t a = ids[trng.uniform_index(ids.size())];
    std::int64_t c = ids[trng.uniform_index(ids.size())];
    while (c == a) c = ids[trng.uniform_index(ids.size())];
    std::int64_t f = ids[trng.uniform_index(ids.size())];
    while (f == a || f == c) f = ids[trng.uniform_index(ids.size())];
    ds.triplets.push_back({a, c, f});
  }
  Rng mrng(12);
  auto model = models::make_extractor(models::ModelKind::kC3D, g, 16, mrng);
  attack::SurrogateTrainConfig cfg;  // default batch_size: the paper config
  cfg.epochs = 1;
  cfg.triplets_per_epoch = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::train_surrogate(*model, ds, store, cfg));
  }
  state.SetItemsProcessed(state.iterations() * cfg.triplets_per_epoch);
}
BENCHMARK(BM_TrainSurrogateThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_RetrievalQuery(benchmark::State& state) {
  const std::int64_t dim = 32;
  retrieval::RetrievalIndex index(dim, static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    retrieval::GalleryEntry e;
    e.id = i;
    e.label = i % 50;
    e.feature = Tensor::uniform({dim}, -1.0f, 1.0f, rng);
    index.add(e);
  }
  const Tensor q = Tensor::uniform({dim}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query(q, 10));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_RetrievalQuery)->Arg(1)->Arg(4)->Arg(16);

void BM_NdcgSimilarity(benchmark::State& state) {
  metrics::RetrievalList a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back(i);
    b.push_back(state.range(0) - i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::ndcg_similarity(a, b));
  }
}
BENCHMARK(BM_NdcgSimilarity)->Arg(10)->Arg(100);

void BM_PixelSelect_Admm(benchmark::State& state) {
  Rng rng(6);
  const Tensor scores =
      Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::lp_box_admm_select(scores, state.range(0) / 16,
                                   attack::LpBoxAdmmConfig{}));
  }
}
BENCHMARK(BM_PixelSelect_Admm)->Arg(1 << 12)->Arg(1 << 15);

void BM_PixelSelect_Topk(benchmark::State& state) {
  Rng rng(7);
  const Tensor scores =
      Tensor::uniform({state.range(0)}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::topk_select(scores, state.range(0) / 16));
  }
}
BENCHMARK(BM_PixelSelect_Topk)->Arg(1 << 12)->Arg(1 << 15);

void BM_SyntheticVideo(benchmark::State& state) {
  auto spec = video::DatasetSpec::ucf101_like();
  video::SyntheticGenerator gen(spec);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.make_video(0, 0, ++seed));
  }
}
BENCHMARK(BM_SyntheticVideo);

// --smoke: a fast direct-vs-GEMM Conv3d consistency check instead of timing.
// Runs both kernels on identical weights/inputs across a few representative
// shapes and reports the worst forward / weight-grad / bias-grad / input-grad
// deltas. Forward and parameter gradients must match bitwise (delta 0); the
// input gradient is a reassociated reduction, so it only has to be close.
// Exits nonzero on any mismatch — cheap enough for every CI run.
int run_smoke() {
  struct Case {
    const char* label;
    std::int64_t cin, cout;
    std::array<std::int64_t, 3> kernel, stride, padding;
    Tensor::Shape in;
  };
  const std::vector<Case> cases = {
      {"3x3x3 pad1", 4, 8, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, {4, 6, 12, 12}},
      {"strided", 3, 6, {2, 3, 3}, {1, 2, 2}, {0, 1, 1}, {3, 5, 13, 13}},
      {"pointwise", 8, 8, {1, 1, 1}, {1, 1, 1}, {0, 0, 0}, {8, 4, 8, 8}},
  };
  ComputePoolGuard guard(0);
  bool ok = true;
  for (const auto& c : cases) {
    auto run = [&](nn::Conv3dKernel impl) {
      nn::Conv3dSpec spec;
      spec.in_channels = c.cin;
      spec.out_channels = c.cout;
      spec.kernel = c.kernel;
      spec.stride = c.stride;
      spec.padding = c.padding;
      spec.kernel_impl = impl;
      Rng rng(97);
      nn::Conv3d conv(spec, rng);
      Rng xrng(98);
      const Tensor x = Tensor::uniform(c.in, -1.0f, 1.0f, xrng);
      const Tensor out = conv.forward(x);
      const Tensor gy = Tensor::uniform(out.shape(), -1.0f, 1.0f, xrng);
      const Tensor gx = conv.backward(gy);
      return std::array<Tensor, 4>{out, gx, conv.parameters()[0]->grad,
                                   conv.parameters()[1]->grad};
    };
    const auto direct = run(nn::Conv3dKernel::kDirect);
    const auto gemm = run(nn::Conv3dKernel::kGemm);
    const float d_out = (direct[0] - gemm[0]).norm_linf();
    const float d_gx = (direct[1] - gemm[1]).norm_linf();
    const float d_gw = (direct[2] - gemm[2]).norm_linf();
    const float d_gb = (direct[3] - gemm[3]).norm_linf();
    const bool case_ok =
        d_out == 0.0f && d_gw == 0.0f && d_gb == 0.0f && d_gx <= 1e-4f;
    ok = ok && case_ok;
    std::printf(
        "conv3d %-12s forward %.3g  grad_w %.3g  grad_b %.3g  grad_x %.3g  %s\n",
        c.label, static_cast<double>(d_out), static_cast<double>(d_gw),
        static_cast<double>(d_gb), static_cast<double>(d_gx),
        case_ok ? "OK" : "MISMATCH");
  }
  std::printf("direct-vs-gemm smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
