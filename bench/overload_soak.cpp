// Overload soak: paced resilient clients against a server that actively
// pushes back — per-client token-bucket rate limiting, kShed admission on a
// small queue, per-request deadlines, and a sprinkle of injected transient
// errors, all at once. Every client answer must still match the fault-free
// retrieval bitwise (throttles, sheds, and expiries are retryable; the
// resilient policy absorbs them), and the server/client ledgers must
// reconcile: accepted (billed) requests terminate exactly one way, so
//
//   billed == served + faults_injected + expired + shed.
//
// Reports the overload mix (throttled / rejected / shed / expired rates),
// the pacing the shared client-side bucket imposed, and latency percentiles.
//
//   ./build/bench/overload_soak            # quick scale
//   ./build/bench/overload_soak --smoke    # seconds-long CI smoke pass
//
// Exits nonzero on any mismatched answer or accounting violation.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "serve/admission.hpp"
#include "serve/async_handle.hpp"
#include "serve/fault_injection.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace duo;
  bool smoke = bench::scale_from_env() == bench::Scale::kSmoke;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::SoakWorld world = bench::make_soak_world(smoke, 59);

  // Transient errors plus injected processing delays: a delayed batch makes
  // requests age in the queue past their deadline, so the expiry path gets
  // exercised too, not just configured.
  serve::FaultConfig faults;
  faults.error_prob = 0.1;
  faults.delay_prob = 0.2;
  faults.delay_ms = 60.0;
  faults.seed = 41;

  serve::ServerConfig scfg;
  scfg.max_batch = 4;
  scfg.queue_capacity = 4;  // small queue: admission pressure is real
  scfg.admission = serve::AdmissionPolicy::kShed;
  scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
  scfg.client_rate = 50.0;  // per client_id, requests/sec — below the
  scfg.client_burst = 2.0;  // unthrottled service rate, so throttles fire
  serve::RetrievalServer server(*world.system, scfg);

  const std::size_t clients = smoke ? 2 : 4;
  const int queries_per_client = smoke ? 20 : 150;

  // One shared pacer across every client — "one API key, many attack
  // processes" — deliberately faster than the server's per-client limit so
  // the server-side throttle path does real work too, but tight enough that
  // retry bursts queue up behind the shared bucket.
  serve::PacerConfig pcfg;
  pcfg.rate_per_sec = 80.0 * static_cast<double>(clients);
  pcfg.burst = 2.0;
  auto pacer = std::make_shared<serve::Pacer>(pcfg, nullptr);

  serve::RetryPolicy policy;
  policy.max_attempts = 60;
  policy.query_timeout = std::chrono::milliseconds(2000);
  std::vector<std::unique_ptr<serve::AsyncBlackBoxHandle>> asyncs;
  std::vector<std::unique_ptr<serve::ResilientHandle>> handles;
  for (std::size_t t = 0; t < clients; ++t) {
    serve::RequestOptions opts;
    opts.client_id = "soak-" + std::to_string(t);
    // Tight enough that a request queued behind a 60 ms delayed batch
    // expires, loose enough that an ordinary queue wait never does.
    opts.ttl_ms = 25.0;
    asyncs.push_back(
        std::make_unique<serve::AsyncBlackBoxHandle>(server, opts));
    handles.push_back(
        std::make_unique<serve::ResilientHandle>(*asyncs.back(), policy, pacer));
  }

  Stopwatch wall;
  const std::int64_t bad = bench::run_soak_clients(
      world, clients, queries_per_client,
      [&](std::size_t t, const video::Video& v, std::size_t m) {
        return handles[t]->retrieve(v, m);
      });
  const double wall_ms = wall.elapsed_ms();
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  const auto logical = static_cast<long long>(clients) * queries_per_client;
  long long billed = 0;
  long long overloads = 0;
  for (const auto& h : handles) {
    billed += h->queries_billed();
    overloads += h->overloads_seen();
  }

  TableWriter table("Overload soak: paced clients vs throttling kShed server");
  table.set_header({"clients", "logical_q", "billed_q", "throttled", "shed",
                    "expired", "served", "pacer_waits", "wall_ms", "p95_ms"});
  table.set_precision(2);
  table.add_row({static_cast<long long>(clients), logical, billed,
                 static_cast<long long>(stats.requests_throttled),
                 static_cast<long long>(stats.requests_shed),
                 static_cast<long long>(stats.requests_expired),
                 static_cast<long long>(stats.queries_served),
                 static_cast<long long>(pacer->waits()), wall_ms,
                 stats.p95_latency_ms});
  bench::emit(table, "overload_soak.csv");
  bench::print_paper_note(
      "No paper counterpart: soaks the overload policies a deployed victim "
      "runs (rate limits, load shedding, deadlines) against the paced "
      "retrying client an attacker needs. Every answer must match the "
      "unthrottled retrieval bitwise; the billing ledger must reconcile.");

  if (bad > 0) {
    std::fprintf(stderr, "OVERLOAD SOAK FAILED: %lld mismatched answers\n",
                 static_cast<long long>(bad));
    return 1;
  }
  const long long terminated = stats.queries_served + stats.faults_injected +
                               stats.requests_expired + stats.requests_shed;
  if (billed != terminated) {
    std::fprintf(stderr,
                 "OVERLOAD SOAK FAILED: billed %lld != served+faulted+"
                 "expired+shed %lld\n",
                 billed, terminated);
    return 1;
  }
  if (billed < logical) {
    std::fprintf(stderr, "OVERLOAD SOAK FAILED: billed %lld < logical %lld\n",
                 billed, logical);
    return 1;
  }
  std::printf(
      "overload soak OK: %lld logical queries, %lld billed, %lld overload "
      "pushbacks absorbed, %lld pacer waits\n",
      logical, billed, overloads, static_cast<long long>(pacer->waits()));
  return 0;
}
