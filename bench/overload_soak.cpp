// Overload soak: paced resilient clients against a server that actively
// pushes back — per-client token-bucket rate limiting, kShed admission on a
// small queue, per-request deadlines, and a sprinkle of injected transient
// errors, all at once. Every client answer must still match the fault-free
// retrieval bitwise (throttles, sheds, and expiries are retryable; the
// resilient policy absorbs them), and the server/client ledgers must
// reconcile: accepted (billed) requests terminate exactly one way, so
//
//   billed == served + faults_injected + expired + shed.
//
// Reports the overload mix (throttled / rejected / shed / expired rates),
// the pacing the shared client-side bucket imposed, and latency percentiles.
//
//   ./build/bench/overload_soak            # quick scale
//   ./build/bench/overload_soak --smoke    # seconds-long CI smoke pass
//   ./build/bench/overload_soak --aimd     # static vs adaptive comparison
//
// --aimd runs the soak twice against fresh servers: once with the static
// overdriven pacer, once with the AIMD pacer started from the same (wrong)
// rate. Sheds and expiries are billed, so a client that keeps overdriving a
// kShed server pays for work the server then throws away; AIMD backs off to
// the discovered sustainable rate and must not bill more than static.
//
// Exits nonzero on any mismatched answer, accounting violation, or (with
// --aimd) an adaptive pass that billed more than the static one.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "serve/admission.hpp"
#include "serve/async_handle.hpp"
#include "serve/fault_injection.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"

namespace {

struct SoakOutcome {
  long long logical = 0;
  long long billed = 0;
  long long overloads = 0;
  long long bad = 0;
  long long pacer_waits = 0;
  double wall_ms = 0.0;
  double discovered_rate = 0.0;
  duo::serve::ServerStats stats;

  long long terminated() const {
    return stats.queries_served + stats.faults_injected +
           stats.requests_expired + stats.requests_shed;
  }
};

SoakOutcome run_soak_pass(duo::bench::SoakWorld& world, bool smoke,
                          bool aimd) {
  using namespace duo;

  // Transient errors plus injected processing delays: a delayed batch makes
  // requests age in the queue past their deadline, so the expiry path gets
  // exercised too, not just configured.
  serve::FaultConfig faults;
  faults.error_prob = 0.1;
  faults.delay_prob = 0.2;
  faults.delay_ms = 60.0;
  faults.seed = 41;

  serve::ServerConfig scfg;
  scfg.max_batch = 4;
  scfg.queue_capacity = 4;  // small queue: admission pressure is real
  scfg.admission = serve::AdmissionPolicy::kShed;
  scfg.fault_injector = std::make_shared<serve::FaultInjector>(faults);
  scfg.client_rate = 50.0;  // per client_id, requests/sec — below the
  scfg.client_burst = 2.0;  // unthrottled service rate, so throttles fire
  serve::RetrievalServer server(*world.system, scfg);

  const std::size_t clients = smoke ? 2 : 4;
  const int queries_per_client = smoke ? 20 : 150;

  // One shared pacer across every client — "one API key, many attack
  // processes" — deliberately faster than the server's per-client limit so
  // the server-side throttle path does real work too, but tight enough that
  // retry bursts queue up behind the shared bucket. The AIMD pass starts
  // from the same wrong rate and has to discover the sustainable one.
  serve::PacerConfig pcfg;
  pcfg.rate_per_sec = 80.0 * static_cast<double>(clients);
  pcfg.burst = 2.0;
  pcfg.aimd = aimd;
  pcfg.aimd_increase = 50.0;
  auto pacer = std::make_shared<serve::Pacer>(pcfg, nullptr);

  serve::RetryPolicy policy;
  policy.max_attempts = 60;
  policy.query_timeout = std::chrono::milliseconds(2000);
  std::vector<std::unique_ptr<serve::AsyncBlackBoxHandle>> asyncs;
  std::vector<std::unique_ptr<serve::ResilientHandle>> handles;
  for (std::size_t t = 0; t < clients; ++t) {
    serve::RequestOptions opts;
    opts.client_id = "soak-" + std::to_string(t);
    // Tight enough that a request queued behind a 60 ms delayed batch
    // expires, loose enough that an ordinary queue wait never does.
    opts.ttl_ms = 25.0;
    asyncs.push_back(
        std::make_unique<serve::AsyncBlackBoxHandle>(server, opts));
    handles.push_back(
        std::make_unique<serve::ResilientHandle>(*asyncs.back(), policy, pacer));
  }

  Stopwatch wall;
  const std::int64_t bad = bench::run_soak_clients(
      world, clients, queries_per_client,
      [&](std::size_t t, const video::Video& v, std::size_t m) {
        return handles[t]->retrieve(v, m);
      });

  SoakOutcome out;
  out.wall_ms = wall.elapsed_ms();
  server.shutdown();
  out.stats = server.stats();
  out.logical = static_cast<long long>(clients) * queries_per_client;
  out.bad = bad;
  out.pacer_waits = pacer->waits();
  out.discovered_rate = pacer->current_rate();
  for (const auto& h : handles) {
    out.billed += h->queries_billed();
    out.overloads += h->overloads_seen();
  }
  return out;
}

// Shared invariants for one pass; returns false (and reports) on violation.
bool check_pass(const char* label, const SoakOutcome& out) {
  if (out.bad > 0) {
    std::fprintf(stderr, "OVERLOAD SOAK FAILED (%s): %lld mismatched answers\n",
                 label, out.bad);
    return false;
  }
  if (out.billed != out.terminated()) {
    std::fprintf(stderr,
                 "OVERLOAD SOAK FAILED (%s): billed %lld != served+faulted+"
                 "expired+shed %lld\n",
                 label, out.billed, out.terminated());
    return false;
  }
  if (out.billed < out.logical) {
    std::fprintf(stderr, "OVERLOAD SOAK FAILED (%s): billed %lld < logical %lld\n",
                 label, out.billed, out.logical);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duo;
  bool smoke = bench::scale_from_env() == bench::Scale::kSmoke;
  bool aimd = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--aimd") == 0) aimd = true;
  }

  bench::SoakWorld world = bench::make_soak_world(smoke, 59);

  const SoakOutcome fixed = run_soak_pass(world, smoke, /*aimd=*/false);
  SoakOutcome adaptive;
  if (aimd) adaptive = run_soak_pass(world, smoke, /*aimd=*/true);

  TableWriter table("Overload soak: paced clients vs throttling kShed server");
  table.set_header({"pacer", "logical_q", "billed_q", "throttled", "shed",
                    "expired", "served", "pacer_waits", "rate", "wall_ms",
                    "p95_ms"});
  table.set_precision(2);
  const auto add_row = [&](const char* label, const SoakOutcome& out) {
    table.add_row({std::string(label), out.logical, out.billed,
                   static_cast<long long>(out.stats.requests_throttled),
                   static_cast<long long>(out.stats.requests_shed),
                   static_cast<long long>(out.stats.requests_expired),
                   static_cast<long long>(out.stats.queries_served),
                   out.pacer_waits, out.discovered_rate, out.wall_ms,
                   out.stats.p95_latency_ms});
  };
  add_row("static", fixed);
  if (aimd) add_row("aimd", adaptive);
  bench::emit(table, "overload_soak.csv");
  bench::print_paper_note(
      "No paper counterpart: soaks the overload policies a deployed victim "
      "runs (rate limits, load shedding, deadlines) against the paced "
      "retrying client an attacker needs. Every answer must match the "
      "unthrottled retrieval bitwise; the billing ledger must reconcile.");

  if (!check_pass("static", fixed)) return 1;
  if (aimd && !check_pass("aimd", adaptive)) return 1;

  if (aimd) {
    // The comparison this mode exists for: the adaptive client, which pays
    // for shed/expired work like everyone else, must not bill more than the
    // statically overdriven one it replaces.
    std::printf(
        "aimd vs static: billed %lld vs %lld, shed %lld vs %lld, "
        "discovered rate %.1f/s (static pinned at %.1f/s)\n",
        adaptive.billed, fixed.billed,
        static_cast<long long>(adaptive.stats.requests_shed),
        static_cast<long long>(fixed.stats.requests_shed),
        adaptive.discovered_rate, fixed.discovered_rate);
    if (adaptive.billed > fixed.billed) {
      std::fprintf(stderr,
                   "OVERLOAD SOAK FAILED: aimd billed %lld > static %lld\n",
                   adaptive.billed, fixed.billed);
      return 1;
    }
  }
  std::printf(
      "overload soak OK: %lld logical queries, %lld billed, %lld overload "
      "pushbacks absorbed, %lld pacer waits\n",
      fixed.logical, fixed.billed, fixed.overloads, fixed.pacer_waits);
  return 0;
}
