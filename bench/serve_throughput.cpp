// Serve-layer throughput sweep: client count × max_batch over a synthetic
// gallery. Each cell stands up a fresh RetrievalServer, hammers it from C
// concurrent client threads issuing Q queries each, and reports wall time,
// throughput, the batch-size histogram, and submit→fulfill latency
// percentiles from ServerStats.
//
//   ./build/bench/serve_throughput            # quick scale
//   ./build/bench/serve_throughput --smoke    # seconds-long CI smoke pass
//   DUO_BENCH_SCALE=smoke ./build/bench/serve_throughput   # same
//
// On a single hardware core batching still wins by amortizing scheduler
// wakeups and extractor-replica setup, but the latency spread under load is
// the more interesting column there; run on multicore hardware for the
// throughput story.

#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "serve/async_handle.hpp"
#include "serve/server.hpp"

namespace {

using namespace duo;

std::string histogram_string(const serve::ServerStats& stats) {
  std::ostringstream os;
  bool first = true;
  for (std::size_t s = 1; s < stats.batch_size_counts.size(); ++s) {
    if (stats.batch_size_counts[s] == 0) continue;
    if (!first) os << " ";
    os << s << ":" << stats.batch_size_counts[s];
    first = false;
  }
  return first ? std::string("-") : os.str();
}

// "0%:119 10%:4" — scheduler ticks by tick-start queue occupancy decile.
std::string decile_string(const std::vector<std::int64_t>& deciles) {
  std::ostringstream os;
  bool first = true;
  for (std::size_t d = 0; d < deciles.size(); ++d) {
    if (deciles[d] == 0) continue;
    if (!first) os << " ";
    os << d * 10 << "%:" << deciles[d];
    first = false;
  }
  return first ? std::string("-") : os.str();
}

// "<=2ms:31 <=4ms:6" — retry_after hints handed out with throttle and
// admission-reject failures, power-of-two millisecond buckets.
std::string retry_after_string(const std::vector<std::int64_t>& buckets) {
  std::ostringstream os;
  bool first = true;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (!first) os << " ";
    if (b + 1 == buckets.size()) {
      os << ">1s:" << buckets[b];
    } else {
      os << "<=" << (1ll << b) << "ms:" << buckets[b];
    }
    first = false;
  }
  return first ? std::string("-") : os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = duo::bench::scale_from_env() == duo::bench::Scale::kSmoke;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // An untrained victim is enough: throughput depends on geometry and
  // gallery size, not on how good the features are.
  auto spec = video::DatasetSpec::hmdb51_like(13);
  spec.num_classes = 4;
  spec.train_per_class = smoke ? 4 : 8;
  spec.test_per_class = 2;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();

  Rng rng(29);
  auto extractor =
      models::make_extractor(models::ModelKind::kC3D, spec.geometry, 16, rng);
  retrieval::RetrievalSystem system(std::move(extractor), 2);
  system.add_all(dataset.train);

  const std::vector<std::size_t> client_counts =
      smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> batch_sizes =
      smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 4, 8, 16};
  const int queries_per_client = smoke ? 8 : 64;

  TableWriter table("Serve throughput: clients x max_batch");
  table.set_header({"clients", "max_batch", "queries", "wall_ms", "qps",
                    "mean_batch", "p50_ms", "p95_ms", "batch_histogram",
                    "occupancy_deciles"});
  table.set_precision(2);

  for (const std::size_t clients : client_counts) {
    for (const std::size_t max_batch : batch_sizes) {
      serve::ServerConfig cfg;
      cfg.max_batch = max_batch;
      cfg.queue_capacity = 2 * clients * static_cast<std::size_t>(8);
      serve::RetrievalServer server(system, cfg);
      serve::AsyncBlackBoxHandle handle(server);

      Stopwatch wall;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (std::size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
          for (int q = 0; q < queries_per_client; ++q) {
            const std::size_t vi =
                (t + static_cast<std::size_t>(q) * clients) %
                dataset.test.size();
            (void)handle.retrieve(dataset.test[vi], 10);
          }
        });
      }
      for (auto& th : threads) th.join();
      const double wall_ms = wall.elapsed_ms();
      server.shutdown();

      const serve::ServerStats stats = server.stats();
      const auto total =
          static_cast<double>(clients) * queries_per_client;
      table.add_row({static_cast<long long>(clients),
                     static_cast<long long>(max_batch),
                     static_cast<long long>(stats.queries_served), wall_ms,
                     total / (wall_ms / 1e3), stats.mean_batch_size(),
                     stats.p50_latency_ms, stats.p95_latency_ms,
                     histogram_string(stats),
                     decile_string(stats.occupancy_deciles)});
    }
  }

  duo::bench::emit(table, "serve_throughput.csv");

  // Rate-limited sweep: per-client token buckets low enough that clients
  // actually bounce, so the retry_after histogram and throttle counters show
  // the hint distribution a well-behaved client would back off on. Clients
  // honor the hint — sleep retry_after_ms, then re-ask — so every query
  // eventually lands and queries_served stays exact.
  TableWriter limited("Serve throughput: rate-limited clients (retry_after)");
  limited.set_header({"clients", "rate_qps", "queries", "throttled", "wall_ms",
                      "qps", "occupancy_deciles", "retry_after_hist"});
  limited.set_precision(2);

  const std::vector<double> rates =
      smoke ? std::vector<double>{50.0} : std::vector<double>{50.0, 200.0};
  const std::vector<std::size_t> limited_clients =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
  const int limited_queries = smoke ? 8 : 32;

  for (const std::size_t clients : limited_clients) {
    for (const double rate : rates) {
      serve::ServerConfig cfg;
      cfg.max_batch = 4;
      cfg.queue_capacity = 32;
      cfg.client_rate = rate;
      cfg.client_burst = 2.0;
      serve::RetrievalServer server(system, cfg);

      Stopwatch wall;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (std::size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
          serve::RequestOptions opt;
          opt.client_id = "client-" + std::to_string(t);
          serve::AsyncBlackBoxHandle handle(server, opt);
          for (int q = 0; q < limited_queries; ++q) {
            const std::size_t vi =
                (t + static_cast<std::size_t>(q) * clients) %
                dataset.test.size();
            for (;;) {
              try {
                (void)handle.retrieve(dataset.test[vi], 10);
                break;
              } catch (const serve::ServeError& e) {
                if (!e.retryable()) break;
                const double wait_ms =
                    e.retry_after_ms() > 0.0 ? e.retry_after_ms() : 0.5;
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(wait_ms));
              }
            }
          }
        });
      }
      for (auto& th : threads) th.join();
      const double wall_ms = wall.elapsed_ms();
      server.shutdown();

      const serve::ServerStats stats = server.stats();
      const auto total = static_cast<double>(clients) * limited_queries;
      limited.add_row({static_cast<long long>(clients), rate,
                       static_cast<long long>(stats.queries_served),
                       static_cast<long long>(stats.requests_throttled),
                       wall_ms, total / (wall_ms / 1e3),
                       decile_string(stats.occupancy_deciles),
                       retry_after_string(stats.retry_after_buckets)});
    }
  }

  duo::bench::emit(limited, "serve_throughput_rate_limited.csv");
  duo::bench::print_paper_note(
      "No paper counterpart: this models the deployed victim R(m, v) as a "
      "batched, latency-bound service (QAIR/Sparse-RS-style serving stack). "
      "Answers are bitwise identical to unbatched retrieval at every cell.");
  return 0;
}
