// Table X: detection rate (%) of the two defenses — feature squeezing and
// Noise2Self — against AEs from every attack (I3D victim, both datasets).
//
// Shapes to reproduce: dense/impulsive attacks (Vanilla) are caught most by
// feature squeezing; DUO's sparse low-magnitude perturbations achieve among
// the lowest detection rates, confirming the stealthiness claim.

#include <iostream>

#include "bench_common.hpp"
#include "defense/defense.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table X — defense detection rates (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  for (const auto& spec : {params.ucf, params.hmdb}) {
    bench::VictimWorld world = bench::make_victim(
        spec, models::ModelKind::kI3D, nn::VictimLossKind::kArcFace, params,
        17100);
    bench::SurrogateWorld c3d = bench::make_surrogate(
        world, models::ModelKind::kC3D, bench::kDefaultSurrogateTriplets,
        params.feature_dim, params, 17200);
    bench::SurrogateWorld res18 = bench::make_surrogate(
        world, models::ModelKind::kResNet18, bench::kDefaultSurrogateTriplets,
        params.feature_dim, params, 17300);

    const auto pairs = attack::sample_attack_pairs(world.dataset.train,
                                                   params.pairs, 17400);

    // Calibrate both detectors on clean training videos.
    defense::Detector fs(*world.system,
                         std::make_unique<defense::FeatureSqueezing>(
                             defense::FeatureSqueezingConfig{}),
                         params.m);
    defense::Detector n2s(*world.system,
                          std::make_unique<defense::Noise2Self>(
                              defense::Noise2SelfConfig{}),
                          params.m);
    std::vector<video::Video> calibration(
        world.dataset.train.begin(),
        world.dataset.train.begin() +
            std::min<std::size_t>(10, world.dataset.train.size()));
    fs.calibrate(calibration);
    n2s.calibrate(calibration);

    TableWriter table("Table X — detection rate (%) on " + spec.name);
    table.set_header({"Attack", "feature squeezing", "Noise2Self"});

    auto attacks = bench::make_attack_suite(*c3d.model, *res18.model, params,
                                            spec.geometry);
    for (auto& atk : attacks) {
      std::vector<video::Video> adversarials;
      for (const auto& pair : pairs) {
        retrieval::BlackBoxHandle handle(*world.system);
        adversarials.push_back(atk->run(pair.v, pair.v_t, handle).adversarial);
      }
      table.add_row({atk->name(), fs.detection_rate(adversarials),
                     n2s.detection_rate(adversarials)});
    }
    bench::emit(table, "table10_" + spec.name + ".csv");
  }

  bench::print_paper_note(
      "Table X: Vanilla is caught most by feature squeezing (82.68% on "
      "UCF101); DUO-C3D achieves the lowest rate there (8.25%); Noise2Self "
      "rates are mid-range for all sparse attacks.");
  return 0;
}
