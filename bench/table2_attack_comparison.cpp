// Table II: AP@m / Spa / PScore of every attack against every victim on
// both datasets — the paper's headline comparison.
//
// Shapes to reproduce:
//  * every targeted attack raises AP@m above the "w/o attack" row;
//  * DUO variants reach the highest AP@m among sparse attacks;
//  * TIMI's Spa is the full tensor (×100+ of DUO's) with PScore ≈ 10;
//  * sparse attacks' PScore is roughly proportional to Spa.

#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table II — attack comparison (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  for (const auto& spec : {params.ucf, params.hmdb}) {
    std::uint64_t seed = 7000;
    for (const auto victim_kind : models::victim_model_kinds()) {
      bench::VictimWorld world = bench::make_victim(
          spec, victim_kind, nn::VictimLossKind::kArcFace, params, ++seed);
      bench::SurrogateWorld c3d = bench::make_surrogate(
          world, models::ModelKind::kC3D, bench::kDefaultSurrogateTriplets,
          params.feature_dim, params, seed * 31);
      bench::SurrogateWorld res18 = bench::make_surrogate(
          world, models::ModelKind::kResNet18, bench::kDefaultSurrogateTriplets,
          params.feature_dim, params, seed * 37);

      const auto pairs = attack::sample_attack_pairs(world.dataset.train,
                                                     params.pairs, seed * 41);

      TableWriter table("Table II — " + spec.name + " / " +
                        models::model_kind_name(victim_kind));
      table.set_header({"Attack", "AP@m (%)", "Spa", "PScore"});
      table.set_precision(2);

      const double wo = attack::evaluate_without_attack(*world.system, pairs,
                                                        params.m);
      table.add_row({std::string("w/o attack"), wo, static_cast<long long>(0),
                     0.0});

      auto attacks = bench::make_attack_suite(*c3d.model, *res18.model, params,
                                              spec.geometry);
      for (auto& atk : attacks) {
        const auto eval =
            attack::evaluate_attack(*atk, *world.system, pairs, params.m);
        std::vector<TableWriter::Cell> row;
        row.emplace_back(atk->name());
        bench::append_attack_cells(table, row, eval);
        table.add_row(std::move(row));
      }
      bench::emit(table, "table2_" + spec.name + "_" +
                             models::model_kind_name(victim_kind) + ".csv");
    }
  }

  bench::print_paper_note(
      "Table II: e.g. UCF101/TPN — w/o 67.84, TIMI-C3D 68.34 (Spa 602,100, "
      "PScore 10.00), Vanilla 72.54, DUO-C3D 79.29 (Spa 2,884, PScore 0.14); "
      "DUO best at ×100+ smaller Spa than TIMI.");
  return 0;
}
