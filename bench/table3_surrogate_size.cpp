// Table III: DUO attack performance vs the size of the surrogate dataset.
//
// Shape to reproduce: enlarging the harvest barely changes AP@m or Spa —
// DUO works with a handful of samples (the paper fixes 1,111 thereafter).

#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table III — surrogate dataset size (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  const std::size_t triplet_targets[] = {60, 160, 320, 520};
  const char* paper_sizes[] = {"165", "1,111", "3,616", "8,421"};

  for (const auto& spec : {params.ucf, params.hmdb}) {
    bench::VictimWorld world = bench::make_victim(
        spec, models::ModelKind::kI3D, nn::VictimLossKind::kArcFace, params,
        9100);
    const auto pairs =
        attack::sample_attack_pairs(world.dataset.train, params.pairs, 9200);

    for (const auto surrogate_kind :
         {models::ModelKind::kC3D, models::ModelKind::kResNet18}) {
      TableWriter table(std::string("Table III — DUO-") +
                        models::model_kind_name(surrogate_kind) + " on " +
                        spec.name);
      table.set_header(
          {"paper #samples", "harvested", "AP@m (%)", "Spa", "PScore"});
      for (int i = 0; i < 4; ++i) {
        bench::SurrogateWorld sw = bench::make_surrogate(
            world, surrogate_kind, triplet_targets[i],
            params.feature_dim, params, 9300 + static_cast<std::uint64_t>(i));

        attack::DuoAttack duo(*sw.model,
                              bench::make_duo_config(params, spec.geometry));
        const auto eval =
            attack::evaluate_attack(duo, *world.system, pairs, params.m);
        table.add_row({std::string(paper_sizes[i]),
                       static_cast<long long>(sw.harvested.video_ids.size()),
                       eval.mean_ap_m_after_pct,
                       static_cast<long long>(eval.mean_spa),
                       eval.mean_pscore});
      }
      bench::emit(table, std::string("table3_") + spec.name + "_" +
                             models::model_kind_name(surrogate_kind) + ".csv");
    }
  }

  bench::print_paper_note(
      "Table III: DUO-C3D on UCF101 — AP@m 58.08→55.19 and Spa 2,903→2,184 "
      "as samples grow 165→8,421: more data does not materially help.");
  return 0;
}
