// Table IV: DUO attack performance against victims trained with different
// metric losses (ArcFace / Lifted / Angular).
//
// Shape to reproduce: ArcFaceLoss is the most robust victim loss (lowest
// AP@m); Lifted and Angular leave the victim easier to steer.

#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table IV — victim loss functions (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  for (const auto& spec : {params.ucf, params.hmdb}) {
    for (const auto surrogate_kind :
         {models::ModelKind::kC3D, models::ModelKind::kResNet18}) {
      TableWriter table(std::string("Table IV — DUO-") +
                        models::model_kind_name(surrogate_kind) + " on " +
                        spec.name);
      table.set_header({"Victim loss", "AP@m (%)", "Spa", "PScore"});

      std::uint64_t seed = 10100;
      for (const auto loss_kind :
           {nn::VictimLossKind::kArcFace, nn::VictimLossKind::kLifted,
            nn::VictimLossKind::kAngular}) {
        bench::VictimWorld world = bench::make_victim(
            spec, models::ModelKind::kI3D, loss_kind, params, ++seed);
        bench::SurrogateWorld sw = bench::make_surrogate(
            world, surrogate_kind, bench::kDefaultSurrogateTriplets,
            params.feature_dim, params, seed * 17);
        const auto pairs = attack::sample_attack_pairs(world.dataset.train,
                                                       params.pairs, seed * 23);

        attack::DuoAttack duo(*sw.model,
                              bench::make_duo_config(params, spec.geometry));
        const auto eval =
            attack::evaluate_attack(duo, *world.system, pairs, params.m);
        table.add_row({std::string(nn::victim_loss_name(loss_kind)),
                       eval.mean_ap_m_after_pct,
                       static_cast<long long>(eval.mean_spa),
                       eval.mean_pscore});
      }
      bench::emit(table, std::string("table4_") + spec.name + "_" +
                             models::model_kind_name(surrogate_kind) + ".csv");
    }
  }

  bench::print_paper_note(
      "Table IV: UCF101/DUO-C3D — ArcFace 56.40 (Spa 2,800) vs Lifted 67.87 "
      "(Spa 1,620) vs Angular 63.88: ArcFace is the most robust victim loss.");
  return 0;
}
