// Table V: DUO performance as the pixel budget k sweeps {20K, 30K, 40K,
// 50K} (paper scale; proportionally mapped onto the miniature geometry).
//
// Shape to reproduce: AP@m grows with k and saturates near 40K; Spa grows
// with k (more selected pixels survive quantization).

#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table V — k sweep, n = 4 (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  const std::int64_t paper_ks[] = {20000, 30000, 40000, 50000};

  for (const auto& spec : {params.ucf, params.hmdb}) {
    bench::VictimWorld world = bench::make_victim(
        spec, models::ModelKind::kI3D, nn::VictimLossKind::kArcFace, params,
        11100);
    const auto pairs =
        attack::sample_attack_pairs(world.dataset.train, params.pairs, 11200);

    for (const auto surrogate_kind :
         {models::ModelKind::kC3D, models::ModelKind::kResNet18}) {
      bench::SurrogateWorld sw = bench::make_surrogate(
          world, surrogate_kind, bench::kDefaultSurrogateTriplets,
          params.feature_dim, params,
          11300 + static_cast<std::uint64_t>(surrogate_kind));

      TableWriter table(std::string("Table V — DUO-") +
                        models::model_kind_name(surrogate_kind) + " on " +
                        spec.name);
      table.set_header({"paper k", "our k", "AP@m (%)", "Spa", "PScore"});
      for (const auto paper_k : paper_ks) {
        attack::DuoConfig cfg = bench::make_duo_config(params, spec.geometry);
        cfg.transfer.k = params.scale_k(paper_k, spec.geometry);
        attack::DuoAttack duo(*sw.model, cfg);
        const auto eval =
            attack::evaluate_attack(duo, *world.system, pairs, params.m);
        table.add_row({static_cast<long long>(paper_k),
                       static_cast<long long>(cfg.transfer.k),
                       eval.mean_ap_m_after_pct,
                       static_cast<long long>(eval.mean_spa),
                       eval.mean_pscore});
      }
      bench::emit(table, std::string("table5_") + spec.name + "_" +
                             models::model_kind_name(surrogate_kind) + ".csv");
    }
  }

  bench::print_paper_note(
      "Table V: DUO-C3D on UCF101 — AP@m 52.81→56.40→56.93 as k goes "
      "20K→40K→50K (saturating), Spa 2,508→2,844.");
  return 0;
}
