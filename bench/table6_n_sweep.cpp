// Table VI: DUO performance as the frame budget n sweeps {2, 3, 4, 5}
// (absolute frame counts, as in the paper) at the default k.
//
// Shape to reproduce: AP@m improves up to n ≈ 4 then flattens; Spa grows
// roughly with n (more frames carry perturbation).

#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table VI — n sweep, k = 40K-equivalent (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  for (const auto& spec : {params.ucf, params.hmdb}) {
    bench::VictimWorld world = bench::make_victim(
        spec, models::ModelKind::kI3D, nn::VictimLossKind::kArcFace, params,
        12100);
    const auto pairs =
        attack::sample_attack_pairs(world.dataset.train, params.pairs, 12200);

    for (const auto surrogate_kind :
         {models::ModelKind::kC3D, models::ModelKind::kResNet18}) {
      bench::SurrogateWorld sw = bench::make_surrogate(
          world, surrogate_kind, bench::kDefaultSurrogateTriplets,
          params.feature_dim, params,
          12300 + static_cast<std::uint64_t>(surrogate_kind));

      TableWriter table(std::string("Table VI — DUO-") +
                        models::model_kind_name(surrogate_kind) + " on " +
                        spec.name);
      table.set_header({"n", "AP@m (%)", "Spa", "PScore"});
      for (const std::int64_t n : {2, 3, 4, 5}) {
        attack::DuoConfig cfg = bench::make_duo_config(params, spec.geometry);
        cfg.transfer.n = std::min<std::int64_t>(n, spec.geometry.frames);
        attack::DuoAttack duo(*sw.model, cfg);
        const auto eval =
            attack::evaluate_attack(duo, *world.system, pairs, params.m);
        table.add_row({static_cast<long long>(n), eval.mean_ap_m_after_pct,
                       static_cast<long long>(eval.mean_spa),
                       eval.mean_pscore});
      }
      bench::emit(table, std::string("table6_") + spec.name + "_" +
                             models::model_kind_name(surrogate_kind) + ".csv");
    }
  }

  bench::print_paper_note(
      "Table VI: DUO-C3D on UCF101 — AP@m 53.35/54.18/56.40/56.45 for "
      "n = 2/3/4/5 (saturates at 4); Spa 1,832→2,955 grows with n.");
  return 0;
}
