// Table VII: DUO performance as the per-pixel budget τ sweeps
// {15, 30, 40, 50}.
//
// Shapes to reproduce: AP@m grows with τ (larger steps steer features
// further); Spa moves little (τ changes magnitudes, not the number of
// selected pixels); PScore grows roughly linearly in τ.

#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table VII — tau sweep (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  for (const auto& spec : {params.ucf, params.hmdb}) {
    bench::VictimWorld world = bench::make_victim(
        spec, models::ModelKind::kI3D, nn::VictimLossKind::kArcFace, params,
        14100);
    const auto pairs =
        attack::sample_attack_pairs(world.dataset.train, params.pairs, 14200);

    for (const auto surrogate_kind :
         {models::ModelKind::kC3D, models::ModelKind::kResNet18}) {
      bench::SurrogateWorld sw = bench::make_surrogate(
          world, surrogate_kind, bench::kDefaultSurrogateTriplets,
          params.feature_dim, params,
          14300 + static_cast<std::uint64_t>(surrogate_kind));

      TableWriter table(std::string("Table VII — DUO-") +
                        models::model_kind_name(surrogate_kind) + " on " +
                        spec.name);
      table.set_header({"tau", "AP@m (%)", "Spa", "PScore"});
      for (const float tau : {15.0f, 30.0f, 40.0f, 50.0f}) {
        attack::DuoConfig cfg = bench::make_duo_config(params, spec.geometry);
        cfg.transfer.tau = tau;
        cfg.query.tau = tau;
        attack::DuoAttack duo(*sw.model, cfg);
        const auto eval =
            attack::evaluate_attack(duo, *world.system, pairs, params.m);
        table.add_row({static_cast<long long>(tau), eval.mean_ap_m_after_pct,
                       static_cast<long long>(eval.mean_spa),
                       eval.mean_pscore});
      }
      bench::emit(table, std::string("table7_") + spec.name + "_" +
                             models::model_kind_name(surrogate_kind) + ".csv");
    }
  }

  bench::print_paper_note(
      "Table VII: DUO-C3D on UCF101 — AP@m 51.62→57.88 as τ 15→50; Spa "
      "roughly flat (2,249→2,557); PScore 0.06→0.20 grows with τ.");
  return 0;
}
