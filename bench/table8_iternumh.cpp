// Table VIII: DUO performance as the outer loop count iter_numH sweeps
// {1, 2, 3, 4}.
//
// Shapes to reproduce: AP@m improves with iter_numH (and saturates ~3);
// Spa and PScore grow with iter_numH — each extra round adds perturbation.

#include <iostream>

#include "bench_common.hpp"

using namespace duo;

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table VIII — iter_numH sweep (scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  for (const auto& spec : {params.ucf, params.hmdb}) {
    bench::VictimWorld world = bench::make_victim(
        spec, models::ModelKind::kI3D, nn::VictimLossKind::kArcFace, params,
        15100);
    const auto pairs =
        attack::sample_attack_pairs(world.dataset.train, params.pairs, 15200);

    for (const auto surrogate_kind :
         {models::ModelKind::kC3D, models::ModelKind::kResNet18}) {
      bench::SurrogateWorld sw = bench::make_surrogate(
          world, surrogate_kind, bench::kDefaultSurrogateTriplets,
          params.feature_dim, params,
          15300 + static_cast<std::uint64_t>(surrogate_kind));

      TableWriter table(std::string("Table VIII — DUO-") +
                        models::model_kind_name(surrogate_kind) + " on " +
                        spec.name);
      table.set_header(
          {"iter_numH", "AP@m (%)", "Spa", "PScore", "queries"});
      for (const int h : {1, 2, 3, 4}) {
        attack::DuoConfig cfg = bench::make_duo_config(params, spec.geometry);
        cfg.iter_numH = h;
        attack::DuoAttack duo(*sw.model, cfg);
        const auto eval =
            attack::evaluate_attack(duo, *world.system, pairs, params.m);
        table.add_row({static_cast<long long>(h), eval.mean_ap_m_after_pct,
                       static_cast<long long>(eval.mean_spa),
                       eval.mean_pscore,
                       static_cast<long long>(eval.mean_queries)});
      }
      bench::emit(table, std::string("table8_") + spec.name + "_" +
                             models::model_kind_name(surrogate_kind) + ".csv");
    }
  }

  bench::print_paper_note(
      "Table VIII: DUO-C3D on UCF101 — AP@m 53.04→56.94 as iter_numH 1→3 "
      "(then flat); Spa 1,712→3,007 and PScore 0.08→0.15 keep growing.");
  return 0;
}
