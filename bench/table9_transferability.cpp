// Table IX: transferability of SparseTransfer-only AEs (no SparseQuery
// fine-tuning) under ℓ2 and ℓ∞ constraints, evaluated on all four target
// models, compared against TIMI.
//
// Shapes to reproduce: pure-transfer DUO AEs keep Spa ~100× below TIMI at
// comparable-or-better AP@m on SlowFast; AP@m is lower than full DUO
// (SparseQuery's fine-tuning accounts for the gap to Table II).

#include <iostream>

#include "bench_common.hpp"
#include "attack/sparse_transfer.hpp"
#include "metrics/metrics.hpp"

using namespace duo;

namespace {

// Evaluate transfer-only AEs on a victim: generate φ per pair on the
// surrogate and measure AP@m / Spa / PScore against the victim's lists.
struct TransferEval {
  double ap_m = 0.0;
  double spa = 0.0;
  double pscore = 0.0;
};

TransferEval evaluate_transfer(models::FeatureExtractor& surrogate,
                               attack::NormKind norm,
                               retrieval::RetrievalSystem& victim,
                               const std::vector<attack::AttackPair>& pairs,
                               const bench::BenchParams& params,
                               const video::VideoGeometry& geometry) {
  TransferEval out;
  for (const auto& pair : pairs) {
    attack::SparseTransferConfig cfg;
    cfg.k = params.default_k(geometry);
    cfg.n = params.default_n();
    cfg.tau = params.tau;
    cfg.norm = norm;
    cfg.outer_iterations = params.scale == bench::Scale::kSmoke ? 2 : 4;
    cfg.theta_steps = params.scale == bench::Scale::kSmoke ? 4 : 10;
    const auto result =
        attack::sparse_transfer(pair.v, pair.v_t, surrogate, cfg);
    const video::Video adv = result.perturbation.apply_to(pair.v);
    const Tensor phi = adv.data() - pair.v.data();

    const auto list_adv = victim.retrieve(adv, params.m);
    const auto list_vt = victim.retrieve(pair.v_t, params.m);
    out.ap_m += metrics::ap_at_m(list_adv, list_vt) * 100.0;
    out.spa += static_cast<double>(metrics::sparsity(phi));
    out.pscore += metrics::pscore(phi);
  }
  const double n = static_cast<double>(pairs.size());
  out.ap_m /= n;
  out.spa /= n;
  out.pscore /= n;
  return out;
}

}  // namespace

int main() {
  const bench::BenchParams params = bench::default_params();
  std::cout << "Table IX — transferability (UCF101, scale: "
            << bench::scale_name(params.scale) << ")\n\n";

  const auto& spec = params.ucf;

  // One victim per target model, all sharing the dataset; the surrogates are
  // harvested from the TPN victim (the attacker steals one service, then
  // transfers everywhere).
  std::vector<std::unique_ptr<bench::VictimWorld>> victims;
  for (const auto kind : models::victim_model_kinds()) {
    victims.push_back(std::make_unique<bench::VictimWorld>(bench::make_victim(
        spec, kind, nn::VictimLossKind::kArcFace, params,
        16100 + static_cast<std::uint64_t>(kind))));
  }
  bench::VictimWorld& harvest_world = *victims.front();
  bench::SurrogateWorld c3d = bench::make_surrogate(
      harvest_world, models::ModelKind::kC3D,
      bench::kDefaultSurrogateTriplets, params.feature_dim, params,
      16200);
  bench::SurrogateWorld res18 = bench::make_surrogate(
      harvest_world, models::ModelKind::kResNet18,
      bench::kDefaultSurrogateTriplets, params.feature_dim, params,
      16300);

  const auto pairs = attack::sample_attack_pairs(
      harvest_world.dataset.train, params.pairs, 16400);

  TableWriter table("Table IX — SparseTransfer-only AEs across targets (" +
                    spec.name + ")");
  std::vector<std::string> header{"Attack"};
  for (const auto kind : models::victim_model_kinds()) {
    const std::string name = models::model_kind_name(kind);
    header.push_back(name + " AP@m");
    header.push_back(name + " Spa");
  }
  table.set_header(header);

  struct RowSpec {
    std::string name;
    models::FeatureExtractor* surrogate;
    attack::NormKind norm;
    bool timi;
  };
  std::vector<RowSpec> rows{
      {"TIMI-C3D (n=16)", c3d.model.get(), attack::NormKind::kLinf, true},
      {"TIMI-Res (n=16)", res18.model.get(), attack::NormKind::kLinf, true},
      {"DUO-C3D (l2)", c3d.model.get(), attack::NormKind::kL2, false},
      {"DUO-Res18 (l2)", res18.model.get(), attack::NormKind::kL2, false},
      {"DUO-C3D (linf)", c3d.model.get(), attack::NormKind::kLinf, false},
      {"DUO-Res18 (linf)", res18.model.get(), attack::NormKind::kLinf, false},
  };

  for (const auto& rs : rows) {
    std::vector<TableWriter::Cell> row;
    row.emplace_back(rs.name);
    for (auto& world : victims) {
      if (rs.timi) {
        baselines::TimiConfig tcfg;
        tcfg.iterations = params.scale == bench::Scale::kSmoke ? 3 : 10;
        baselines::TimiAttack timi(*rs.surrogate, tcfg);
        double ap = 0.0, spa = 0.0;
        for (const auto& pair : pairs) {
          retrieval::BlackBoxHandle handle(*world->system);
          const auto outcome = timi.run(pair.v, pair.v_t, handle);
          const auto list_adv =
              world->system->retrieve(outcome.adversarial, params.m);
          const auto list_vt = world->system->retrieve(pair.v_t, params.m);
          ap += metrics::ap_at_m(list_adv, list_vt) * 100.0;
          spa += static_cast<double>(metrics::sparsity(outcome.perturbation));
        }
        row.emplace_back(ap / static_cast<double>(pairs.size()));
        row.emplace_back(
            static_cast<long long>(spa / static_cast<double>(pairs.size())));
      } else {
        const TransferEval eval = evaluate_transfer(
            *rs.surrogate, rs.norm, *world->system, pairs, params,
            spec.geometry);
        row.emplace_back(eval.ap_m);
        row.emplace_back(static_cast<long long>(eval.spa));
      }
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, "table9_UCF101.csv");

  bench::print_paper_note(
      "Table IX: DUO-C3D(l2) beats TIMI-C3D on SlowFast (44.94 vs 40.16) at "
      "Spa 2,135 vs 588,726; transfer-only AP@m sits below full-DUO Table II "
      "numbers (SparseQuery closes the gap).");
  return 0;
}
