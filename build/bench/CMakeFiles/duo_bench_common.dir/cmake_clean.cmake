file(REMOVE_RECURSE
  "CMakeFiles/duo_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/duo_bench_common.dir/bench_common.cpp.o.d"
  "libduo_bench_common.a"
  "libduo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
