file(REMOVE_RECURSE
  "libduo_bench_common.a"
)
