# Empty dependencies file for duo_bench_common.
# This may be replaced when dependencies are built.
