file(REMOVE_RECURSE
  "CMakeFiles/fig3_victim_map.dir/fig3_victim_map.cpp.o"
  "CMakeFiles/fig3_victim_map.dir/fig3_victim_map.cpp.o.d"
  "fig3_victim_map"
  "fig3_victim_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_victim_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
