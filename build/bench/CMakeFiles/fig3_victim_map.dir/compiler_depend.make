# Empty compiler generated dependencies file for fig3_victim_map.
# This may be replaced when dependencies are built.
