file(REMOVE_RECURSE
  "CMakeFiles/fig4_surrogate_map.dir/fig4_surrogate_map.cpp.o"
  "CMakeFiles/fig4_surrogate_map.dir/fig4_surrogate_map.cpp.o.d"
  "fig4_surrogate_map"
  "fig4_surrogate_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_surrogate_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
