# Empty compiler generated dependencies file for fig4_surrogate_map.
# This may be replaced when dependencies are built.
