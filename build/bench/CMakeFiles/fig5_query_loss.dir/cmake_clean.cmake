file(REMOVE_RECURSE
  "CMakeFiles/fig5_query_loss.dir/fig5_query_loss.cpp.o"
  "CMakeFiles/fig5_query_loss.dir/fig5_query_loss.cpp.o.d"
  "fig5_query_loss"
  "fig5_query_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_query_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
