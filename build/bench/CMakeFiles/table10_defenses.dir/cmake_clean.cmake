file(REMOVE_RECURSE
  "CMakeFiles/table10_defenses.dir/table10_defenses.cpp.o"
  "CMakeFiles/table10_defenses.dir/table10_defenses.cpp.o.d"
  "table10_defenses"
  "table10_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
