# Empty compiler generated dependencies file for table10_defenses.
# This may be replaced when dependencies are built.
