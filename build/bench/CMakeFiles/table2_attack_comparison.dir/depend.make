# Empty dependencies file for table2_attack_comparison.
# This may be replaced when dependencies are built.
