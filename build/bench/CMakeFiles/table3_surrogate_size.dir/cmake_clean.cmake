file(REMOVE_RECURSE
  "CMakeFiles/table3_surrogate_size.dir/table3_surrogate_size.cpp.o"
  "CMakeFiles/table3_surrogate_size.dir/table3_surrogate_size.cpp.o.d"
  "table3_surrogate_size"
  "table3_surrogate_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_surrogate_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
