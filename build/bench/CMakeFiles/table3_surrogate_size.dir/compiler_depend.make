# Empty compiler generated dependencies file for table3_surrogate_size.
# This may be replaced when dependencies are built.
