file(REMOVE_RECURSE
  "CMakeFiles/table4_loss_functions.dir/table4_loss_functions.cpp.o"
  "CMakeFiles/table4_loss_functions.dir/table4_loss_functions.cpp.o.d"
  "table4_loss_functions"
  "table4_loss_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_loss_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
