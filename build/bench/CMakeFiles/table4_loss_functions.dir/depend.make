# Empty dependencies file for table4_loss_functions.
# This may be replaced when dependencies are built.
