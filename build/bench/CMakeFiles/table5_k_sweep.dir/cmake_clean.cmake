file(REMOVE_RECURSE
  "CMakeFiles/table5_k_sweep.dir/table5_k_sweep.cpp.o"
  "CMakeFiles/table5_k_sweep.dir/table5_k_sweep.cpp.o.d"
  "table5_k_sweep"
  "table5_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
