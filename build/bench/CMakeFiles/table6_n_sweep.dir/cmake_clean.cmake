file(REMOVE_RECURSE
  "CMakeFiles/table6_n_sweep.dir/table6_n_sweep.cpp.o"
  "CMakeFiles/table6_n_sweep.dir/table6_n_sweep.cpp.o.d"
  "table6_n_sweep"
  "table6_n_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_n_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
