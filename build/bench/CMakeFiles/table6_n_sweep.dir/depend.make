# Empty dependencies file for table6_n_sweep.
# This may be replaced when dependencies are built.
