file(REMOVE_RECURSE
  "CMakeFiles/table7_tau_sweep.dir/table7_tau_sweep.cpp.o"
  "CMakeFiles/table7_tau_sweep.dir/table7_tau_sweep.cpp.o.d"
  "table7_tau_sweep"
  "table7_tau_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_tau_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
