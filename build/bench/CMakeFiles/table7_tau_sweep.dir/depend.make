# Empty dependencies file for table7_tau_sweep.
# This may be replaced when dependencies are built.
