file(REMOVE_RECURSE
  "CMakeFiles/table8_iternumh.dir/table8_iternumh.cpp.o"
  "CMakeFiles/table8_iternumh.dir/table8_iternumh.cpp.o.d"
  "table8_iternumh"
  "table8_iternumh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_iternumh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
