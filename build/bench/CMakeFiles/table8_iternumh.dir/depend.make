# Empty dependencies file for table8_iternumh.
# This may be replaced when dependencies are built.
