file(REMOVE_RECURSE
  "CMakeFiles/table9_transferability.dir/table9_transferability.cpp.o"
  "CMakeFiles/table9_transferability.dir/table9_transferability.cpp.o.d"
  "table9_transferability"
  "table9_transferability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_transferability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
