# Empty dependencies file for table9_transferability.
# This may be replaced when dependencies are built.
