file(REMOVE_RECURSE
  "CMakeFiles/copyright_evasion.dir/copyright_evasion.cpp.o"
  "CMakeFiles/copyright_evasion.dir/copyright_evasion.cpp.o.d"
  "copyright_evasion"
  "copyright_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copyright_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
