# Empty dependencies file for copyright_evasion.
# This may be replaced when dependencies are built.
