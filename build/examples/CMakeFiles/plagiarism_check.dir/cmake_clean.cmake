file(REMOVE_RECURSE
  "CMakeFiles/plagiarism_check.dir/plagiarism_check.cpp.o"
  "CMakeFiles/plagiarism_check.dir/plagiarism_check.cpp.o.d"
  "plagiarism_check"
  "plagiarism_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plagiarism_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
