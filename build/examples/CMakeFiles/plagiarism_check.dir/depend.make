# Empty dependencies file for plagiarism_check.
# This may be replaced when dependencies are built.
