
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/duo.cpp" "src/attack/CMakeFiles/duo_attack.dir/duo.cpp.o" "gcc" "src/attack/CMakeFiles/duo_attack.dir/duo.cpp.o.d"
  "/root/repo/src/attack/evaluation.cpp" "src/attack/CMakeFiles/duo_attack.dir/evaluation.cpp.o" "gcc" "src/attack/CMakeFiles/duo_attack.dir/evaluation.cpp.o.d"
  "/root/repo/src/attack/lp_box_admm.cpp" "src/attack/CMakeFiles/duo_attack.dir/lp_box_admm.cpp.o" "gcc" "src/attack/CMakeFiles/duo_attack.dir/lp_box_admm.cpp.o.d"
  "/root/repo/src/attack/objective.cpp" "src/attack/CMakeFiles/duo_attack.dir/objective.cpp.o" "gcc" "src/attack/CMakeFiles/duo_attack.dir/objective.cpp.o.d"
  "/root/repo/src/attack/perturbation.cpp" "src/attack/CMakeFiles/duo_attack.dir/perturbation.cpp.o" "gcc" "src/attack/CMakeFiles/duo_attack.dir/perturbation.cpp.o.d"
  "/root/repo/src/attack/sparse_query.cpp" "src/attack/CMakeFiles/duo_attack.dir/sparse_query.cpp.o" "gcc" "src/attack/CMakeFiles/duo_attack.dir/sparse_query.cpp.o.d"
  "/root/repo/src/attack/sparse_transfer.cpp" "src/attack/CMakeFiles/duo_attack.dir/sparse_transfer.cpp.o" "gcc" "src/attack/CMakeFiles/duo_attack.dir/sparse_transfer.cpp.o.d"
  "/root/repo/src/attack/surrogate.cpp" "src/attack/CMakeFiles/duo_attack.dir/surrogate.cpp.o" "gcc" "src/attack/CMakeFiles/duo_attack.dir/surrogate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/retrieval/CMakeFiles/duo_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/duo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/duo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/duo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/duo_video.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/duo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/duo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
