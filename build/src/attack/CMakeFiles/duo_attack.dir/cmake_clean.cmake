file(REMOVE_RECURSE
  "CMakeFiles/duo_attack.dir/duo.cpp.o"
  "CMakeFiles/duo_attack.dir/duo.cpp.o.d"
  "CMakeFiles/duo_attack.dir/evaluation.cpp.o"
  "CMakeFiles/duo_attack.dir/evaluation.cpp.o.d"
  "CMakeFiles/duo_attack.dir/lp_box_admm.cpp.o"
  "CMakeFiles/duo_attack.dir/lp_box_admm.cpp.o.d"
  "CMakeFiles/duo_attack.dir/objective.cpp.o"
  "CMakeFiles/duo_attack.dir/objective.cpp.o.d"
  "CMakeFiles/duo_attack.dir/perturbation.cpp.o"
  "CMakeFiles/duo_attack.dir/perturbation.cpp.o.d"
  "CMakeFiles/duo_attack.dir/sparse_query.cpp.o"
  "CMakeFiles/duo_attack.dir/sparse_query.cpp.o.d"
  "CMakeFiles/duo_attack.dir/sparse_transfer.cpp.o"
  "CMakeFiles/duo_attack.dir/sparse_transfer.cpp.o.d"
  "CMakeFiles/duo_attack.dir/surrogate.cpp.o"
  "CMakeFiles/duo_attack.dir/surrogate.cpp.o.d"
  "libduo_attack.a"
  "libduo_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
