file(REMOVE_RECURSE
  "libduo_attack.a"
)
