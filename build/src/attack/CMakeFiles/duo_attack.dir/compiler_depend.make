# Empty compiler generated dependencies file for duo_attack.
# This may be replaced when dependencies are built.
