file(REMOVE_RECURSE
  "CMakeFiles/duo_baselines.dir/heu.cpp.o"
  "CMakeFiles/duo_baselines.dir/heu.cpp.o.d"
  "CMakeFiles/duo_baselines.dir/timi.cpp.o"
  "CMakeFiles/duo_baselines.dir/timi.cpp.o.d"
  "CMakeFiles/duo_baselines.dir/vanilla.cpp.o"
  "CMakeFiles/duo_baselines.dir/vanilla.cpp.o.d"
  "libduo_baselines.a"
  "libduo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
