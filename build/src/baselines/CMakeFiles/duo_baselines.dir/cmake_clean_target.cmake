file(REMOVE_RECURSE
  "libduo_baselines.a"
)
