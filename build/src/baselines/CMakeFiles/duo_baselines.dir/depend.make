# Empty dependencies file for duo_baselines.
# This may be replaced when dependencies are built.
