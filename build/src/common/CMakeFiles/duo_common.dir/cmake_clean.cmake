file(REMOVE_RECURSE
  "CMakeFiles/duo_common.dir/logging.cpp.o"
  "CMakeFiles/duo_common.dir/logging.cpp.o.d"
  "CMakeFiles/duo_common.dir/table.cpp.o"
  "CMakeFiles/duo_common.dir/table.cpp.o.d"
  "CMakeFiles/duo_common.dir/thread_pool.cpp.o"
  "CMakeFiles/duo_common.dir/thread_pool.cpp.o.d"
  "libduo_common.a"
  "libduo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
