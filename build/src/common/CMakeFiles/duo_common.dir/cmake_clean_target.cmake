file(REMOVE_RECURSE
  "libduo_common.a"
)
