# Empty compiler generated dependencies file for duo_common.
# This may be replaced when dependencies are built.
