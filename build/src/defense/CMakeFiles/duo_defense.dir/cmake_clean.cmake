file(REMOVE_RECURSE
  "CMakeFiles/duo_defense.dir/defense.cpp.o"
  "CMakeFiles/duo_defense.dir/defense.cpp.o.d"
  "libduo_defense.a"
  "libduo_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
