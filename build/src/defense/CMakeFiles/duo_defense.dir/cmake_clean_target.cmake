file(REMOVE_RECURSE
  "libduo_defense.a"
)
