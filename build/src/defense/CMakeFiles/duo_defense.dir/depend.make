# Empty dependencies file for duo_defense.
# This may be replaced when dependencies are built.
