file(REMOVE_RECURSE
  "CMakeFiles/duo_metrics.dir/metrics.cpp.o"
  "CMakeFiles/duo_metrics.dir/metrics.cpp.o.d"
  "libduo_metrics.a"
  "libduo_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
