file(REMOVE_RECURSE
  "libduo_metrics.a"
)
