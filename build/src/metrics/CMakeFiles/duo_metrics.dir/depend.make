# Empty dependencies file for duo_metrics.
# This may be replaced when dependencies are built.
