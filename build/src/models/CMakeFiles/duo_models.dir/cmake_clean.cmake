file(REMOVE_RECURSE
  "CMakeFiles/duo_models.dir/architectures.cpp.o"
  "CMakeFiles/duo_models.dir/architectures.cpp.o.d"
  "CMakeFiles/duo_models.dir/serialization.cpp.o"
  "CMakeFiles/duo_models.dir/serialization.cpp.o.d"
  "libduo_models.a"
  "libduo_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
