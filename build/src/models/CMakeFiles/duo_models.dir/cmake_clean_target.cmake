file(REMOVE_RECURSE
  "libduo_models.a"
)
