# Empty dependencies file for duo_models.
# This may be replaced when dependencies are built.
