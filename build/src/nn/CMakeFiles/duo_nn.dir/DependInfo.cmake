
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/duo_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/compose.cpp" "src/nn/CMakeFiles/duo_nn.dir/compose.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/compose.cpp.o.d"
  "/root/repo/src/nn/conv3d.cpp" "src/nn/CMakeFiles/duo_nn.dir/conv3d.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/conv3d.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/duo_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/losses.cpp" "src/nn/CMakeFiles/duo_nn.dir/losses.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/losses.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/duo_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/duo_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/duo_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool3d.cpp" "src/nn/CMakeFiles/duo_nn.dir/pool3d.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/pool3d.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/duo_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/duo_nn.dir/residual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/duo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/duo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
