file(REMOVE_RECURSE
  "CMakeFiles/duo_nn.dir/activations.cpp.o"
  "CMakeFiles/duo_nn.dir/activations.cpp.o.d"
  "CMakeFiles/duo_nn.dir/compose.cpp.o"
  "CMakeFiles/duo_nn.dir/compose.cpp.o.d"
  "CMakeFiles/duo_nn.dir/conv3d.cpp.o"
  "CMakeFiles/duo_nn.dir/conv3d.cpp.o.d"
  "CMakeFiles/duo_nn.dir/linear.cpp.o"
  "CMakeFiles/duo_nn.dir/linear.cpp.o.d"
  "CMakeFiles/duo_nn.dir/losses.cpp.o"
  "CMakeFiles/duo_nn.dir/losses.cpp.o.d"
  "CMakeFiles/duo_nn.dir/lstm.cpp.o"
  "CMakeFiles/duo_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/duo_nn.dir/norm.cpp.o"
  "CMakeFiles/duo_nn.dir/norm.cpp.o.d"
  "CMakeFiles/duo_nn.dir/optimizer.cpp.o"
  "CMakeFiles/duo_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/duo_nn.dir/pool3d.cpp.o"
  "CMakeFiles/duo_nn.dir/pool3d.cpp.o.d"
  "CMakeFiles/duo_nn.dir/residual.cpp.o"
  "CMakeFiles/duo_nn.dir/residual.cpp.o.d"
  "libduo_nn.a"
  "libduo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
