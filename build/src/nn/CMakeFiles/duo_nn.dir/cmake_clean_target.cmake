file(REMOVE_RECURSE
  "libduo_nn.a"
)
