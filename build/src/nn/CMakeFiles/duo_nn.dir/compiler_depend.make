# Empty compiler generated dependencies file for duo_nn.
# This may be replaced when dependencies are built.
