
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retrieval/ensemble.cpp" "src/retrieval/CMakeFiles/duo_retrieval.dir/ensemble.cpp.o" "gcc" "src/retrieval/CMakeFiles/duo_retrieval.dir/ensemble.cpp.o.d"
  "/root/repo/src/retrieval/index.cpp" "src/retrieval/CMakeFiles/duo_retrieval.dir/index.cpp.o" "gcc" "src/retrieval/CMakeFiles/duo_retrieval.dir/index.cpp.o.d"
  "/root/repo/src/retrieval/system.cpp" "src/retrieval/CMakeFiles/duo_retrieval.dir/system.cpp.o" "gcc" "src/retrieval/CMakeFiles/duo_retrieval.dir/system.cpp.o.d"
  "/root/repo/src/retrieval/trainer.cpp" "src/retrieval/CMakeFiles/duo_retrieval.dir/trainer.cpp.o" "gcc" "src/retrieval/CMakeFiles/duo_retrieval.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/duo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/duo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/duo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/duo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/duo_video.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/duo_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
