file(REMOVE_RECURSE
  "CMakeFiles/duo_retrieval.dir/ensemble.cpp.o"
  "CMakeFiles/duo_retrieval.dir/ensemble.cpp.o.d"
  "CMakeFiles/duo_retrieval.dir/index.cpp.o"
  "CMakeFiles/duo_retrieval.dir/index.cpp.o.d"
  "CMakeFiles/duo_retrieval.dir/system.cpp.o"
  "CMakeFiles/duo_retrieval.dir/system.cpp.o.d"
  "CMakeFiles/duo_retrieval.dir/trainer.cpp.o"
  "CMakeFiles/duo_retrieval.dir/trainer.cpp.o.d"
  "libduo_retrieval.a"
  "libduo_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
