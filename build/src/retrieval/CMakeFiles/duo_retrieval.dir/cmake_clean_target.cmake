file(REMOVE_RECURSE
  "libduo_retrieval.a"
)
