# Empty dependencies file for duo_retrieval.
# This may be replaced when dependencies are built.
