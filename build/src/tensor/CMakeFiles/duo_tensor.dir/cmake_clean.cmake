file(REMOVE_RECURSE
  "CMakeFiles/duo_tensor.dir/tensor.cpp.o"
  "CMakeFiles/duo_tensor.dir/tensor.cpp.o.d"
  "libduo_tensor.a"
  "libduo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
