file(REMOVE_RECURSE
  "libduo_tensor.a"
)
