# Empty dependencies file for duo_tensor.
# This may be replaced when dependencies are built.
