
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/codec.cpp" "src/video/CMakeFiles/duo_video.dir/codec.cpp.o" "gcc" "src/video/CMakeFiles/duo_video.dir/codec.cpp.o.d"
  "/root/repo/src/video/frame_sampler.cpp" "src/video/CMakeFiles/duo_video.dir/frame_sampler.cpp.o" "gcc" "src/video/CMakeFiles/duo_video.dir/frame_sampler.cpp.o.d"
  "/root/repo/src/video/synthetic.cpp" "src/video/CMakeFiles/duo_video.dir/synthetic.cpp.o" "gcc" "src/video/CMakeFiles/duo_video.dir/synthetic.cpp.o.d"
  "/root/repo/src/video/video.cpp" "src/video/CMakeFiles/duo_video.dir/video.cpp.o" "gcc" "src/video/CMakeFiles/duo_video.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/duo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/duo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
