file(REMOVE_RECURSE
  "CMakeFiles/duo_video.dir/codec.cpp.o"
  "CMakeFiles/duo_video.dir/codec.cpp.o.d"
  "CMakeFiles/duo_video.dir/frame_sampler.cpp.o"
  "CMakeFiles/duo_video.dir/frame_sampler.cpp.o.d"
  "CMakeFiles/duo_video.dir/synthetic.cpp.o"
  "CMakeFiles/duo_video.dir/synthetic.cpp.o.d"
  "CMakeFiles/duo_video.dir/video.cpp.o"
  "CMakeFiles/duo_video.dir/video.cpp.o.d"
  "libduo_video.a"
  "libduo_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duo_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
