file(REMOVE_RECURSE
  "libduo_video.a"
)
