# Empty compiler generated dependencies file for duo_video.
# This may be replaced when dependencies are built.
