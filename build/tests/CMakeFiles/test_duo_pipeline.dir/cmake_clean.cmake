file(REMOVE_RECURSE
  "CMakeFiles/test_duo_pipeline.dir/test_duo_pipeline.cpp.o"
  "CMakeFiles/test_duo_pipeline.dir/test_duo_pipeline.cpp.o.d"
  "test_duo_pipeline"
  "test_duo_pipeline.pdb"
  "test_duo_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_duo_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
