# Empty dependencies file for test_duo_pipeline.
# This may be replaced when dependencies are built.
