file(REMOVE_RECURSE
  "CMakeFiles/test_lp_box_admm.dir/test_lp_box_admm.cpp.o"
  "CMakeFiles/test_lp_box_admm.dir/test_lp_box_admm.cpp.o.d"
  "test_lp_box_admm"
  "test_lp_box_admm.pdb"
  "test_lp_box_admm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_box_admm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
