# Empty dependencies file for test_lp_box_admm.
# This may be replaced when dependencies are built.
