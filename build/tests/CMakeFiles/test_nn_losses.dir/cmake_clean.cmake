file(REMOVE_RECURSE
  "CMakeFiles/test_nn_losses.dir/test_nn_losses.cpp.o"
  "CMakeFiles/test_nn_losses.dir/test_nn_losses.cpp.o.d"
  "test_nn_losses"
  "test_nn_losses.pdb"
  "test_nn_losses[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_losses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
