# Empty compiler generated dependencies file for test_nn_losses.
# This may be replaced when dependencies are built.
