file(REMOVE_RECURSE
  "CMakeFiles/test_nn_optim.dir/test_nn_optim.cpp.o"
  "CMakeFiles/test_nn_optim.dir/test_nn_optim.cpp.o.d"
  "test_nn_optim"
  "test_nn_optim.pdb"
  "test_nn_optim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
