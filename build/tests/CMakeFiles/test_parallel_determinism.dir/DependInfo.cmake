
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel_determinism.cpp" "tests/CMakeFiles/test_parallel_determinism.dir/test_parallel_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_parallel_determinism.dir/test_parallel_determinism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/duo_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/duo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/duo_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/retrieval/CMakeFiles/duo_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/duo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/duo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/duo_video.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/duo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/duo_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/duo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
