file(REMOVE_RECURSE
  "CMakeFiles/test_perturbation.dir/test_perturbation.cpp.o"
  "CMakeFiles/test_perturbation.dir/test_perturbation.cpp.o.d"
  "test_perturbation"
  "test_perturbation.pdb"
  "test_perturbation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
