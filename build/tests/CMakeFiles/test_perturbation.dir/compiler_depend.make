# Empty compiler generated dependencies file for test_perturbation.
# This may be replaced when dependencies are built.
