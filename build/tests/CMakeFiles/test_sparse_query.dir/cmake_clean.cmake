file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_query.dir/test_sparse_query.cpp.o"
  "CMakeFiles/test_sparse_query.dir/test_sparse_query.cpp.o.d"
  "test_sparse_query"
  "test_sparse_query.pdb"
  "test_sparse_query[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
