file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_transfer.dir/test_sparse_transfer.cpp.o"
  "CMakeFiles/test_sparse_transfer.dir/test_sparse_transfer.cpp.o.d"
  "test_sparse_transfer"
  "test_sparse_transfer.pdb"
  "test_sparse_transfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
