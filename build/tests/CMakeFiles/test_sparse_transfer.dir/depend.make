# Empty dependencies file for test_sparse_transfer.
# This may be replaced when dependencies are built.
