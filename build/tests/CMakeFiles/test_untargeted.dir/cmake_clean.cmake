file(REMOVE_RECURSE
  "CMakeFiles/test_untargeted.dir/test_untargeted.cpp.o"
  "CMakeFiles/test_untargeted.dir/test_untargeted.cpp.o.d"
  "test_untargeted"
  "test_untargeted.pdb"
  "test_untargeted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_untargeted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
