# Empty compiler generated dependencies file for test_untargeted.
# This may be replaced when dependencies are built.
