# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_nn_losses[1]_include.cmake")
include("/root/repo/build/tests/test_nn_optim[1]_include.cmake")
include("/root/repo/build/tests/test_lstm[1]_include.cmake")
include("/root/repo/build/tests/test_video[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_retrieval[1]_include.cmake")
include("/root/repo/build/tests/test_perturbation[1]_include.cmake")
include("/root/repo/build/tests/test_lp_box_admm[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_query[1]_include.cmake")
include("/root/repo/build/tests/test_surrogate[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_defense[1]_include.cmake")
include("/root/repo/build/tests/test_duo_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_untargeted[1]_include.cmake")
include("/root/repo/build/tests/test_ensemble[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failure_modes[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
