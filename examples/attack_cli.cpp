// attack_cli — flag-driven attack runner over a synthetic world.
//
//   ./build/examples/attack_cli --attack duo --victim TPN --dataset hmdb \
//       --k 400 --n 3 --tau 30 --queries 120 --pairs 3 --seed 7
//
// Flags (all optional):
//   --attack    duo | duo-untargeted | vanilla | timi | heu-nes | heu-sim
//   --victim    TPN | SlowFast | I3D | Resnet34
//   --surrogate C3D | Resnet18
//   --dataset   ucf | hmdb
//   --loss      arcface | lifted | angular
//   --k --n --tau --queries --pairs --iternumh --m --seed
//   --save-adv  <path-prefix>   write adversarial videos as .duov files

#include <cstdio>
#include <string>

#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "attack/surrogate.hpp"
#include "baselines/heu.hpp"
#include "baselines/timi.hpp"
#include "baselines/vanilla.hpp"
#include "common/argparse.hpp"
#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/codec.hpp"
#include "video/synthetic.hpp"

using namespace duo;

namespace {

models::ModelKind parse_model(const std::string& name) {
  if (name == "TPN") return models::ModelKind::kTPN;
  if (name == "SlowFast") return models::ModelKind::kSlowFast;
  if (name == "I3D") return models::ModelKind::kI3D;
  if (name == "Resnet34") return models::ModelKind::kResNet34;
  if (name == "C3D") return models::ModelKind::kC3D;
  if (name == "Resnet18") return models::ModelKind::kResNet18;
  DUO_CHECK_MSG(false, "unknown model: " + name);
  return models::ModelKind::kC3D;
}

nn::VictimLossKind parse_loss(const std::string& name) {
  if (name == "arcface") return nn::VictimLossKind::kArcFace;
  if (name == "lifted") return nn::VictimLossKind::kLifted;
  if (name == "angular") return nn::VictimLossKind::kAngular;
  DUO_CHECK_MSG(false, "unknown loss: " + name);
  return nn::VictimLossKind::kArcFace;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParse args(argc, argv);
  if (args.has("help")) {
    std::printf("see the header comment of examples/attack_cli.cpp\n");
    return 0;
  }

  const std::string attack_name = args.get("attack", "duo");
  const auto victim_kind = parse_model(args.get("victim", "TPN"));
  const auto surrogate_kind = parse_model(args.get("surrogate", "C3D"));
  const auto loss_kind = parse_loss(args.get("loss", "arcface"));
  const std::int64_t k = args.get_int("k", 400);
  const std::int64_t n = args.get_int("n", 3);
  const float tau = static_cast<float>(args.get_double("tau", 30.0));
  const int queries = static_cast<int>(args.get_int("queries", 120));
  const std::size_t pairs_n = static_cast<std::size_t>(args.get_int("pairs", 2));
  const int iter_numh = static_cast<int>(args.get_int("iternumh", 2));
  const std::size_t m = static_cast<std::size_t>(args.get_int("m", 10));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  auto spec = args.get("dataset", "hmdb") == "ucf"
                  ? video::DatasetSpec::ucf101_like()
                  : video::DatasetSpec::hmdb51_like();
  spec.num_classes = args.get("dataset", "hmdb") == "ucf" ? 10 : 6;
  spec.train_per_class = 8;
  spec.test_per_class = 3;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();

  std::printf("world: %s, %zu train videos, victim %s/%s\n",
              spec.name.c_str(), dataset.train.size(),
              models::model_kind_name(victim_kind),
              nn::victim_loss_name(loss_kind));

  Rng rng(seed);
  auto extractor = models::make_extractor(victim_kind, spec.geometry, 16, rng);
  auto loss = nn::make_victim_loss(loss_kind, 16, spec.num_classes, rng);
  retrieval::TrainerConfig tcfg;
  tcfg.epochs = 6;
  tcfg.seed = seed;
  retrieval::train_extractor(*extractor, *loss, dataset.train, tcfg);
  retrieval::RetrievalSystem victim(std::move(extractor), 4);
  victim.add_all(dataset.train);
  std::printf("victim mAP@%zu: %.2f%%\n", m,
              retrieval::evaluate_map(victim, dataset.test, m) * 100.0);

  // Surrogate (needed by duo / timi).
  attack::VideoStore store(dataset.train);
  auto surrogate =
      models::make_extractor(surrogate_kind, spec.geometry, 16, rng);
  {
    retrieval::BlackBoxHandle handle(victim);
    attack::SurrogateHarvestConfig hcfg;
    hcfg.m = m;
    hcfg.target_triplets = 400;
    const auto harvested = attack::harvest_surrogate_dataset(
        handle, store, {dataset.train[0].id(), dataset.train[9].id()}, hcfg);
    attack::SurrogateTrainConfig scfg;
    scfg.epochs = 12;
    scfg.triplets_per_epoch = 128;
    attack::train_surrogate(*surrogate, harvested, store, scfg);
    std::printf("surrogate %s: %zu videos / %zu triplets / %lld queries\n",
                models::model_kind_name(surrogate_kind),
                harvested.video_ids.size(), harvested.triplets.size(),
                static_cast<long long>(harvested.queries_spent));
  }

  // Build the requested attack.
  std::unique_ptr<attack::Attack> attack;
  if (attack_name == "duo" || attack_name == "duo-untargeted") {
    attack::DuoConfig cfg;
    cfg.transfer.k = k;
    cfg.transfer.n = n;
    cfg.transfer.tau = tau;
    cfg.query.iter_numQ = queries;
    cfg.iter_numH = iter_numh;
    cfg.m = m;
    if (attack_name == "duo-untargeted") {
      cfg.goal = attack::AttackGoal::kUntargeted;
    }
    attack = std::make_unique<attack::DuoAttack>(*surrogate, cfg);
  } else if (attack_name == "vanilla") {
    baselines::VanillaConfig cfg;
    cfg.k = k;
    cfg.n = n;
    cfg.query.iter_numQ = queries;
    cfg.query.tau = tau;
    cfg.query.m = m;
    attack = std::make_unique<baselines::VanillaAttack>(cfg);
  } else if (attack_name == "timi") {
    baselines::TimiConfig cfg;
    cfg.tau = tau;
    attack = std::make_unique<baselines::TimiAttack>(*surrogate, cfg);
  } else if (attack_name == "heu-nes" || attack_name == "heu-sim") {
    baselines::HeuConfig cfg;
    cfg.k = k;
    cfg.n = n;
    cfg.tau = tau;
    cfg.m = m;
    cfg.nes_iterations = std::max(2, queries / 8);
    attack = std::make_unique<baselines::HeuAttack>(
        attack_name == "heu-nes" ? baselines::HeuStrategy::kNatureEstimated
                                 : baselines::HeuStrategy::kRandom,
        cfg);
  } else {
    std::fprintf(stderr, "unknown attack: %s\n", attack_name.c_str());
    return 2;
  }

  const auto pairs = attack::sample_attack_pairs(dataset.train, pairs_n, seed * 3);
  const double wo = attack::evaluate_without_attack(victim, pairs, m);
  const auto eval = attack::evaluate_attack(*attack, victim, pairs, m);
  std::printf("\n%-16s  AP@m %.2f%% → %.2f%%   Spa %.0f   PScore %.4f   "
              "queries %.0f\n",
              attack->name().c_str(), wo, eval.mean_ap_m_after_pct,
              eval.mean_spa, eval.mean_pscore, eval.mean_queries);

  if (args.has("save-adv")) {
    const std::string prefix = args.get("save-adv", "adv");
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      retrieval::BlackBoxHandle handle(victim);
      const auto outcome = attack->run(pairs[i].v, pairs[i].v_t, handle);
      const std::string path = prefix + "_" + std::to_string(i) + ".duov";
      if (video::save_video(outcome.adversarial, path)) {
        std::printf("wrote %s\n", path.c_str());
      }
    }
  }
  return 0;
}
