// Campaign demo: a declarative multi-tenant campaign against one served
// victim.
//
//   1. Build a miniature world and train a small victim retrieval service.
//   2. Author a campaign manifest — two sparse attack sessions and four
//      benign reader streams sharing the victim, with per-client rate
//      limiting, a shared client-side pacer, and 5% injected transient
//      faults — and round-trip it through its text form (the same format a
//      campaign would be committed in next to its results).
//   3. Run the campaign on a virtual clock and print the report: per-session
//      outcomes, the per-client fairness table, Jain's index, and the
//      reconciled billing ledger.
//
// Build & run:  ./build/examples/campaign_demo

#include <cstdio>
#include <iostream>
#include <sstream>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/synthetic.hpp"

using namespace duo;

int main() {
  // --- 1. Miniature world + trained victim ---------------------------------
  auto spec = video::DatasetSpec::ucf101_like();
  spec.num_classes = 5;
  spec.train_per_class = 5;
  spec.test_per_class = 2;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();

  Rng rng(7);
  auto extractor =
      models::make_extractor(models::ModelKind::kTPN, spec.geometry, 16, rng);
  nn::ArcFaceLoss loss(16, spec.num_classes, rng);
  retrieval::TrainerConfig tcfg;
  tcfg.epochs = 3;
  retrieval::train_extractor(*extractor, loss, dataset.train, tcfg);
  retrieval::RetrievalSystem victim(std::move(extractor), /*num_nodes=*/2);
  victim.add_all(dataset.train);

  // --- 2. The campaign manifest --------------------------------------------
  campaign::CampaignManifest manifest;
  manifest.name = "demo";
  manifest.seed = 7;
  manifest.client_rate = 500.0;  // per-client_id token bucket at the server
  manifest.client_burst = 2.0;
  manifest.fault_error_prob = 0.05;  // transient; retries absorb them
  manifest.pacer_rate = 2000.0;      // one shared "API key" on the client side
  manifest.max_attempts = 8;
  for (int i = 0; i < 2; ++i) {
    campaign::SessionSpec s;
    s.client_id = "attacker-" + std::to_string(i);
    s.role = campaign::SessionRole::kSparse;
    s.seed = 30 + static_cast<std::uint64_t>(i);
    s.m = 8;
    s.iterations = 12;
    s.support_k = 60;
    s.support_n = 3;
    s.source_index = i;
    s.target_index = i + 4;
    manifest.sessions.push_back(s);
  }
  for (int i = 0; i < 4; ++i) {
    campaign::SessionSpec s;
    s.client_id = "reader-" + std::to_string(i);
    s.role = campaign::SessionRole::kBenign;
    s.seed = 40 + static_cast<std::uint64_t>(i);
    s.m = 8;
    s.queries = 10;
    s.think_ms = 2.0;
    manifest.sessions.push_back(s);
  }

  // The manifest IS its text form: print it, then parse it back and run the
  // parsed copy — what executes is exactly what would have been committed.
  std::stringstream text;
  campaign::write_manifest(text, manifest);
  std::printf("--- manifest ---\n%s----------------\n\n", text.str().c_str());
  campaign::CampaignManifest parsed;
  if (!campaign::parse_manifest(text, parsed) || !(parsed == manifest)) {
    std::fprintf(stderr, "manifest round trip failed\n");
    return 1;
  }

  // --- 3. Run and report ---------------------------------------------------
  const std::vector<video::Video>& roster = dataset.test;
  campaign::CampaignOutcome outcome =
      campaign::CampaignRunner(victim, roster, parsed).run();
  campaign::print_report(std::cout, outcome);
  if (!outcome.all_completed() || !outcome.ledger_ok) {
    std::fprintf(stderr, "campaign failed\n");
    return 1;
  }
  return 0;
}
