// Copyright-evasion scenario (paper §I): a video owner checks whether their
// copyrighted videos are protected by retrieving the top-k results for each
// video and looking for near-duplicates. The adversary wants to publish a
// plagiarized copy that the retrieval check does NOT surface.
//
// This example plays both roles:
//   * the rights holder, running the duplicate check before and after;
//   * the adversary, using DUO to perturb the stolen copy so that the
//     copyrighted original no longer appears in its retrieval list.
//
// Build & run:  ./build/examples/copyright_evasion

#include <algorithm>
#include <cstdio>

#include "attack/duo.hpp"
#include "attack/surrogate.hpp"
#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/codec.hpp"
#include "video/synthetic.hpp"

using namespace duo;

namespace {

bool list_contains(const metrics::RetrievalList& list, std::int64_t id) {
  return std::find(list.begin(), list.end(), id) != list.end();
}

}  // namespace

int main() {
  // World: a platform gallery that includes the copyrighted video.
  auto spec = video::DatasetSpec::ucf101_like();
  spec.num_classes = 10;
  spec.train_per_class = 6;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();

  Rng rng(11);
  auto extractor =
      models::make_extractor(models::ModelKind::kI3D, spec.geometry, 16, rng);
  nn::ArcFaceLoss loss(16, spec.num_classes, rng);
  retrieval::TrainerConfig tcfg;
  tcfg.epochs = 4;
  retrieval::train_extractor(*extractor, loss, dataset.train, tcfg);
  retrieval::RetrievalSystem platform(std::move(extractor), 4);
  platform.add_all(dataset.train);

  // The copyrighted original is a gallery video; the adversary's stolen copy
  // starts as a bitwise duplicate.
  const video::Video& copyrighted = dataset.train[17];
  video::Video stolen = copyrighted;
  std::printf("copyrighted video: id=%lld class=%d\n",
              static_cast<long long>(copyrighted.id()), copyrighted.label());

  // Rights-holder check before the attack: the duplicate is caught.
  const auto before = platform.retrieve(stolen, 10);
  std::printf("duplicate check before attack: %s (rank-1 id=%lld)\n",
              list_contains(before, copyrighted.id()) ? "CAUGHT" : "missed",
              static_cast<long long>(before.front()));

  // Adversary: steal a surrogate, then steer the stolen copy's retrieval
  // toward an unrelated target video of a different class.
  attack::VideoStore store(dataset.train);
  retrieval::BlackBoxHandle handle(platform);
  attack::SurrogateHarvestConfig hcfg;
  hcfg.target_video_count = 20;
  const auto harvested = attack::harvest_surrogate_dataset(
      handle, store, {dataset.train[1].id()}, hcfg);
  auto surrogate =
      models::make_extractor(models::ModelKind::kC3D, spec.geometry, 16, rng);
  attack::train_surrogate(*surrogate, harvested, store,
                          attack::SurrogateTrainConfig{});

  const video::Video* target = nullptr;
  for (const auto& cand : dataset.train) {
    if (cand.label() != copyrighted.label()) {
      target = &cand;
      break;
    }
  }

  // Evasion is the *untargeted* goal: push the stolen copy's retrieval list
  // away from wherever the original lives. The duplicate check is the
  // hardest possible target — the gallery holds a bit-exact original at
  // feature distance zero — so the attacker also spends a larger pixel
  // budget than the stealth-tuned defaults.
  attack::DuoConfig cfg;
  cfg.goal = attack::AttackGoal::kUntargeted;
  cfg.transfer.k = 800;
  cfg.transfer.n = 4;
  cfg.transfer.tau = 45.0f;
  cfg.query.iter_numQ = 200;
  cfg.iter_numH = 2;
  attack::DuoAttack duo(*surrogate, cfg);
  retrieval::BlackBoxHandle attack_handle(platform);
  const auto outcome = duo.run(stolen, *target, attack_handle);

  // Rights-holder check after the attack.
  const auto after = platform.retrieve(outcome.adversarial, 10);
  const bool caught = list_contains(after, copyrighted.id());
  std::printf("duplicate check after attack:  %s\n",
              caught ? "CAUGHT" : "EVADED");
  if (!after.empty()) {
    std::printf("  top result now: id=%lld class=%d\n",
                static_cast<long long>(after.front()),
                platform.label_of(after.front()));
  }
  std::printf("  perturbation: Spa=%lld (%.3f%% of elements), PScore=%.4f, "
              "%lld queries\n",
              static_cast<long long>(metrics::sparsity(outcome.perturbation)),
              100.0 * metrics::sparsity(outcome.perturbation) /
                  static_cast<double>(spec.geometry.total_elements()),
              metrics::pscore(outcome.perturbation),
              static_cast<long long>(outcome.queries));

  // The hardest possible setting: the original sits in the gallery at
  // feature distance zero from the query, so full evasion needs the top-10
  // to shed it entirely. Partial success (the original demoted, target-class
  // videos promoted) is the realistic outcome at miniature scale.
  std::size_t rank_of_original = after.size();
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (after[i] == copyrighted.id()) rank_of_original = i;
  }
  std::printf("  original's rank in the duplicate check: %zu of %zu%s\n",
              rank_of_original + 1, after.size(),
              caught ? "" : " (fully evaded)");

  // Persist the adversarial upload for inspection.
  if (video::save_video(outcome.adversarial, "copyright_evasion_adv.duov")) {
    std::printf("  adversarial video written to copyright_evasion_adv.duov\n");
  }
  return 0;
}
