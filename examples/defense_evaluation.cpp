// Defense-deployment scenario (paper §V-D): a retrieval operator deploys
// feature squeezing and Noise2Self in front of the service, calibrates on
// clean traffic, and measures what each defense catches — a dense TIMI
// upload, a random-sparse Vanilla upload, and a DUO upload.
//
// Build & run:  ./build/examples/defense_evaluation

#include <cstdio>
#include <vector>

#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "attack/surrogate.hpp"
#include "baselines/timi.hpp"
#include "baselines/vanilla.hpp"
#include "defense/defense.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/synthetic.hpp"

using namespace duo;

int main() {
  auto spec = video::DatasetSpec::ucf101_like();
  spec.num_classes = 10;
  spec.train_per_class = 6;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();

  Rng rng(31);
  auto extractor =
      models::make_extractor(models::ModelKind::kI3D, spec.geometry, 16, rng);
  nn::ArcFaceLoss loss(16, spec.num_classes, rng);
  retrieval::TrainerConfig tcfg;
  tcfg.epochs = 4;
  retrieval::train_extractor(*extractor, loss, dataset.train, tcfg);
  retrieval::RetrievalSystem service(std::move(extractor), 4);
  service.add_all(dataset.train);

  // Deploy both defenses, calibrated on clean traffic.
  defense::Detector squeeze(
      service,
      std::make_unique<defense::FeatureSqueezing>(
          defense::FeatureSqueezingConfig{}),
      10);
  defense::Detector denoise(
      service, std::make_unique<defense::Noise2Self>(defense::Noise2SelfConfig{}),
      10);
  const std::vector<video::Video> clean(dataset.train.begin(),
                                        dataset.train.begin() + 12);
  squeeze.calibrate(clean);
  denoise.calibrate(clean);
  std::printf("detectors calibrated: squeeze threshold %.4f, noise2self %.4f\n\n",
              squeeze.threshold(), denoise.threshold());

  // Attacker setup shared by all three attacks.
  attack::VideoStore store(dataset.train);
  retrieval::BlackBoxHandle harvest_handle(service);
  attack::SurrogateHarvestConfig hcfg;
  hcfg.target_video_count = 20;
  const auto harvested = attack::harvest_surrogate_dataset(
      harvest_handle, store, {dataset.train[3].id()}, hcfg);
  auto surrogate =
      models::make_extractor(models::ModelKind::kC3D, spec.geometry, 16, rng);
  attack::train_surrogate(*surrogate, harvested, store,
                          attack::SurrogateTrainConfig{});

  const auto pairs = attack::sample_attack_pairs(dataset.train, 3, 55);

  baselines::TimiConfig timi_cfg;
  baselines::TimiAttack timi(*surrogate, timi_cfg);

  baselines::VanillaConfig van_cfg;
  van_cfg.k = 400;
  van_cfg.n = 3;
  van_cfg.query.iter_numQ = 100;
  baselines::VanillaAttack vanilla(van_cfg);

  attack::DuoConfig duo_cfg;
  duo_cfg.transfer.k = 400;
  duo_cfg.transfer.n = 3;
  duo_cfg.query.iter_numQ = 100;
  duo_cfg.iter_numH = 2;
  attack::DuoAttack duo(*surrogate, duo_cfg);

  std::printf("%-10s %-22s %-22s\n", "attack", "feature squeezing",
              "Noise2Self");
  for (attack::Attack* atk :
       std::vector<attack::Attack*>{&timi, &vanilla, &duo}) {
    std::vector<video::Video> uploads;
    for (const auto& pair : pairs) {
      retrieval::BlackBoxHandle handle(service);
      uploads.push_back(atk->run(pair.v, pair.v_t, handle).adversarial);
    }
    std::printf("%-10s %-22.1f %-22.1f\n", atk->name().c_str(),
                squeeze.detection_rate(uploads),
                denoise.detection_rate(uploads));
  }
  std::printf("\nexpected shape: the sparse, low-magnitude DUO uploads should "
              "be the hardest to flag (Table X).\n");
  return 0;
}
