// Platform-side originality check scenario (paper §I): a social platform
// uses the retrieval service to verify that each submitted video is original
// (no near-duplicates in the corpus). This example compares how the check
// fares against a naive duplicate, a DUO adversarial duplicate, and a benign
// genuinely-new video — measuring false negatives the attack induces.
//
// Build & run:  ./build/examples/plagiarism_check

#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/duo.hpp"
#include "attack/surrogate.hpp"
#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/synthetic.hpp"

using namespace duo;

namespace {

// The platform's originality verdict: a submission is flagged as plagiarism
// when any of its top-m retrieval hits is "too close" in feature distance
// (thresholds compare squared L2, matching Neighbor::distance_sq).
bool flags_as_plagiarism(retrieval::RetrievalSystem& system,
                         const video::Video& submission, double threshold,
                         std::size_t m = 5) {
  const auto hits = system.retrieve_detailed(submission, m);
  return !hits.empty() && hits.front().distance_sq < threshold;
}

// Calibrate the distance threshold from the gallery itself: the midpoint
// between self-distance (0) and the typical nearest-neighbor distance of
// distinct videos.
double calibrate_threshold(retrieval::RetrievalSystem& system,
                           const std::vector<video::Video>& samples) {
  double nn_sum = 0.0;
  for (const auto& v : samples) {
    const auto hits = system.retrieve_detailed(v, 2);
    // hits[0] is the video itself (distance ~0); hits[1] its true neighbor.
    nn_sum += hits.size() > 1 ? hits[1].distance_sq : 0.0;
  }
  return 0.5 * nn_sum / static_cast<double>(samples.size());
}

}  // namespace

int main() {
  auto spec = video::DatasetSpec::ucf101_like();
  spec.num_classes = 10;
  spec.train_per_class = 6;
  spec.test_per_class = 2;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();

  Rng rng(23);
  auto extractor = models::make_extractor(models::ModelKind::kSlowFast,
                                          spec.geometry, 16, rng);
  nn::ArcFaceLoss loss(16, spec.num_classes, rng);
  retrieval::TrainerConfig tcfg;
  tcfg.epochs = 4;
  retrieval::train_extractor(*extractor, loss, dataset.train, tcfg);
  retrieval::RetrievalSystem platform(std::move(extractor), 4);
  platform.add_all(dataset.train);

  const std::vector<video::Video> calib(dataset.train.begin(),
                                        dataset.train.begin() + 10);
  const double threshold = calibrate_threshold(platform, calib);
  std::printf("originality threshold (feature distance): %.4f\n\n", threshold);

  // Case 1: naive plagiarism — resubmitting a gallery video unchanged.
  const video::Video& original = dataset.train[23];
  std::printf("case 1 — verbatim copy:      %s\n",
              flags_as_plagiarism(platform, original, threshold)
                  ? "flagged (correct)"
                  : "PASSED (check failed!)");

  // Case 2: benign new video of the same class (should pass).
  const video::Video& fresh = dataset.test[0];
  std::printf("case 2 — genuinely new video: %s\n",
              flags_as_plagiarism(platform, fresh, threshold)
                  ? "flagged (false positive)"
                  : "passed (correct)");

  // Case 3: DUO-perturbed copy of the gallery video.
  attack::VideoStore store(dataset.train);
  retrieval::BlackBoxHandle handle(platform);
  attack::SurrogateHarvestConfig hcfg;
  hcfg.target_video_count = 20;
  const auto harvested = attack::harvest_surrogate_dataset(
      handle, store, {dataset.train[2].id()}, hcfg);
  auto surrogate = models::make_extractor(models::ModelKind::kResNet18,
                                          spec.geometry, 16, rng);
  attack::train_surrogate(*surrogate, harvested, store,
                          attack::SurrogateTrainConfig{});

  const video::Video* decoy = nullptr;
  for (const auto& cand : dataset.train) {
    if (cand.label() != original.label()) {
      decoy = &cand;
      break;
    }
  }
  attack::DuoConfig cfg;
  cfg.transfer.k = 400;
  cfg.transfer.n = 3;
  cfg.query.iter_numQ = 150;
  cfg.iter_numH = 2;
  attack::DuoAttack duo(*surrogate, cfg);
  retrieval::BlackBoxHandle attack_handle(platform);
  const auto outcome = duo.run(original, *decoy, attack_handle);

  const bool flagged = flags_as_plagiarism(platform, outcome.adversarial,
                                           threshold);
  std::printf("case 3 — DUO-perturbed copy:  %s\n",
              flagged ? "flagged" : "PASSED (attack succeeded)");
  std::printf("          Spa=%lld, PScore=%.4f, ‖φ‖∞=%.0f — visually the "
              "same video\n",
              static_cast<long long>(metrics::sparsity(outcome.perturbation)),
              metrics::pscore(outcome.perturbation),
              static_cast<double>(outcome.perturbation.norm_linf()));
  return 0;
}
