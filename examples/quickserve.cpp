// Quickserve: the victim as a deployed service, attacked through the async
// pipeline.
//
//   1. Build a synthetic video world and train a small victim retrieval
//      service.
//   2. Stand up a RetrievalServer over it: bounded request queue plus a
//      micro-batching scheduler that answers via one batched extractor
//      forward per tick.
//   3. Run a short pipelined SparseQuery attack (Vanilla-style random
//      support) through an AsyncBlackBoxHandle — both ±ε candidates of each
//      step are in flight at once, so victim latency is overlapped with the
//      attacker's bookkeeping.
//   4. Report the attack effect, the honest query bill, and the server-side
//      stats (batch-size histogram, latency percentiles).
//
// Build & run:  ./build/examples/quickserve

#include <cstdio>

#include "attack/sparse_query.hpp"
#include "baselines/vanilla.hpp"
#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "serve/async_handle.hpp"
#include "serve/server.hpp"
#include "video/synthetic.hpp"

using namespace duo;

int main() {
  // --- 1. Miniature world + trained victim ---------------------------------
  auto spec = video::DatasetSpec::ucf101_like();
  spec.num_classes = 6;
  spec.train_per_class = 5;
  spec.test_per_class = 2;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();

  Rng rng(7);
  auto extractor =
      models::make_extractor(models::ModelKind::kTPN, spec.geometry, 16, rng);
  nn::ArcFaceLoss loss(16, spec.num_classes, rng);
  retrieval::TrainerConfig tcfg;
  tcfg.epochs = 3;
  retrieval::train_extractor(*extractor, loss, dataset.train, tcfg);

  retrieval::RetrievalSystem victim(std::move(extractor), /*num_nodes=*/2);
  victim.add_all(dataset.train);
  std::printf("gallery: %zu videos over %zu data nodes\n",
              victim.gallery_size(), victim.index().shard_count());

  const video::Video& v = dataset.train[2];
  const video::Video& v_t = dataset.train[20];
  const auto list_v = victim.retrieve(v, 10);
  const auto list_vt = victim.retrieve(v_t, 10);

  // --- 2. Serve it ----------------------------------------------------------
  serve::ServerConfig scfg;
  scfg.max_batch = 4;
  scfg.queue_capacity = 32;
  serve::RetrievalServer server(victim, scfg);
  serve::AsyncBlackBoxHandle handle(server);
  std::printf("server up: max_batch=%zu queue_capacity=%zu\n\n",
              scfg.max_batch, scfg.queue_capacity);

  // --- 3. Pipelined SparseQuery against the service -------------------------
  Rng support_rng(17);
  attack::Perturbation support =
      baselines::random_support(v.geometry(), /*k=*/150, /*n=*/3, support_rng);
  Tensor noise =
      Tensor::uniform(v.geometry().tensor_shape(), -10.0f, 10.0f, support_rng);
  support.magnitude() = noise * support.pixel_mask() * support.frame_mask();

  const auto ctx = attack::make_objective_context(handle, v, v_t, 10);
  attack::SparseQueryConfig qcfg;
  qcfg.iter_numQ = 80;
  qcfg.tau = 30.0f;
  qcfg.m = 10;
  const auto result =
      attack::sparse_query_pipelined(v, support, handle, ctx, qcfg);
  server.shutdown();  // drains the queue; victim is ours again

  // --- 4. Results ------------------------------------------------------------
  const auto list_adv = victim.retrieve(result.v_adv, 10);
  std::printf("T: %.4f -> %.4f over %zu steps\n", result.t_history.front(),
              result.final_t, result.t_history.size() - 1);
  std::printf("AP@m(R(v_adv), R(v))   = %.2f%%   (want low)\n",
              metrics::ap_at_m(list_adv, list_v) * 100.0);
  std::printf("AP@m(R(v_adv), R(v_t)) = %.2f%%   (want high)\n",
              metrics::ap_at_m(list_adv, list_vt) * 100.0);
  std::printf("queries billed to the attacker: %lld "
              "(speculative forwards included)\n",
              static_cast<long long>(handle.query_count()));

  const serve::ServerStats stats = handle.server_stats();
  std::printf("\nserver stats: %lld queries in %lld batches "
              "(mean batch %.2f)\n",
              static_cast<long long>(stats.queries_served),
              static_cast<long long>(stats.batches), stats.mean_batch_size());
  std::printf("latency: p50 %.2f ms, p95 %.2f ms, max %.2f ms\n",
              stats.p50_latency_ms, stats.p95_latency_ms,
              stats.max_latency_ms);
  std::printf("batch-size histogram:");
  for (std::size_t s = 1; s < stats.batch_size_counts.size(); ++s) {
    if (stats.batch_size_counts[s] > 0) {
      std::printf(" %zu:%lld", s,
                  static_cast<long long>(stats.batch_size_counts[s]));
    }
  }
  std::printf("\n");
  return 0;
}
