// Quickstart: the full DUO story on one (v, v_t) pair.
//
//   1. Build a synthetic video world and train a victim retrieval service.
//   2. Steal a surrogate model through black-box queries.
//   3. Run DUO (SparseTransfer + SparseQuery) to craft v_adv.
//   4. Show the retrieval lists before/after and the stealthiness metrics.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "attack/surrogate.hpp"
#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/synthetic.hpp"

using namespace duo;

namespace {

void print_list(const char* tag, const metrics::RetrievalList& list,
                const retrieval::RetrievalSystem& system) {
  std::printf("%-22s [", tag);
  for (std::size_t i = 0; i < list.size(); ++i) {
    std::printf("%s%lld(c%d)", i ? ", " : "", static_cast<long long>(list[i]),
                system.label_of(list[i]));
  }
  std::printf("]\n");
}

}  // namespace

int main() {
  // --- 1. A miniature video world + trained victim -------------------------
  auto spec = video::DatasetSpec::ucf101_like();
  spec.num_classes = 10;
  spec.train_per_class = 6;
  spec.test_per_class = 2;
  spec.geometry = {8, 16, 16, 3};
  const video::Dataset dataset = video::SyntheticGenerator(spec).generate();
  std::printf("dataset: %zu train / %zu test videos, %d classes\n",
              dataset.train.size(), dataset.test.size(), spec.num_classes);

  Rng rng(7);
  auto extractor =
      models::make_extractor(models::ModelKind::kTPN, spec.geometry, 16, rng);
  nn::ArcFaceLoss loss(16, spec.num_classes, rng);
  retrieval::TrainerConfig tcfg;
  tcfg.epochs = 4;
  retrieval::train_extractor(*extractor, loss, dataset.train, tcfg);

  retrieval::RetrievalSystem victim(std::move(extractor), /*num_nodes=*/4);
  victim.add_all(dataset.train);
  std::printf("victim mAP@10: %.2f%%\n\n",
              retrieval::evaluate_map(victim, dataset.test, 10) * 100.0);

  // --- 2. Steal a surrogate through the black-box API ----------------------
  attack::VideoStore store(dataset.train);
  retrieval::BlackBoxHandle handle(victim);
  attack::SurrogateHarvestConfig hcfg;
  hcfg.target_video_count = 20;
  const auto harvested = attack::harvest_surrogate_dataset(
      handle, store, {dataset.train[0].id()}, hcfg);
  std::printf("harvested %zu videos / %zu ranking triplets with %lld queries\n",
              harvested.video_ids.size(), harvested.triplets.size(),
              static_cast<long long>(harvested.queries_spent));

  auto surrogate =
      models::make_extractor(models::ModelKind::kC3D, spec.geometry, 16, rng);
  attack::train_surrogate(*surrogate, harvested, store,
                          attack::SurrogateTrainConfig{});

  // --- 3. Attack one pair ---------------------------------------------------
  const auto pairs = attack::sample_attack_pairs(dataset.train, 1, 99);
  const video::Video& v = pairs[0].v;
  const video::Video& v_t = pairs[0].v_t;
  std::printf("\noriginal video id=%lld class=%d; target id=%lld class=%d\n",
              static_cast<long long>(v.id()), v.label(),
              static_cast<long long>(v_t.id()), v_t.label());

  attack::DuoConfig cfg;
  cfg.transfer.k = 400;
  cfg.transfer.n = 3;
  cfg.transfer.tau = 30.0f;
  cfg.query.iter_numQ = 120;
  cfg.iter_numH = 2;
  attack::DuoAttack duo(*surrogate, cfg);

  retrieval::BlackBoxHandle attack_handle(victim);
  const auto outcome = duo.run(v, v_t, attack_handle);

  // --- 4. Results ------------------------------------------------------------
  const auto list_v = victim.retrieve(v, 10);
  const auto list_vt = victim.retrieve(v_t, 10);
  const auto list_adv = victim.retrieve(outcome.adversarial, 10);
  std::printf("\n");
  print_list("R(v):", list_v, victim);
  print_list("R(v_t):", list_vt, victim);
  print_list("R(v_adv):", list_adv, victim);

  std::printf("\nAP@m(R(v),    R(v_t)) = %.2f%%   (w/o attack)\n",
              metrics::ap_at_m(list_v, list_vt) * 100.0);
  std::printf("AP@m(R(v_adv),R(v_t)) = %.2f%%   (after DUO)\n",
              metrics::ap_at_m(list_adv, list_vt) * 100.0);
  std::printf("Spa  = %lld of %lld elements (%.3f%%)\n",
              static_cast<long long>(metrics::sparsity(outcome.perturbation)),
              static_cast<long long>(spec.geometry.total_elements()),
              100.0 * metrics::sparsity(outcome.perturbation) /
                  static_cast<double>(spec.geometry.total_elements()));
  std::printf("PScore = %.4f, ‖φ‖∞ = %.1f, queries spent = %lld\n",
              metrics::pscore(outcome.perturbation),
              outcome.perturbation.norm_linf(),
              static_cast<long long>(outcome.queries));
  std::printf("perturbed frames: %lld of %lld\n",
              static_cast<long long>(metrics::perturbed_frames(
                  outcome.perturbation, spec.geometry.elements_per_frame())),
              static_cast<long long>(spec.geometry.frames));
  return 0;
}
