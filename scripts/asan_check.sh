#!/usr/bin/env bash
# Build and run the lifetime-sensitive tests under AddressSanitizer.
#
# Crash/restart recovery is where a lifetime bug would live: crash() fails
# queued and in-flight requests while client threads still hold their
# futures, restart() tears the accounting down and rebuilds it from a
# snapshot, the chaos path swaps the live gallery index for one reloaded
# from disk, and reconnecting clients replay pipelined requests against the
# new epoch. This script configures a dedicated build tree with
# -DDUO_SANITIZE=address and runs the serve, failure-mode, campaign, and
# crash-recovery suites plus the crash soak under ASan.
#
# Usage: scripts/asan_check.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -B "$build_dir" -S "$repo_root" -DDUO_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" \
  --target test_serve test_failure_modes test_serialization test_campaign \
  test_crash_recovery

# ASan multiplies runtime ~2-3x and memory ~3x; the suites here are the ones
# that exercise crash/restart, snapshot restore, index reload, and client
# reconnect lifetimes. halt_on_error keeps CI loud on the first report.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
ctest --test-dir "$build_dir" \
  -R 'Serve|FailureModes|Serialization|Campaign|CrashRecovery' \
  --output-on-failure --timeout 1800

# The crash soak drives the whole surface end to end: a multi-tenant
# campaign whose victim crashes and restarts mid-run from durable files,
# with every client reconnecting and replaying. Use-after-free on any of
# those paths surfaces here.
cmake --build "$build_dir" -j "$(nproc)" --target crash_soak
DUO_THREADS=8 "$build_dir/bench/crash_soak" --smoke
