#!/usr/bin/env bash
# Tier-1 verify from a clean checkout: configure, build, run the full test
# suite, then re-run the bitwise-determinism suite with the compute pool
# forced to 8 workers (DUO_THREADS oversubscribes harmlessly on small
# machines; the determinism tests additionally pin their own pools, so this
# exercises both the env-sized shared pool and the pinned ones).
#
# The build tree is untracked (see .gitignore), so this script also proves
# the repo builds without any checked-in CMake state.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

DUO_THREADS=8 ctest --test-dir "$build_dir" \
  -R 'ParallelDeterminism|Serve|SparseQueryPipelined|FaultInjection|Resilient|Admission|Pacer|Aimd|Circuit|NeighborOrder|Ivf|Campaign|CrashRecovery' \
  --output-on-failure

# Kernel-equivalence re-run under the reference Conv3d kernel: the gradient
# harness, NaN regressions, and direct-vs-GEMM suites must pass identically
# when every kAuto conv resolves to the direct loops instead of im2col/GEMM.
DUO_CONV3D_KERNEL=direct ctest --test-dir "$build_dir" \
  -R 'CheckGrad|NanSanity|Conv3dKernels' --output-on-failure

# Direct-vs-GEMM consistency smoke: both Conv3d kernels on identical
# weights/inputs; forward and parameter gradients must match bitwise.
"$build_dir/bench/micro_ops" --smoke

# Serve-layer smoke: exercises the micro-batching scheduler end to end under
# concurrent clients and prints the batch-size histogram + latency
# percentiles (seconds-long at --smoke scale).
DUO_THREADS=8 "$build_dir/bench/serve_throughput" --smoke

# Fault-tolerance smoke: resilient clients against a 10% mixed-fault victim;
# fails if any answer diverges from the fault-free retrieval or the billing
# undercounts (seconds-long at --smoke scale).
DUO_THREADS=8 "$build_dir/bench/fault_soak" --smoke

# Overload smoke: paced clients against a throttling, load-shedding,
# deadline-enforcing, fault-injecting victim; fails on any mismatched answer
# or if the billing ledger stops reconciling (billed == served + faulted +
# expired + shed). --aimd additionally runs the adaptive pacer against a
# fresh identical server and fails if it bills more than the static one.
DUO_THREADS=8 "$build_dir/bench/overload_soak" --smoke --aimd

# Gallery-scale smoke: flat exact scan vs sharded IVF + quantized re-rank;
# fails if nprobe=all-cells diverges from the exact index or IVF results
# differ across shard counts (the determinism/identity contracts).
DUO_THREADS=8 "$build_dir/bench/gallery_scale" --smoke

# Campaign smoke: concurrent attack sessions + benign streams against one
# victim, killed mid-run and resumed; fails if the resumed campaign's
# per-session outcomes diverge bitwise from the uninterrupted reference or
# any run's billing ledger stops reconciling (globally or per client).
DUO_THREADS=8 "$build_dir/bench/campaign_soak" --smoke

# Crash smoke: the same multi-tenant campaign with the victim abruptly
# crashing and restarting mid-run (accounting snapshot + gallery index
# round-tripped through durable files); fails if any per-session outcome
# diverges bitwise from the crash-free reference, the ledger stops
# reconciling across the restarts, or the durable files go missing.
DUO_THREADS=8 "$build_dir/bench/crash_soak" --smoke
