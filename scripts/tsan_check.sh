#!/usr/bin/env bash
# Build and run the concurrency-sensitive tests under ThreadSanitizer.
#
# The thread pool's caller-runs parallel_for, the parallel Conv3d / pooling /
# extraction kernels, and the serve layer's MPMC queue + micro-batching
# scheduler are the code most likely to regress into a data race; this
# script configures a dedicated build tree with -DDUO_SANITIZE=thread and
# runs the thread-pool, parallel-determinism, serve, and pipelined-attack
# suites under TSan.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" -DDUO_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)" \
  --target test_thread_pool test_parallel_determinism test_serve \
  test_sparse_query test_failure_modes test_gradcheck test_ivf_index \
  test_retrieval test_campaign test_crash_recovery

# TSan multiplies runtime ~5-15x; give the suites generous slack but keep
# the halt-on-first-race behaviour so CI fails loudly. The regex picks up the
# fault-tolerance suites too: FaultInjection/Resilient (retrying clients on a
# faulty server), Serve.ConcurrentShutdownIsSafe (the shutdown-race
# regression), FailureModes.ServeFaultMatrix* (fault-injected attacks), and
# the overload suites: Admission (rate limiting + reject/shed policies),
# Pacer (shared client-side token bucket), Circuit (breaker state machine).
# scripts/tsan.supp silences the known exception_ptr refcount false positive
# from the uninstrumented libstdc++ (see the file for details).
export TSAN_OPTIONS="suppressions=$repo_root/scripts/tsan.supp ${TSAN_OPTIONS:-halt_on_error=1}"
ctest --test-dir "$build_dir" \
  -R 'ThreadPool|ParallelDeterminism|Conv3d|Pooling|Extractor|Gallery|Serve|SparseQueryPipelined|FaultInjection|Resilient|Admission|Pacer|Aimd|Circuit|CheckGrad|Ivf|RetrievalIndex|Campaign|CrashRecovery' \
  --output-on-failure --timeout 1800

# The overload soak stresses the admission controller, rate limiter, pacer,
# and expiry shedding from concurrent client threads — the exact surfaces a
# race would corrupt — so run its smoke pass under TSan too. --aimd adds the
# adaptive pacer's feedback path (on_success/on_overload from every client
# thread into the shared bucket) to the surfaces under test.
cmake --build "$build_dir" -j "$(nproc)" --target overload_soak
DUO_THREADS=8 "$build_dir/bench/overload_soak" --smoke --aimd

# The campaign soak adds per-client accounting and checkpointing sessions on
# top of the same concurrent serving surfaces; its kill/resume smoke pass
# runs under TSan for the same reason.
cmake --build "$build_dir" -j "$(nproc)" --target campaign_soak
DUO_THREADS=8 "$build_dir/bench/campaign_soak" --smoke

# The crash soak adds abrupt server crashes, snapshot/restart, and client
# reconnects — the chaos thread races every serving surface by design — so
# its smoke pass runs under TSan as well.
cmake --build "$build_dir" -j "$(nproc)" --target crash_soak
DUO_THREADS=8 "$build_dir/bench/crash_soak" --smoke
