#pragma once

// Common interface for all attacks (DUO and the baselines of §V-B), so the
// bench harnesses evaluate every attack identically.

#include <cstdint>
#include <string>
#include <vector>

#include "retrieval/system.hpp"
#include "video/video.hpp"

namespace duo::attack {

struct AttackOutcome {
  video::Video adversarial;        // what the attacker uploads (quantized)
  Tensor perturbation;             // v_adv − v in pixel space
  std::vector<double> t_history;   // ranking loss per query iteration
  std::int64_t queries = 0;        // black-box queries spent
};

class Attack {
 public:
  virtual ~Attack() = default;

  Attack() = default;
  Attack(const Attack&) = delete;
  Attack& operator=(const Attack&) = delete;

  // Generate v_adv so that R^m(v_adv) approaches R^m(v_t).
  virtual AttackOutcome run(const video::Video& v, const video::Video& v_t,
                            retrieval::BlackBoxHandle& victim) = 0;

  virtual std::string name() const = 0;
};

}  // namespace duo::attack
