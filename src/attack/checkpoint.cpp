#include "attack/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "models/serialization.hpp"

namespace duo::attack {

namespace {

using models::io::read_f64;
using models::io::read_f64_vec;
using models::io::read_i64;
using models::io::read_i64_vec;
using models::io::read_tensor;
using models::io::read_u64;
using models::io::write_f64;
using models::io::write_f64_vec;
using models::io::write_i64;
using models::io::write_i64_vec;
using models::io::write_tensor;
using models::io::write_u64;

constexpr char kSparseQueryMagic[8] = {'D', 'U', 'O', 'A', '1', '\0', '\0',
                                       '\0'};
// 'DUOD2' added the objective-context lists; 'DUOD1' checkpoints are
// rejected by the magic check and resumed runs fall back to a fresh start.
constexpr char kDuoMagic[8] = {'D', 'U', 'O', 'D', '2', '\0', '\0', '\0'};

bool check_magic(std::istream& in, const char (&magic)[8]) {
  char buf[8];
  in.read(buf, sizeof(buf));
  return static_cast<bool>(in) && std::memcmp(buf, magic, sizeof(buf)) == 0;
}

void write_geometry(std::ostream& out, const video::VideoGeometry& g) {
  write_i64(out, g.frames);
  write_i64(out, g.width);
  write_i64(out, g.height);
  write_i64(out, g.channels);
}

bool read_geometry(std::istream& in, video::VideoGeometry& g) {
  return read_i64(in, g.frames) && read_i64(in, g.width) &&
         read_i64(in, g.height) && read_i64(in, g.channels);
}

}  // namespace

bool save_checkpoint(const SparseQueryCheckpoint& ck, const std::string& path) {
  return models::io::atomic_write(path, [&](std::ostream& out) {
    out.write(kSparseQueryMagic, sizeof(kSparseQueryMagic));
    write_geometry(out, ck.geometry);
    write_u64(out, ck.seed);
    write_i64(out, ck.support_size);
    write_u64(out, ck.source_hash);
    write_i64(out, ck.next_iteration);
    write_f64(out, ck.t_current);
    write_f64_vec(out, ck.t_history);
    write_i64(out, ck.queries);
    write_i64(out, ck.stall);
    write_u64(out, ck.rng_state);
    write_i64_vec(out, ck.deck);
    write_i64(out, ck.deck_pos);
    write_tensor(out, ck.v_adv);
  });
}

bool load_checkpoint(SparseQueryCheckpoint& ck, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in || !check_magic(in, kSparseQueryMagic)) return false;

  SparseQueryCheckpoint staged;
  if (!read_geometry(in, staged.geometry) || !read_u64(in, staged.seed) ||
      !read_i64(in, staged.support_size) || !read_u64(in, staged.source_hash) ||
      !read_i64(in, staged.next_iteration) || !read_f64(in, staged.t_current) ||
      !read_f64_vec(in, staged.t_history) || !read_i64(in, staged.queries) ||
      !read_i64(in, staged.stall) || !read_u64(in, staged.rng_state) ||
      !read_i64_vec(in, staged.deck) || !read_i64(in, staged.deck_pos) ||
      !read_tensor(in, staged.v_adv)) {
    return false;
  }
  // Internal consistency: the cursor must sit inside the deck and the video
  // payload must match the recorded geometry.
  if (staged.deck_pos < 0 ||
      staged.deck_pos > static_cast<std::int64_t>(staged.deck.size()) ||
      staged.next_iteration < 1 ||
      staged.v_adv.size() != staged.geometry.total_elements()) {
    return false;
  }
  ck = std::move(staged);
  return true;
}

bool save_checkpoint(const DuoCheckpoint& ck, const std::string& path) {
  return models::io::atomic_write(path, [&](std::ostream& out) {
    out.write(kDuoMagic, sizeof(kDuoMagic));
    write_geometry(out, ck.geometry);
    write_u64(out, ck.source_hash);
    write_i64(out, ck.iter_numH);
    write_i64(out, ck.next_round);
    write_f64_vec(out, ck.t_history);
    write_i64(out, ck.queries);
    write_u64(out, ck.has_ctx ? 1 : 0);
    if (ck.has_ctx) {
      write_i64_vec(out, ck.list_v);
      write_i64_vec(out, ck.list_vt);
    }
    write_tensor(out, ck.v_cur);
    write_u64(out, ck.has_init ? 1 : 0);
    if (ck.has_init) {
      write_tensor(out, ck.pixel_mask);
      write_tensor(out, ck.frame_mask);
    }
  });
}

bool load_checkpoint(DuoCheckpoint& ck, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in || !check_magic(in, kDuoMagic)) return false;

  DuoCheckpoint staged;
  std::uint64_t has_ctx = 0;
  std::uint64_t has_init = 0;
  if (!read_geometry(in, staged.geometry) || !read_u64(in, staged.source_hash) ||
      !read_i64(in, staged.iter_numH) || !read_i64(in, staged.next_round) ||
      !read_f64_vec(in, staged.t_history) || !read_i64(in, staged.queries) ||
      !read_u64(in, has_ctx) || has_ctx > 1) {
    return false;
  }
  staged.has_ctx = has_ctx == 1;
  if (staged.has_ctx && (!read_i64_vec(in, staged.list_v) ||
                         !read_i64_vec(in, staged.list_vt))) {
    return false;
  }
  if (!read_tensor(in, staged.v_cur) || !read_u64(in, has_init) ||
      has_init > 1) {
    return false;
  }
  staged.has_init = has_init == 1;
  if (staged.has_init && (!read_tensor(in, staged.pixel_mask) ||
                          !read_tensor(in, staged.frame_mask))) {
    return false;
  }
  if (staged.next_round < 0 ||
      staged.v_cur.size() != staged.geometry.total_elements()) {
    return false;
  }
  ck = std::move(staged);
  return true;
}

}  // namespace duo::attack
