#pragma once

// Checkpoint/resume for long-running query attacks. A paper-scale attack
// spends thousands of victim queries; when the victim faults unrecoverably
// (or the attacking process is killed), restarting from scratch re-bills the
// whole budget. These checkpoints capture the full deterministic state of a
// SparseQuery run (working video, support cursor, Rng state, t_history,
// query accounting) and of the DUO outer loop (round index, current base
// video, carried masks), so a resumed attack continues exactly where it
// stopped and finishes with a final adversarial video bitwise identical to
// an uninterrupted run.
//
// Format notes: binary, host byte order, written atomically (tmp + rename,
// models::io::atomic_write) so a crash mid-checkpoint never corrupts the
// previous one. Every checkpoint embeds a fingerprint of the inputs it was
// taken against (geometry, seed, source-video hash); load_* rejects a
// checkpoint whose fingerprint does not match, returning false so the
// caller falls back to a fresh start.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "video/video.hpp"

namespace duo::attack {

// Full state of attack::sparse_query / sparse_query_pipelined at the top of
// iteration `next_iteration` (before that iteration's coordinate draw).
struct SparseQueryCheckpoint {
  // Fingerprint — binds the checkpoint to (v, perturbation support, config).
  video::VideoGeometry geometry;
  std::uint64_t seed = 0;
  std::int64_t support_size = 0;
  std::uint64_t source_hash = 0;  // fnv1a of the source video's pixels

  // Progress.
  std::int64_t next_iteration = 1;  // kappa to execute next
  double t_current = 0.0;
  std::vector<double> t_history;
  std::int64_t queries = 0;  // victim queries billed so far (all processes)
  std::int64_t stall = 0;    // consecutive rejected iterations (patience)

  // Sampler state: the without-replacement deck, the cursor into it, and the
  // raw Rng state, captured before the next iteration's draws.
  std::uint64_t rng_state = 0;
  std::vector<std::int64_t> deck;
  std::int64_t deck_pos = 0;

  // The unquantized working video v_adv (the quantized shadow is recomputed
  // on load).
  Tensor v_adv;
};

bool save_checkpoint(const SparseQueryCheckpoint& ck, const std::string& path);
bool load_checkpoint(SparseQueryCheckpoint& ck, const std::string& path);

// State of DuoAttack::run at the top of outer round `next_round`: the round
// input v_cur, the {I, F} masks seeding the round's SparseTransfer (absent
// for round 0), the t_history accumulated over completed rounds, and the
// queries billed for completed rounds plus every process's objective-context
// fetches. The checkpoint also carries the objective context's reference
// lists R^m(v) / R^m(v_t), so a resumed process restores them instead of
// re-billing the 2-query fetch. Mid-round progress lives in the round's own
// SparseQueryCheckpoint (DuoAttack derives a per-round path).
struct DuoCheckpoint {
  video::VideoGeometry geometry;
  std::uint64_t source_hash = 0;
  std::int64_t iter_numH = 0;

  std::int64_t next_round = 0;
  std::vector<double> t_history;
  std::int64_t queries = 0;

  // Objective context (attack/objective.hpp): the two reference retrieval
  // lists, already paid for by the process that fetched them.
  bool has_ctx = false;
  std::vector<std::int64_t> list_v;   // valid when has_ctx
  std::vector<std::int64_t> list_vt;  // valid when has_ctx

  Tensor v_cur;
  bool has_init = false;
  Tensor pixel_mask;  // valid when has_init
  Tensor frame_mask;  // valid when has_init
};

bool save_checkpoint(const DuoCheckpoint& ck, const std::string& path);
bool load_checkpoint(DuoCheckpoint& ck, const std::string& path);

}  // namespace duo::attack
