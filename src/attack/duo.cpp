#include "attack/duo.hpp"

namespace duo::attack {

DuoAttack::DuoAttack(models::FeatureExtractor& surrogate, DuoConfig config)
    : surrogate_(&surrogate),
      config_(std::move(config)),
      name_((config_.goal == AttackGoal::kTargeted ? "DUO-" : "DUO-U-") +
            surrogate.name()) {
  config_.transfer.goal = config_.goal;
}

AttackOutcome DuoAttack::run(const video::Video& v, const video::Video& v_t,
                             retrieval::BlackBoxHandle& victim) {
  const std::int64_t queries_before = victim.query_count();
  ObjectiveContext ctx =
      make_objective_context(victim, v, v_t, config_.m, config_.eta);
  ctx.untargeted = config_.goal == AttackGoal::kUntargeted;

  AttackOutcome out;
  video::Video v_cur = v;  // base video of the current outer iteration
  std::optional<Perturbation> init;

  for (int h = 0; h < config_.iter_numH; ++h) {
    const SparseTransferResult st =
        sparse_transfer(v_cur, v_t, *surrogate_, config_.transfer, init);

    SparseQueryConfig qcfg = config_.query;
    qcfg.tau = config_.transfer.tau;
    qcfg.m = config_.m;
    qcfg.eta = config_.eta;
    qcfg.seed = config_.query.seed + static_cast<std::uint64_t>(h) * 7919;
    const SparseQueryResult sq =
        sparse_query(v_cur, st.perturbation, victim, ctx, qcfg);

    out.t_history.insert(out.t_history.end(), sq.t_history.begin(),
                         sq.t_history.end());

    // Re-initialize for the next round: v ← v_adv, and {I, F} seed the next
    // SparseTransfer. θ restarts at 0 because v_cur has already absorbed the
    // previous perturbation — carrying θ over would apply it twice.
    v_cur = sq.v_adv;
    Perturbation next(v.geometry());
    next.pixel_mask() = st.perturbation.pixel_mask();
    next.frame_mask() = st.perturbation.frame_mask();
    init = std::move(next);
  }

  out.adversarial = std::move(v_cur);
  out.perturbation = out.adversarial.data() - v.data();
  out.queries = victim.query_count() - queries_before;
  return out;
}

}  // namespace duo::attack
