#include "attack/duo.hpp"

#include <cstdio>
#include <string>
#include <type_traits>
#include <utility>

#include "attack/checkpoint.hpp"
#include "models/serialization.hpp"

namespace duo::attack {

DuoAttack::DuoAttack(models::FeatureExtractor& surrogate, DuoConfig config)
    : surrogate_(&surrogate),
      config_(std::move(config)),
      name_((config_.goal == AttackGoal::kTargeted ? "DUO-" : "DUO-U-") +
            surrogate.name()) {
  config_.transfer.goal = config_.goal;
}

AttackOutcome DuoAttack::run(const video::Video& v, const video::Video& v_t,
                             retrieval::BlackBoxHandle& victim) {
  return run_impl(v, v_t, victim);
}

AttackOutcome DuoAttack::run(const video::Video& v, const video::Video& v_t,
                             serve::ResilientHandle& victim) {
  return run_impl(v, v_t, victim);
}

// The pipeline body, shared by both handle types. The only handle-dependent
// step is the inner query loop: a plain BlackBoxHandle runs the serial
// sparse_query, a ResilientHandle runs sparse_query_pipelined (two
// candidates in flight through the retry policy). Both expose query_count()
// with victim-side billing semantics, so the accounting below is identical.
template <typename Handle>
AttackOutcome DuoAttack::run_impl(const video::Video& v,
                                  const video::Video& v_t, Handle& victim) {
  const std::int64_t queries_before = victim.query_count();

  AttackOutcome out;
  video::Video v_cur = v;  // base video of the current outer iteration
  std::optional<Perturbation> init;
  int start_h = 0;

  // Query accounting across processes: queries_total carries the billed
  // count from a restored checkpoint, this process's objective-context
  // fetches (measured off the victim counter), and each executed round's
  // queries_spent — which itself carries the mid-round checkpointed count
  // when the round resumed. The sum equals the true victim-side billing of
  // every process that contributed to the attack.
  const bool checkpointing = !config_.checkpoint_path.empty();
  const std::uint64_t source_hash =
      checkpointing ? models::io::fnv1a(v.data()) : 0;
  std::int64_t queries_restored = 0;

  // The checkpoint is consulted BEFORE the objective-context fetch: a
  // matching one restores R^m(v) / R^m(v_t) directly, so resuming after a
  // fatal (even one during round 0's sparse_transfer, before any query
  // attack progress) costs zero context re-fetch queries.
  std::optional<ObjectiveContext> restored_ctx;
  if (checkpointing && config_.resume) {
    DuoCheckpoint ck;
    if (load_checkpoint(ck, config_.checkpoint_path) &&
        ck.geometry == v.geometry() && ck.source_hash == source_hash &&
        ck.iter_numH == config_.iter_numH) {
      start_h = static_cast<int>(ck.next_round);
      out.t_history = std::move(ck.t_history);
      queries_restored = ck.queries;
      v_cur = video::Video(std::move(ck.v_cur), v.geometry(), v.label(),
                           v.id());
      if (ck.has_init) {
        Perturbation restored(v.geometry());
        restored.pixel_mask() = std::move(ck.pixel_mask);
        restored.frame_mask() = std::move(ck.frame_mask);
        init = std::move(restored);
      }
      if (ck.has_ctx) {
        ObjectiveContext ctx;
        ctx.list_v = std::move(ck.list_v);
        ctx.list_vt = std::move(ck.list_vt);
        ctx.m = config_.m;
        ctx.eta = config_.eta;
        restored_ctx = std::move(ctx);
      }
    }
  }

  ObjectiveContext ctx =
      restored_ctx.has_value()
          ? std::move(*restored_ctx)
          : make_objective_context(victim, v, v_t, config_.m, config_.eta);
  ctx.untargeted = config_.goal == AttackGoal::kUntargeted;
  std::int64_t queries_total =
      queries_restored + (victim.query_count() - queries_before);

  for (int h = start_h; h < config_.iter_numH; ++h) {
    if (checkpointing) {
      DuoCheckpoint ck;
      ck.geometry = v.geometry();
      ck.source_hash = source_hash;
      ck.iter_numH = config_.iter_numH;
      ck.next_round = h;
      ck.t_history = out.t_history;
      ck.queries = queries_total;
      ck.has_ctx = true;
      ck.list_v = ctx.list_v;
      ck.list_vt = ctx.list_vt;
      ck.v_cur = v_cur.data();
      ck.has_init = init.has_value();
      if (init) {
        ck.pixel_mask = init->pixel_mask();
        ck.frame_mask = init->frame_mask();
      }
      save_checkpoint(ck, config_.checkpoint_path);
    }

    const SparseTransferResult st =
        sparse_transfer(v_cur, v_t, *surrogate_, config_.transfer, init);

    SparseQueryConfig qcfg = config_.query;
    qcfg.tau = config_.transfer.tau;
    qcfg.m = config_.m;
    qcfg.eta = config_.eta;
    qcfg.seed = config_.query.seed + static_cast<std::uint64_t>(h) * 7919;
    if (checkpointing) {
      qcfg.checkpoint_path =
          config_.checkpoint_path + ".h" + std::to_string(h);
      qcfg.resume = config_.resume;
      // Each round's file is garbage-collected as soon as that round
      // finishes cleanly; the outer file below covers the loop itself.
      qcfg.remove_on_success = config_.remove_on_success;
    }
    const SparseQueryResult sq = [&] {
      if constexpr (std::is_same_v<Handle, serve::ResilientHandle>) {
        return sparse_query_pipelined(v_cur, st.perturbation, victim, ctx,
                                      qcfg);
      } else {
        return sparse_query(v_cur, st.perturbation, victim, ctx, qcfg);
      }
    }();
    queries_total += sq.queries_spent;

    out.t_history.insert(out.t_history.end(), sq.t_history.begin(),
                         sq.t_history.end());

    // Re-initialize for the next round: v ← v_adv, and {I, F} seed the next
    // SparseTransfer. θ restarts at 0 because v_cur has already absorbed the
    // previous perturbation — carrying θ over would apply it twice.
    v_cur = sq.v_adv;
    Perturbation next(v.geometry());
    next.pixel_mask() = st.perturbation.pixel_mask();
    next.frame_mask() = st.perturbation.frame_mask();
    init = std::move(next);
  }

  if (checkpointing && config_.remove_on_success) {
    // Clean finish: drop the outer checkpoint and (defensively — a crashed
    // earlier process may have left files this run resumed past) every
    // per-round file. Interrupted runs never reach this point.
    std::remove(config_.checkpoint_path.c_str());
    for (int h = 0; h < config_.iter_numH; ++h) {
      std::remove(
          (config_.checkpoint_path + ".h" + std::to_string(h)).c_str());
    }
  }

  out.adversarial = std::move(v_cur);
  out.perturbation = out.adversarial.data() - v.data();
  out.queries = queries_total;
  return out;
}

}  // namespace duo::attack
