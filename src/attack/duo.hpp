#pragma once

// The DUO attack pipeline (§IV): SparseTransfer ⟶ SparseQuery, looped
// iter_numH times with {I, F, v} re-initialized from the previous round
// to escape local optima (§IV-C "Summary").

#include <memory>
#include <string>

#include "attack/attack.hpp"
#include "attack/sparse_query.hpp"
#include "attack/sparse_transfer.hpp"
#include "models/feature_extractor.hpp"

namespace duo::attack {

struct DuoConfig {
  SparseTransferConfig transfer;
  SparseQueryConfig query;
  int iter_numH = 2;  // paper: "a small number ... less than 4"
  std::size_t m = 10;
  double eta = 1.0;
  // kUntargeted ignores v_t throughout: SparseTransfer pushes away from
  // Fea(v) and SparseQuery minimizes H(R(v_adv), R(v)).
  AttackGoal goal = AttackGoal::kTargeted;
  // Checkpoint/resume for the outer loop. With a non-empty path, run() saves
  // a round-level checkpoint (attack/checkpoint.hpp) at the start of every
  // round and gives each round's SparseQuery its own derived checkpoint path
  // ("<path>.h<round>") for mid-round durability. With resume = true a
  // matching checkpoint restores the loop at the recorded round — including
  // the objective context's reference lists, so a resumed process does NOT
  // re-bill the 2-query context fetch; the final adversarial video is
  // bitwise identical to an uninterrupted run.
  std::string checkpoint_path;
  bool resume = false;
  // Checkpoint GC: after a clean finish, delete the outer checkpoint and
  // every per-round file. Interrupted runs keep all of theirs. Also
  // propagated to each round's SparseQueryConfig.
  bool remove_on_success = false;
};

class DuoAttack final : public Attack {
 public:
  // `surrogate` must be trained (attack/surrogate.hpp) and outlive the
  // attack. The display name follows the paper: DUO-<surrogate backbone>.
  DuoAttack(models::FeatureExtractor& surrogate, DuoConfig config);

  AttackOutcome run(const video::Video& v, const video::Video& v_t,
                    retrieval::BlackBoxHandle& victim) override;

  // Same pipeline through the retrying client policy: every round's query
  // loop runs sparse_query_pipelined (both ±ε candidates in flight), and the
  // objective-context fetch issues its two queries concurrently. Against a
  // deterministic victim the outcome is bitwise identical to the serial
  // overload for the same config; only billing (retries, speculative −ε
  // forwards) and wall time differ. Fatal victim errors propagate as
  // serve::ServeError after a best-effort checkpoint.
  AttackOutcome run(const video::Video& v, const video::Video& v_t,
                    serve::ResilientHandle& victim);

  std::string name() const override { return name_; }

  const DuoConfig& config() const noexcept { return config_; }

 private:
  template <typename Handle>
  AttackOutcome run_impl(const video::Video& v, const video::Video& v_t,
                         Handle& victim);

  models::FeatureExtractor* surrogate_;
  DuoConfig config_;
  std::string name_;
};

}  // namespace duo::attack
