#include "attack/evaluation.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "metrics/metrics.hpp"

namespace duo::attack {

std::vector<AttackPair> sample_attack_pairs(
    const std::vector<video::Video>& pool, std::size_t count,
    std::uint64_t seed) {
  DUO_CHECK_MSG(pool.size() >= 2, "need at least two videos");
  Rng rng(seed);
  std::vector<AttackPair> pairs;
  pairs.reserve(count);
  int guard = 0;
  while (pairs.size() < count) {
    DUO_CHECK_MSG(++guard < 100000, "could not sample differently-labeled pairs");
    const auto& a = pool[rng.uniform_index(pool.size())];
    const auto& b = pool[rng.uniform_index(pool.size())];
    if (a.label() == b.label()) continue;
    pairs.push_back({a, b});
  }
  return pairs;
}

AttackEvaluation evaluate_attack(Attack& attack,
                                 retrieval::RetrievalSystem& victim,
                                 const std::vector<AttackPair>& pairs,
                                 std::size_t m) {
  AttackEvaluation eval;
  eval.attack_name = attack.name();
  for (const auto& pair : pairs) {
    retrieval::BlackBoxHandle handle(victim);
    PairEvaluation pe;

    const auto list_v = victim.retrieve(pair.v, m);
    const auto list_vt = victim.retrieve(pair.v_t, m);
    pe.ap_m_before = metrics::ap_at_m(list_v, list_vt);

    AttackOutcome outcome = attack.run(pair.v, pair.v_t, handle);
    const auto list_adv = victim.retrieve(outcome.adversarial, m);
    pe.ap_m_after = metrics::ap_at_m(list_adv, list_vt);
    pe.spa = metrics::sparsity(outcome.perturbation);
    pe.pscore = metrics::pscore(outcome.perturbation);
    pe.queries = outcome.queries;
    pe.t_history = std::move(outcome.t_history);

    eval.mean_ap_m_before_pct += pe.ap_m_before * 100.0;
    eval.mean_ap_m_after_pct += pe.ap_m_after * 100.0;
    eval.mean_spa += static_cast<double>(pe.spa);
    eval.mean_pscore += pe.pscore;
    eval.mean_queries += static_cast<double>(pe.queries);
    eval.pairs.push_back(std::move(pe));
  }
  const double n = static_cast<double>(pairs.size());
  if (n > 0) {
    eval.mean_ap_m_before_pct /= n;
    eval.mean_ap_m_after_pct /= n;
    eval.mean_spa /= n;
    eval.mean_pscore /= n;
    eval.mean_queries /= n;
  }
  return eval;
}

double evaluate_without_attack(retrieval::RetrievalSystem& victim,
                               const std::vector<AttackPair>& pairs,
                               std::size_t m) {
  double acc = 0.0;
  for (const auto& pair : pairs) {
    const auto list_v = victim.retrieve(pair.v, m);
    const auto list_vt = victim.retrieve(pair.v_t, m);
    acc += metrics::ap_at_m(list_v, list_vt) * 100.0;
  }
  return pairs.empty() ? 0.0 : acc / static_cast<double>(pairs.size());
}

}  // namespace duo::attack
