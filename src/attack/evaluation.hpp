#pragma once

// Attack evaluation harness shared by all benches: sample (v, v_t) pairs,
// run an attack on each, measure AP@m / Spa / PScore (§V-A).

#include <cstdint>
#include <vector>

#include "attack/attack.hpp"
#include "retrieval/system.hpp"
#include "video/video.hpp"

namespace duo::attack {

struct AttackPair {
  video::Video v;    // original video
  video::Video v_t;  // target video (different label)
};

// Random pairs of differently-labeled videos from `pool` (paper §V-A: ten
// pairs from the training set).
std::vector<AttackPair> sample_attack_pairs(const std::vector<video::Video>& pool,
                                            std::size_t count,
                                            std::uint64_t seed);

struct PairEvaluation {
  double ap_m_before = 0.0;  // AP@m(R(v), R(v_t)) — "w/o attack"
  double ap_m_after = 0.0;   // AP@m(R(v_adv), R(v_t))
  std::int64_t spa = 0;
  double pscore = 0.0;
  std::int64_t queries = 0;
  std::vector<double> t_history;
};

struct AttackEvaluation {
  std::string attack_name;
  double mean_ap_m_before_pct = 0.0;
  double mean_ap_m_after_pct = 0.0;
  double mean_spa = 0.0;
  double mean_pscore = 0.0;
  double mean_queries = 0.0;
  std::vector<PairEvaluation> pairs;
};

// Run `attack` on every pair against `victim`; m is the retrieval depth.
AttackEvaluation evaluate_attack(Attack& attack,
                                 retrieval::RetrievalSystem& victim,
                                 const std::vector<AttackPair>& pairs,
                                 std::size_t m);

// The "w/o attack" row of Table II: AP@m between R(v) and R(v_t) only.
double evaluate_without_attack(retrieval::RetrievalSystem& victim,
                               const std::vector<AttackPair>& pairs,
                               std::size_t m);

}  // namespace duo::attack
