#include "attack/lp_box_admm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace duo::attack {

namespace {

// Project y onto the sphere { x : ‖x − ½·1‖ = √d / 2 }.
void project_sphere(std::vector<float>& y) {
  const std::size_t d = y.size();
  const float radius = 0.5f * std::sqrt(static_cast<float>(d));
  double norm2 = 0.0;
  for (const float v : y) {
    const double c = static_cast<double>(v) - 0.5;
    norm2 += c * c;
  }
  const float norm = static_cast<float>(std::sqrt(norm2)) + 1e-12f;
  const float scale = radius / norm;
  for (auto& v : y) v = 0.5f + (v - 0.5f) * scale;
}

}  // namespace

Tensor lp_box_admm_relax(const Tensor& scores, const LpBoxAdmmConfig& config) {
  const std::int64_t d = scores.size();
  DUO_CHECK_MSG(d > 0, "lp_box_admm: empty scores");

  // Normalize g so rho is scale-free.
  const float gmax = std::max(scores.abs().max(), 1e-12f);
  std::vector<float> g(static_cast<std::size_t>(d));
  for (std::int64_t i = 0; i < d; ++i) g[static_cast<std::size_t>(i)] = scores[i] / gmax;

  std::vector<float> x(static_cast<std::size_t>(d), 0.5f);
  std::vector<float> z1 = x, z2 = x;           // box / sphere splits
  std::vector<float> u1(static_cast<std::size_t>(d), 0.0f);
  std::vector<float> u2(static_cast<std::size_t>(d), 0.0f);

  float rho = config.rho;
  for (int it = 0; it < config.iterations; ++it) {
    // x-update: argmin gᵀx + ρ/2 (‖x−z1+u1‖² + ‖x−z2+u2‖²)  (closed form)
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.5f * (z1[i] - u1[i] + z2[i] - u2[i] - g[i] / rho);
    }
    // z1-update: box projection of x + u1.
    for (std::size_t i = 0; i < x.size(); ++i) {
      z1[i] = std::clamp(x[i] + u1[i], 0.0f, 1.0f);
    }
    // z2-update: sphere projection of x + u2.
    for (std::size_t i = 0; i < x.size(); ++i) z2[i] = x[i] + u2[i];
    project_sphere(z2);
    // Dual updates.
    for (std::size_t i = 0; i < x.size(); ++i) {
      u1[i] += x[i] - z1[i];
      u2[i] += x[i] - z2[i];
    }
    rho *= config.rho_growth;
  }

  Tensor out(scores.shape());
  for (std::int64_t i = 0; i < d; ++i) {
    out[i] = std::clamp(x[static_cast<std::size_t>(i)], 0.0f, 1.0f);
  }
  return out;
}

namespace {
// Top-k of `relaxed`, with ties broken by the original objective `g`
// (smaller g preferred — bigger loss reduction). Without the tie-break, the
// saturated plateaus the ADMM relaxation produces (many coordinates exactly
// at the box bound) would degenerate to index order.
Tensor binarize_topk(const Tensor& relaxed, const Tensor& g, std::int64_t k) {
  const std::int64_t d = relaxed.size();
  const std::int64_t kk = std::min(k, d);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(d));
  std::iota(idx.begin(), idx.end(), 0);
  std::nth_element(idx.begin(), idx.begin() + kk, idx.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     if (relaxed[a] != relaxed[b]) return relaxed[a] > relaxed[b];
                     if (g[a] != g[b]) return g[a] < g[b];
                     return a < b;
                   });
  Tensor mask(relaxed.shape());
  for (std::int64_t i = 0; i < kk; ++i) {
    mask[idx[static_cast<std::size_t>(i)]] = 1.0f;
  }
  return mask;
}
}  // namespace

Tensor lp_box_admm_select(const Tensor& scores, std::int64_t k,
                          const LpBoxAdmmConfig& config) {
  return binarize_topk(lp_box_admm_relax(scores, config), scores, k);
}

Tensor topk_select(const Tensor& scores, std::int64_t k) {
  // Selecting element i reduces the loss by −scores[i]; pick most negative.
  Tensor neg = -scores;
  return binarize_topk(neg, scores, k);
}

}  // namespace duo::attack
