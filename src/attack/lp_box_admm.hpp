#pragma once

// ℓp-box ADMM pixel selection (Wu & Ghanem [18], as used by the paper for
// the I-update of Algorithm 1).
//
// The binary constraint x ∈ {0,1}^d is replaced by the intersection of the
// box [0,1]^d and the ℓ2 sphere { x : ‖x − ½·1‖² = d/4 }. We minimize the
// linearized objective gᵀx (g = per-element loss reduction when selecting
// the element) under those two constraints with ADMM, then binarize by
// taking the top-k coordinates of the relaxed solution.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace duo::attack {

struct LpBoxAdmmConfig {
  int iterations = 20;
  float rho = 1.0f;       // penalty weight
  float rho_growth = 1.03f;  // mild continuation on rho
};

// Returns the relaxed solution x ∈ [0,1]^d (same shape as `scores`).
// `scores` holds g; more-negative g (bigger loss reduction) → closer to 1.
Tensor lp_box_admm_relax(const Tensor& scores, const LpBoxAdmmConfig& config);

// Full selection: relax with ADMM, then pick the k largest coordinates of
// the relaxed solution. Returns a binary mask tensor.
Tensor lp_box_admm_select(const Tensor& scores, std::int64_t k,
                          const LpBoxAdmmConfig& config);

// Ablation baseline: plain top-k of −scores without the ADMM relaxation
// (DESIGN.md §5 "ADMM-style pixel update" ablation).
Tensor topk_select(const Tensor& scores, std::int64_t k);

}  // namespace duo::attack
