#include "attack/objective.hpp"

namespace duo::attack {

ObjectiveContext make_objective_context(retrieval::BlackBoxHandle& victim,
                                        const video::Video& v,
                                        const video::Video& v_t, std::size_t m,
                                        double eta) {
  ObjectiveContext ctx;
  ctx.m = m;
  ctx.eta = eta;
  ctx.list_v = victim.retrieve(v, m);
  ctx.list_vt = victim.retrieve(v_t, m);
  return ctx;
}

double t_loss_from_list(const metrics::RetrievalList& list_adv,
                        const ObjectiveContext& ctx) {
  if (ctx.untargeted) {
    return metrics::ndcg_similarity(list_adv, ctx.list_v) + ctx.eta;
  }
  return metrics::ndcg_similarity(list_adv, ctx.list_v) -
         metrics::ndcg_similarity(list_adv, ctx.list_vt) + ctx.eta;
}

double t_loss(retrieval::BlackBoxHandle& victim, const video::Video& v_adv,
              const ObjectiveContext& ctx) {
  return t_loss_from_list(victim.retrieve(v_adv, ctx.m), ctx);
}

}  // namespace duo::attack
