#pragma once

// The SparseQuery ranking objective (Eq. 2):
//   T(v_adv, v, v_t) = H(R^m(v_adv), R^m(v)) − H(R^m(v_adv), R^m(v_t)) + η
// Decreasing T pulls the adversarial retrieval list away from the original
// video's list and toward the target's. H is the NDCG-style co-occurrence
// similarity (metrics/metrics.hpp).

#include "metrics/metrics.hpp"
#include "retrieval/system.hpp"
#include "video/video.hpp"

namespace duo::attack {

struct ObjectiveContext {
  metrics::RetrievalList list_v;   // R^m(v), fetched once
  metrics::RetrievalList list_vt;  // R^m(v_t), fetched once
  std::size_t m = 10;
  double eta = 1.0;  // margin constant η
  // Untargeted variant (§I): drop the target term; T = H(R(v_adv), R(v)) + η
  // simply pushes the adversarial list away from the original one.
  bool untargeted = false;
};

// Fetch the two reference lists (costs two black-box queries).
ObjectiveContext make_objective_context(retrieval::BlackBoxHandle& victim,
                                        const video::Video& v,
                                        const video::Video& v_t, std::size_t m,
                                        double eta = 1.0);

// Evaluate T for a candidate adversarial video (costs one query).
double t_loss(retrieval::BlackBoxHandle& victim, const video::Video& v_adv,
              const ObjectiveContext& ctx);

// T from an already-retrieved list (no query).
double t_loss_from_list(const metrics::RetrievalList& list_adv,
                        const ObjectiveContext& ctx);

}  // namespace duo::attack
