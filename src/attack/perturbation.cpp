#include "attack/perturbation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace duo::attack {

Perturbation::Perturbation(const video::VideoGeometry& geometry)
    : geometry_(geometry),
      pixel_mask_(Tensor::ones(geometry.tensor_shape())),
      frame_mask_(Tensor::ones(geometry.tensor_shape())),
      magnitude_(geometry.tensor_shape()) {}

Tensor Perturbation::combined() const {
  Tensor phi = pixel_mask_;
  phi *= frame_mask_;
  phi *= magnitude_;
  return phi;
}

std::int64_t Perturbation::selected_pixels() const noexcept {
  return pixel_mask_.norm_l0(0.5f);
}

std::int64_t Perturbation::selected_frames() const {
  const std::int64_t fe = geometry_.elements_per_frame();
  std::int64_t count = 0;
  const float* d = frame_mask_.data();
  for (std::int64_t f = 0; f < geometry_.frames; ++f) {
    if (d[f * fe] > 0.5f) ++count;
  }
  return count;
}

void Perturbation::set_frames(const std::vector<std::int64_t>& frames) {
  frame_mask_.fill(0.0f);
  const std::int64_t fe = geometry_.elements_per_frame();
  float* d = frame_mask_.data();
  for (const std::int64_t f : frames) {
    DUO_CHECK_MSG(f >= 0 && f < geometry_.frames, "frame index out of range");
    for (std::int64_t e = 0; e < fe; ++e) d[f * fe + e] = 1.0f;
  }
}

std::vector<std::int64_t> Perturbation::selected_frame_indices() const {
  std::vector<std::int64_t> out;
  const std::int64_t fe = geometry_.elements_per_frame();
  const float* d = frame_mask_.data();
  for (std::int64_t f = 0; f < geometry_.frames; ++f) {
    if (d[f * fe] > 0.5f) out.push_back(f);
  }
  return out;
}

void Perturbation::restrict_pixels_to_frames_topk(const Tensor& scores,
                                                  std::int64_t k) {
  DUO_CHECK_MSG(scores.same_shape(pixel_mask_), "scores shape mismatch");
  DUO_CHECK_MSG(k >= 0, "k must be non-negative");
  const std::int64_t n = pixel_mask_.size();

  // Candidates: elements in selected frames.
  std::vector<std::int64_t> candidates;
  candidates.reserve(static_cast<std::size_t>(n));
  const float* fm = frame_mask_.data();
  for (std::int64_t i = 0; i < n; ++i) {
    if (fm[i] > 0.5f) candidates.push_back(i);
  }
  const std::int64_t kk =
      std::min<std::int64_t>(k, static_cast<std::int64_t>(candidates.size()));

  const float* s = scores.data();
  auto cmp = [&](std::int64_t a, std::int64_t b) {
    if (s[a] != s[b]) return s[a] > s[b];
    return a < b;
  };
  std::nth_element(candidates.begin(), candidates.begin() + kk,
                   candidates.end(), cmp);

  pixel_mask_.fill(0.0f);
  float* pm = pixel_mask_.data();
  for (std::int64_t i = 0; i < kk; ++i) {
    pm[candidates[static_cast<std::size_t>(i)]] = 1.0f;
  }
}

video::Video Perturbation::apply_to(const video::Video& v) const {
  DUO_CHECK_MSG(v.geometry() == geometry_, "video geometry mismatch");
  const Tensor phi = combined();
  Tensor data = v.data();
  data += phi;
  data.clamp_(0.0f, 255.0f);
  // Quantize: an attacker uploads integer pixels, so sub-0.5 perturbations
  // vanish. This is what makes the measured Spa much smaller than k (the
  // regularized θ leaves most selected pixels below the rounding threshold).
  for (auto& x : data.flat()) x = std::round(x);
  return video::Video(std::move(data), geometry_, v.label(), v.id());
}

Tensor Perturbation::effective_perturbation(const video::Video& v) const {
  const video::Video adv = apply_to(v);
  return adv.data() - v.data();
}

}  // namespace duo::attack
