#pragma once

// Perturbation φ = I ⊙ F ⊙ θ (paper §III-C / §IV-B): a pixel-selection mask
// I, a frame-selection mask F, and a magnitude tensor θ, all in pixel space
// [N, H, W, C] with values on the [0, 255] scale.

#include <cstdint>
#include <vector>

#include "video/video.hpp"

namespace duo::attack {

class Perturbation {
 public:
  Perturbation() = default;
  explicit Perturbation(const video::VideoGeometry& geometry);

  const video::VideoGeometry& geometry() const noexcept { return geometry_; }

  Tensor& pixel_mask() noexcept { return pixel_mask_; }
  const Tensor& pixel_mask() const noexcept { return pixel_mask_; }
  Tensor& frame_mask() noexcept { return frame_mask_; }
  const Tensor& frame_mask() const noexcept { return frame_mask_; }
  Tensor& magnitude() noexcept { return magnitude_; }
  const Tensor& magnitude() const noexcept { return magnitude_; }

  // φ = I ⊙ F ⊙ θ.
  Tensor combined() const;

  // Number of selected pixels 1ᵀI (counting elements, like Spa).
  std::int64_t selected_pixels() const noexcept;
  // Number of selected frames ‖F‖₂,₀.
  std::int64_t selected_frames() const;

  // Set the frame mask from a list of selected frame indices.
  void set_frames(const std::vector<std::int64_t>& frames);
  // Selected frame indices in ascending order.
  std::vector<std::int64_t> selected_frame_indices() const;

  // Zero out pixel-mask entries outside selected frames, then keep only the
  // top-k surviving pixels ranked by score descending (larger = better;
  // ties by index). Enforces the constraint 1ᵀI = k within ‖F‖₂,₀ = n.
  void restrict_pixels_to_frames_topk(const Tensor& scores, std::int64_t k);

  // Clamp θ to [−τ, τ].
  void clamp_magnitude(float tau) { magnitude_.clamp_(-tau, tau); }

  // v_adv = round(clip(v + φ)): quantized to integer pixels in [0, 255],
  // matching what a real attacker must upload. Label/id copied from `v`.
  video::Video apply_to(const video::Video& v) const;

  // The effective perturbation of the *uploaded* video: quantized(v+φ) − v.
  Tensor effective_perturbation(const video::Video& v) const;

 private:
  video::VideoGeometry geometry_;
  Tensor pixel_mask_;  // I ∈ {0,1}^[N,H,W,C]
  Tensor frame_mask_;  // F ∈ {0,1}^[N,H,W,C], constant within each frame
  Tensor magnitude_;   // θ ∈ [−τ, τ]^[N,H,W,C]
};

}  // namespace duo::attack
