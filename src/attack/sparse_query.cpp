#include "attack/sparse_query.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>

namespace duo::attack {

namespace {

// CLIP of Eq. 3: pixel validity and the per-pixel ℓ∞ budget around v.
float clip_pixel(float candidate, float original, float tau) {
  const float lo = std::max(0.0f, original - tau);
  const float hi = std::min(255.0f, original + tau);
  return std::clamp(candidate, lo, hi);
}

video::Video quantized(const video::Video& v) {
  Tensor data = v.data();
  for (auto& x : data.flat()) x = std::round(x);
  return video::Video(std::move(data), v.geometry(), v.label(), v.id());
}

// Shared Alg. 2 step plan for the serial and pipelined drivers: the support
// of φ (Eq. 4), the step magnitude ε (line 3), and the coordinate group
// size. Pure computation — no Rng draws — so both drivers start from
// identical plans and identical Rng streams; that, plus replaying the serial
// acceptance order, is what makes the pipelined accepted-perturbation
// sequence bitwise equal to the serial one.
struct StepPlan {
  std::vector<std::int64_t> support;
  float eps = 0.0f;
  std::size_t group = 1;
};

StepPlan make_step_plan(const Perturbation& perturbation,
                        const SparseQueryConfig& config) {
  StepPlan plan;
  // Support of φ (Eq. 4): only these coordinates may be perturbed further.
  // The mask product I⊙F defines the support; θ supplies the step magnitude
  // (a coordinate with θ = 0 is still selectable — Vanilla starts that way).
  const Tensor phi = perturbation.combined();
  const Tensor support_mask =
      perturbation.pixel_mask() * perturbation.frame_mask();
  for (std::int64_t i = 0; i < support_mask.size(); ++i) {
    if (support_mask[i] > 0.5f) plan.support.push_back(i);
  }
  if (plan.support.empty()) return plan;

  // Line 3: ε from θ — the step magnitude is the mean |θ| over the support.
  // When θ carries no signal (e.g. Vanilla's random support starts at θ = 0)
  // fall back to τ/4, and always floor at 1 pixel level so quantization
  // cannot swallow accepted steps.
  double theta_mass = 0.0;
  for (const auto i : plan.support) theta_mass += std::fabs(phi[i]);
  const float theta_mean = static_cast<float>(
      theta_mass / static_cast<double>(plan.support.size()));
  plan.eps =
      std::max(1.0f, theta_mean >= 1.0f ? theta_mean : config.tau * 0.25f);

  plan.group =
      config.coords_per_step > 0
          ? static_cast<std::size_t>(config.coords_per_step)
          : std::clamp<std::size_t>(plan.support.size() / 12, 1, 64);
  return plan;
}

}  // namespace

SparseQueryResult sparse_query(const video::Video& v,
                               const Perturbation& perturbation,
                               retrieval::BlackBoxHandle& victim,
                               const ObjectiveContext& ctx,
                               const SparseQueryConfig& config) {
  const video::VideoGeometry& g = v.geometry();
  DUO_CHECK_MSG(perturbation.geometry() == g, "perturbation geometry mismatch");
  Rng rng(config.seed);
  const StepPlan plan = make_step_plan(perturbation, config);

  SparseQueryResult result;
  const std::int64_t queries_before = victim.query_count();

  // Line 1: v_adv⁰ = v + φ (the paper's Alg. 2 writes v; the pipeline passes
  // the SparseTransfer output by handing us φ).
  video::Video v_adv = perturbation.apply_to(v);
  // Quantized shadow of v_adv, kept in sync per touched coordinate: every
  // victim query sees round(v_adv) without re-rounding the whole tensor
  // (the full copy used to dominate each step at paper-scale geometry).
  video::Video q_adv = quantized(v_adv);
  // Line 2: T⁰.
  double t_current = t_loss(victim, q_adv, ctx);
  result.t_history.push_back(t_current);

  if (plan.support.empty()) {
    result.v_adv = std::move(v_adv);
    result.final_t = t_current;
    result.queries_spent = victim.query_count() - queries_before;
    return result;
  }

  // Without-replacement sampling: shuffled support, reshuffled when drained.
  std::vector<std::int64_t> deck = plan.support;
  rng.shuffle(deck);
  std::size_t deck_pos = 0;
  int stall = 0;

  std::vector<std::int64_t> coords;
  std::vector<float> before;
  coords.reserve(plan.group);
  before.reserve(plan.group);

  for (int kappa = 1; kappa < config.iter_numQ; ++kappa) {
    coords.clear();
    for (std::size_t c = 0; c < plan.group; ++c) {
      if (deck_pos >= deck.size()) {
        rng.shuffle(deck);
        deck_pos = 0;
      }
      coords.push_back(deck[deck_pos++]);
    }

    bool accepted = false;
    for (const float xi : {+plan.eps, -plan.eps}) {
      before.clear();
      bool changed = false;
      for (const auto coord : coords) {
        const float prev = v_adv.data()[coord];
        before.push_back(prev);
        const float after = clip_pixel(prev + xi, v.data()[coord], config.tau);
        if (after != prev) changed = true;
        v_adv.data()[coord] = after;
        q_adv.data()[coord] = std::round(after);
      }
      if (!changed) {
        for (std::size_t c = 0; c < coords.size(); ++c) {
          v_adv.data()[coords[c]] = before[c];
          q_adv.data()[coords[c]] = std::round(before[c]);
        }
        continue;
      }
      const double t_candidate = t_loss(victim, q_adv, ctx);
      if (t_candidate < t_current) {
        t_current = t_candidate;
        accepted = true;
        break;  // Alg. 2 line 11
      }
      for (std::size_t c = 0; c < coords.size(); ++c) {
        v_adv.data()[coords[c]] = before[c];  // revert the group
        q_adv.data()[coords[c]] = std::round(before[c]);
      }
    }
    result.t_history.push_back(t_current);
    stall = accepted ? 0 : stall + 1;
    if (config.patience > 0 && stall >= config.patience) break;
  }

  result.v_adv = std::move(q_adv);
  result.final_t = t_current;
  result.queries_spent = victim.query_count() - queries_before;
  return result;
}

SparseQueryResult sparse_query_pipelined(const video::Video& v,
                                         const Perturbation& perturbation,
                                         serve::AsyncBlackBoxHandle& victim,
                                         const ObjectiveContext& ctx,
                                         const SparseQueryConfig& config) {
  const video::VideoGeometry& g = v.geometry();
  DUO_CHECK_MSG(perturbation.geometry() == g, "perturbation geometry mismatch");
  Rng rng(config.seed);
  const StepPlan plan = make_step_plan(perturbation, config);

  SparseQueryResult result;
  const std::int64_t queries_before = victim.query_count();

  video::Video v_adv = perturbation.apply_to(v);
  video::Video q_adv = quantized(v_adv);
  double t_current = t_loss_from_list(victim.submit(q_adv, ctx.m).get(), ctx);
  result.t_history.push_back(t_current);

  if (plan.support.empty()) {
    result.v_adv = std::move(v_adv);
    result.final_t = t_current;
    result.queries_spent = victim.query_count() - queries_before;
    return result;
  }

  std::vector<std::int64_t> deck = plan.support;
  rng.shuffle(deck);
  std::size_t deck_pos = 0;
  int stall = 0;

  std::vector<std::int64_t> coords;
  std::vector<float> plus_vals;
  std::vector<float> minus_vals;
  coords.reserve(plan.group);
  plus_vals.reserve(plan.group);
  minus_vals.reserve(plan.group);

  for (int kappa = 1; kappa < config.iter_numQ; ++kappa) {
    coords.clear();
    for (std::size_t c = 0; c < plan.group; ++c) {
      if (deck_pos >= deck.size()) {
        rng.shuffle(deck);
        deck_pos = 0;
      }
      coords.push_back(deck[deck_pos++]);
    }

    // Both sign candidates from the same base values. (The serial path
    // computes the −ε candidate only after reverting +ε, i.e. from these
    // exact values, so the candidates — and the "changed" skips — match.)
    plus_vals.clear();
    minus_vals.clear();
    bool changed_plus = false;
    bool changed_minus = false;
    for (const auto coord : coords) {
      const float prev = v_adv.data()[coord];
      const float up = clip_pixel(prev + plan.eps, v.data()[coord], config.tau);
      const float dn = clip_pixel(prev - plan.eps, v.data()[coord], config.tau);
      if (up != prev) changed_plus = true;
      if (dn != prev) changed_minus = true;
      plus_vals.push_back(up);
      minus_vals.push_back(dn);
    }

    // Launch +ε, then build and launch −ε while the first forward is in
    // flight: candidate evaluation overlaps the perturbation bookkeeping.
    std::future<metrics::RetrievalList> f_plus;
    std::future<metrics::RetrievalList> f_minus;
    if (changed_plus) {
      video::Video cand = q_adv;
      for (std::size_t c = 0; c < coords.size(); ++c) {
        cand.data()[coords[c]] = std::round(plus_vals[c]);
      }
      f_plus = victim.submit(std::move(cand), ctx.m);
    }
    if (changed_minus) {
      video::Video cand = q_adv;
      for (std::size_t c = 0; c < coords.size(); ++c) {
        cand.data()[coords[c]] = std::round(minus_vals[c]);
      }
      f_minus = victim.submit(std::move(cand), ctx.m);
    }

    // Replay the serial acceptance order: +ε wins if it improves, −ε is
    // consulted only otherwise. A speculative −ε forward whose answer goes
    // unused already cost the victim a query and stays counted.
    bool accepted = false;
    if (changed_plus) {
      const double t_candidate = t_loss_from_list(f_plus.get(), ctx);
      if (t_candidate < t_current) {
        t_current = t_candidate;
        for (std::size_t c = 0; c < coords.size(); ++c) {
          v_adv.data()[coords[c]] = plus_vals[c];
          q_adv.data()[coords[c]] = std::round(plus_vals[c]);
        }
        accepted = true;
      }
    }
    if (!accepted && changed_minus) {
      const double t_candidate = t_loss_from_list(f_minus.get(), ctx);
      if (t_candidate < t_current) {
        t_current = t_candidate;
        for (std::size_t c = 0; c < coords.size(); ++c) {
          v_adv.data()[coords[c]] = minus_vals[c];
          q_adv.data()[coords[c]] = std::round(minus_vals[c]);
        }
        accepted = true;
      }
    }
    result.t_history.push_back(t_current);
    stall = accepted ? 0 : stall + 1;
    if (config.patience > 0 && stall >= config.patience) break;
  }

  result.v_adv = std::move(q_adv);
  result.final_t = t_current;
  result.queries_spent = victim.query_count() - queries_before;
  return result;
}

ObjectiveContext make_objective_context(serve::AsyncBlackBoxHandle& victim,
                                        const video::Video& v,
                                        const video::Video& v_t, std::size_t m,
                                        double eta) {
  ObjectiveContext ctx;
  ctx.m = m;
  ctx.eta = eta;
  auto list_v = victim.submit(v, m);
  auto list_vt = victim.submit(v_t, m);
  ctx.list_v = list_v.get();
  ctx.list_vt = list_vt.get();
  return ctx;
}

}  // namespace duo::attack
