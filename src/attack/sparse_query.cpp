#include "attack/sparse_query.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <optional>
#include <utility>

#include "attack/checkpoint.hpp"
#include "models/serialization.hpp"

namespace duo::attack {

namespace {

// CLIP of Eq. 3: pixel validity and the per-pixel ℓ∞ budget around v.
float clip_pixel(float candidate, float original, float tau) {
  const float lo = std::max(0.0f, original - tau);
  const float hi = std::min(255.0f, original + tau);
  return std::clamp(candidate, lo, hi);
}

video::Video quantized(const video::Video& v) {
  Tensor data = v.data();
  for (auto& x : data.flat()) x = std::round(x);
  return video::Video(std::move(data), v.geometry(), v.label(), v.id());
}

// Shared Alg. 2 step plan for the serial and pipelined drivers: the support
// of φ (Eq. 4), the step magnitude ε (line 3), and the coordinate group
// size. Pure computation — no Rng draws — so both drivers start from
// identical plans and identical Rng streams; that, plus replaying the serial
// acceptance order, is what makes the pipelined accepted-perturbation
// sequence bitwise equal to the serial one.
struct StepPlan {
  std::vector<std::int64_t> support;
  float eps = 0.0f;
  std::size_t group = 1;
};

StepPlan make_step_plan(const Perturbation& perturbation,
                        const SparseQueryConfig& config) {
  StepPlan plan;
  // Support of φ (Eq. 4): only these coordinates may be perturbed further.
  // The mask product I⊙F defines the support; θ supplies the step magnitude
  // (a coordinate with θ = 0 is still selectable — Vanilla starts that way).
  const Tensor phi = perturbation.combined();
  const Tensor support_mask =
      perturbation.pixel_mask() * perturbation.frame_mask();
  for (std::int64_t i = 0; i < support_mask.size(); ++i) {
    if (support_mask[i] > 0.5f) plan.support.push_back(i);
  }
  if (plan.support.empty()) return plan;

  // Line 3: ε from θ — the step magnitude is the mean |θ| over the support.
  // When θ carries no signal (e.g. Vanilla's random support starts at θ = 0)
  // fall back to τ/4, and always floor at 1 pixel level so quantization
  // cannot swallow accepted steps.
  double theta_mass = 0.0;
  for (const auto i : plan.support) theta_mass += std::fabs(phi[i]);
  const float theta_mean = static_cast<float>(
      theta_mass / static_cast<double>(plan.support.size()));
  plan.eps =
      std::max(1.0f, theta_mean >= 1.0f ? theta_mean : config.tau * 0.25f);

  plan.group =
      config.coords_per_step > 0
          ? static_cast<std::size_t>(config.coords_per_step)
          : std::clamp<std::size_t>(plan.support.size() / 12, 1, 64);
  return plan;
}

// Checkpoint plumbing shared by both drivers. `enabled` gates all of it;
// periodic saves are best-effort (an unwritable path must not kill an attack
// that is otherwise making progress), while the fatal-path save right before
// a rethrow is also best-effort but leaves the previous checkpoint intact on
// failure thanks to the atomic commit.
struct CheckpointContext {
  bool enabled = false;
  bool remove_on_success = false;
  std::string path;
  int every = 0;
  video::VideoGeometry geometry;
  std::uint64_t seed = 0;
  std::int64_t support_size = 0;
  std::uint64_t source_hash = 0;

  static CheckpointContext make(const SparseQueryConfig& config,
                                const video::Video& v, const StepPlan& plan) {
    CheckpointContext cc;
    cc.enabled = !config.checkpoint_path.empty();
    if (!cc.enabled && !config.resume) return cc;
    cc.remove_on_success = config.remove_on_success;
    cc.path = config.checkpoint_path;
    cc.every = config.checkpoint_every;
    cc.geometry = v.geometry();
    cc.seed = config.seed;
    cc.support_size = static_cast<std::int64_t>(plan.support.size());
    cc.source_hash = models::io::fnv1a(v.data());
    return cc;
  }

  bool matches(const SparseQueryCheckpoint& ck) const {
    return ck.geometry == geometry && ck.seed == seed &&
           ck.support_size == support_size && ck.source_hash == source_hash;
  }

  void save(int next_kappa, double t_current,
            const std::vector<double>& t_history, std::int64_t queries,
            int stall, std::uint64_t rng_state,
            const std::vector<std::int64_t>& deck, std::int64_t deck_pos,
            const Tensor& v_adv) const {
    SparseQueryCheckpoint ck;
    ck.geometry = geometry;
    ck.seed = seed;
    ck.support_size = support_size;
    ck.source_hash = source_hash;
    ck.next_iteration = next_kappa;
    ck.t_current = t_current;
    ck.t_history = t_history;
    ck.queries = queries;
    ck.stall = stall;
    ck.rng_state = rng_state;
    ck.deck = deck;
    ck.deck_pos = deck_pos;
    ck.v_adv = v_adv;
    save_checkpoint(ck, path);
  }

  // GC on the successful-return path only: an interrupted run keeps its
  // checkpoint. Best-effort, like the saves.
  void finished() const {
    if (enabled && remove_on_success) std::remove(path.c_str());
  }
};

// Restores checkpointed driver state when resume is requested and a matching
// checkpoint exists. Returns the iteration to continue from and sets
// `resumed`; the flag (not the returned index) distinguishes a fresh start
// from a checkpoint taken during the very first iteration, whose
// next_iteration is also 1 but whose baseline/deck state must NOT be rebuilt.
int try_resume(const SparseQueryConfig& config, const CheckpointContext& cc,
               const StepPlan& plan, video::Video& v_adv, double& t_current,
               std::vector<double>& t_history, std::int64_t& queries_carried,
               int& stall, Rng& rng, std::vector<std::int64_t>& deck,
               std::size_t& deck_pos, bool& resumed) {
  resumed = false;
  if (!config.resume || config.checkpoint_path.empty()) return 1;
  SparseQueryCheckpoint ck;
  if (!load_checkpoint(ck, config.checkpoint_path) || !cc.matches(ck)) {
    return 1;
  }
  if (ck.deck.size() != plan.support.size()) return 1;
  v_adv.data() = std::move(ck.v_adv);
  t_current = ck.t_current;
  t_history = std::move(ck.t_history);
  queries_carried = ck.queries;
  stall = static_cast<int>(ck.stall);
  rng = Rng(ck.rng_state);
  deck = std::move(ck.deck);
  deck_pos = static_cast<std::size_t>(ck.deck_pos);
  resumed = true;
  return static_cast<int>(ck.next_iteration);
}

}  // namespace

SparseQueryResult sparse_query(const video::Video& v,
                               const Perturbation& perturbation,
                               retrieval::BlackBoxHandle& victim,
                               const ObjectiveContext& ctx,
                               const SparseQueryConfig& config) {
  const video::VideoGeometry& g = v.geometry();
  DUO_CHECK_MSG(perturbation.geometry() == g, "perturbation geometry mismatch");
  Rng rng(config.seed);
  const StepPlan plan = make_step_plan(perturbation, config);
  const CheckpointContext cc = CheckpointContext::make(config, v, plan);

  SparseQueryResult result;
  const std::int64_t queries_before = victim.query_count();
  std::int64_t queries_carried = 0;
  const auto queries_total = [&] {
    return queries_carried + victim.query_count() - queries_before;
  };

  // Line 1: v_adv⁰ = v + φ (the paper's Alg. 2 writes v; the pipeline passes
  // the SparseTransfer output by handing us φ).
  video::Video v_adv = perturbation.apply_to(v);
  double t_current = 0.0;
  std::vector<std::int64_t> deck;
  std::size_t deck_pos = 0;
  int stall = 0;

  bool resumed = false;
  const int start_kappa =
      try_resume(config, cc, plan, v_adv, t_current, result.t_history,
                 queries_carried, stall, rng, deck, deck_pos, resumed);
  // Quantized shadow of v_adv, kept in sync per touched coordinate: every
  // victim query sees round(v_adv) without re-rounding the whole tensor
  // (the full copy used to dominate each step at paper-scale geometry).
  video::Video q_adv = quantized(v_adv);
  if (!resumed) {
    // Line 2: T⁰. A resumed run restored T from the checkpoint instead —
    // the initial query was already billed by the first process.
    t_current = t_loss(victim, q_adv, ctx);
    result.t_history.push_back(t_current);
  }

  if (plan.support.empty()) {
    result.v_adv = std::move(v_adv);
    result.final_t = t_current;
    result.queries_spent = queries_total();
    cc.finished();
    return result;
  }

  if (!resumed) {
    // Without-replacement sampling: shuffled support, reshuffled on drain.
    deck = plan.support;
    rng.shuffle(deck);
    deck_pos = 0;
  }

  std::vector<std::int64_t> coords;
  std::vector<float> before;
  std::vector<std::int64_t> deck_backup;
  coords.reserve(plan.group);
  before.reserve(plan.group);

  for (int kappa = start_kappa;
       kappa < config.iter_numQ &&
       !(config.patience > 0 && stall >= config.patience);
       ++kappa) {
    if (cc.enabled && cc.every > 0 && kappa % cc.every == 0) {
      cc.save(kappa, t_current, result.t_history, queries_total(), stall,
              rng.state(), deck, static_cast<std::int64_t>(deck_pos),
              v_adv.data());
    }
    // Snapshot of the sampler state at the top of the iteration, so a fatal
    // victim error mid-iteration checkpoints a state that re-executes this
    // iteration exactly. The deck itself is copied lazily — only if this
    // iteration's draws reshuffle it.
    const std::uint64_t rng_before = rng.state();
    const std::size_t deck_pos_before = deck_pos;
    bool deck_reshuffled = false;

    coords.clear();
    for (std::size_t c = 0; c < plan.group; ++c) {
      if (deck_pos >= deck.size()) {
        if (cc.enabled && !deck_reshuffled) deck_backup = deck;
        deck_reshuffled = true;
        rng.shuffle(deck);
        deck_pos = 0;
      }
      coords.push_back(deck[deck_pos++]);
    }

    bool accepted = false;
    try {
      for (const float xi : {+plan.eps, -plan.eps}) {
        before.clear();
        bool changed = false;
        for (const auto coord : coords) {
          const float prev = v_adv.data()[coord];
          before.push_back(prev);
          const float after =
              clip_pixel(prev + xi, v.data()[coord], config.tau);
          if (after != prev) changed = true;
          v_adv.data()[coord] = after;
          q_adv.data()[coord] = std::round(after);
        }
        if (!changed) {
          for (std::size_t c = 0; c < coords.size(); ++c) {
            v_adv.data()[coords[c]] = before[c];
            q_adv.data()[coords[c]] = std::round(before[c]);
          }
          continue;
        }
        const double t_candidate = t_loss(victim, q_adv, ctx);
        if (t_candidate < t_current) {
          t_current = t_candidate;
          accepted = true;
          break;  // Alg. 2 line 11
        }
        for (std::size_t c = 0; c < coords.size(); ++c) {
          v_adv.data()[coords[c]] = before[c];  // revert the group
          q_adv.data()[coords[c]] = std::round(before[c]);
        }
      }
    } catch (...) {
      // Unrecoverable victim fault while a candidate was applied: revert it,
      // then checkpoint the pre-iteration state so a resumed run replays
      // this iteration from scratch and converges to the same final video.
      for (std::size_t c = 0; c < coords.size(); ++c) {
        v_adv.data()[coords[c]] = before[c];
        q_adv.data()[coords[c]] = std::round(before[c]);
      }
      if (cc.enabled) {
        cc.save(kappa, t_current, result.t_history, queries_total(), stall,
                rng_before, deck_reshuffled ? deck_backup : deck,
                static_cast<std::int64_t>(deck_pos_before), v_adv.data());
      }
      throw;
    }
    result.t_history.push_back(t_current);
    stall = accepted ? 0 : stall + 1;
  }

  result.v_adv = std::move(q_adv);
  result.final_t = t_current;
  result.queries_spent = queries_total();
  cc.finished();
  return result;
}

namespace {

// Pipelined Algorithm 2 over any async handle exposing
//   submit(video::Video, std::size_t) -> awaitable with .get()
//   query_count() -> std::int64_t
// i.e. serve::AsyncBlackBoxHandle (raw futures) and serve::ResilientHandle
// (retrying PendingRetrievals). One body keeps the two public overloads'
// semantics — and their bitwise-determinism contract — identical.
template <typename Handle>
SparseQueryResult sparse_query_pipelined_impl(const video::Video& v,
                                              const Perturbation& perturbation,
                                              Handle& victim,
                                              const ObjectiveContext& ctx,
                                              const SparseQueryConfig& config) {
  const video::VideoGeometry& g = v.geometry();
  DUO_CHECK_MSG(perturbation.geometry() == g, "perturbation geometry mismatch");
  Rng rng(config.seed);
  const StepPlan plan = make_step_plan(perturbation, config);
  const CheckpointContext cc = CheckpointContext::make(config, v, plan);

  SparseQueryResult result;
  const std::int64_t queries_before = victim.query_count();
  std::int64_t queries_carried = 0;
  const auto queries_total = [&] {
    return queries_carried + victim.query_count() - queries_before;
  };

  video::Video v_adv = perturbation.apply_to(v);
  double t_current = 0.0;
  std::vector<std::int64_t> deck;
  std::size_t deck_pos = 0;
  int stall = 0;

  bool resumed = false;
  const int start_kappa =
      try_resume(config, cc, plan, v_adv, t_current, result.t_history,
                 queries_carried, stall, rng, deck, deck_pos, resumed);
  video::Video q_adv = quantized(v_adv);
  if (!resumed) {
    t_current = t_loss_from_list(victim.submit(q_adv, ctx.m).get(), ctx);
    result.t_history.push_back(t_current);
  }

  if (plan.support.empty()) {
    result.v_adv = std::move(v_adv);
    result.final_t = t_current;
    result.queries_spent = queries_total();
    cc.finished();
    return result;
  }

  if (!resumed) {
    deck = plan.support;
    rng.shuffle(deck);
    deck_pos = 0;
  }

  std::vector<std::int64_t> coords;
  std::vector<float> plus_vals;
  std::vector<float> minus_vals;
  std::vector<std::int64_t> deck_backup;
  coords.reserve(plan.group);
  plus_vals.reserve(plan.group);
  minus_vals.reserve(plan.group);

  using Awaitable = decltype(victim.submit(std::declval<video::Video>(),
                                           std::declval<std::size_t>()));

  for (int kappa = start_kappa;
       kappa < config.iter_numQ &&
       !(config.patience > 0 && stall >= config.patience);
       ++kappa) {
    if (cc.enabled && cc.every > 0 && kappa % cc.every == 0) {
      cc.save(kappa, t_current, result.t_history, queries_total(), stall,
              rng.state(), deck, static_cast<std::int64_t>(deck_pos),
              v_adv.data());
    }
    const std::uint64_t rng_before = rng.state();
    const std::size_t deck_pos_before = deck_pos;
    bool deck_reshuffled = false;

    coords.clear();
    for (std::size_t c = 0; c < plan.group; ++c) {
      if (deck_pos >= deck.size()) {
        if (cc.enabled && !deck_reshuffled) deck_backup = deck;
        deck_reshuffled = true;
        rng.shuffle(deck);
        deck_pos = 0;
      }
      coords.push_back(deck[deck_pos++]);
    }

    // Both sign candidates from the same base values. (The serial path
    // computes the −ε candidate only after reverting +ε, i.e. from these
    // exact values, so the candidates — and the "changed" skips — match.)
    plus_vals.clear();
    minus_vals.clear();
    bool changed_plus = false;
    bool changed_minus = false;
    for (const auto coord : coords) {
      const float prev = v_adv.data()[coord];
      const float up = clip_pixel(prev + plan.eps, v.data()[coord], config.tau);
      const float dn = clip_pixel(prev - plan.eps, v.data()[coord], config.tau);
      if (up != prev) changed_plus = true;
      if (dn != prev) changed_minus = true;
      plus_vals.push_back(up);
      minus_vals.push_back(dn);
    }

    // Launch +ε, then build and launch −ε while the first forward is in
    // flight: candidate evaluation overlaps the perturbation bookkeeping.
    std::optional<Awaitable> f_plus;
    std::optional<Awaitable> f_minus;
    if (changed_plus) {
      video::Video cand = q_adv;
      for (std::size_t c = 0; c < coords.size(); ++c) {
        cand.data()[coords[c]] = std::round(plus_vals[c]);
      }
      f_plus = victim.submit(std::move(cand), ctx.m);
    }
    if (changed_minus) {
      video::Video cand = q_adv;
      for (std::size_t c = 0; c < coords.size(); ++c) {
        cand.data()[coords[c]] = std::round(minus_vals[c]);
      }
      f_minus = victim.submit(std::move(cand), ctx.m);
    }

    // Replay the serial acceptance order: +ε wins if it improves, −ε is
    // consulted only otherwise. A speculative −ε forward whose answer goes
    // unused already cost the victim a query and stays counted. v_adv/q_adv
    // are committed only after a successful get(), so a fatal fault leaves
    // them at the pre-iteration state — exactly what gets checkpointed.
    bool accepted = false;
    try {
      if (changed_plus) {
        const double t_candidate = t_loss_from_list(f_plus->get(), ctx);
        if (t_candidate < t_current) {
          t_current = t_candidate;
          for (std::size_t c = 0; c < coords.size(); ++c) {
            v_adv.data()[coords[c]] = plus_vals[c];
            q_adv.data()[coords[c]] = std::round(plus_vals[c]);
          }
          accepted = true;
        }
      }
      if (!accepted && changed_minus) {
        const double t_candidate = t_loss_from_list(f_minus->get(), ctx);
        if (t_candidate < t_current) {
          t_current = t_candidate;
          for (std::size_t c = 0; c < coords.size(); ++c) {
            v_adv.data()[coords[c]] = minus_vals[c];
            q_adv.data()[coords[c]] = std::round(minus_vals[c]);
          }
          accepted = true;
        }
      }
    } catch (...) {
      if (cc.enabled) {
        // Note an accepted +ε commit before a fatal −ε get() is impossible:
        // −ε is only consulted when +ε was rejected (no commit happened).
        cc.save(kappa, t_current, result.t_history, queries_total(), stall,
                rng_before, deck_reshuffled ? deck_backup : deck,
                static_cast<std::int64_t>(deck_pos_before), v_adv.data());
      }
      throw;
    }
    result.t_history.push_back(t_current);
    stall = accepted ? 0 : stall + 1;
  }

  result.v_adv = std::move(q_adv);
  result.final_t = t_current;
  result.queries_spent = queries_total();
  cc.finished();
  return result;
}

}  // namespace

SparseQueryResult sparse_query_pipelined(const video::Video& v,
                                         const Perturbation& perturbation,
                                         serve::AsyncBlackBoxHandle& victim,
                                         const ObjectiveContext& ctx,
                                         const SparseQueryConfig& config) {
  return sparse_query_pipelined_impl(v, perturbation, victim, ctx, config);
}

SparseQueryResult sparse_query_pipelined(const video::Video& v,
                                         const Perturbation& perturbation,
                                         serve::ResilientHandle& victim,
                                         const ObjectiveContext& ctx,
                                         const SparseQueryConfig& config) {
  return sparse_query_pipelined_impl(v, perturbation, victim, ctx, config);
}

ObjectiveContext make_objective_context(serve::AsyncBlackBoxHandle& victim,
                                        const video::Video& v,
                                        const video::Video& v_t, std::size_t m,
                                        double eta) {
  ObjectiveContext ctx;
  ctx.m = m;
  ctx.eta = eta;
  auto list_v = victim.submit(v, m);
  auto list_vt = victim.submit(v_t, m);
  ctx.list_v = list_v.get();
  ctx.list_vt = list_vt.get();
  return ctx;
}

ObjectiveContext make_objective_context(serve::ResilientHandle& victim,
                                        const video::Video& v,
                                        const video::Video& v_t, std::size_t m,
                                        double eta) {
  ObjectiveContext ctx;
  ctx.m = m;
  ctx.eta = eta;
  auto list_v = victim.submit(v, m);
  auto list_vt = victim.submit(v_t, m);
  ctx.list_v = list_v.get();
  ctx.list_vt = list_vt.get();
  return ctx;
}

}  // namespace duo::attack
