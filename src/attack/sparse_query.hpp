#pragma once

// SparseQuery (Algorithm 2): SimBA-style query attack restricted to the
// support of φ = I ⊙ F ⊙ θ. Each iteration samples a Cartesian-basis
// direction q from the support without replacement (Eq. 4 zeroes directions
// outside the support) and tries ±ε steps, keeping whichever decreases the
// ranking loss T (Eq. 2 / Eq. 3).

#include <cstdint>
#include <string>
#include <vector>

#include "attack/objective.hpp"
#include "attack/perturbation.hpp"
#include "retrieval/system.hpp"
#include "serve/async_handle.hpp"
#include "serve/resilient.hpp"
#include "video/video.hpp"

namespace duo::attack {

struct SparseQueryConfig {
  int iter_numQ = 300;  // paper default 1,000; quick-scale default 300
  float tau = 30.0f;    // keeps ‖v_adv − v‖∞ ≤ τ (matches Eq. 1)
  std::size_t m = 10;
  double eta = 1.0;
  std::uint64_t seed = 17;
  // Coordinates flipped together per query step. The paper samples single
  // Cartesian basis vectors (= 1); at miniature geometry a one-pixel step
  // cannot move the feature across any ranking boundary, so the bench scale
  // groups several support coordinates into one step (0 = adaptive:
  // support/12, clamped to [1, 64]). Grouped steps still satisfy Eq. 4 —
  // every touched coordinate lies in the support of I⊙F⊙θ.
  int coords_per_step = 0;
  // Stop early after this many consecutive rejected iterations (0 = never).
  int patience = 0;

  // Checkpoint/resume (attack/checkpoint.hpp). With a non-empty
  // checkpoint_path the driver atomically saves its full state every
  // checkpoint_every iterations and — crucially — right before rethrowing a
  // fatal victim error, so no billed query is ever more than one iteration
  // from a durable record. With resume = true a matching checkpoint (same
  // geometry, seed, support size, and source-video hash) is restored and the
  // run continues from it; a missing or mismatched checkpoint falls back to
  // a fresh start. A resumed run finishes with the same final video and
  // t_history as an uninterrupted one, and queries_spent counts the billed
  // queries of every contributing process.
  std::string checkpoint_path;
  int checkpoint_every = 25;
  bool resume = false;
  // Checkpoint GC: delete the checkpoint file after a clean finish, so long
  // campaigns do not accumulate stale state. Interrupted runs (fatal victim
  // error, process kill) always keep theirs — the file is removed only on
  // the successful-return path.
  bool remove_on_success = false;
};

struct SparseQueryResult {
  video::Video v_adv;
  std::vector<double> t_history;  // T after each iteration (Fig. 5 series)
  std::int64_t queries_spent = 0;
  double final_t = 0.0;
};

// Runs Algorithm 2 starting from v_adv⁰ = v + φ. `ctx` carries the reference
// lists R^m(v) and R^m(v_t).
SparseQueryResult sparse_query(const video::Video& v,
                               const Perturbation& perturbation,
                               retrieval::BlackBoxHandle& victim,
                               const ObjectiveContext& ctx,
                               const SparseQueryConfig& config);

// Opt-in pipelined Algorithm 2 against an asynchronously served victim:
// each step launches the +ε and −ε candidate forwards concurrently and does
// its perturbation bookkeeping (candidate construction, commit/revert) while
// they are in flight, hiding victim latency. Acceptance decisions replay the
// serial order (+ε first, then −ε), so for the same seed and config the
// accepted-perturbation sequence — and therefore t_history and the final
// v_adv — is bitwise identical to sparse_query. Query accounting is honest:
// a speculative −ε forward counts even when the +ε candidate is accepted and
// its answer goes unused, so queries_spent is ≥ the serial count.
SparseQueryResult sparse_query_pipelined(const video::Video& v,
                                         const Perturbation& perturbation,
                                         serve::AsyncBlackBoxHandle& victim,
                                         const ObjectiveContext& ctx,
                                         const SparseQueryConfig& config);

// Pipelined Algorithm 2 through the retrying client policy
// (serve/resilient.hpp): transient victim faults are absorbed by retries —
// against a deterministic victim the answers, and therefore the final video,
// stay bitwise identical to a fault-free run; only queries_spent (victim-side
// billing, retries included) and wall time grow. Fatal faults propagate as
// serve::ServeError after a best-effort checkpoint (when configured).
SparseQueryResult sparse_query_pipelined(const video::Video& v,
                                         const Perturbation& perturbation,
                                         serve::ResilientHandle& victim,
                                         const ObjectiveContext& ctx,
                                         const SparseQueryConfig& config);

// Async twin of make_objective_context (attack/objective.hpp): fetches
// R^m(v) and R^m(v_t) with both queries in flight at once.
ObjectiveContext make_objective_context(serve::AsyncBlackBoxHandle& victim,
                                        const video::Video& v,
                                        const video::Video& v_t, std::size_t m,
                                        double eta = 1.0);

// Same, through the retry policy.
ObjectiveContext make_objective_context(serve::ResilientHandle& victim,
                                        const video::Video& v,
                                        const video::Video& v_t, std::size_t m,
                                        double eta = 1.0);

}  // namespace duo::attack
