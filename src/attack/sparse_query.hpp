#pragma once

// SparseQuery (Algorithm 2): SimBA-style query attack restricted to the
// support of φ = I ⊙ F ⊙ θ. Each iteration samples a Cartesian-basis
// direction q from the support without replacement (Eq. 4 zeroes directions
// outside the support) and tries ±ε steps, keeping whichever decreases the
// ranking loss T (Eq. 2 / Eq. 3).

#include <cstdint>
#include <vector>

#include "attack/objective.hpp"
#include "attack/perturbation.hpp"
#include "retrieval/system.hpp"
#include "video/video.hpp"

namespace duo::attack {

struct SparseQueryConfig {
  int iter_numQ = 300;  // paper default 1,000; quick-scale default 300
  float tau = 30.0f;    // keeps ‖v_adv − v‖∞ ≤ τ (matches Eq. 1)
  std::size_t m = 10;
  double eta = 1.0;
  std::uint64_t seed = 17;
  // Coordinates flipped together per query step. The paper samples single
  // Cartesian basis vectors (= 1); at miniature geometry a one-pixel step
  // cannot move the feature across any ranking boundary, so the bench scale
  // groups several support coordinates into one step (0 = adaptive:
  // support/12, clamped to [1, 64]). Grouped steps still satisfy Eq. 4 —
  // every touched coordinate lies in the support of I⊙F⊙θ.
  int coords_per_step = 0;
  // Stop early after this many consecutive rejected iterations (0 = never).
  int patience = 0;
};

struct SparseQueryResult {
  video::Video v_adv;
  std::vector<double> t_history;  // T after each iteration (Fig. 5 series)
  std::int64_t queries_spent = 0;
  double final_t = 0.0;
};

// Runs Algorithm 2 starting from v_adv⁰ = v + φ. `ctx` carries the reference
// lists R^m(v) and R^m(v_t).
SparseQueryResult sparse_query(const video::Video& v,
                               const Perturbation& perturbation,
                               retrieval::BlackBoxHandle& victim,
                               const ObjectiveContext& ctx,
                               const SparseQueryConfig& config);

}  // namespace duo::attack
