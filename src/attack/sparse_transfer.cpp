#include "attack/sparse_transfer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "attack/lp_box_admm.hpp"
#include "nn/optimizer.hpp"

namespace duo::attack {

namespace {

struct LossAndGrad {
  double loss = 0.0;
  Tensor pixel_grad;  // d loss / d(pixel-space video values)
};

// Surrogate feature loss and its gradient with respect to the perturbed
// video's pixels (the λ‖φ‖² term is handled by the caller where the masks
// are known). Targeted: L = ‖Fea(v+φ) − Fea(v_t)‖². Untargeted: the
// reference feature is Fea(v) and we *maximize* the distance, i.e.
// L = −‖Fea(v+φ) − Fea(v)‖².
LossAndGrad feature_loss_grad(const video::Video& v_adv,
                              const Tensor& reference_feature,
                              models::FeatureExtractor& surrogate,
                              AttackGoal goal) {
  LossAndGrad out;
  const Tensor input = v_adv.to_model_input();
  const Tensor feature = surrogate.extract_model_input(input);

  Tensor diff = feature - reference_feature;
  const float sign = goal == AttackGoal::kTargeted ? 1.0f : -1.0f;
  out.loss = sign * diff.dot(diff);
  // dL/dFea = ±2(Fea − Fea_ref)
  diff *= 2.0f * sign;
  for (auto* p : surrogate.parameters()) p->zero_grad();
  const Tensor model_grad = surrogate.backward_to_input(diff);
  // Chain rule through to_model_input: d(model)/d(pixel) = 1/255.
  out.pixel_grad = video::Video::from_model_space(
      model_grad, v_adv.geometry(), /*scale_to_pixels=*/false);
  out.pixel_grad *= (1.0f / 255.0f);
  return out;
}

// Eq. 1's regularizer λ‖θ⊙I⊙F‖² is expressed in model-input units ([0,1]
// scale); our θ lives on the [0,255] pixel scale, so the regularizer value
// scales by 1/255² and its pixel-space gradient by a further 1/255.
constexpr float kModelScale = 1.0f / 255.0f;

// Per-frame ‖·‖₂ of a pixel-space tensor.
std::vector<double> frame_l2(const Tensor& t,
                             const video::VideoGeometry& g) {
  std::vector<double> out(static_cast<std::size_t>(g.frames), 0.0);
  const std::int64_t fe = g.elements_per_frame();
  const float* d = t.data();
  for (std::int64_t f = 0; f < g.frames; ++f) {
    double acc = 0.0;
    for (std::int64_t e = 0; e < fe; ++e) {
      const double x = d[f * fe + e];
      acc += x * x;
    }
    out[static_cast<std::size_t>(f)] = std::sqrt(acc);
  }
  return out;
}

void project_theta(Tensor& theta, const SparseTransferConfig& cfg) {
  if (cfg.norm == NormKind::kLinf) {
    theta.clamp_(-cfg.tau, cfg.tau);
    return;
  }
  // ℓ2 ball with the budget-equivalent radius τ·√k.
  const double radius =
      static_cast<double>(cfg.tau) *
      std::sqrt(static_cast<double>(std::max<std::int64_t>(cfg.k, 1)));
  const double norm = theta.norm_l2();
  if (norm > radius) theta *= static_cast<float>(radius / norm);
}

}  // namespace

SparseTransferResult sparse_transfer(
    const video::Video& v, const video::Video& v_t,
    models::FeatureExtractor& surrogate, const SparseTransferConfig& config,
    const std::optional<Perturbation>& init) {
  DUO_CHECK_MSG(v.geometry() == v_t.geometry(), "geometry mismatch");
  DUO_CHECK_MSG(config.k > 0 && config.n > 0, "k and n must be positive");
  DUO_CHECK_MSG(config.n <= v.geometry().frames, "n exceeds frame count");
  const video::VideoGeometry& g = v.geometry();

  surrogate.set_training(false);
  // Targeted: steer toward Fea(v_t). Untargeted: push away from Fea(v).
  const Tensor target_feature = config.goal == AttackGoal::kTargeted
                                    ? surrogate.extract(v_t)
                                    : surrogate.extract(v);

  SparseTransferResult result;
  // Line 1: I and F start at 1 (all selected), θ at 0 — unless resumed.
  Perturbation& pert = result.perturbation;
  pert = init.has_value() ? *init : Perturbation(g);

  // Untargeted warm start: at θ = 0 the loss −‖Fea(v+φ) − Fea(v)‖² has a
  // vanishing gradient (we sit exactly at the reference), so kick θ with
  // small deterministic noise to break the symmetry.
  if (config.goal == AttackGoal::kUntargeted &&
      pert.magnitude().norm_l0() == 0) {
    Rng rng(config.seed);
    pert.magnitude() =
        Tensor::uniform(g.tensor_shape(), -config.tau / 8.0f,
                        config.tau / 8.0f, rng);
  }

  nn::StepDecay schedule(config.step_init * config.tau,
                         config.step_decay_every, config.step_decay_rate);
  std::int64_t global_step = 0;

  for (int outer = 0; outer < config.outer_iterations; ++outer) {
    // ---- Line 3: θ-update by gradient descent under S ----------------------
    Tensor last_grad(g.tensor_shape());
    double last_loss = 0.0;
    for (int s = 0; s < config.theta_steps; ++s) {
      video::Video v_adv(v.data() + pert.combined(), g, v.label(), v.id());
      v_adv.clamp_valid();
      const LossAndGrad lg =
          feature_loss_grad(v_adv, target_feature, surrogate, config.goal);
      last_loss = lg.loss;
      last_grad = lg.pixel_grad;

      // dL/dθ = (g + 2λφ·scale²) ⊙ I ⊙ F; normalized-∞ steepest descent
      // with the paper's decayed step size.
      Tensor step_dir = lg.pixel_grad;
      step_dir.axpy(2.0f * config.lambda * kModelScale * kModelScale,
                    pert.combined());
      step_dir *= pert.pixel_mask();
      step_dir *= pert.frame_mask();
      const float ginf = step_dir.norm_linf();
      if (ginf < 1e-12f) break;
      const float lr = schedule.lr_at(global_step++);
      pert.magnitude().axpy(-lr / ginf, step_dir);
      project_theta(pert.magnitude(), config);
    }
    (void)last_loss;

    // ---- Line 4: I-update with (ℓp-box) ADMM -------------------------------
    // Selecting element e adds θ_e to the input; first-order loss change is
    // g_e·θ_e plus the regularizer's λθ_e². More-negative scores are better.
    Tensor scores = last_grad * pert.magnitude();
    {
      Tensor reg = pert.magnitude() * pert.magnitude();
      scores.axpy(config.lambda * kModelScale * kModelScale, reg);
    }
    // Elements outside currently selected frames cannot help (φ = I⊙F⊙θ):
    // push their score far positive so neither selector picks them.
    {
      const float worst = scores.abs().max() + 1.0f;
      const float* fm = pert.frame_mask().data();
      float* sc = scores.data();
      for (std::int64_t i = 0; i < scores.size(); ++i) {
        if (fm[i] < 0.5f) sc[i] = worst;
      }
    }
    if (config.use_admm) {
      LpBoxAdmmConfig admm_cfg;
      admm_cfg.iterations = config.admm_iterations;
      // ADMM relaxation prefers large x where g is negative; feed raw scores.
      pert.pixel_mask() = lp_box_admm_select(scores, config.k, admm_cfg);
    } else {
      pert.pixel_mask() = topk_select(scores, config.k);
    }

    // ---- Lines 5–7: F-update via continuous relaxation C -------------------
    // C_f is driven by the loss reduction available in frame f: the masked
    // gradient-magnitude mass −Σ_{e∈f} g_e·(I⊙θ)_e; frames are then ranked
    // by ‖C_π(1)‖₂ ≥ … and the top n are kept.
    Tensor masked = pert.pixel_mask() * pert.magnitude();
    Tensor frame_drive = last_grad * masked;
    const auto drive = frame_l2(frame_drive, g);
    std::vector<std::int64_t> order(static_cast<std::size_t>(g.frames));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
      const double da = drive[static_cast<std::size_t>(a)];
      const double db = drive[static_cast<std::size_t>(b)];
      if (da != db) return da > db;
      return a < b;
    });
    order.resize(static_cast<std::size_t>(config.n));
    pert.set_frames(order);

    // Keep 1ᵀI = k consistent with the new frame set.
    pert.restrict_pixels_to_frames_topk(scores * -1.0f, config.k);

    // Loss of the *masked* perturbation — the quantity the while-loop of
    // Alg. 1 monitors for convergence (comparable across rounds, unlike the
    // dense-support loss seen during the first θ phase).
    {
      video::Video v_adv(v.data() + pert.combined(), g, v.label(), v.id());
      v_adv.clamp_valid();
      const LossAndGrad lg =
          feature_loss_grad(v_adv, target_feature, surrogate, config.goal);
      result.loss_history.push_back(
          lg.loss +
          config.lambda *
              std::pow(pert.combined().norm_l2() * kModelScale, 2.0));
    }
  }

  // Final feasibility: θ respects the norm budget, masks are binary, the
  // pixel budget holds within the n selected frames.
  project_theta(pert.magnitude(), config);
  return result;
}

}  // namespace duo::attack
