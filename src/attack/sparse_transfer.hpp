#pragma once

// SparseTransfer (Algorithm 1): generate initial sparse perturbations on the
// surrogate model by alternating
//   θ-update  — gradient descent on L(Fea(v+φ), Fea(v_t)) + λ‖φ‖² with the
//               paper's step schedule (0.1, ×0.9 every 50 steps),
//   I-update  — ℓp-box ADMM selection of k pixels (lp_box_admm.hpp),
//   F-update  — continuous relaxation C per frame, then top-n frames by
//               ‖C_π(1)‖₂ ≥ … ≥ ‖C_π(N)‖₂ (Alg. 1 lines 5–7).

#include <cstdint>
#include <optional>
#include <vector>

#include "attack/perturbation.hpp"
#include "models/feature_extractor.hpp"
#include "video/video.hpp"

namespace duo::attack {

// Norm constraint used on θ (Table IX compares ℓ∞ against ℓ2).
enum class NormKind { kLinf, kL2 };

// Attack goal (§I: "our method can be easily extended to launch untargeted
// attacks"). Targeted pulls Fea(v_adv) toward Fea(v_t); untargeted pushes
// it away from Fea(v) (v_t is ignored).
enum class AttackGoal { kTargeted, kUntargeted };

struct SparseTransferConfig {
  std::int64_t k = 2500;   // pixel budget 1ᵀI = k
  std::int64_t n = 4;      // frame budget ‖F‖₂,₀ = n
  float tau = 30.0f;       // per-pixel magnitude cap (0..255 scale)
  float lambda = 6.7379e-3f;  // λ = e⁻⁵ (paper §V-B)
  NormKind norm = NormKind::kLinf;
  AttackGoal goal = AttackGoal::kTargeted;

  int outer_iterations = 5;   // alternating rounds of Alg. 1's while-loop
  int theta_steps = 12;       // GD steps on θ per round
  float step_init = 0.1f;     // of τ; decays ×0.9 every 50 global steps
  int step_decay_every = 50;
  float step_decay_rate = 0.9f;

  bool use_admm = true;  // false → plain top-k (ablation, DESIGN.md §5)
  int admm_iterations = 15;
  // Seed for the untargeted warm start (below); unused when targeted.
  std::uint64_t seed = 29;
};

struct SparseTransferResult {
  Perturbation perturbation;
  std::vector<double> loss_history;  // surrogate loss per outer iteration
};

// Runs Algorithm 1. `init` (from a previous DUO outer iteration) seeds
// {I, F, θ}; when absent, I = F = 1 and θ = 0 per the paper.
SparseTransferResult sparse_transfer(const video::Video& v,
                                     const video::Video& v_t,
                                     models::FeatureExtractor& surrogate,
                                     const SparseTransferConfig& config,
                                     const std::optional<Perturbation>& init =
                                         std::nullopt);

}  // namespace duo::attack
