#include "attack/surrogate.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"

namespace duo::attack {

VideoStore::VideoStore(const std::vector<video::Video>& videos) {
  for (const auto& v : videos) add(v);
}

void VideoStore::add(const video::Video& v) {
  by_id_.insert_or_assign(v.id(), v);
}

const video::Video& VideoStore::get(std::int64_t id) const {
  const auto it = by_id_.find(id);
  DUO_CHECK_MSG(it != by_id_.end(), "VideoStore: unknown id");
  return it->second;
}

bool VideoStore::contains(std::int64_t id) const {
  return by_id_.count(id) != 0;
}

SurrogateDataset harvest_surrogate_dataset(
    retrieval::BlackBoxHandle& victim, const VideoStore& store,
    const std::vector<std::int64_t>& seed_ids,
    const SurrogateHarvestConfig& config) {
  DUO_CHECK_MSG(!seed_ids.empty(), "harvest: need at least one seed video");
  Rng rng(config.seed);
  SurrogateDataset out;
  std::unordered_set<std::int64_t> held;

  const std::int64_t queries_before = victim.query_count();
  std::vector<std::int64_t> frontier = seed_ids;
  // Ids already spent as anchors (or reserved for the next round's frontier).
  // Re-querying one would burn victim budget on a list we already harvested
  // and push duplicate triplets.
  std::unordered_set<std::int64_t> queried(seed_ids.begin(), seed_ids.end());
  for (const auto id : seed_ids) {
    DUO_CHECK_MSG(store.contains(id), "harvest: seed not in store");
    held.insert(id);
  }
  // Anchors and their retrieval lists, kept for the contrastive pass below.
  std::vector<std::pair<std::int64_t, metrics::RetrievalList>> anchor_lists;

  auto harvest_list = [&](std::int64_t anchor_id) {
    const auto list = victim.retrieve(store.get(anchor_id), config.m);
    if (list.size() < 2) return list;
    // Triplets ⟨anchor, v_i, v_j⟩ for i < j, capped for balance: prefer
    // widely separated ranks (most informative ordering constraints).
    int added = 0;
    for (std::size_t gap = list.size() - 1; gap >= 1 && added < config.max_triplets_per_list; --gap) {
      for (std::size_t i = 0; i + gap < list.size() && added < config.max_triplets_per_list; ++i) {
        out.triplets.push_back({anchor_id, list[i], list[i + gap]});
        ++added;
      }
    }
    for (const auto id : list) held.insert(id);
    anchor_lists.emplace_back(anchor_id, list);
    return list;
  };

  // Estimated total triplets so far (within-list + contrastive pass below).
  auto triplet_estimate = [&] {
    return out.triplets.size() +
           anchor_lists.size() *
               static_cast<std::size_t>(config.out_of_list_per_anchor);
  };
  auto targets_met = [&] {
    // The triplet target, when set, is the primary stopping rule (it is the
    // surrogate-dataset size the paper sweeps); the video-count target is
    // the fallback for target_triplets == 0.
    if (config.target_triplets > 0) {
      return triplet_estimate() >= config.target_triplets;
    }
    return held.size() >= config.target_video_count;
  };

  // Step 3 loop (Z rounds of Steps 1–2).
  for (int round = 0; round < config.rounds && !targets_met(); ++round) {
    std::vector<std::int64_t> next_frontier;
    for (const auto anchor : frontier) {
      if (targets_met()) break;
      const auto list = harvest_list(anchor);  // Step 1
      // Step 2: uniformly select M not-yet-queried videos from the list and
      // requery them next round. Skipping ids already used as anchors keeps
      // every victim query buying a new retrieval list.
      std::vector<std::int64_t> pool(list.begin(), list.end());
      rng.shuffle(pool);
      int taken = 0;
      for (const auto id : pool) {
        if (taken >= config.expand_per_query) break;
        if (!queried.insert(id).second) continue;
        next_frontier.push_back(id);
        ++taken;
      }
    }
    if (next_frontier.empty()) break;
    frontier = std::move(next_frontier);
  }

  out.video_ids.assign(held.begin(), held.end());
  std::sort(out.video_ids.begin(), out.video_ids.end());

  // Contrastive pass: everything the attacker holds that is absent from an
  // anchor's top-m must be farther than anything in the list.
  for (const auto& [anchor, list] : anchor_lists) {
    std::unordered_set<std::int64_t> in_list(list.begin(), list.end());
    std::vector<std::int64_t> outside;
    for (const auto id : out.video_ids) {
      if (!in_list.count(id) && id != anchor) outside.push_back(id);
    }
    if (outside.empty() || list.empty()) continue;
    for (int i = 0; i < config.out_of_list_per_anchor; ++i) {
      const std::int64_t closer = list[rng.uniform_index(list.size())];
      const std::int64_t farther = outside[rng.uniform_index(outside.size())];
      out.triplets.push_back({anchor, closer, farther});
    }
  }

  out.queries_spent = victim.query_count() - queries_before;
  return out;
}

namespace {

// Role replicas for one batch shard: anchor/closer/farther each get their own
// extractor, so every sample of a triplet is forwarded exactly once and its
// layer caches are still intact when the loss gradient is pushed back through
// it. The primary surrogate doubles as shard 0's anchor role.
struct ReplicaGroup {
  std::array<models::FeatureExtractor*, 3> roles = {nullptr, nullptr, nullptr};
};

// One group per shard (same protocol as RetrievalSystem::add_all: shard 0
// reuses the primary, the rest are clones). Returns empty when the extractor
// is not cloneable; callers fall back to the serial re-forward path.
std::vector<ReplicaGroup> make_replica_groups(
    models::FeatureExtractor& primary, std::size_t shards,
    std::vector<std::unique_ptr<models::FeatureExtractor>>& owned) {
  std::vector<ReplicaGroup> groups(shards);
  groups[0].roles[0] = &primary;
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t r = 0; r < groups[s].roles.size(); ++r) {
      if (groups[s].roles[r] != nullptr) continue;
      auto clone = primary.clone();
      if (!clone) return {};
      groups[s].roles[r] = clone.get();
      owned.push_back(std::move(clone));
    }
  }
  return groups;
}

}  // namespace

SurrogateTrainStats train_surrogate(models::FeatureExtractor& surrogate,
                                    const SurrogateDataset& dataset,
                                    const VideoStore& store,
                                    const SurrogateTrainConfig& config) {
  DUO_CHECK_MSG(!dataset.triplets.empty(), "train_surrogate: no triplets");
  DUO_CHECK_MSG(config.batch_size > 0, "train_surrogate: batch_size < 1");
  surrogate.set_training(true);
  nn::Adam optimizer(surrogate.parameters(), config.learning_rate);
  Rng rng(config.seed);

  const std::size_t batch = static_cast<std::size_t>(config.batch_size);
  ThreadPool& pool = compute_pool();
  const std::size_t shards =
      std::min(std::max<std::size_t>(pool.size(), 1), batch);
  std::vector<std::unique_ptr<models::FeatureExtractor>> owned;
  std::vector<ReplicaGroup> groups =
      make_replica_groups(surrogate, shards, owned);

  // Per-sample slots for the current batch. Triplets are sampled serially on
  // the caller (one rng stream, independent of thread count); replicas fill
  // the slots in parallel; the reduction walks them serially in sample order.
  std::vector<const RankTriplet*> chosen(batch);
  std::vector<double> losses(batch);
  std::vector<std::vector<Tensor>> sample_grads(batch);

  SurrogateTrainStats stats;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    int contributing = 0;
    for (int sampled = 0; sampled < config.triplets_per_epoch;) {
      const std::size_t b_count = std::min<std::size_t>(
          batch, static_cast<std::size_t>(config.triplets_per_epoch - sampled));
      sampled += static_cast<int>(b_count);
      for (std::size_t b = 0; b < b_count; ++b) {
        chosen[b] = &dataset.triplets[rng.uniform_index(dataset.triplets.size())];
        losses[b] = 0.0;
        sample_grads[b].clear();
      }

      if (!groups.empty()) {
        // Data-parallel forward/backward: each shard owns samples
        // b ≡ s (mod active_shards). All groups hold bitwise-identical
        // parameters, so the shard→sample assignment cannot affect results.
        const std::size_t active_shards = std::min(shards, b_count);
        pool.parallel_for(active_shards, [&](std::size_t s) {
          const ReplicaGroup& g = groups[s];
          for (std::size_t b = s; b < b_count; b += active_shards) {
            const RankTriplet& t = *chosen[b];
            const Tensor fa = g.roles[0]->extract(store.get(t.anchor));
            const Tensor fc = g.roles[1]->extract(store.get(t.closer));
            const Tensor ff = g.roles[2]->extract(store.get(t.farther));
            const auto grads =
                nn::ranked_triplet_loss(fa, fc, ff, config.gamma);
            losses[b] = grads.loss;
            if (grads.loss <= 0.0) continue;
            for (auto* role : g.roles) role->zero_grad();
            (void)g.roles[0]->backward_to_input(grads.anchor_grad);
            (void)g.roles[1]->backward_to_input(grads.closer_grad);
            (void)g.roles[2]->backward_to_input(grads.farther_grad);
            // Per-sample gradient: role grads summed in fixed
            // (anchor, closer, farther) order — the serial loop's order.
            auto acc = g.roles[0]->parameter_grads();
            const auto gc = g.roles[1]->parameter_grads();
            const auto gf = g.roles[2]->parameter_grads();
            for (std::size_t i = 0; i < acc.size(); ++i) {
              acc[i] += gc[i];
              acc[i] += gf[i];
            }
            sample_grads[b] = std::move(acc);
          }
        });
      } else {
        // Non-cloneable extractor: serial fallback. A single instance holds
        // one cache set, so each contributing sample is re-forwarded
        // immediately before its backward.
        for (std::size_t b = 0; b < b_count; ++b) {
          const RankTriplet& t = *chosen[b];
          const video::Video& va = store.get(t.anchor);
          const video::Video& vc = store.get(t.closer);
          const video::Video& vf = store.get(t.farther);
          const Tensor fa = surrogate.extract(va);
          const Tensor fc = surrogate.extract(vc);
          const Tensor ff = surrogate.extract(vf);
          const auto grads = nn::ranked_triplet_loss(fa, fc, ff, config.gamma);
          losses[b] = grads.loss;
          if (grads.loss <= 0.0) continue;
          surrogate.zero_grad();
          (void)surrogate.extract(va);
          (void)surrogate.backward_to_input(grads.anchor_grad);
          (void)surrogate.extract(vc);
          (void)surrogate.backward_to_input(grads.closer_grad);
          (void)surrogate.extract(vf);
          (void)surrogate.backward_to_input(grads.farther_grad);
          sample_grads[b] = surrogate.parameter_grads();
        }
      }

      // Serial reduction in sample order, then one optimizer step over the
      // batch mean of the contributing triplets' gradients.
      int batch_active = 0;
      for (std::size_t b = 0; b < b_count; ++b) {
        // Epoch loss averages over *all* sampled triplets (satisfied ones
        // contribute zero) so the metric is comparable across epochs.
        epoch_loss += losses[b];
        if (!sample_grads[b].empty()) ++batch_active;
      }
      if (batch_active == 0) continue;
      contributing += batch_active;
      optimizer.zero_grad();
      const float scale = 1.0f / static_cast<float>(batch_active);
      for (std::size_t b = 0; b < b_count; ++b) {
        if (!sample_grads[b].empty()) {
          optimizer.accumulate_grad(sample_grads[b], scale);
        }
      }
      optimizer.step();
      // Push the updated weights to every replica before the next batch.
      for (auto& g : groups) {
        for (auto* role : g.roles) {
          if (role != &surrogate) role->copy_parameters_from(surrogate);
        }
      }
    }
    stats.epoch_losses.push_back(epoch_loss / config.triplets_per_epoch);
    if (config.verbose) {
      DUO_LOG_INFO("surrogate %s epoch %d/%d loss=%.4f (%d active)",
                   surrogate.name().c_str(), epoch + 1, config.epochs,
                   stats.epoch_losses.back(), contributing);
    }
  }
  surrogate.set_training(false);
  return stats;
}

}  // namespace duo::attack
