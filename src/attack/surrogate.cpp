#include "attack/surrogate.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hpp"
#include "nn/losses.hpp"
#include "nn/optimizer.hpp"

namespace duo::attack {

VideoStore::VideoStore(const std::vector<video::Video>& videos) {
  for (const auto& v : videos) add(v);
}

void VideoStore::add(const video::Video& v) {
  by_id_.insert_or_assign(v.id(), v);
}

const video::Video& VideoStore::get(std::int64_t id) const {
  const auto it = by_id_.find(id);
  DUO_CHECK_MSG(it != by_id_.end(), "VideoStore: unknown id");
  return it->second;
}

bool VideoStore::contains(std::int64_t id) const {
  return by_id_.count(id) != 0;
}

SurrogateDataset harvest_surrogate_dataset(
    retrieval::BlackBoxHandle& victim, const VideoStore& store,
    const std::vector<std::int64_t>& seed_ids,
    const SurrogateHarvestConfig& config) {
  DUO_CHECK_MSG(!seed_ids.empty(), "harvest: need at least one seed video");
  Rng rng(config.seed);
  SurrogateDataset out;
  std::unordered_set<std::int64_t> held;

  const std::int64_t queries_before = victim.query_count();
  std::vector<std::int64_t> frontier = seed_ids;
  for (const auto id : seed_ids) {
    DUO_CHECK_MSG(store.contains(id), "harvest: seed not in store");
    held.insert(id);
  }
  // Anchors and their retrieval lists, kept for the contrastive pass below.
  std::vector<std::pair<std::int64_t, metrics::RetrievalList>> anchor_lists;

  auto harvest_list = [&](std::int64_t anchor_id) {
    const auto list = victim.retrieve(store.get(anchor_id), config.m);
    if (list.size() < 2) return list;
    // Triplets ⟨anchor, v_i, v_j⟩ for i < j, capped for balance: prefer
    // widely separated ranks (most informative ordering constraints).
    int added = 0;
    for (std::size_t gap = list.size() - 1; gap >= 1 && added < config.max_triplets_per_list; --gap) {
      for (std::size_t i = 0; i + gap < list.size() && added < config.max_triplets_per_list; ++i) {
        out.triplets.push_back({anchor_id, list[i], list[i + gap]});
        ++added;
      }
    }
    for (const auto id : list) held.insert(id);
    anchor_lists.emplace_back(anchor_id, list);
    return list;
  };

  // Estimated total triplets so far (within-list + contrastive pass below).
  auto triplet_estimate = [&] {
    return out.triplets.size() +
           anchor_lists.size() *
               static_cast<std::size_t>(config.out_of_list_per_anchor);
  };
  auto targets_met = [&] {
    // The triplet target, when set, is the primary stopping rule (it is the
    // surrogate-dataset size the paper sweeps); the video-count target is
    // the fallback for target_triplets == 0.
    if (config.target_triplets > 0) {
      return triplet_estimate() >= config.target_triplets;
    }
    return held.size() >= config.target_video_count;
  };

  // Step 3 loop (Z rounds of Steps 1–2).
  for (int round = 0; round < config.rounds && !targets_met(); ++round) {
    std::vector<std::int64_t> next_frontier;
    for (const auto anchor : frontier) {
      if (targets_met()) break;
      const auto list = harvest_list(anchor);  // Step 1
      // Step 2: uniformly select M videos from the list and requery them
      // next round.
      std::vector<std::int64_t> pool(list.begin(), list.end());
      rng.shuffle(pool);
      const int take =
          std::min<int>(config.expand_per_query, static_cast<int>(pool.size()));
      next_frontier.insert(next_frontier.end(), pool.begin(),
                           pool.begin() + take);
    }
    if (next_frontier.empty()) break;
    frontier = std::move(next_frontier);
  }

  out.video_ids.assign(held.begin(), held.end());
  std::sort(out.video_ids.begin(), out.video_ids.end());

  // Contrastive pass: everything the attacker holds that is absent from an
  // anchor's top-m must be farther than anything in the list.
  for (const auto& [anchor, list] : anchor_lists) {
    std::unordered_set<std::int64_t> in_list(list.begin(), list.end());
    std::vector<std::int64_t> outside;
    for (const auto id : out.video_ids) {
      if (!in_list.count(id) && id != anchor) outside.push_back(id);
    }
    if (outside.empty() || list.empty()) continue;
    for (int i = 0; i < config.out_of_list_per_anchor; ++i) {
      const std::int64_t closer = list[rng.uniform_index(list.size())];
      const std::int64_t farther = outside[rng.uniform_index(outside.size())];
      out.triplets.push_back({anchor, closer, farther});
    }
  }

  out.queries_spent = victim.query_count() - queries_before;
  return out;
}

SurrogateTrainStats train_surrogate(models::FeatureExtractor& surrogate,
                                    const SurrogateDataset& dataset,
                                    const VideoStore& store,
                                    const SurrogateTrainConfig& config) {
  DUO_CHECK_MSG(!dataset.triplets.empty(), "train_surrogate: no triplets");
  surrogate.set_training(true);
  nn::Adam optimizer(surrogate.parameters(), config.learning_rate);
  Rng rng(config.seed);

  SurrogateTrainStats stats;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    int contributing = 0;
    for (int step = 0; step < config.triplets_per_epoch; ++step) {
      const RankTriplet& t =
          dataset.triplets[rng.uniform_index(dataset.triplets.size())];
      const video::Video& va = store.get(t.anchor);
      const video::Video& vc = store.get(t.closer);
      const video::Video& vf = store.get(t.farther);

      const Tensor fa = surrogate.extract(va);
      const Tensor fc = surrogate.extract(vc);
      const Tensor ff = surrogate.extract(vf);
      const auto grads = nn::ranked_triplet_loss(fa, fc, ff, config.gamma);
      // Epoch loss averages over *all* sampled triplets (satisfied ones
      // contribute zero) so the metric is comparable across epochs.
      epoch_loss += grads.loss;
      if (grads.loss <= 0.0) continue;
      ++contributing;

      optimizer.zero_grad();
      // Re-forward before each backward so layer caches match the sample.
      (void)surrogate.extract(va);
      (void)surrogate.backward_to_input(grads.anchor_grad);
      (void)surrogate.extract(vc);
      (void)surrogate.backward_to_input(grads.closer_grad);
      (void)surrogate.extract(vf);
      (void)surrogate.backward_to_input(grads.farther_grad);
      optimizer.step();
    }
    stats.epoch_losses.push_back(epoch_loss / config.triplets_per_epoch);
    if (config.verbose) {
      DUO_LOG_INFO("surrogate %s epoch %d/%d loss=%.4f (%d active)",
                   surrogate.name().c_str(), epoch + 1, config.epochs,
                   stats.epoch_losses.back(), contributing);
    }
  }
  surrogate.set_training(false);
  return stats;
}

}  // namespace duo::attack
