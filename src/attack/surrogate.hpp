#pragma once

// SparseTransfer step 1 (§IV-B1): build a surrogate model S(·) approximating
// the black-box victim R(·).
//
// The attacker seeds the process with videos it owns, queries the victim,
// downloads the returned videos (VideoStore stands in for the public video
// site), and harvests ranking triplets ⟨anchor, vᵢ, vⱼ⟩ (i < j in R^m):
// the victim believes vᵢ is more similar to the anchor than vⱼ. The
// surrogate is trained to reproduce those rankings with the margin loss
// Σ_{j>i} [D(v,vᵢ) − D(v,vⱼ) + γ]₊ (γ = 0.2).

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "models/feature_extractor.hpp"
#include "retrieval/system.hpp"
#include "video/video.hpp"

namespace duo::attack {

// Public id → video lookup (the attacker can fetch any returned video).
class VideoStore {
 public:
  VideoStore() = default;
  explicit VideoStore(const std::vector<video::Video>& videos);

  void add(const video::Video& v);
  const video::Video& get(std::int64_t id) const;
  bool contains(std::int64_t id) const;
  std::size_t size() const noexcept { return by_id_.size(); }

 private:
  std::unordered_map<std::int64_t, video::Video> by_id_;
};

struct RankTriplet {
  std::int64_t anchor = -1;   // query video id
  std::int64_t closer = -1;   // v_i, ranked higher
  std::int64_t farther = -1;  // v_j, ranked lower (i < j)
};

struct SurrogateDataset {
  std::vector<std::int64_t> video_ids;  // distinct videos the attacker holds
  std::vector<RankTriplet> triplets;
  std::int64_t queries_spent = 0;
};

struct SurrogateHarvestConfig {
  std::size_t m = 10;               // list length per query
  int expand_per_query = 3;         // M: videos re-queried per list (Step 2)
  int rounds = 4;                   // Z: Step-3 repetitions
  std::size_t target_video_count = 40;  // stop once this many videos held
  // Primary stopping rule: keep querying (up to `rounds`) until this many
  // training triplets are harvested. This is the "size of the surrogate
  // dataset" that Table III / Fig. 4 sweep. 0 disables the rule and falls
  // back to target_video_count alone.
  std::size_t target_triplets = 400;
  int max_triplets_per_list = 20;   // cap per list to balance the set
  // Contrastive triplets ⟨anchor, in-list, out-of-list⟩: a video the attacker
  // holds that did NOT appear in the anchor's top-m must rank below every
  // returned one. These carry most of the training signal — within-list
  // triplets alone only order already-similar videos.
  int out_of_list_per_anchor = 24;
  std::uint64_t seed = 11;
};

// Steps 1–3 of §IV-B1. `seed_ids` are the attacker's own starting videos
// (must exist in `store`).
SurrogateDataset harvest_surrogate_dataset(
    retrieval::BlackBoxHandle& victim, const VideoStore& store,
    const std::vector<std::int64_t>& seed_ids,
    const SurrogateHarvestConfig& config);

struct SurrogateTrainConfig {
  int epochs = 4;
  int triplets_per_epoch = 64;
  // Triplets accumulated per Adam step. The batch is evaluated data-parallel
  // across Module::clone() replicas on the shared compute pool (one shard per
  // thread, capped at batch_size); per-sample gradients are reduced serially
  // in sample order and averaged over the contributing triplets, so the
  // result is bitwise identical for any DUO_THREADS. batch_size = 1
  // reproduces the legacy one-triplet-per-step schedule exactly.
  int batch_size = 8;
  float learning_rate = 2e-3f;
  float gamma = 0.2f;  // ranking margin (paper §IV-B1)
  std::uint64_t seed = 13;
  bool verbose = false;
};

struct SurrogateTrainStats {
  std::vector<double> epoch_losses;
};

// Train `surrogate` in place on harvested triplets.
SurrogateTrainStats train_surrogate(models::FeatureExtractor& surrogate,
                                    const SurrogateDataset& dataset,
                                    const VideoStore& store,
                                    const SurrogateTrainConfig& config);

}  // namespace duo::attack
