#include "baselines/heu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "attack/objective.hpp"
#include "baselines/vanilla.hpp"

namespace duo::baselines {

attack::Perturbation saliency_support(const video::Video& v, std::int64_t k,
                                      std::int64_t n) {
  const video::VideoGeometry& g = v.geometry();
  attack::Perturbation pert(g);
  const std::int64_t fe = g.elements_per_frame();
  const float* data = v.data().data();

  // Key frames: motion energy ‖frame_t − frame_{t−1}‖² (frame 0 pairs with
  // frame 1 so it can still win when the action starts immediately).
  std::vector<double> motion(static_cast<std::size_t>(g.frames), 0.0);
  for (std::int64_t f = 0; f < g.frames; ++f) {
    const std::int64_t prev = f == 0 ? 1 : f - 1;
    double acc = 0.0;
    for (std::int64_t e = 0; e < fe; ++e) {
      const double d = static_cast<double>(data[f * fe + e]) -
                       data[prev * fe + e];
      acc += d * d;
    }
    motion[static_cast<std::size_t>(f)] = acc;
  }
  std::vector<std::int64_t> order(static_cast<std::size_t>(g.frames));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    const double ma = motion[static_cast<std::size_t>(a)];
    const double mb = motion[static_cast<std::size_t>(b)];
    if (ma != mb) return ma > mb;
    return a < b;
  });
  order.resize(static_cast<std::size_t>(std::min<std::int64_t>(n, g.frames)));
  pert.set_frames(order);

  // Salient pixels: deviation from the frame's per-channel mean (local
  // contrast proxy), ranked within the selected frames.
  Tensor scores(g.tensor_shape());
  for (const auto f : order) {
    std::vector<double> channel_mean(static_cast<std::size_t>(g.channels), 0.0);
    const std::int64_t px = g.pixels_per_frame();
    for (std::int64_t e = 0; e < fe; ++e) {
      channel_mean[static_cast<std::size_t>(e % g.channels)] +=
          data[f * fe + e];
    }
    for (auto& m : channel_mean) m /= static_cast<double>(px);
    for (std::int64_t e = 0; e < fe; ++e) {
      scores[f * fe + e] = std::fabs(
          data[f * fe + e] -
          static_cast<float>(channel_mean[static_cast<std::size_t>(e % g.channels)]));
    }
  }
  pert.restrict_pixels_to_frames_topk(scores, k);
  pert.magnitude().fill(0.0f);
  return pert;
}

HeuAttack::HeuAttack(HeuStrategy strategy, HeuConfig config)
    : strategy_(strategy), config_(std::move(config)) {}

attack::AttackOutcome HeuAttack::run(const video::Video& v,
                                     const video::Video& v_t,
                                     retrieval::BlackBoxHandle& victim) {
  const std::int64_t queries_before = victim.query_count();
  const video::VideoGeometry& g = v.geometry();
  Rng rng(config_.seed ^ static_cast<std::uint64_t>(v.id() * 0x9E3779B9ULL));

  attack::Perturbation pert =
      strategy_ == HeuStrategy::kNatureEstimated
          ? saliency_support(v, config_.k, config_.n)
          : random_support(g, config_.k, config_.n, rng);

  const Tensor support = pert.pixel_mask() * pert.frame_mask();
  std::vector<std::int64_t> coords;
  for (std::int64_t i = 0; i < support.size(); ++i) {
    if (support[i] > 0.5f) coords.push_back(i);
  }

  const attack::ObjectiveContext ctx =
      attack::make_objective_context(victim, v, v_t, config_.m, config_.eta);

  auto quantize = [](video::Video video) {
    for (auto& x : video.data().flat()) x = std::round(x);
    return video;
  };
  auto clip_to_budget = [&](video::Video& candidate) {
    float* d = candidate.data().data();
    const float* orig = v.data().data();
    for (const auto i : coords) {
      const float lo = std::max(0.0f, orig[i] - config_.tau);
      const float hi = std::min(255.0f, orig[i] + config_.tau);
      d[i] = std::clamp(d[i], lo, hi);
    }
  };

  video::Video v_adv = v;
  attack::AttackOutcome out;
  double t_current = attack::t_loss(victim, quantize(v_adv), ctx);
  out.t_history.push_back(t_current);

  if (coords.empty()) {
    out.adversarial = quantize(std::move(v_adv));
    out.perturbation = out.adversarial.data() - v.data();
    out.queries = victim.query_count() - queries_before;
    return out;
  }

  for (int it = 0; it < config_.nes_iterations; ++it) {
    // NES gradient estimate with antithetic sampling on the support.
    std::vector<float> grad(coords.size(), 0.0f);
    for (int p = 0; p < config_.nes_population; ++p) {
      std::vector<float> noise(coords.size());
      for (auto& z : noise) z = rng.normal_f(0.0f, 1.0f);

      video::Video plus = v_adv;
      video::Video minus = v_adv;
      for (std::size_t c = 0; c < coords.size(); ++c) {
        plus.data()[coords[c]] += config_.nes_sigma * noise[c];
        minus.data()[coords[c]] -= config_.nes_sigma * noise[c];
      }
      clip_to_budget(plus);
      clip_to_budget(minus);
      const double t_plus = attack::t_loss(victim, quantize(plus), ctx);
      const double t_minus = attack::t_loss(victim, quantize(minus), ctx);
      const float w = static_cast<float>(t_plus - t_minus);
      for (std::size_t c = 0; c < coords.size(); ++c) {
        grad[c] += w * noise[c];
      }
    }

    // Sign step downhill, then re-measure.
    for (std::size_t c = 0; c < coords.size(); ++c) {
      const float step = grad[c] > 0.0f ? -config_.step_size
                         : grad[c] < 0.0f ? config_.step_size
                                          : 0.0f;
      v_adv.data()[coords[c]] += step;
    }
    clip_to_budget(v_adv);
    t_current = attack::t_loss(victim, quantize(v_adv), ctx);
    out.t_history.push_back(t_current);
  }

  out.adversarial = quantize(std::move(v_adv));
  out.perturbation = out.adversarial.data() - v.data();
  out.queries = victim.query_count() - queries_before;
  return out;
}

}  // namespace duo::baselines
