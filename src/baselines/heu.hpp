#pragma once

// HEU baseline (Wei et al. [16]): heuristic black-box attack on video
// models. Two variants, as in §V-B:
//
//  * HEU-Nes — the "nature-estimated" strategy: key frames are chosen by
//    motion energy (temporal difference), salient pixels by local contrast,
//    and the perturbation is optimized with NES gradient estimation over
//    black-box queries.
//  * HEU-Sim — the same NES optimizer but with the random-selection strategy
//    of Vanilla instead of the saliency heuristics.

#include "attack/attack.hpp"
#include "attack/perturbation.hpp"

namespace duo::baselines {

struct HeuConfig {
  std::int64_t k = 2500;
  std::int64_t n = 4;
  float tau = 30.0f;
  std::size_t m = 10;
  double eta = 1.0;
  int nes_iterations = 25;      // NES outer steps
  int nes_population = 8;       // antithetic pairs per step → 2·pop queries
  float nes_sigma = 4.0f;       // exploration stddev (pixel scale)
  float step_size = 4.0f;       // sign-step size per iteration
  std::uint64_t seed = 29;
};

enum class HeuStrategy { kNatureEstimated, kRandom };

class HeuAttack final : public attack::Attack {
 public:
  HeuAttack(HeuStrategy strategy, HeuConfig config);

  attack::AttackOutcome run(const video::Video& v, const video::Video& v_t,
                            retrieval::BlackBoxHandle& victim) override;

  std::string name() const override {
    return strategy_ == HeuStrategy::kNatureEstimated ? "HEU-Nes" : "HEU-Sim";
  }

 private:
  HeuStrategy strategy_;
  HeuConfig config_;
};

// Saliency-based support selection (exposed for tests): top-n frames by
// motion energy, top-k pixels by local contrast within those frames.
attack::Perturbation saliency_support(const video::Video& v, std::int64_t k,
                                      std::int64_t n);

}  // namespace duo::baselines
