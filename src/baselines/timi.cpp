#include "baselines/timi.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace duo::baselines {

namespace {

// Spatial Gaussian smoothing of a pixel-space gradient [N, H, W, C] — the
// translation-invariant trick: attacking a smoothed gradient transfers
// better across architectures.
Tensor ti_smooth(const Tensor& grad, const video::VideoGeometry& g,
                 int radius, float sigma) {
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float ksum = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    const float w = std::exp(-static_cast<float>(i * i) / (2.0f * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = w;
    ksum += w;
  }
  for (auto& w : kernel) w /= ksum;

  // Separable convolution: rows then columns, per frame and channel.
  Tensor tmp(grad.shape());
  Tensor out(grad.shape());
  for (std::int64_t n = 0; n < g.frames; ++n) {
    for (std::int64_t c = 0; c < g.channels; ++c) {
      for (std::int64_t y = 0; y < g.height; ++y) {
        for (std::int64_t x = 0; x < g.width; ++x) {
          float acc = 0.0f;
          for (int dx = -radius; dx <= radius; ++dx) {
            const std::int64_t xx =
                std::clamp<std::int64_t>(x + dx, 0, g.width - 1);
            acc += kernel[static_cast<std::size_t>(dx + radius)] *
                   grad.at(n, y, xx, c);
          }
          tmp.at(n, y, x, c) = acc;
        }
      }
      for (std::int64_t y = 0; y < g.height; ++y) {
        for (std::int64_t x = 0; x < g.width; ++x) {
          float acc = 0.0f;
          for (int dy = -radius; dy <= radius; ++dy) {
            const std::int64_t yy =
                std::clamp<std::int64_t>(y + dy, 0, g.height - 1);
            acc += kernel[static_cast<std::size_t>(dy + radius)] *
                   tmp.at(n, yy, x, c);
          }
          out.at(n, y, x, c) = acc;
        }
      }
    }
  }
  return out;
}

}  // namespace

TimiAttack::TimiAttack(models::FeatureExtractor& surrogate, TimiConfig config)
    : surrogate_(&surrogate),
      config_(config),
      name_("TIMI-" + surrogate.name()) {}

attack::AttackOutcome TimiAttack::run(const video::Video& v,
                                      const video::Video& v_t,
                                      retrieval::BlackBoxHandle& victim) {
  (void)victim;  // transfer-only: spends no queries
  const video::VideoGeometry& g = v.geometry();
  surrogate_->set_training(false);
  const Tensor target_feature = surrogate_->extract(v_t);

  const float alpha =
      config_.tau / static_cast<float>(std::max(1, config_.iterations));
  Tensor delta(g.tensor_shape());
  Tensor velocity(g.tensor_shape());

  for (int it = 0; it < config_.iterations; ++it) {
    video::Video v_adv(v.data() + delta, g, v.label(), v.id());
    v_adv.clamp_valid();

    const Tensor feature = surrogate_->extract(v_adv);
    Tensor diff = feature - target_feature;
    diff *= 2.0f;  // d‖Fea − Fea_t‖²/dFea
    for (auto* p : surrogate_->parameters()) p->zero_grad();
    const Tensor model_grad = surrogate_->backward_to_input(diff);
    Tensor grad = video::Video::from_model_space(model_grad, g, false);

    // TI: smooth, MI: accumulate L1-normalized gradient into the velocity.
    grad = ti_smooth(grad, g, config_.ti_kernel_radius, config_.ti_sigma);
    const double l1 = grad.norm_l1();
    if (l1 > 1e-12) grad *= static_cast<float>(1.0 / l1);
    velocity *= config_.momentum;
    velocity += grad;

    // Descend (we minimize the feature distance to the target).
    delta.axpy(-alpha, velocity.sign());
    delta.clamp_(-config_.tau, config_.tau);
  }

  video::Video v_adv(v.data() + delta, g, v.label(), v.id());
  v_adv.clamp_valid();
  for (auto& x : v_adv.data().flat()) x = std::round(x);

  attack::AttackOutcome out;
  out.adversarial = std::move(v_adv);
  out.perturbation = out.adversarial.data() - v.data();
  out.queries = 0;
  return out;
}

}  // namespace duo::baselines
