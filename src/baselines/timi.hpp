#pragma once

// TIMI baseline (Dong et al. [25]): transfer-only dense attack combining the
// momentum-iterative (MI) method with translation-invariant (TI) gradient
// smoothing. Perturbs every frame and every pixel (Table II reports it with
// n = 16 and Spa ≈ the full tensor), which is exactly the density DUO's
// sparsification eliminates.

#include "attack/attack.hpp"
#include "models/feature_extractor.hpp"

namespace duo::baselines {

struct TimiConfig {
  int iterations = 10;
  float tau = 10.0f;          // ℓ∞ budget (paper Table II: PScore ≈ 10)
  float momentum = 1.0f;      // MI decay factor μ
  int ti_kernel_radius = 1;   // TI Gaussian kernel radius (3×3)
  float ti_sigma = 1.0f;
};

class TimiAttack final : public attack::Attack {
 public:
  // Name follows the paper: TIMI-<surrogate backbone>.
  TimiAttack(models::FeatureExtractor& surrogate, TimiConfig config);

  attack::AttackOutcome run(const video::Video& v, const video::Video& v_t,
                            retrieval::BlackBoxHandle& victim) override;

  std::string name() const override { return name_; }

 private:
  models::FeatureExtractor* surrogate_;
  TimiConfig config_;
  std::string name_;
};

}  // namespace duo::baselines
