#include "baselines/vanilla.hpp"

#include <numeric>

namespace duo::baselines {

attack::Perturbation random_support(const video::VideoGeometry& geometry,
                                    std::int64_t k, std::int64_t n, Rng& rng) {
  attack::Perturbation pert(geometry);

  std::vector<std::int64_t> frames(static_cast<std::size_t>(geometry.frames));
  std::iota(frames.begin(), frames.end(), 0);
  rng.shuffle(frames);
  frames.resize(static_cast<std::size_t>(
      std::min<std::int64_t>(n, geometry.frames)));
  pert.set_frames(frames);

  // k random elements within the selected frames.
  const std::int64_t fe = geometry.elements_per_frame();
  std::vector<std::int64_t> candidates;
  candidates.reserve(static_cast<std::size_t>(frames.size()) *
                     static_cast<std::size_t>(fe));
  for (const auto f : frames) {
    for (std::int64_t e = 0; e < fe; ++e) candidates.push_back(f * fe + e);
  }
  rng.shuffle(candidates);
  const std::size_t kk = static_cast<std::size_t>(
      std::min<std::int64_t>(k, static_cast<std::int64_t>(candidates.size())));

  pert.pixel_mask().fill(0.0f);
  for (std::size_t i = 0; i < kk; ++i) {
    pert.pixel_mask()[candidates[i]] = 1.0f;
  }
  pert.magnitude().fill(0.0f);
  return pert;
}

attack::AttackOutcome VanillaAttack::run(const video::Video& v,
                                         const video::Video& v_t,
                                         retrieval::BlackBoxHandle& victim) {
  const std::int64_t queries_before = victim.query_count();
  Rng rng(config_.seed ^ static_cast<std::uint64_t>(v.id() * 2654435761ULL));
  const attack::Perturbation pert =
      random_support(v.geometry(), config_.k, config_.n, rng);

  const attack::ObjectiveContext ctx = attack::make_objective_context(
      victim, v, v_t, config_.query.m, config_.query.eta);
  attack::SparseQueryConfig qcfg = config_.query;
  qcfg.seed = rng.next_u64();
  const attack::SparseQueryResult sq =
      attack::sparse_query(v, pert, victim, ctx, qcfg);

  attack::AttackOutcome out;
  out.adversarial = sq.v_adv;
  out.perturbation = out.adversarial.data() - v.data();
  out.t_history = sq.t_history;
  out.queries = victim.query_count() - queries_before;
  return out;
}

}  // namespace duo::baselines
