#pragma once

// Vanilla baseline (§V-B): random pixel/frame selection at a fixed sparsity
// budget, followed by a SimBA-style query attack [53] on that support. This
// is DUO with the dual frame-pixel *search* replaced by random choice — the
// ablation that isolates the value of SparseTransfer's prior knowledge.

#include "attack/attack.hpp"
#include "attack/sparse_query.hpp"

namespace duo::baselines {

struct VanillaConfig {
  std::int64_t k = 2500;  // pixels selected (uniformly within chosen frames)
  std::int64_t n = 4;     // frames selected uniformly at random
  attack::SparseQueryConfig query;
  std::uint64_t seed = 23;
};

class VanillaAttack final : public attack::Attack {
 public:
  explicit VanillaAttack(VanillaConfig config) : config_(std::move(config)) {}

  attack::AttackOutcome run(const video::Video& v, const video::Video& v_t,
                            retrieval::BlackBoxHandle& victim) override;

  std::string name() const override { return "Vanilla"; }

 private:
  VanillaConfig config_;
};

// Shared helper: a Perturbation with n uniformly random frames and k
// uniformly random pixels inside them, θ = 0 (also used by HEU-Sim).
attack::Perturbation random_support(const video::VideoGeometry& geometry,
                                    std::int64_t k, std::int64_t n, Rng& rng);

}  // namespace duo::baselines
