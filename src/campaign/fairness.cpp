#include "campaign/fairness.hpp"

namespace duo::campaign {

double jain_index(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (xs.empty() || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

FairnessSummary summarize_fairness(const serve::ServerStats& stats) {
  FairnessSummary out;
  out.clients = static_cast<std::int64_t>(stats.per_client.size());

  std::vector<double> served;
  std::vector<double> billed;
  served.reserve(stats.per_client.size());
  billed.reserve(stats.per_client.size());
  std::int64_t served_total = 0;
  std::int64_t faulted_total = 0;
  std::int64_t throttled_total = 0;
  std::int64_t rejected_total = 0;
  std::int64_t shed_total = 0;
  std::int64_t expired_total = 0;
  std::int64_t lost_total = 0;
  bool first = true;
  for (const auto& [id, c] : stats.per_client) {
    served.push_back(static_cast<double>(c.served));
    billed.push_back(static_cast<double>(c.billed()));
    out.billed_total += c.billed();
    served_total += c.served;
    faulted_total += c.faulted;
    throttled_total += c.throttled;
    rejected_total += c.rejected;
    shed_total += c.shed;
    expired_total += c.expired;
    lost_total += c.lost;
    if (first || c.served > out.most_served) {
      out.most_served = c.served;
      out.most_served_client = id;
    }
    if (first || c.served < out.least_served) {
      out.least_served = c.served;
      out.least_served_client = id;
    }
    first = false;
  }
  out.jain_served = jain_index(served);
  out.jain_billed = jain_index(billed);

  // The per-client ledger is billed() by construction; what must be PROVEN
  // is that the per-client slices sum exactly to the global counters — i.e.
  // no request was double-counted or lost between the two accountings.
  out.ledger_ok = served_total == stats.queries_served &&
                  faulted_total == stats.faults_injected &&
                  throttled_total == stats.requests_throttled &&
                  rejected_total == stats.requests_rejected &&
                  shed_total == stats.requests_shed &&
                  expired_total == stats.requests_expired &&
                  // Crash casualties: the lost slices must likewise sum to
                  // the global counter (lost is a subset of faulted, so the
                  // billed formula below already covers it).
                  lost_total == stats.requests_lost &&
                  out.billed_total == stats.queries_served +
                                          stats.faults_injected +
                                          stats.requests_expired +
                                          stats.requests_shed;
  return out;
}

}  // namespace duo::campaign
