#pragma once

// Per-client fairness ledger over a ServerStats snapshot. Jain's index
//   J(x) = (Σxᵢ)² / (n · Σxᵢ²)
// over per-client served counts is 1.0 when every client got the same
// service and → 1/n as one client monopolizes the victim; a starved client
// is detectable from the summary without reading n rows. The ledger also
// re-checks the billing invariant per client and globally:
//   billed == served + faulted + expired + shed
// (throttled/rejected turn-aways are unbilled), so a campaign report that
// prints `reconciled` has proven its accounting end to end.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace duo::campaign {

struct FairnessSummary {
  std::int64_t clients = 0;
  double jain_served = 1.0;   // Jain's index over per-client served counts
  double jain_billed = 1.0;   // same over per-client billed counts
  std::string most_served_client;
  std::string least_served_client;
  std::int64_t most_served = 0;
  std::int64_t least_served = 0;
  // Σ per-client billed — equals served+faulted+expired+shed globally when
  // the ledger reconciles.
  std::int64_t billed_total = 0;
  bool ledger_ok = false;
};

// Jain's fairness index of `xs`; 1.0 for empty/all-zero input (nobody is
// starved when nobody asked).
double jain_index(const std::vector<double>& xs);

// Summarize the per-client breakdown of one stats snapshot. ledger_ok checks
// the per-client ledgers AND that their sums match the global counters.
FairnessSummary summarize_fairness(const serve::ServerStats& stats);

}  // namespace duo::campaign
