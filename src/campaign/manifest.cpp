#include "campaign/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "models/serialization.hpp"

namespace duo::campaign {

namespace {

// %.17g survives a text round trip for every finite double (shortest exact
// form would too, but 17 significant digits is simpler and canonical here).
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* admission_name(serve::AdmissionPolicy p) {
  switch (p) {
    case serve::AdmissionPolicy::kBlock:
      return "block";
    case serve::AdmissionPolicy::kReject:
      return "reject";
    case serve::AdmissionPolicy::kShed:
      return "shed";
  }
  return "block";
}

bool admission_from_name(const std::string& name, serve::AdmissionPolicy& p) {
  if (name == "block") {
    p = serve::AdmissionPolicy::kBlock;
  } else if (name == "reject") {
    p = serve::AdmissionPolicy::kReject;
  } else if (name == "shed") {
    p = serve::AdmissionPolicy::kShed;
  } else {
    return false;
  }
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  std::uint64_t v = 0;
  return std::sscanf(s.c_str(), "%" SCNu64, &v) == 1 && (out = v, true);
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  std::int64_t v = 0;
  return std::sscanf(s.c_str(), "%" SCNd64, &v) == 1 && (out = v, true);
}

bool parse_f64(const std::string& s, double& out) {
  double v = 0.0;
  return std::sscanf(s.c_str(), "%lg", &v) == 1 && (out = v, true);
}

bool parse_int(const std::string& s, int& out) {
  std::int64_t v = 0;
  if (!parse_i64(s, v)) return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_size(const std::string& s, std::size_t& out) {
  std::int64_t v = 0;
  if (!parse_i64(s, v) || v < 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

// One global "key value" line. Returns false for unknown keys or bad values.
bool apply_global(CampaignManifest& m, const std::string& key,
                  const std::string& value) {
  if (key == "campaign") return (m.name = value, true);
  if (key == "seed") return parse_u64(value, m.seed);
  if (key == "virtual_clock") {
    std::int64_t v = 0;
    if (!parse_i64(value, v)) return false;
    m.virtual_clock = v != 0;
    return true;
  }
  if (key == "max_batch") return parse_size(value, m.max_batch);
  if (key == "queue_capacity") return parse_size(value, m.queue_capacity);
  if (key == "admission") return admission_from_name(value, m.admission);
  if (key == "admission_threshold")
    return parse_f64(value, m.admission_threshold);
  if (key == "reject_retry_after_ms")
    return parse_f64(value, m.reject_retry_after_ms);
  if (key == "client_rate") return parse_f64(value, m.client_rate);
  if (key == "client_burst") return parse_f64(value, m.client_burst);
  if (key == "batch_timeout_ms") return parse_f64(value, m.batch_timeout_ms);
  if (key == "degrade_high") return parse_f64(value, m.degrade_high);
  if (key == "degrade_low") return parse_f64(value, m.degrade_low);
  if (key == "fault_error_prob") return parse_f64(value, m.fault_error_prob);
  if (key == "fault_delay_prob") return parse_f64(value, m.fault_delay_prob);
  if (key == "fault_drop_prob") return parse_f64(value, m.fault_drop_prob);
  if (key == "fault_delay_ms") return parse_f64(value, m.fault_delay_ms);
  if (key == "fault_error_from") return parse_i64(value, m.fault_error_from);
  if (key == "fault_seed") return parse_u64(value, m.fault_seed);
  if (key == "pacer_rate") return parse_f64(value, m.pacer_rate);
  if (key == "pacer_burst") return parse_f64(value, m.pacer_burst);
  if (key == "pacer_aimd") {
    std::int64_t v = 0;
    if (!parse_i64(value, v)) return false;
    m.pacer_aimd = v != 0;
    return true;
  }
  if (key == "aimd_increase") return parse_f64(value, m.aimd_increase);
  if (key == "aimd_decrease") return parse_f64(value, m.aimd_decrease);
  if (key == "aimd_floor") return parse_f64(value, m.aimd_floor);
  if (key == "aimd_ceiling") return parse_f64(value, m.aimd_ceiling);
  if (key == "max_attempts") return parse_int(value, m.max_attempts);
  if (key == "query_timeout_ms") return parse_f64(value, m.query_timeout_ms);
  if (key == "submit_deadline_ms")
    return parse_f64(value, m.submit_deadline_ms);
  if (key == "circuit_threshold") return parse_int(value, m.circuit_threshold);
  if (key == "circuit_cooldown_ms")
    return parse_f64(value, m.circuit_cooldown_ms);
  if (key == "checkpoint_dir") return (m.checkpoint_dir = value, true);
  if (key == "crash_at_ms") {
    double v = 0.0;
    if (!parse_f64(value, v) || v <= 0.0) return false;
    // Strictly increasing, so the runner can execute the schedule as a
    // single forward sweep of the campaign clock.
    if (!m.crashes.empty() && v <= m.crashes.back().at_ms) return false;
    CrashEvent e;
    e.at_ms = v;
    m.crashes.push_back(e);
    return true;
  }
  if (key == "restart_after_ms") {
    // Tunes the most recent crash_at_ms event; meaningless before one.
    if (m.crashes.empty()) return false;
    double v = 0.0;
    if (!parse_f64(value, v) || v <= 0.0) return false;
    m.crashes.back().restart_after_ms = v;
    return true;
  }
  return false;
}

bool apply_session(SessionSpec& s, const std::string& key,
                   const std::string& value) {
  if (key == "role") return role_from_name(value, s.role);
  if (key == "seed") return parse_u64(value, s.seed);
  if (key == "m") return parse_size(value, s.m);
  if (key == "ttl_ms") return parse_f64(value, s.ttl_ms);
  if (key == "think_ms") return parse_f64(value, s.think_ms);
  if (key == "queries") return parse_int(value, s.queries);
  if (key == "iterations") return parse_int(value, s.iterations);
  if (key == "rounds") return parse_int(value, s.rounds);
  if (key == "support_k") return parse_i64(value, s.support_k);
  if (key == "support_n") return parse_i64(value, s.support_n);
  if (key == "source_index") return parse_i64(value, s.source_index);
  if (key == "target_index") return parse_i64(value, s.target_index);
  if (key == "checkpoint") return (s.checkpoint = value, true);
  return false;
}

}  // namespace

const char* role_name(SessionRole role) {
  switch (role) {
    case SessionRole::kBenign:
      return "benign";
    case SessionRole::kSparse:
      return "sparse";
    case SessionRole::kDuo:
      return "duo";
  }
  return "benign";
}

bool role_from_name(const std::string& name, SessionRole& role) {
  if (name == "benign") {
    role = SessionRole::kBenign;
  } else if (name == "sparse") {
    role = SessionRole::kSparse;
  } else if (name == "duo") {
    role = SessionRole::kDuo;
  } else {
    return false;
  }
  return true;
}

bool operator==(const SessionSpec& a, const SessionSpec& b) {
  return a.client_id == b.client_id && a.role == b.role && a.seed == b.seed &&
         a.m == b.m && a.ttl_ms == b.ttl_ms && a.think_ms == b.think_ms &&
         a.queries == b.queries && a.iterations == b.iterations &&
         a.rounds == b.rounds && a.support_k == b.support_k &&
         a.support_n == b.support_n && a.source_index == b.source_index &&
         a.target_index == b.target_index && a.checkpoint == b.checkpoint;
}

bool operator==(const CampaignManifest& a, const CampaignManifest& b) {
  return a.name == b.name && a.seed == b.seed &&
         a.virtual_clock == b.virtual_clock && a.max_batch == b.max_batch &&
         a.queue_capacity == b.queue_capacity && a.admission == b.admission &&
         a.admission_threshold == b.admission_threshold &&
         a.reject_retry_after_ms == b.reject_retry_after_ms &&
         a.client_rate == b.client_rate && a.client_burst == b.client_burst &&
         a.batch_timeout_ms == b.batch_timeout_ms &&
         a.degrade_high == b.degrade_high && a.degrade_low == b.degrade_low &&
         a.fault_error_prob == b.fault_error_prob &&
         a.fault_delay_prob == b.fault_delay_prob &&
         a.fault_drop_prob == b.fault_drop_prob &&
         a.fault_delay_ms == b.fault_delay_ms &&
         a.fault_error_from == b.fault_error_from &&
         a.fault_seed == b.fault_seed && a.pacer_rate == b.pacer_rate &&
         a.pacer_burst == b.pacer_burst && a.pacer_aimd == b.pacer_aimd &&
         a.aimd_increase == b.aimd_increase &&
         a.aimd_decrease == b.aimd_decrease && a.aimd_floor == b.aimd_floor &&
         a.aimd_ceiling == b.aimd_ceiling &&
         a.max_attempts == b.max_attempts &&
         a.query_timeout_ms == b.query_timeout_ms &&
         a.submit_deadline_ms == b.submit_deadline_ms &&
         a.circuit_threshold == b.circuit_threshold &&
         a.circuit_cooldown_ms == b.circuit_cooldown_ms &&
         a.checkpoint_dir == b.checkpoint_dir && a.crashes == b.crashes &&
         a.sessions == b.sessions;
}

void write_manifest(std::ostream& out, const CampaignManifest& m) {
  out << "campaign " << m.name << "\n";
  out << "seed " << m.seed << "\n";
  out << "virtual_clock " << (m.virtual_clock ? 1 : 0) << "\n";
  out << "max_batch " << m.max_batch << "\n";
  out << "queue_capacity " << m.queue_capacity << "\n";
  out << "admission " << admission_name(m.admission) << "\n";
  out << "admission_threshold " << fmt(m.admission_threshold) << "\n";
  out << "reject_retry_after_ms " << fmt(m.reject_retry_after_ms) << "\n";
  out << "client_rate " << fmt(m.client_rate) << "\n";
  out << "client_burst " << fmt(m.client_burst) << "\n";
  out << "batch_timeout_ms " << fmt(m.batch_timeout_ms) << "\n";
  out << "degrade_high " << fmt(m.degrade_high) << "\n";
  out << "degrade_low " << fmt(m.degrade_low) << "\n";
  out << "fault_error_prob " << fmt(m.fault_error_prob) << "\n";
  out << "fault_delay_prob " << fmt(m.fault_delay_prob) << "\n";
  out << "fault_drop_prob " << fmt(m.fault_drop_prob) << "\n";
  out << "fault_delay_ms " << fmt(m.fault_delay_ms) << "\n";
  out << "fault_error_from " << m.fault_error_from << "\n";
  out << "fault_seed " << m.fault_seed << "\n";
  out << "pacer_rate " << fmt(m.pacer_rate) << "\n";
  out << "pacer_burst " << fmt(m.pacer_burst) << "\n";
  out << "pacer_aimd " << (m.pacer_aimd ? 1 : 0) << "\n";
  out << "aimd_increase " << fmt(m.aimd_increase) << "\n";
  out << "aimd_decrease " << fmt(m.aimd_decrease) << "\n";
  out << "aimd_floor " << fmt(m.aimd_floor) << "\n";
  out << "aimd_ceiling " << fmt(m.aimd_ceiling) << "\n";
  out << "max_attempts " << m.max_attempts << "\n";
  out << "query_timeout_ms " << fmt(m.query_timeout_ms) << "\n";
  out << "submit_deadline_ms " << fmt(m.submit_deadline_ms) << "\n";
  out << "circuit_threshold " << m.circuit_threshold << "\n";
  out << "circuit_cooldown_ms " << fmt(m.circuit_cooldown_ms) << "\n";
  if (!m.checkpoint_dir.empty()) {
    out << "checkpoint_dir " << m.checkpoint_dir << "\n";
  }
  for (const auto& c : m.crashes) {
    out << "crash_at_ms " << fmt(c.at_ms) << "\n";
    out << "restart_after_ms " << fmt(c.restart_after_ms) << "\n";
  }
  for (const auto& s : m.sessions) {
    out << "session " << s.client_id << "\n";
    out << "role " << role_name(s.role) << "\n";
    out << "seed " << s.seed << "\n";
    out << "m " << s.m << "\n";
    out << "ttl_ms " << fmt(s.ttl_ms) << "\n";
    out << "think_ms " << fmt(s.think_ms) << "\n";
    out << "queries " << s.queries << "\n";
    out << "iterations " << s.iterations << "\n";
    out << "rounds " << s.rounds << "\n";
    out << "support_k " << s.support_k << "\n";
    out << "support_n " << s.support_n << "\n";
    out << "source_index " << s.source_index << "\n";
    out << "target_index " << s.target_index << "\n";
    if (!s.checkpoint.empty()) out << "checkpoint " << s.checkpoint << "\n";
  }
}

bool parse_manifest(std::istream& in, CampaignManifest& manifest) {
  CampaignManifest staged;  // all-or-nothing: commit only on a clean parse
  staged.checkpoint_dir.clear();
  SessionSpec* current = nullptr;
  std::string line;
  while (std::getline(in, line)) {
    // Strip trailing CR (manifests may travel through CRLF editors).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.find(' ');
    const std::string key = line.substr(0, space);
    const std::string value =
        space == std::string::npos ? std::string() : line.substr(space + 1);
    if (key == "session") {
      if (value.empty()) return false;
      staged.sessions.emplace_back();
      current = &staged.sessions.back();
      current->client_id = value;
      continue;
    }
    const bool ok = current == nullptr ? apply_global(staged, key, value)
                                       : apply_session(*current, key, value);
    if (!ok) return false;
  }
  manifest = std::move(staged);
  return true;
}

bool save_manifest(const CampaignManifest& manifest, const std::string& path) {
  return models::io::atomic_write(
      path, [&](std::ostream& out) { write_manifest(out, manifest); });
}

bool load_manifest(CampaignManifest& manifest, const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  return parse_manifest(in, manifest);
}

}  // namespace duo::campaign
