#pragma once

// Campaign manifest: the declarative spec of a mixed-traffic campaign — one
// RetrievalServer victim, N attack sessions, M benign query streams — that
// campaign::CampaignRunner executes. The manifest is plain text ("key value"
// lines, one session block per client) so a campaign is diffable, editable,
// and committable next to its results; save_manifest writes it through
// models::io::atomic_write (never a torn file) and load_manifest parses it
// back to an identical manifest (doubles print with %.17g, so the round trip
// is exact — pinned by tests/test_campaign.cpp).
//
// Format:
//
//   # comment
//   campaign soak-a
//   seed 7
//   virtual_clock 1
//   max_batch 8
//   ...global server / fault / client-policy keys...
//   session attacker-0
//   role sparse
//   seed 11
//   iterations 40
//   ...per-session keys...
//   session reader-0
//   role benign
//   queries 32
//
// `session <client_id>` opens a block; every later key applies to that
// session until the next `session` line. Keys before the first session are
// campaign-global. Unknown keys fail the parse (typos must not silently
// reconfigure a campaign).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/admission.hpp"

namespace duo::campaign {

// What a session does with its client thread.
enum class SessionRole {
  kBenign,  // seeded query mix: `queries` retrievals over the roster
  kSparse,  // sparse_query_pipelined from a seeded random support
  kDuo,     // full DuoAttack (needs the runner's surrogate)
};

const char* role_name(SessionRole role);
bool role_from_name(const std::string& name, SessionRole& role);

// One client of the campaign. Attack sessions read their source/target
// videos from the campaign roster by index; benign sessions draw query
// indices from their seeded stream.
struct SessionSpec {
  std::string client_id;
  SessionRole role = SessionRole::kBenign;
  std::uint64_t seed = 1;
  std::size_t m = 10;
  // Per-request freshness budget (RequestOptions::ttl_ms); 0 = no deadline.
  double ttl_ms = 0.0;
  // Benign arrival process: mean think time between queries, exponentially
  // distributed from the session seed. 0 = closed loop (back-to-back).
  double think_ms = 0.0;
  int queries = 32;     // benign: stream length
  int iterations = 40;  // sparse/duo: SparseQueryConfig::iter_numQ
  int rounds = 2;       // duo: DuoConfig::iter_numH
  // Sparse support size (pixels per frame / frames); 0 = geometry default.
  std::int64_t support_k = 0;
  std::int64_t support_n = 3;
  // Roster indices of the attack's source and target videos (benign ignores).
  std::int64_t source_index = 0;
  std::int64_t target_index = 1;
  // Per-session checkpoint path. Empty + a campaign checkpoint_dir =
  // "<checkpoint_dir>/<client_id>.ck"; empty + no dir = no checkpointing.
  std::string checkpoint;

  friend bool operator==(const SessionSpec& a, const SessionSpec& b);
};

// Scheduled victim crash: at `at_ms` of campaign clock time the server
// crashes abruptly (queued and in-flight requests die with
// ServeError{kConnectionLost}); `restart_after_ms` later it restarts from
// its accounting snapshot (round-tripped through durable files when the
// campaign has a checkpoint_dir). In the manifest, `crash_at_ms <t>` opens
// a new event and an optional following `restart_after_ms <d>` sets its
// downtime; crash times must be positive and strictly increasing.
struct CrashEvent {
  double at_ms = 0.0;
  double restart_after_ms = 5.0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

// The whole campaign: victim/server config, fault schedule, shared client
// policy, and the session roster.
struct CampaignManifest {
  std::string name = "campaign";
  std::uint64_t seed = 1;
  // Drive server, pacer, retries, and deadlines on one VirtualClock (the
  // deterministic default) instead of wall time.
  bool virtual_clock = true;

  // Server knobs (serve::ServerConfig).
  std::size_t max_batch = 8;
  std::size_t queue_capacity = 64;
  serve::AdmissionPolicy admission = serve::AdmissionPolicy::kBlock;
  double admission_threshold = 1.0;
  double reject_retry_after_ms = 5.0;
  double client_rate = 0.0;  // per-client_id token bucket; 0 = off
  double client_burst = 4.0;
  // Latency-aware batching timeout (ServerConfig::batch_timeout_ms); 0 =
  // drain immediately.
  double batch_timeout_ms = 0.0;
  // Graceful-degradation ladder (ServerConfig::degrade_high/degrade_low);
  // degrade_high 0 = disabled.
  double degrade_high = 0.0;
  double degrade_low = 0.25;

  // Fault schedule (serve::FaultConfig); all zero/disabled = healthy victim.
  double fault_error_prob = 0.0;
  double fault_delay_prob = 0.0;
  double fault_drop_prob = 0.0;
  double fault_delay_ms = 5.0;
  std::int64_t fault_error_from = -1;  // victim dies at this arrival index
  std::uint64_t fault_seed = 1;

  // Shared client-side pacer ("one API key"); 0 = no pacer.
  double pacer_rate = 0.0;
  double pacer_burst = 4.0;
  // AIMD closed-loop pacing (serve::PacerConfig): when on, pacer_rate is
  // only the initial rate and the loop converges on the victim's limit.
  bool pacer_aimd = false;
  double aimd_increase = 4.0;
  double aimd_decrease = 0.5;
  double aimd_floor = 0.1;
  double aimd_ceiling = 1e6;

  // Client retry policy (serve::RetryPolicy), shared shape across sessions;
  // each session's jitter stream is reseeded from its own seed.
  int max_attempts = 10;
  double query_timeout_ms = 250.0;
  double submit_deadline_ms = 250.0;
  int circuit_threshold = 0;
  double circuit_cooldown_ms = 100.0;

  // Default directory for per-session checkpoints (created on demand).
  std::string checkpoint_dir;

  // Scheduled crash/restart cycles the runner executes (chaos schedule).
  std::vector<CrashEvent> crashes;

  std::vector<SessionSpec> sessions;

  friend bool operator==(const CampaignManifest& a, const CampaignManifest& b);
};

// Stream forms, for embedding in other formats and for tests.
void write_manifest(std::ostream& out, const CampaignManifest& manifest);
bool parse_manifest(std::istream& in, CampaignManifest& manifest);

// File forms. save_manifest commits atomically (models::io::atomic_write);
// load_manifest returns false on I/O failure or any malformed line.
bool save_manifest(const CampaignManifest& manifest, const std::string& path);
bool load_manifest(CampaignManifest& manifest, const std::string& path);

}  // namespace duo::campaign
