#include "campaign/report.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace duo::campaign {

namespace {

std::string hash_hex(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return buf;
}

long long ll(std::int64_t v) { return static_cast<long long>(v); }

}  // namespace

TableWriter session_table(const CampaignOutcome& outcome) {
  TableWriter table("campaign sessions");
  table.set_header({"client", "role", "done", "progress", "billed",
                    "cumulative", "retries", "overloads", "rate", "final_T",
                    "outcome_hash"});
  table.set_precision(4);
  for (const auto& s : outcome.sessions) {
    table.add_row({s.client_id, std::string(role_name(s.role)),
                   std::string(s.completed ? "yes" : "no"),
                   ll(s.logical_queries), ll(s.queries_billed),
                   ll(s.queries_reported), ll(s.retries), ll(s.overloads),
                   s.discovered_rate, s.final_t, hash_hex(s.outcome_hash)});
  }
  return table;
}

TableWriter fairness_table(const CampaignOutcome& outcome) {
  TableWriter table("per-client fairness");
  table.set_header({"client", "served", "faulted", "lost", "throttled",
                    "rejected", "shed", "expired", "billed", "p50_ms",
                    "p95_ms"});
  table.set_precision(3);
  for (const auto& [id, c] : outcome.server.per_client) {
    table.add_row({id, ll(c.served), ll(c.faulted), ll(c.lost),
                   ll(c.throttled), ll(c.rejected), ll(c.shed), ll(c.expired),
                   ll(c.billed()), c.p50_latency_ms, c.p95_latency_ms});
  }
  return table;
}

void print_report(std::ostream& os, const CampaignOutcome& outcome) {
  session_table(outcome).print(os);
  os << "\n";
  fairness_table(outcome).print(os);
  os << "\n";
  const auto& f = outcome.fairness;
  os << "ledger: client_billed=" << outcome.client_billed
     << " server_billed=" << outcome.server_billed << " ("
     << (outcome.ledger_ok ? "reconciled" : "MISMATCH") << ")\n";
  os << "fairness: clients=" << f.clients << " jain_served=" << f.jain_served
     << " jain_billed=" << f.jain_billed;
  if (f.clients > 0) {
    os << " most=" << f.most_served_client << "(" << f.most_served << ")"
       << " least=" << f.least_served_client << "(" << f.least_served << ")";
  }
  os << "\n";
  os << "elapsed_ms=" << outcome.elapsed_ms;
  if (outcome.pacer_granted > 0 || outcome.pacer_waits > 0) {
    os << " pacer: granted=" << outcome.pacer_granted
       << " waits=" << outcome.pacer_waits
       << " waited_ms=" << outcome.pacer_waited_ms
       << " tokens_available=" << outcome.pacer_tokens_available
       << " final_rate=" << outcome.pacer_final_rate
       << " increases=" << outcome.pacer_rate_increases
       << " decreases=" << outcome.pacer_rate_decreases;
  }
  os << "\n";
  const auto& sv = outcome.server;
  if (outcome.crashes_survived > 0 || sv.crashes > 0) {
    os << "crashes: survived=" << outcome.crashes_survived
       << " requests_lost=" << outcome.requests_lost
       << " queries_replayed=" << outcome.queries_replayed
       << " server_epoch=" << sv.server_epoch << "\n";
  }
  if (sv.degrade_entries > 0 || sv.degraded_now) {
    const double share =
        outcome.elapsed_ms > 0.0 ? sv.degraded_ms / outcome.elapsed_ms : 0.0;
    os << "degraded: entries=" << sv.degrade_entries
       << " time_ms=" << sv.degraded_ms << " share=" << share
       << " served_degraded=" << sv.degraded_served
       << (sv.degraded_now ? " (still degraded)" : "") << "\n";
  }
}

}  // namespace duo::campaign
