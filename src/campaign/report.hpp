#pragma once

// Campaign report: the per-session outcome table and the per-client
// fairness table (common::table), plus a one-stop print_report that renders
// both with the ledger and pacer summaries. Benches mirror the tables to
// CSV via TableWriter::write_csv.

#include <iosfwd>

#include "campaign/runner.hpp"
#include "common/table.hpp"

namespace duo::campaign {

// One row per session: role, completion, logical progress, billing (this
// run and cumulative), retries/overloads, outcome signature, final T.
TableWriter session_table(const CampaignOutcome& outcome);

// One row per client_id from the server's per-client breakdown:
// served/faulted/throttled/rejected/shed/expired, billed, p50/p95 latency.
TableWriter fairness_table(const CampaignOutcome& outcome);

// Both tables + ledger / fairness-index / pacer summary lines.
void print_report(std::ostream& os, const CampaignOutcome& outcome);

}  // namespace duo::campaign
