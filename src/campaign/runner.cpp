#include "campaign/runner.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <utility>

#include "serve/async_handle.hpp"
#include "serve/clock.hpp"
#include "serve/fault_injection.hpp"
#include "serve/resilient.hpp"

namespace duo::campaign {

namespace {

// Session checkpoint path resolution: an explicit per-session path wins;
// otherwise a campaign checkpoint_dir yields "<dir>/<client_id>.ck"; neither
// means the session runs checkpoint-free.
std::string resolve_checkpoint(const CampaignManifest& manifest,
                               const SessionSpec& spec) {
  if (!spec.checkpoint.empty()) return spec.checkpoint;
  if (manifest.checkpoint_dir.empty()) return {};
  return manifest.checkpoint_dir + "/" + spec.client_id + ".ck";
}

bool wants_faults(const CampaignManifest& m) {
  return m.fault_error_prob > 0.0 || m.fault_delay_prob > 0.0 ||
         m.fault_drop_prob > 0.0 || m.fault_error_from >= 0;
}

std::chrono::milliseconds to_ms(double ms) {
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

}  // namespace

CampaignRunner::CampaignRunner(retrieval::RetrievalSystem& system,
                               const std::vector<video::Video>& roster,
                               CampaignManifest manifest,
                               models::FeatureExtractor* surrogate)
    : system_(system),
      roster_(roster),
      manifest_(std::move(manifest)),
      surrogate_(surrogate) {
  if (manifest_.sessions.empty()) {
    throw std::invalid_argument("campaign: no sessions in manifest");
  }
  if (roster_.empty()) {
    throw std::invalid_argument("campaign: empty video roster");
  }
  const auto roster_size = static_cast<std::int64_t>(roster_.size());
  for (const auto& spec : manifest_.sessions) {
    if (spec.client_id.empty()) {
      throw std::invalid_argument("campaign: session without client_id");
    }
    if (spec.role != SessionRole::kBenign) {
      if (spec.source_index < 0 || spec.source_index >= roster_size ||
          spec.target_index < 0 || spec.target_index >= roster_size) {
        throw std::invalid_argument("campaign: attack index outside roster: " +
                                    spec.client_id);
      }
    }
    if (spec.role == SessionRole::kDuo && surrogate_ == nullptr) {
      throw std::invalid_argument("campaign: duo session '" + spec.client_id +
                                  "' requires a surrogate");
    }
  }
}

CampaignOutcome CampaignRunner::run() {
  // One clock for everything — server policies, pacer, retry backoffs,
  // think-time sleeps — so a virtual-clocked campaign never wall-waits on a
  // policy decision.
  std::shared_ptr<serve::Clock> clock =
      manifest_.virtual_clock
          ? std::shared_ptr<serve::Clock>(std::make_shared<serve::VirtualClock>())
          : std::shared_ptr<serve::Clock>(std::make_shared<serve::SystemClock>());

  serve::ServerConfig scfg;
  scfg.max_batch = manifest_.max_batch;
  scfg.queue_capacity = manifest_.queue_capacity;
  scfg.clock = clock;
  scfg.admission = manifest_.admission;
  scfg.admission_threshold = manifest_.admission_threshold;
  scfg.reject_retry_after_ms = manifest_.reject_retry_after_ms;
  scfg.client_rate = manifest_.client_rate;
  scfg.client_burst = manifest_.client_burst;
  scfg.batch_timeout_ms = manifest_.batch_timeout_ms;
  scfg.degrade_high = manifest_.degrade_high;
  scfg.degrade_low = manifest_.degrade_low;
  if (wants_faults(manifest_)) {
    serve::FaultConfig fcfg;
    fcfg.error_prob = manifest_.fault_error_prob;
    fcfg.delay_prob = manifest_.fault_delay_prob;
    fcfg.drop_prob = manifest_.fault_drop_prob;
    fcfg.delay_ms = manifest_.fault_delay_ms;
    fcfg.error_from = manifest_.fault_error_from;
    fcfg.seed = manifest_.fault_seed;
    scfg.fault_injector = std::make_shared<serve::FaultInjector>(fcfg);
  }

  std::shared_ptr<serve::Pacer> pacer;
  if (manifest_.pacer_rate > 0.0) {
    serve::PacerConfig pcfg;
    pcfg.rate_per_sec = manifest_.pacer_rate;
    pcfg.burst = manifest_.pacer_burst;
    pcfg.aimd = manifest_.pacer_aimd;
    pcfg.aimd_increase = manifest_.aimd_increase;
    pcfg.aimd_decrease = manifest_.aimd_decrease;
    pcfg.aimd_floor = manifest_.aimd_floor;
    pcfg.aimd_ceiling = manifest_.aimd_ceiling;
    pacer = std::make_shared<serve::Pacer>(pcfg, clock);
  }

  if (!manifest_.checkpoint_dir.empty()) {
    std::error_code ec;  // best effort; sessions fail loudly if it matters
    std::filesystem::create_directories(manifest_.checkpoint_dir, ec);
  }

  CampaignOutcome out;
  out.sessions.resize(manifest_.sessions.size());
  const double started_ms = clock->now_ms();
  {
    serve::RetrievalServer server(system_, scfg);

    // Chaos schedule: a dedicated thread watches the campaign clock and
    // executes each manifest crash event — abrupt crash, accounting snapshot
    // (round-tripped through durable files when the campaign has a
    // checkpoint_dir, so what restart() restores is what came back off
    // disk), a downtime sleep, restart. Session outcomes are pure functions
    // of (spec, roster, gallery), so crash timing perturbs only billing
    // schedules — and the ledger still reconciles exactly.
    std::atomic<bool> sessions_done{false};
    std::int64_t crashes_survived = 0;
    std::thread chaos;
    if (!manifest_.crashes.empty()) {
      chaos = std::thread([this, &server, &sessions_done, &crashes_survived,
                           clock, started_ms] {
        for (const auto& event : manifest_.crashes) {
          // The campaign clock only moves when some thread sleeps on it
          // (virtual runs), so poll in real time rather than sleeping on the
          // clock — a clocked wait here would itself advance virtual time.
          while (!sessions_done.load(std::memory_order_acquire) &&
                 clock->now_ms() - started_ms < event.at_ms) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          if (sessions_done.load(std::memory_order_acquire)) break;
          server.crash();
          serve::ServerSnapshot snap = server.snapshot();
          if (!manifest_.checkpoint_dir.empty()) {
            const std::string snap_path =
                manifest_.checkpoint_dir + "/server.snap";
            const std::string index_path =
                manifest_.checkpoint_dir + "/gallery.idx";
            if (serve::save_snapshot(snap, snap_path) &&
                system_.save_gallery_index(index_path)) {
              serve::ServerSnapshot loaded;
              if (serve::load_snapshot(loaded, snap_path) &&
                  system_.load_gallery_index(index_path)) {
                snap = loaded;
              }
            }
          }
          clock->sleep_ms(event.restart_after_ms);
          server.restart(snap);
          ++crashes_survived;
        }
      });
    }

    std::vector<std::thread> threads;
    threads.reserve(manifest_.sessions.size());
    for (std::size_t i = 0; i < manifest_.sessions.size(); ++i) {
      threads.emplace_back([this, i, &server, &out, pacer, clock] {
        SessionSpec spec = manifest_.sessions[i];
        spec.checkpoint = resolve_checkpoint(manifest_, spec);

        serve::RequestOptions options;
        options.client_id = spec.client_id;
        options.ttl_ms = spec.ttl_ms;
        serve::AsyncBlackBoxHandle async(server, options);

        serve::RetryPolicy policy;
        policy.submit_deadline = to_ms(manifest_.submit_deadline_ms);
        policy.query_timeout = to_ms(manifest_.query_timeout_ms);
        policy.max_attempts = manifest_.max_attempts;
        policy.circuit_threshold = manifest_.circuit_threshold;
        policy.circuit_cooldown_ms = manifest_.circuit_cooldown_ms;
        // Per-session jitter stream: deterministic in (campaign, session)
        // seeds, distinct across sessions (Knuth multiplicative mix).
        policy.seed =
            (manifest_.seed ^ spec.seed) * 0x9E3779B97F4A7C15ULL + 1;
        serve::ResilientHandle victim(async, policy, pacer, clock);

        out.sessions[i] =
            run_session(spec, roster_, victim, *clock, surrogate_);
      });
    }
    for (auto& t : threads) t.join();
    sessions_done.store(true, std::memory_order_release);
    if (chaos.joinable()) chaos.join();
    out.crashes_survived = crashes_survived;

    out.elapsed_ms = clock->now_ms() - started_ms;
    if (pacer != nullptr) {
      out.pacer_granted = pacer->granted();
      out.pacer_waits = pacer->waits();
      out.pacer_waited_ms = pacer->waited_ms();
      out.pacer_tokens_available = pacer->tokens_available();
      out.pacer_final_rate = pacer->current_rate();
      out.pacer_rate_increases = pacer->rate_increases();
      out.pacer_rate_decreases = pacer->rate_decreases();
    }
    server.shutdown();
    out.server = server.stats();
  }

  out.fairness = summarize_fairness(out.server);
  out.requests_lost = out.server.requests_lost;
  for (const auto& s : out.sessions) out.queries_replayed += s.reconnects;
  for (const auto& s : out.sessions) out.client_billed += s.queries_billed;
  out.server_billed = out.server.queries_served + out.server.faults_injected +
                      out.server.requests_expired + out.server.requests_shed;
  // Client-side billing counts accepted submissions; every accepted request
  // terminates as exactly one of served/faulted/expired/shed, so the two
  // sides must agree — and the per-client slices must sum to the globals.
  out.ledger_ok =
      out.client_billed == out.server_billed && out.fairness.ledger_ok;
  return out;
}

}  // namespace duo::campaign
