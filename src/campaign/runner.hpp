#pragma once

// CampaignRunner: executes a CampaignManifest — one RetrievalServer victim,
// one thread per session (attack or benign), an optional shared client-side
// Pacer, rate limiting / admission / faults per the manifest — and collects
// the per-session results, the server's per-client breakdown, and the
// fairness summary into a CampaignOutcome.
//
// Clocking: with manifest.virtual_clock (the default) the server, pacer,
// every ResilientHandle, and every think-time sleep share one VirtualClock,
// so the campaign's policy decisions never wall-wait. Outcome determinism
// follows the session contract (campaign/session.hpp): per-session outcomes
// are bitwise reproducible across runs, DUO_THREADS settings, and
// kill/resume points; billing attribution is schedule-dependent but the
// campaign ledger reconciles exactly (CampaignOutcome::ledger_ok, checked
// both client-side vs server-side and per-client vs global).
//
// Kill/resume: run a manifest whose victim dies mid-campaign
// (fault_error_from + circuit_threshold), then run the SAME manifest again
// against a healthy victim — every session resumes from its checkpoint
// (manifest.checkpoint_dir or per-session paths) and the resumed campaign's
// per-session outcomes are bitwise identical to an uninterrupted campaign's
// (tests/test_campaign.cpp pins this, the ISSUE 8 acceptance criterion).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/fairness.hpp"
#include "campaign/manifest.hpp"
#include "campaign/session.hpp"
#include "models/feature_extractor.hpp"
#include "retrieval/system.hpp"
#include "serve/server.hpp"
#include "video/video.hpp"

namespace duo::campaign {

struct CampaignOutcome {
  std::vector<SessionResult> sessions;  // manifest order
  serve::ServerStats server;
  FairnessSummary fairness;

  // Ledger: Σ session queries_billed (client-side, this run) must equal the
  // server-side billed total served + faulted + expired + shed. ledger_ok
  // also folds in the per-client reconciliation (FairnessSummary).
  std::int64_t client_billed = 0;
  std::int64_t server_billed = 0;
  bool ledger_ok = false;

  double elapsed_ms = 0.0;  // campaign-clock time, start → all joined

  // Shared-pacer observability (zeroes when the manifest has no pacer).
  std::int64_t pacer_granted = 0;
  std::int64_t pacer_waits = 0;
  double pacer_waited_ms = 0.0;
  double pacer_tokens_available = 0.0;
  // AIMD observability: the shared rate when the campaign ended (the
  // discovered limit estimate) and the step counts that got it there.
  // final rate == pacer_rate when AIMD is off.
  double pacer_final_rate = 0.0;
  std::int64_t pacer_rate_increases = 0;
  std::int64_t pacer_rate_decreases = 0;

  // Crash-recovery observability (all zero without a crash schedule).
  // crashes_survived counts executed crash/restart cycles; queries_replayed
  // is the total of per-session reconnect resubmissions (each one a query
  // replayed across a restart); requests_lost is the server-side count of
  // accepted requests that died in a crash (subset of faults, so the ledger
  // reconciles unchanged).
  std::int64_t crashes_survived = 0;
  std::int64_t queries_replayed = 0;
  std::int64_t requests_lost = 0;

  bool all_completed() const noexcept {
    for (const auto& s : sessions) {
      if (!s.completed) return false;
    }
    return true;
  }
};

class CampaignRunner {
 public:
  // `system` is the victim backend (server takes exclusive use while the
  // campaign runs); `roster` provides benign query material and attack
  // source/target videos; `surrogate` is required iff any session role is
  // kDuo. All three must outlive the runner. Throws std::invalid_argument
  // for an unrunnable manifest (no sessions, empty roster, out-of-range
  // attack indices, duo without surrogate).
  CampaignRunner(retrieval::RetrievalSystem& system,
                 const std::vector<video::Video>& roster,
                 CampaignManifest manifest,
                 models::FeatureExtractor* surrogate = nullptr);

  // Executes the campaign: starts the server, runs every session on its own
  // thread, joins, shuts the server down, reconciles the ledger. Re-runnable
  // (each run builds a fresh server); resuming a killed campaign is exactly
  // "run the same manifest again".
  CampaignOutcome run();

  const CampaignManifest& manifest() const noexcept { return manifest_; }

 private:
  retrieval::RetrievalSystem& system_;
  const std::vector<video::Video>& roster_;
  CampaignManifest manifest_;
  models::FeatureExtractor* surrogate_;
};

}  // namespace duo::campaign
