#include "campaign/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <utility>

#include "attack/duo.hpp"
#include "attack/objective.hpp"
#include "attack/sparse_query.hpp"
#include "baselines/vanilla.hpp"
#include "common/rng.hpp"
#include "models/serialization.hpp"
#include "serve/errors.hpp"

namespace duo::campaign {

namespace {

namespace io = models::io;

constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;
// "DUOCAMP1" — benign-stream checkpoint magic.
constexpr std::uint64_t kBenignMagic = 0x44554F43414D5031ULL;

std::uint64_t fold_list(std::uint64_t hash,
                        const metrics::RetrievalList& list) {
  return io::fnv1a(list.data(), list.size() * sizeof(list[0]), hash);
}

// Benign-stream checkpoint: fingerprint (seed, m, stream length, roster
// size) + progress (next query index, Rng state, running answer hash,
// cumulative billed count from prior processes).
struct BenignCheckpoint {
  std::uint64_t seed = 0;
  std::int64_t m = 0;
  std::int64_t queries = 0;
  std::int64_t roster_size = 0;

  std::int64_t next = 0;
  std::uint64_t rng_state = 0;
  std::uint64_t answer_hash = kFnvBasis;
  std::int64_t billed_before = 0;
};

bool save_benign(const BenignCheckpoint& ck, const std::string& path) {
  return io::atomic_write(path, [&](std::ostream& out) {
    io::write_u64(out, kBenignMagic);
    io::write_u64(out, ck.seed);
    io::write_i64(out, ck.m);
    io::write_i64(out, ck.queries);
    io::write_i64(out, ck.roster_size);
    io::write_i64(out, ck.next);
    io::write_u64(out, ck.rng_state);
    io::write_u64(out, ck.answer_hash);
    io::write_i64(out, ck.billed_before);
  });
}

bool load_benign(BenignCheckpoint& ck, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  BenignCheckpoint staged;
  std::uint64_t magic = 0;
  if (!io::read_u64(in, magic) || magic != kBenignMagic) return false;
  if (!io::read_u64(in, staged.seed) || !io::read_i64(in, staged.m) ||
      !io::read_i64(in, staged.queries) ||
      !io::read_i64(in, staged.roster_size) || !io::read_i64(in, staged.next) ||
      !io::read_u64(in, staged.rng_state) ||
      !io::read_u64(in, staged.answer_hash) ||
      !io::read_i64(in, staged.billed_before)) {
    return false;
  }
  ck = staged;
  return true;
}

SessionResult run_benign(const SessionSpec& spec,
                         const std::vector<video::Video>& roster,
                         serve::ResilientHandle& victim, serve::Clock& clock) {
  SessionResult out;
  out.client_id = spec.client_id;
  out.role = spec.role;

  Rng rng(spec.seed);
  std::int64_t next = 0;
  std::uint64_t hash = kFnvBasis;
  std::int64_t billed_before = 0;
  const bool checkpointing = !spec.checkpoint.empty();
  if (checkpointing) {
    BenignCheckpoint ck;
    // A checkpoint for a different stream shape is silently ignored — the
    // session falls back to a fresh start, mirroring attack::checkpoint.
    if (load_benign(ck, spec.checkpoint) && ck.seed == spec.seed &&
        ck.m == static_cast<std::int64_t>(spec.m) &&
        ck.queries == spec.queries &&
        ck.roster_size == static_cast<std::int64_t>(roster.size())) {
      next = ck.next;
      rng = Rng(ck.rng_state);
      hash = ck.answer_hash;
      billed_before = ck.billed_before;
    }
  }

  const std::int64_t billed_at_start = victim.queries_billed();
  const auto save = [&](std::uint64_t rng_state) {
    BenignCheckpoint ck;
    ck.seed = spec.seed;
    ck.m = static_cast<std::int64_t>(spec.m);
    ck.queries = spec.queries;
    ck.roster_size = static_cast<std::int64_t>(roster.size());
    ck.next = next;
    ck.rng_state = rng_state;
    ck.answer_hash = hash;
    ck.billed_before =
        billed_before + (victim.queries_billed() - billed_at_start);
    save_benign(ck, spec.checkpoint);
  };

  // State of the stream at the top of the current query, BEFORE its rng
  // draws: a fatal mid-retrieve must checkpoint this state, not rng.state()
  // (which has already consumed the interrupted query's index/think draws —
  // resuming from it would redraw a different index and fork the stream).
  std::uint64_t rng_at_query = rng.state();
  try {
    while (next < spec.queries) {
      rng_at_query = rng.state();
      const auto idx = rng.uniform_index(roster.size());
      if (spec.think_ms > 0.0) {
        // Exponential inter-arrival gap with mean think_ms; 1 - u keeps the
        // argument in (0, 1] so log never sees zero.
        clock.sleep_ms(-spec.think_ms * std::log(1.0 - rng.uniform()));
      }
      const auto list = victim.retrieve(roster[idx], spec.m);
      hash = fold_list(hash, list);
      ++next;
      if (checkpointing) save(rng.state());
    }
    out.completed = true;
    if (checkpointing) std::remove(spec.checkpoint.c_str());
  } catch (const std::exception& e) {
    // Fatal for this session (circuit open, fatal fault, retry budget dry,
    // shutdown): persist progress as of the last completed query so a
    // resumed campaign re-runs the interrupted one from scratch.
    if (checkpointing) save(rng_at_query);
    out.error = e.what();
  }

  out.logical_queries = next;
  out.queries_billed = victim.queries_billed() - billed_at_start;
  out.queries_reported = billed_before + out.queries_billed;
  out.outcome_hash = hash;
  return out;
}

SessionResult run_sparse(const SessionSpec& spec,
                         const std::vector<video::Video>& roster,
                         serve::ResilientHandle& victim) {
  SessionResult out;
  out.client_id = spec.client_id;
  out.role = spec.role;

  const video::Video& v = roster[static_cast<std::size_t>(spec.source_index)];
  const video::Video& v_t =
      roster[static_cast<std::size_t>(spec.target_index)];

  // Seeded random support + uniform magnitudes: the surrogate-free starting
  // perturbation (the support is what SparseQuery searches over; quality of
  // the start only shifts how far T falls, not whether the session runs).
  Rng rng(spec.seed);
  const auto geometry = v.geometry();
  const std::int64_t k =
      spec.support_k > 0
          ? std::min(spec.support_k, geometry.pixels_per_frame())
          : std::min<std::int64_t>(150, geometry.pixels_per_frame());
  const std::int64_t n = std::min(spec.support_n, geometry.frames);
  attack::Perturbation pert = baselines::random_support(geometry, k, n, rng);
  Tensor noise = Tensor::uniform(geometry.tensor_shape(), -10.0f, 10.0f, rng);
  pert.magnitude() = noise * pert.pixel_mask() * pert.frame_mask();

  const std::int64_t billed_at_start = victim.queries_billed();
  try {
    const attack::ObjectiveContext ctx =
        attack::make_objective_context(victim, v, v_t, spec.m);
    attack::SparseQueryConfig qcfg;
    qcfg.iter_numQ = spec.iterations;
    qcfg.m = spec.m;
    qcfg.seed = spec.seed;
    qcfg.checkpoint_path = spec.checkpoint;
    qcfg.resume = !spec.checkpoint.empty();
    qcfg.remove_on_success = true;
    const attack::SparseQueryResult sq =
        attack::sparse_query_pipelined(v, pert, victim, ctx, qcfg);
    out.completed = true;
    out.final_t = sq.final_t;
    out.t_history = sq.t_history;
    out.outcome_hash = io::fnv1a(sq.v_adv.data());
    out.queries_reported = sq.queries_spent;
  } catch (const std::exception& e) {
    // sparse_query_pipelined checkpoints before rethrowing a fatal error, so
    // nothing extra to persist here.
    out.error = e.what();
  }
  out.logical_queries = static_cast<std::int64_t>(out.t_history.size());
  out.queries_billed = victim.queries_billed() - billed_at_start;
  if (!out.completed) out.queries_reported = out.queries_billed;
  return out;
}

SessionResult run_duo(const SessionSpec& spec,
                      const std::vector<video::Video>& roster,
                      serve::ResilientHandle& victim,
                      models::FeatureExtractor* surrogate) {
  SessionResult out;
  out.client_id = spec.client_id;
  out.role = spec.role;
  if (surrogate == nullptr) {
    out.error = "duo session requires a campaign surrogate";
    return out;
  }

  const video::Video& v = roster[static_cast<std::size_t>(spec.source_index)];
  const video::Video& v_t =
      roster[static_cast<std::size_t>(spec.target_index)];

  attack::DuoConfig cfg;
  // Surrogate-side budgets stay small: campaign sessions measure the serving
  // path (queries, retries, fairness), not transfer quality; victim billing
  // is unaffected by transfer effort.
  cfg.transfer.k = spec.support_k > 0 ? spec.support_k : 100;
  cfg.transfer.n = std::min(spec.support_n, v.geometry().frames);
  cfg.transfer.outer_iterations = 1;
  cfg.transfer.theta_steps = 3;
  cfg.iter_numH = spec.rounds;
  cfg.m = spec.m;
  cfg.query.iter_numQ = spec.iterations;
  cfg.query.seed = spec.seed;
  cfg.checkpoint_path = spec.checkpoint;
  cfg.resume = !spec.checkpoint.empty();
  cfg.remove_on_success = true;

  const std::int64_t billed_at_start = victim.queries_billed();
  try {
    attack::DuoAttack attack(*surrogate, cfg);
    const attack::AttackOutcome outcome = attack.run(v, v_t, victim);
    out.completed = true;
    out.t_history = outcome.t_history;
    out.final_t =
        outcome.t_history.empty() ? 0.0 : outcome.t_history.back();
    out.outcome_hash = io::fnv1a(outcome.adversarial.data());
    out.queries_reported = outcome.queries;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.logical_queries = static_cast<std::int64_t>(out.t_history.size());
  out.queries_billed = victim.queries_billed() - billed_at_start;
  if (!out.completed) out.queries_reported = out.queries_billed;
  return out;
}

}  // namespace

SessionResult run_session(const SessionSpec& spec,
                          const std::vector<video::Video>& roster,
                          serve::ResilientHandle& victim, serve::Clock& clock,
                          models::FeatureExtractor* surrogate) {
  const double started_ms = clock.now_ms();
  SessionResult out;
  switch (spec.role) {
    case SessionRole::kBenign:
      out = run_benign(spec, roster, victim, clock);
      break;
    case SessionRole::kSparse:
      out = run_sparse(spec, roster, victim);
      break;
    case SessionRole::kDuo:
      out = run_duo(spec, roster, victim, surrogate);
      break;
  }
  out.retries = victim.retries();
  out.overloads = victim.overloads_seen();
  out.reconnects = victim.connection_losses();
  out.circuit_opens = victim.circuit_opens();
  out.wall_ms = clock.now_ms() - started_ms;
  if (victim.pacer() != nullptr) {
    out.discovered_rate = victim.pacer()->current_rate();
  }
  return out;
}

}  // namespace duo::campaign
