#pragma once

// Session lifecycle: one client of a campaign, executed on its own thread
// against the shared served victim through a ResilientHandle. Three roles
// (campaign/manifest.hpp):
//
//  - benign: a seeded query mix — `queries` retrievals over the campaign
//    roster with an optional exponential think-time arrival process. The
//    answer stream folds into a running FNV-1a hash (outcome_hash), the
//    bitwise signature a kill-and-resume run must reproduce.
//  - sparse: sparse_query_pipelined from a seeded random support (no
//    surrogate needed — the query attack works against untrained victims).
//  - duo: the full DuoAttack pipeline through the ResilientHandle overload
//    (requires the runner's surrogate).
//
// Checkpoint/resume: each session persists its progress to its own file
// (SessionSpec::checkpoint). Attack roles reuse attack::checkpoint through
// SparseQueryConfig/DuoConfig; benign streams write a small campaign-native
// checkpoint (fingerprint + Rng state + next query index + running answer
// hash) through models::io, saved after every completed query. A session
// interrupted by a fatal victim error (circuit open, fatal fault, shutdown)
// records the error and keeps its checkpoint; re-running the same spec
// resumes where it stopped and finishes with outcome_hash / t_history /
// final_t bitwise identical to an uninterrupted session. Checkpoints are
// removed after a clean finish so campaigns do not accumulate stale state.
//
// Determinism contract: per-session *outcomes* (the answer-stream hash for
// benign, t_history / final_t / adversarial-video hash for attacks) are a
// pure function of (spec, roster, victim gallery) — independent of thread
// scheduling, DUO_THREADS, faults, throttling, and kill/resume points,
// because every victim answer is deterministic and retries only re-ask.
// *Billing* (queries_billed, retries, throttles) is schedule-dependent:
// which arrival gets throttled or faulted depends on how sessions interleave
// at the server. The campaign-level ledger still reconciles exactly
// (campaign/runner.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/manifest.hpp"
#include "models/feature_extractor.hpp"
#include "serve/clock.hpp"
#include "serve/resilient.hpp"
#include "video/video.hpp"

namespace duo::campaign {

// What one session produced. `queries_billed` is this process's victim-side
// billing (feeds the campaign ledger); `queries_reported` adds progress
// restored from a checkpoint, so it is the cumulative logical spend across
// every process that contributed to the session.
struct SessionResult {
  std::string client_id;
  SessionRole role = SessionRole::kBenign;
  bool completed = false;
  std::string error;  // ServeError message when !completed

  std::int64_t logical_queries = 0;  // benign answers / attack iterations
  std::int64_t queries_billed = 0;   // this run, victim-side
  std::int64_t queries_reported = 0;
  std::int64_t retries = 0;
  std::int64_t overloads = 0;
  // Connection-lost failures survived (victim crashes): each one is a query
  // this session replayed across a server restart.
  std::int64_t reconnects = 0;
  std::int64_t circuit_opens = 0;
  double wall_ms = 0.0;  // campaign-clock time inside the session
  // Shared-pacer rate when this session finished (AIMD: the limit estimate
  // the loop had discovered by then; static pacer: the configured rate;
  // 0 when the session ran unpaced).
  double discovered_rate = 0.0;

  // Bitwise outcome signature: benign = running hash of the answer stream,
  // attacks = FNV-1a of the final adversarial video's pixels.
  std::uint64_t outcome_hash = 0;
  double final_t = 0.0;
  std::vector<double> t_history;  // attacks only
};

// Runs the session described by `spec` to completion or first fatal error.
// Dispatches on spec.role; `surrogate` may be null unless the role is kDuo.
// The roster provides benign query material and attack source/target videos
// (spec.source_index / spec.target_index must be in range).
SessionResult run_session(const SessionSpec& spec,
                          const std::vector<video::Video>& roster,
                          serve::ResilientHandle& victim, serve::Clock& clock,
                          models::FeatureExtractor* surrogate);

}  // namespace duo::campaign
