#pragma once

// Minimal command-line flag parsing for the example/CLI binaries:
// --name value and --flag forms, with typed getters and defaults.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace duo {

class ArgParse {
 public:
  ArgParse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        positional_.push_back(std::move(token));
        continue;
      }
      token.erase(0, 2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        named_[token] = argv[++i];
      } else {
        named_[token] = "";  // boolean flag
      }
    }
  }

  bool has(const std::string& name) const { return named_.count(name) != 0; }

  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = named_.find(name);
    return it == named_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    const auto it = named_.find(name);
    if (it == named_.end()) return fallback;
    DUO_CHECK_MSG(!it->second.empty(), "flag --" + name + " needs a value");
    return std::stoll(it->second);
  }

  double get_double(const std::string& name, double fallback) const {
    const auto it = named_.find(name);
    if (it == named_.end()) return fallback;
    DUO_CHECK_MSG(!it->second.empty(), "flag --" + name + " needs a value");
    return std::stod(it->second);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace duo
