#pragma once

// Invariant checking. DUO_CHECK is always on (cheap compared to the numeric
// kernels it guards) and throws std::logic_error so tests can assert on
// misuse and callers can recover at an experiment boundary.

#include <sstream>
#include <stdexcept>
#include <string>

namespace duo::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DUO_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace duo::detail

#define DUO_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::duo::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
    }                                                                 \
  } while (0)

#define DUO_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::duo::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (0)
