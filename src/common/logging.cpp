#include "common/logging.hpp"

#include <cstdarg>
#include <cstdio>
#include <ctime>

namespace duo {

LogLevel& log_level() noexcept {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

namespace detail {

namespace {
const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

void log_impl(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

}  // namespace detail
}  // namespace duo
