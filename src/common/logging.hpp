#pragma once

// Minimal leveled logging to stderr. Experiments and benches use the table
// writer (table.hpp) for primary output; logging is for progress/diagnostics.

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

namespace duo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; default Info. Not thread-synchronized by design:
// races on a plain enum read are benign for logging purposes.
LogLevel& log_level() noexcept;

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args);
void log_impl(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;
}  // namespace detail

#define DUO_LOG_DEBUG(...) \
  ::duo::detail::log_impl(::duo::LogLevel::kDebug, __VA_ARGS__)
#define DUO_LOG_INFO(...) \
  ::duo::detail::log_impl(::duo::LogLevel::kInfo, __VA_ARGS__)
#define DUO_LOG_WARN(...) \
  ::duo::detail::log_impl(::duo::LogLevel::kWarn, __VA_ARGS__)
#define DUO_LOG_ERROR(...) \
  ::duo::detail::log_impl(::duo::LogLevel::kError, __VA_ARGS__)

}  // namespace duo
