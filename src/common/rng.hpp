#pragma once

// Deterministic random number generation for reproducible experiments.
//
// Every component in the library that needs randomness takes an explicit
// `Rng&` (or a seed), never a global generator, so each test and bench run
// is bit-for-bit reproducible and independent streams can be derived for
// parallel work (see `Rng::fork`).

#include <cstdint>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace duo {

// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Used both directly and
// to seed derived streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  // Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  float uniform_f(float lo, float hi) noexcept {
    return static_cast<float>(uniform(lo, hi));
  }

  // Uniform integer in [0, n). Requires n > 0 (raises via DUO_CHECK — an
  // empty range has no valid draw, and `% 0` is undefined behaviour).
  std::uint64_t uniform_index(std::uint64_t n) {
    DUO_CHECK_MSG(n > 0, "uniform_index requires a non-empty range");
    // Lemire's unbiased bounded generation would be overkill here; simple
    // modulo bias is < 2^-40 for the sizes we use, but use rejection anyway
    // since it is cheap.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  // Requires lo <= hi_inclusive (checked via uniform_index's guard).
  int uniform_int(int lo, int hi_inclusive) {
    return lo + static_cast<int>(uniform_index(
                    static_cast<std::uint64_t>(hi_inclusive - lo + 1)));
  }

  // Standard normal via Box-Muller (no cached spare: keeps state simple).
  double normal() noexcept {
    double u1 = uniform();
    if (u1 < std::numeric_limits<double>::min()) {
      u1 = std::numeric_limits<double>::min();
    }
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  float normal_f(float mean, float stddev) noexcept {
    return mean + stddev * static_cast<float>(normal());
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  // Derive an independent stream. Forked streams do not collide with the
  // parent in practice because the fork consumes parent state.
  Rng fork() noexcept { return Rng(next_u64() ^ 0xA5A5A5A5DEADBEEFULL); }

  // Raw generator state, for checkpointing: Rng(state()) resumes the stream
  // exactly where this generator left off.
  std::uint64_t state() const noexcept { return state_; }

  // Fisher-Yates shuffle of an indexable container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = uniform_index(i + 1);
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace duo
