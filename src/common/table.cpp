#include "common/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace duo {

void TableWriter::set_header(std::vector<std::string> header) {
  DUO_CHECK_MSG(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void TableWriter::add_row(std::vector<Cell> row) {
  DUO_CHECK_MSG(row.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(row));
}

std::string TableWriter::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();

  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }

  os << "== " << title_ << " ==\n";
  auto print_sep = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& cells : formatted) print_row(cells);
  print_sep();
}

bool TableWriter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (const char ch : s) {
      if (ch == '"') quoted += "\"\"";
      else quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out << ',';
    out << escape(header_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << escape(format_cell(row[c]));
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace duo
