#pragma once

// Formatted table output for experiment harnesses. Benches print the same
// rows/columns as the paper's tables; TableWriter handles alignment and an
// optional CSV mirror so results can be diffed across runs.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace duo {

class TableWriter {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit TableWriter(std::string title) : title_(std::move(title)) {}

  // Column headers; must be set before rows.
  void set_header(std::vector<std::string> header);

  // Append one row; cell count must match the header.
  void add_row(std::vector<Cell> row);

  // Number formatting for double cells (default 2 decimal places).
  void set_precision(int digits) { precision_ = digits; }

  // Render an aligned ASCII table.
  void print(std::ostream& os) const;

  // Write CSV (header + rows) to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  const std::string& title() const noexcept { return title_; }
  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string format_cell(const Cell& cell) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 2;
};

}  // namespace duo
