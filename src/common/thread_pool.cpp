#include "common/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <memory>

namespace duo {

namespace {

// The pool whose worker_loop the current thread is running, if any. Lets
// parallel_for detect re-entrant calls on the same pool and degrade to
// inline execution instead of enqueueing against a saturated queue.
thread_local const ThreadPool* t_worker_pool = nullptr;

std::atomic<ThreadPool*> g_compute_pool{nullptr};

}  // namespace

// Shared between the caller and the helper tasks of one parallel_for call.
// Held via shared_ptr so a straggler task that starts after the caller has
// returned can still safely observe next >= count and exit.
struct ThreadPool::ParallelState {
  explicit ParallelState(std::size_t count) : remaining(count) {}

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining;
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stop_.load(std::memory_order_relaxed)) {
      tasks_.push(std::move(task));
      cv_.notify_one();
      return true;
    }
  }
  // Stopped pool (e.g. a static being destroyed after the shared pool):
  // run the task synchronously rather than crashing or dropping it.
  task();
  return false;
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !tasks_.empty();
      });
      if (stop_.load(std::memory_order_relaxed) && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

bool ThreadPool::in_worker_context() const noexcept {
  return t_worker_pool == this;
}

void ThreadPool::drain(ParallelState& state, std::size_t count,
                       const std::function<void(std::size_t)>& fn) {
  for (;;) {
    const std::size_t i = state.next.fetch_add(1);
    if (i >= count) return;
    if (!state.failed.load(std::memory_order_relaxed)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.error_mutex);
        if (!state.failed.exchange(true)) {
          state.error = std::current_exception();
        }
      }
    }
    if (state.remaining.fetch_sub(1) == 1) {
      // Lock so the notify cannot slip between the caller's predicate check
      // and its wait.
      std::lock_guard<std::mutex> lock(state.done_mutex);
      state.done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Inline paths: trivial loops, single-worker pools, re-entrant calls from
  // one of our own workers, and stopped pools (static destruction).
  if (count == 1 || workers_.size() <= 1 || in_worker_context() || stopped()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic index dispatch: participants grab the next index atomically,
  // which load-balances uneven per-item cost (e.g. attacks that converge
  // early). The caller is always a participant, so completion never depends
  // on a worker being free — helper tasks only speed things up.
  auto state = std::make_shared<ParallelState>(count);
  const std::size_t helpers = std::min(workers_.size(), count - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    // `fn` is captured by reference: a straggler task that runs after the
    // caller returned observes next >= count and exits without touching it.
    enqueue([state, count, &fn] { drain(*state, count, fn); });
  }
  drain(*state, count, fn);

  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(
        lock, [&] { return state->remaining.load(std::memory_order_acquire) == 0; });
  }
  if (state->failed.load() && state->error) {
    std::rethrow_exception(state->error);
  }
}

std::size_t ThreadPool::threads_from_env(const char* value) noexcept {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) return 0;
  return static_cast<std::size_t>(parsed);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(threads_from_env(std::getenv("DUO_THREADS")));
  return pool;
}

ThreadPool& compute_pool() noexcept {
  ThreadPool* override_pool = g_compute_pool.load(std::memory_order_acquire);
  return override_pool != nullptr ? *override_pool : ThreadPool::shared();
}

void set_compute_pool(ThreadPool* pool) noexcept {
  g_compute_pool.store(pool, std::memory_order_release);
}

}  // namespace duo
