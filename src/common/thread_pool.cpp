#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/check.hpp"

namespace duo {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DUO_CHECK_MSG(!stop_, "enqueue on stopped pool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic index dispatch: workers grab the next index atomically, which
  // load-balances uneven per-item cost (e.g. attacks that converge early).
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto remaining = std::make_shared<std::atomic<std::size_t>>(count);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  const std::size_t shards = std::min(workers_.size(), count);
  for (std::size_t s = 0; s < shards; ++s) {
    // `count` is captured by value: a straggler shard can observe
    // i >= count after the caller has already returned. `fn`, `done_mutex`,
    // `done_cv`, and `done` are only touched before the final fetch_sub,
    // which happens-before the caller's wait() returns.
    enqueue([&, count, next, remaining, first_error, error, error_mutex] {
      for (;;) {
        const std::size_t i = next->fetch_add(1);
        if (i >= count) break;
        if (!first_error->load(std::memory_order_relaxed)) {
          try {
            fn(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(*error_mutex);
            if (!first_error->exchange(true)) {
              *error = std::current_exception();
            }
          }
        }
        if (remaining->fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> lock(done_mutex);
          done = true;
          done_cv.notify_one();
        }
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  if (first_error->load() && *error) std::rethrow_exception(*error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace duo
