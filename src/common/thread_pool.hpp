#pragma once

// Fixed-size thread pool with a blocking, nesting-safe parallel_for. Used to
// parallelize embarrassingly parallel work: the Conv3d/pooling kernels,
// per-video feature extraction, per-pair attack evaluation, and the
// distributed retrieval scatter phase.
//
// parallel_for is safe to call from anywhere, including from inside a task
// already running on the same pool: the calling thread always participates in
// draining its own work (caller-runs), and a call made from a worker of the
// same pool degrades to inline execution instead of enqueueing against a
// saturated pool. Without both properties, nested calls deadlock — the outer
// task blocks a worker slot while its shards starve behind it.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace duo {

class ThreadPool {
 public:
  // num_threads == 0 selects hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Enqueue a task; fire-and-forget. Use parallel_for for joined work.
  // Returns true if the task was queued. On a stopped pool the task runs
  // inline on the calling thread and false is returned — this keeps
  // late callers safe during static destruction (see shared()).
  bool enqueue(std::function<void()> task);

  // Run fn(i) for i in [0, count), blocking until all complete. Exceptions
  // from fn propagate: the first one thrown is rethrown on the caller.
  //
  // Re-entrant: when called from a worker thread of this same pool the
  // indices run inline on that worker (the pool is already saturated with
  // the outer loop's shards, so queueing would only add latency — or, if
  // the caller merely waited, deadlock). From any other thread the caller
  // drains indices alongside the workers, so forward progress never
  // depends on a free worker slot.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  // True when the calling thread is one of this pool's workers.
  bool in_worker_context() const noexcept;

  // Stop accepting queued work and join all workers. Idempotent, but must
  // not be called concurrently with itself. Called by the destructor;
  // exposed so the shutdown path is testable. After shutdown, enqueue runs
  // tasks inline and parallel_for runs serially.
  void shutdown();
  bool stopped() const noexcept { return stop_.load(std::memory_order_acquire); }

  // Process-wide shared pool for library internals that want parallelism
  // without plumbing a pool through every call. Sized once, at first use,
  // from the DUO_THREADS environment variable (see threads_from_env).
  //
  // Static destruction: the pool is a function-local static, so objects
  // destroyed after it may still call into it. Both enqueue and
  // parallel_for degrade to inline/serial execution on a stopped pool
  // instead of crashing, which makes those destruction-order races benign.
  static ThreadPool& shared();

  // Parse a DUO_THREADS-style value: "0", empty, or invalid selects
  // hardware concurrency (returns 0); "1" means serial; "N" means N workers.
  static std::size_t threads_from_env(const char* value) noexcept;

 private:
  struct ParallelState;

  void worker_loop();
  static void drain(ParallelState& state, std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> stop_{false};
};

// Pool used by the compute kernels (Conv3d, pooling, feature extraction,
// gallery construction). Defaults to ThreadPool::shared(); tests and benches
// can interpose their own pool to measure or pin a specific thread count.
ThreadPool& compute_pool() noexcept;

// Override the compute pool (nullptr restores the shared pool). The pointer
// must outlive all kernel launches made while it is set; not synchronized
// against concurrently running kernels.
void set_compute_pool(ThreadPool* pool) noexcept;

}  // namespace duo
