#pragma once

// Fixed-size thread pool with a blocking parallel_for. Used to parallelize
// embarrassingly parallel work: per-video feature extraction, per-pair attack
// evaluation, and the distributed retrieval scatter phase.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace duo {

class ThreadPool {
 public:
  // num_threads == 0 selects hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Enqueue a task; fire-and-forget. Use parallel_for for joined work.
  void enqueue(std::function<void()> task);

  // Run fn(i) for i in [0, count), blocking until all complete. Exceptions
  // from fn propagate: the first one thrown is rethrown on the caller.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  // Process-wide shared pool for library internals that want parallelism
  // without plumbing a pool through every call.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace duo
