#include "defense/defense.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "metrics/metrics.hpp"

namespace duo::defense {

namespace {

float median_of(std::vector<float>& values) {
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace

video::Video FeatureSqueezing::apply(const video::Video& v) const {
  const video::VideoGeometry& g = v.geometry();
  video::Video out = v;

  // Bit-depth reduction: quantize to 2^bits levels over [0, 255].
  const float levels = static_cast<float>((1 << config_.bit_depth) - 1);
  for (auto& x : out.data().flat()) {
    x = std::round(x / 255.0f * levels) / levels * 255.0f;
  }

  // Median spatial smoothing per frame/channel.
  if (config_.median_radius > 0) {
    const int r = config_.median_radius;
    Tensor smoothed = out.data();
    std::vector<float> window;
    window.reserve(static_cast<std::size_t>((2 * r + 1) * (2 * r + 1)));
    for (std::int64_t n = 0; n < g.frames; ++n) {
      for (std::int64_t y = 0; y < g.height; ++y) {
        for (std::int64_t x = 0; x < g.width; ++x) {
          for (std::int64_t c = 0; c < g.channels; ++c) {
            window.clear();
            for (int dy = -r; dy <= r; ++dy) {
              const std::int64_t yy =
                  std::clamp<std::int64_t>(y + dy, 0, g.height - 1);
              for (int dx = -r; dx <= r; ++dx) {
                const std::int64_t xx =
                    std::clamp<std::int64_t>(x + dx, 0, g.width - 1);
                window.push_back(out.data().at(n, yy, xx, c));
              }
            }
            smoothed.at(n, y, x, c) = median_of(window);
          }
        }
      }
    }
    out.data() = std::move(smoothed);
  }
  return out;
}

video::Video Noise2Self::apply(const video::Video& v) const {
  const video::VideoGeometry& g = v.geometry();

  // J-invariant predictor: pixel (n,y,x,c) is predicted as a weighted sum of
  // its 4 spatial neighbors, 4 diagonal neighbors, and (optionally) the two
  // temporal neighbors — never itself. The weights are fitted per channel on
  // this very video by ridge regression (self-supervision: the target is the
  // noisy pixel, the predictor cannot see it, so it can only fit the signal).
  struct Offset { int dn, dy, dx; };
  std::vector<Offset> offsets = {
      {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1},
      {0, -1, -1}, {0, -1, 1}, {0, 1, -1}, {0, 1, 1},
  };
  if (config_.use_temporal && g.frames > 1) {
    offsets.push_back({-1, 0, 0});
    offsets.push_back({1, 0, 0});
  }
  const std::size_t k = offsets.size();

  auto sample = [&](std::int64_t n, std::int64_t y, std::int64_t x,
                    std::int64_t c, const Offset& o) {
    const std::int64_t nn = std::clamp<std::int64_t>(n + o.dn, 0, g.frames - 1);
    const std::int64_t yy = std::clamp<std::int64_t>(y + o.dy, 0, g.height - 1);
    const std::int64_t xx = std::clamp<std::int64_t>(x + o.dx, 0, g.width - 1);
    return v.data().at(nn, yy, xx, c);
  };

  video::Video out = v;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    // Normal equations A w = b with A = XᵀX + ridge·I, b = Xᵀ·target.
    std::vector<double> a(k * k, 0.0);
    std::vector<double> b(k, 0.0);
    for (std::int64_t n = 0; n < g.frames; ++n) {
      for (std::int64_t y = 0; y < g.height; ++y) {
        for (std::int64_t x = 0; x < g.width; ++x) {
          std::vector<double> row(k);
          for (std::size_t j = 0; j < k; ++j) {
            row[j] = sample(n, y, x, c, offsets[j]) / 255.0;
          }
          const double target = v.data().at(n, y, x, c) / 255.0;
          for (std::size_t i = 0; i < k; ++i) {
            b[i] += row[i] * target;
            for (std::size_t j = 0; j < k; ++j) a[i * k + j] += row[i] * row[j];
          }
        }
      }
    }
    const double ridge = static_cast<double>(config_.ridge) *
                         static_cast<double>(g.frames * g.pixels_per_frame());
    for (std::size_t i = 0; i < k; ++i) a[i * k + i] += ridge;

    // Gaussian elimination with partial pivoting (k ≤ 10).
    std::vector<double> w = b;
    for (std::size_t col = 0; col < k; ++col) {
      std::size_t pivot = col;
      for (std::size_t r = col + 1; r < k; ++r) {
        if (std::fabs(a[r * k + col]) > std::fabs(a[pivot * k + col])) pivot = r;
      }
      for (std::size_t j = 0; j < k; ++j) std::swap(a[col * k + j], a[pivot * k + j]);
      std::swap(w[col], w[pivot]);
      const double diag = a[col * k + col];
      DUO_CHECK_MSG(std::fabs(diag) > 1e-12, "noise2self: singular system");
      for (std::size_t r = 0; r < k; ++r) {
        if (r == col) continue;
        const double factor = a[r * k + col] / diag;
        for (std::size_t j = col; j < k; ++j) a[r * k + j] -= factor * a[col * k + j];
        w[r] -= factor * w[col];
      }
    }
    for (std::size_t i = 0; i < k; ++i) w[i] /= a[i * k + i];

    // Denoise: replace each pixel with its J-invariant prediction.
    for (std::int64_t n = 0; n < g.frames; ++n) {
      for (std::int64_t y = 0; y < g.height; ++y) {
        for (std::int64_t x = 0; x < g.width; ++x) {
          double pred = 0.0;
          for (std::size_t j = 0; j < k; ++j) {
            pred += w[j] * (sample(n, y, x, c, offsets[j]) / 255.0);
          }
          out.data().at(n, y, x, c) =
              std::clamp(static_cast<float>(pred * 255.0), 0.0f, 255.0f);
        }
      }
    }
  }
  return out;
}

Detector::Detector(retrieval::RetrievalSystem& system,
                   std::unique_ptr<InputTransform> transform, std::size_t m)
    : system_(&system), transform_(std::move(transform)), m_(m) {
  DUO_CHECK_MSG(transform_ != nullptr, "Detector: null transform");
}

double Detector::score(const video::Video& v) {
  const auto raw = system_->retrieve(v, m_);
  const auto squeezed = system_->retrieve(transform_->apply(v), m_);
  return 1.0 - metrics::ndcg_similarity(raw, squeezed);
}

void Detector::calibrate(const std::vector<video::Video>& clean) {
  DUO_CHECK_MSG(!clean.empty(), "Detector: empty calibration set");
  double worst = 0.0;
  for (const auto& v : clean) worst = std::max(worst, score(v));
  threshold_ = worst + 1e-6;
}

double Detector::detection_rate(const std::vector<video::Video>& adversarial) {
  if (adversarial.empty()) return 0.0;
  std::size_t flagged = 0;
  for (const auto& v : adversarial) {
    if (is_adversarial(v)) ++flagged;
  }
  return 100.0 * static_cast<double>(flagged) /
         static_cast<double>(adversarial.size());
}

}  // namespace duo::defense
