#pragma once

// Defenses of §V-D. Both follow the same detection recipe: transform the
// incoming query video, retrieve with both the raw and transformed video,
// and flag the query as adversarial when the two retrieval lists disagree
// more than a threshold calibrated on clean traffic.
//
//  * Feature squeezing (Xu et al. [26]): bit-depth reduction + median
//    spatial smoothing.
//  * Noise2Self (Batson & Royer [27]): J-invariant self-supervised
//    denoising — each pixel is predicted from a neighborhood that excludes
//    the pixel itself, with per-channel combination weights fitted on the
//    query video alone (no clean data needed), exactly the J-invariance
//    trick of the paper.

#include <memory>
#include <string>
#include <vector>

#include "retrieval/system.hpp"
#include "video/video.hpp"

namespace duo::defense {

// Input transform interface.
class InputTransform {
 public:
  virtual ~InputTransform() = default;
  virtual video::Video apply(const video::Video& v) const = 0;
  virtual std::string name() const = 0;
};

struct FeatureSqueezingConfig {
  int bit_depth = 5;       // reduce 8-bit pixels to this many bits
  int median_radius = 1;   // 3×3 spatial median
};

class FeatureSqueezing final : public InputTransform {
 public:
  explicit FeatureSqueezing(FeatureSqueezingConfig config) : config_(config) {}
  video::Video apply(const video::Video& v) const override;
  std::string name() const override { return "feature-squeezing"; }

 private:
  FeatureSqueezingConfig config_;
};

struct Noise2SelfConfig {
  bool use_temporal = true;  // include t±1 neighbors in the predictor
  float ridge = 1e-3f;       // ridge regularization for the weight fit
};

class Noise2Self final : public InputTransform {
 public:
  explicit Noise2Self(Noise2SelfConfig config) : config_(config) {}
  video::Video apply(const video::Video& v) const override;
  std::string name() const override { return "noise2self"; }

 private:
  Noise2SelfConfig config_;
};

// List-consistency detector around an InputTransform.
class Detector {
 public:
  Detector(retrieval::RetrievalSystem& system,
           std::unique_ptr<InputTransform> transform, std::size_t m = 10);

  // Disagreement score in [0, 1]: 1 − NDCG-similarity of the two lists.
  double score(const video::Video& v);

  // Pick the threshold as the max clean score plus a small margin, bounding
  // the false-positive rate on the calibration set at zero.
  void calibrate(const std::vector<video::Video>& clean);

  bool is_adversarial(const video::Video& v) { return score(v) > threshold_; }

  double threshold() const noexcept { return threshold_; }
  const std::string transform_name() const { return transform_->name(); }

  // Detection rate (%) over a set of adversarial videos.
  double detection_rate(const std::vector<video::Video>& adversarial);

 private:
  retrieval::RetrievalSystem* system_;
  std::unique_ptr<InputTransform> transform_;
  std::size_t m_;
  double threshold_ = 0.5;
};

}  // namespace duo::defense
