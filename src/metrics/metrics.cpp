#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace duo::metrics {

double average_precision(const std::vector<bool>& relevant,
                         std::int64_t total_relevant) {
  if (relevant.empty() || total_relevant <= 0) return 0.0;
  double acc = 0.0;
  std::int64_t hits = 0;
  for (std::size_t i = 0; i < relevant.size(); ++i) {
    if (relevant[i]) {
      ++hits;
      acc += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const std::int64_t denom =
      std::min<std::int64_t>(total_relevant,
                             static_cast<std::int64_t>(relevant.size()));
  return denom > 0 ? acc / static_cast<double>(denom) : 0.0;
}

double precision_at(const RetrievalList& a, const RetrievalList& b,
                    std::size_t i) {
  DUO_CHECK_MSG(i >= 1 && i <= a.size() && i <= b.size(),
                "precision_at: i out of range");
  std::unordered_set<std::int64_t> top_a(a.begin(),
                                         a.begin() + static_cast<long>(i));
  std::size_t common = 0;
  for (std::size_t j = 0; j < i; ++j) {
    if (top_a.count(b[j])) ++common;
  }
  return static_cast<double>(common) / static_cast<double>(i);
}

double ap_at_m(const RetrievalList& a, const RetrievalList& b) {
  const std::size_t m = std::min(a.size(), b.size());
  if (m == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i <= m; ++i) acc += precision_at(a, b, i);
  return acc / static_cast<double>(m);
}

std::int64_t sparsity(const Tensor& perturbation, float eps) {
  return perturbation.norm_l0(eps);
}

std::int64_t perturbed_frames(const Tensor& perturbation,
                              std::int64_t frame_elements, float eps) {
  DUO_CHECK_MSG(frame_elements > 0, "frame_elements must be positive");
  DUO_CHECK_MSG(perturbation.size() % frame_elements == 0,
                "perturbation size not divisible by frame size");
  const std::int64_t frames = perturbation.size() / frame_elements;
  std::int64_t count = 0;
  const float* d = perturbation.data();
  for (std::int64_t f = 0; f < frames; ++f) {
    for (std::int64_t e = 0; e < frame_elements; ++e) {
      if (std::fabs(d[f * frame_elements + e]) > eps) {
        ++count;
        break;
      }
    }
  }
  return count;
}

double pscore(const Tensor& perturbation) {
  if (perturbation.empty()) return 0.0;
  return perturbation.norm_l1() / static_cast<double>(perturbation.size());
}

double ndcg_similarity(const RetrievalList& a, const RetrievalList& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_map<std::int64_t, std::size_t> pos_b;
  pos_b.reserve(b.size());
  for (std::size_t j = 0; j < b.size(); ++j) pos_b.emplace(b[j], j);

  auto discount = [](std::size_t rank) {
    return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
  };

  double gain = 0.0, ideal = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ideal += discount(i) * discount(i);
    const auto it = pos_b.find(a[i]);
    if (it != pos_b.end()) {
      // Co-occurring item: discount by both ranks so early agreement on
      // early items dominates.
      gain += discount(i) * discount(it->second);
    }
  }
  return ideal > 0.0 ? gain / ideal : 0.0;
}

}  // namespace duo::metrics
