#pragma once

// Evaluation metrics of §V-A: mAP, AP@m, Spa, PScore, and the NDCG-style
// list similarity H used inside the SparseQuery objective (Eq. 2).

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace duo::metrics {

// A retrieval result: gallery video ids in descending similarity order.
using RetrievalList = std::vector<std::int64_t>;

// Average precision of one query: `relevant` flags each retrieved position,
// `total_relevant` is the number of relevant gallery items (paper's N).
// AP = (1/min(N, m)) · Σ_{i: relevant} ctop(i)/i over the retrieved list.
double average_precision(const std::vector<bool>& relevant,
                         std::int64_t total_relevant);

// AP@m between two retrieval lists (paper §V-A): prec_i is the top-i overlap
// ratio |R_i(a) ∩ R_i(b)| / i and AP@m = Σ_i prec_i / m. Lists may have
// different lengths; m is the length of the shorter one.
double ap_at_m(const RetrievalList& a, const RetrievalList& b);

// Top-i overlap ratio prec_i for a single i (1-based).
double precision_at(const RetrievalList& a, const RetrievalList& b,
                    std::size_t i);

// Sparsity Spa = Σ_i ‖φ_i‖₀: number of nonzero elements of the perturbation
// (Table II: a dense attack on 16×112×112×3 gives ≈ 602K).
std::int64_t sparsity(const Tensor& perturbation, float eps = 1e-6f);

// Number of frames with at least one nonzero element (‖φ‖₂,₀ of §III-C).
// `frame_elements` is W·H·C.
std::int64_t perturbed_frames(const Tensor& perturbation,
                              std::int64_t frame_elements, float eps = 1e-6f);

// PScore = mean |φ| over all N·B·C elements (perceptibility score [49]).
double pscore(const Tensor& perturbation);

// NDCG-style co-occurrence similarity H(R(a), R(b)) ∈ [0, 1] (Eq. 2, derived
// from the NDCG-based function of QAIR [10]): items of `a` that co-occur in
// `b` contribute a rank-discounted gain from both positions.
double ndcg_similarity(const RetrievalList& a, const RetrievalList& b);

}  // namespace duo::metrics
