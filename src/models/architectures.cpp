#include "models/feature_extractor.hpp"

#include "nn/activations.hpp"
#include "nn/compose.hpp"
#include "nn/conv3d.hpp"
#include "nn/linear.hpp"
#include "nn/lstm.hpp"
#include "nn/norm.hpp"
#include "nn/pool3d.hpp"
#include "nn/residual.hpp"

namespace duo::models {

namespace {

using nn::Conv3d;
using nn::Conv3dSpec;

// Shared wrapper: any Module mapping [C, T, H, W] → [D].
class SequentialExtractor final : public FeatureExtractor {
 public:
  SequentialExtractor(std::string name, std::int64_t feature_dim,
                      std::unique_ptr<nn::Module> net)
      : name_(std::move(name)), dim_(feature_dim), net_(std::move(net)) {}

  Tensor extract_model_input(const Tensor& input) override {
    Tensor out = net_->forward(input);
    DUO_CHECK_MSG(out.size() == dim_, "extractor output dim mismatch");
    return out;
  }

  Tensor backward_to_input(const Tensor& grad_feature) override {
    return net_->backward(grad_feature);
  }

  std::vector<nn::Parameter*> parameters() override {
    return net_->parameters();
  }
  void set_training(bool training) override { net_->set_training(training); }

  std::unique_ptr<FeatureExtractor> clone() const override {
    auto net = net_->clone();
    if (!net) return nullptr;
    return std::make_unique<SequentialExtractor>(name_, dim_, std::move(net));
  }
  std::int64_t feature_dim() const override { return dim_; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::int64_t dim_;
  std::unique_ptr<nn::Module> net_;
};

std::unique_ptr<nn::Module> conv_in_relu(std::int64_t cin, std::int64_t cout,
                                         std::array<std::int64_t, 3> kernel,
                                         std::array<std::int64_t, 3> stride,
                                         std::array<std::int64_t, 3> padding,
                                         Rng& rng) {
  auto seq = std::make_unique<nn::Sequential>();
  Conv3dSpec spec;
  spec.in_channels = cin;
  spec.out_channels = cout;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.padding = padding;
  seq->add(std::make_unique<Conv3d>(spec, rng));
  seq->add(std::make_unique<nn::InstanceNorm3d>(cout));
  seq->add(std::make_unique<nn::ReLU>());
  return seq;
}

// 2D (per-frame) residual block with k=(1,3,3); optional spatial stride and
// channel change via a 1×1×1 projection shortcut.
std::unique_ptr<nn::Module> residual_block_2d(std::int64_t cin,
                                              std::int64_t cout,
                                              std::int64_t spatial_stride,
                                              Rng& rng) {
  auto body = std::make_unique<nn::Sequential>();
  Conv3dSpec c1;
  c1.in_channels = cin;
  c1.out_channels = cout;
  c1.kernel = {1, 3, 3};
  c1.stride = {1, spatial_stride, spatial_stride};
  c1.padding = {0, 1, 1};
  body->add(std::make_unique<Conv3d>(c1, rng));
  body->add(std::make_unique<nn::InstanceNorm3d>(cout));
  body->add(std::make_unique<nn::ReLU>());
  Conv3dSpec c2 = c1;
  c2.in_channels = cout;
  c2.stride = {1, 1, 1};
  body->add(std::make_unique<Conv3d>(c2, rng));
  body->add(std::make_unique<nn::InstanceNorm3d>(cout));

  std::unique_ptr<nn::Module> shortcut;
  if (cin != cout || spatial_stride != 1) {
    Conv3dSpec proj;
    proj.in_channels = cin;
    proj.out_channels = cout;
    proj.kernel = {1, 1, 1};
    proj.stride = {1, spatial_stride, spatial_stride};
    proj.padding = {0, 0, 0};
    proj.bias = false;
    shortcut = std::make_unique<Conv3d>(proj, rng);
  }
  return std::make_unique<nn::Residual>(std::move(body), std::move(shortcut));
}

// --- MiniC3D: plain stacked 3×3×3 convolutions (Tran et al. [43]) ---------
std::unique_ptr<nn::Module> build_c3d(std::int64_t channels,
                                      std::int64_t feature_dim, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->add(conv_in_relu(channels, 8, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
  net->add(std::make_unique<nn::MaxPool3d>(
      std::array<std::int64_t, 3>{1, 2, 2}));
  net->add(conv_in_relu(8, 16, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
  net->add(std::make_unique<nn::MaxPool3d>(
      std::array<std::int64_t, 3>{2, 2, 2}));
  net->add(conv_in_relu(16, 24, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
  net->add(std::make_unique<nn::GlobalAvgPool>());
  net->add(std::make_unique<nn::Linear>(24, feature_dim, rng));
  return net;
}

// --- MiniResNet18 / MiniResNet34: 2D residual backbone + temporal pooling --
std::unique_ptr<nn::Module> build_resnet(std::int64_t channels,
                                         std::int64_t feature_dim,
                                         int blocks_per_stage, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->add(conv_in_relu(channels, 8, {1, 3, 3}, {1, 1, 1}, {0, 1, 1}, rng));
  // Stage 1 at 8 channels, stage 2 at 16 with spatial downsampling.
  for (int b = 0; b < blocks_per_stage; ++b) {
    net->add(residual_block_2d(8, 8, 1, rng));
  }
  net->add(residual_block_2d(8, 16, 2, rng));
  for (int b = 1; b < blocks_per_stage; ++b) {
    net->add(residual_block_2d(16, 16, 1, rng));
  }
  net->add(std::make_unique<nn::GlobalAvgPool>());
  net->add(std::make_unique<nn::Linear>(16, feature_dim, rng));
  return net;
}

// --- MiniI3D: inflated 3D stem + inception-style dual branch (Carreira &
// Zisserman [21]) -----------------------------------------------------------
std::unique_ptr<nn::Module> build_i3d(std::int64_t channels,
                                      std::int64_t feature_dim, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->add(conv_in_relu(channels, 8, {3, 3, 3}, {1, 2, 2}, {1, 1, 1}, rng));

  auto branches = std::make_unique<nn::Parallel>();
  {
    // 1×1×1 bottleneck branch.
    branches->add(conv_in_relu(8, 8, {1, 1, 1}, {1, 1, 1}, {0, 0, 0}, rng));
    // 3×3×3 inflated branch.
    branches->add(conv_in_relu(8, 12, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
  }
  net->add(std::move(branches));  // → 20 channels
  net->add(std::make_unique<nn::MaxPool3d>(
      std::array<std::int64_t, 3>{2, 2, 2}));
  net->add(conv_in_relu(20, 24, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
  net->add(std::make_unique<nn::GlobalAvgPool>());
  net->add(std::make_unique<nn::Linear>(24, feature_dim, rng));
  return net;
}

// --- MiniTPN: shared stem + temporal pyramid of pooling rates (Yang et al.
// [22]) ----------------------------------------------------------------------
std::unique_ptr<nn::Module> build_tpn(std::int64_t channels,
                                      std::int64_t feature_dim, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->add(conv_in_relu(channels, 8, {3, 3, 3}, {1, 2, 2}, {1, 1, 1}, rng));

  auto pyramid = std::make_unique<nn::Parallel>();
  // Rate 1: full temporal resolution.
  {
    auto p = std::make_unique<nn::Sequential>();
    p->add(conv_in_relu(8, 8, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
    p->add(std::make_unique<nn::GlobalAvgPool>());
    pyramid->add(std::move(p));
  }
  // Rate 2: temporally pooled ×2.
  {
    auto p = std::make_unique<nn::Sequential>();
    p->add(std::make_unique<nn::AvgPool3d>(
        std::array<std::int64_t, 3>{2, 1, 1}));
    p->add(conv_in_relu(8, 8, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
    p->add(std::make_unique<nn::GlobalAvgPool>());
    pyramid->add(std::move(p));
  }
  // Rate 4: temporally pooled ×4.
  {
    auto p = std::make_unique<nn::Sequential>();
    p->add(std::make_unique<nn::AvgPool3d>(
        std::array<std::int64_t, 3>{4, 1, 1}));
    p->add(conv_in_relu(8, 8, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
    p->add(std::make_unique<nn::GlobalAvgPool>());
    pyramid->add(std::move(p));
  }
  net->add(std::move(pyramid));  // → [24]
  net->add(std::make_unique<nn::Linear>(24, feature_dim, rng));
  return net;
}

// --- MiniSlowFast: slow pathway (temporal stride 4, wide) + fast pathway
// (full rate, thin) fused at the head (Feichtenhofer et al. [23]) ------------
std::unique_ptr<nn::Module> build_slowfast(std::int64_t channels,
                                           std::int64_t feature_dim,
                                           Rng& rng) {
  auto paths = std::make_unique<nn::Parallel>();
  {
    auto slow = std::make_unique<nn::Sequential>();
    slow->add(std::make_unique<nn::AvgPool3d>(
        std::array<std::int64_t, 3>{4, 1, 1}));
    slow->add(conv_in_relu(channels, 12, {1, 3, 3}, {1, 2, 2}, {0, 1, 1}, rng));
    slow->add(conv_in_relu(12, 16, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
    slow->add(std::make_unique<nn::GlobalAvgPool>());
    paths->add(std::move(slow));
  }
  {
    auto fast = std::make_unique<nn::Sequential>();
    fast->add(conv_in_relu(channels, 4, {3, 3, 3}, {1, 2, 2}, {1, 1, 1}, rng));
    fast->add(conv_in_relu(4, 8, {3, 3, 3}, {1, 1, 1}, {1, 1, 1}, rng));
    fast->add(std::make_unique<nn::GlobalAvgPool>());
    paths->add(std::move(fast));
  }
  auto net = std::make_unique<nn::Sequential>();
  net->add(std::move(paths));  // → [24]
  net->add(std::make_unique<nn::Linear>(24, feature_dim, rng));
  return net;
}

// --- LstmNet: stacked 2D CNN for spatial features + LSTM for temporal
// features, the generic retrieval backbone of Fig. 1 [42] --------------------
std::unique_ptr<nn::Module> build_lstmnet(std::int64_t channels,
                                          std::int64_t feature_dim, Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->add(conv_in_relu(channels, 8, {1, 3, 3}, {1, 2, 2}, {0, 1, 1}, rng));
  net->add(conv_in_relu(8, 16, {1, 3, 3}, {1, 1, 1}, {0, 1, 1}, rng));
  net->add(std::make_unique<nn::SpatialAvgPool>());  // → [T, 16]
  net->add(std::make_unique<nn::Lstm>(16, 24, rng)); // → [T, 24]
  net->add(std::make_unique<nn::TemporalMean>());    // → [24]
  net->add(std::make_unique<nn::Linear>(24, feature_dim, rng));
  return net;
}

}  // namespace

const char* model_kind_name(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kI3D: return "I3D";
    case ModelKind::kTPN: return "TPN";
    case ModelKind::kSlowFast: return "SlowFast";
    case ModelKind::kResNet34: return "Resnet34";
    case ModelKind::kC3D: return "C3D";
    case ModelKind::kResNet18: return "Resnet18";
    case ModelKind::kLstmNet: return "LstmNet";
  }
  return "?";
}

std::vector<ModelKind> victim_model_kinds() {
  return {ModelKind::kTPN, ModelKind::kSlowFast, ModelKind::kI3D,
          ModelKind::kResNet34};
}

std::vector<ModelKind> surrogate_model_kinds() {
  return {ModelKind::kC3D, ModelKind::kResNet18};
}

std::unique_ptr<FeatureExtractor> make_extractor(
    ModelKind kind, const video::VideoGeometry& geometry,
    std::int64_t feature_dim, Rng& rng) {
  DUO_CHECK_MSG(feature_dim > 0, "feature_dim must be positive");
  DUO_CHECK_MSG(geometry.frames >= 4, "models require at least 4 frames");
  const std::int64_t c = geometry.channels;
  switch (kind) {
    case ModelKind::kC3D:
      return std::make_unique<SequentialExtractor>(
          "C3D", feature_dim, build_c3d(c, feature_dim, rng));
    case ModelKind::kResNet18:
      return std::make_unique<SequentialExtractor>(
          "Resnet18", feature_dim, build_resnet(c, feature_dim, 1, rng));
    case ModelKind::kResNet34:
      return std::make_unique<SequentialExtractor>(
          "Resnet34", feature_dim, build_resnet(c, feature_dim, 2, rng));
    case ModelKind::kI3D:
      return std::make_unique<SequentialExtractor>(
          "I3D", feature_dim, build_i3d(c, feature_dim, rng));
    case ModelKind::kTPN:
      return std::make_unique<SequentialExtractor>(
          "TPN", feature_dim, build_tpn(c, feature_dim, rng));
    case ModelKind::kSlowFast:
      return std::make_unique<SequentialExtractor>(
          "SlowFast", feature_dim, build_slowfast(c, feature_dim, rng));
    case ModelKind::kLstmNet:
      return std::make_unique<SequentialExtractor>(
          "LstmNet", feature_dim, build_lstmnet(c, feature_dim, rng));
  }
  DUO_CHECK_MSG(false, "unknown model kind");
  return nullptr;
}

}  // namespace duo::models
