#include "models/feature_extractor.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace duo::models {

std::vector<Tensor> FeatureExtractor::extract_batch(
    std::span<const video::Video> videos) {
  std::vector<Tensor> features(videos.size());
  ThreadPool& pool = compute_pool();
  const std::size_t shards = std::min(pool.size(), videos.size());

  // One extractor per shard: shard 0 reuses this instance, the rest are
  // clones. Extractors are stateful across forward passes, so sharing one
  // instance across threads is not an option.
  std::vector<std::unique_ptr<FeatureExtractor>> clones;
  if (shards >= 2) {
    clones.reserve(shards - 1);
    for (std::size_t s = 1; s < shards; ++s) {
      auto c = clone();
      if (!c) {
        clones.clear();
        break;
      }
      clones.push_back(std::move(c));
    }
  }

  if (clones.empty()) {
    for (std::size_t i = 0; i < videos.size(); ++i) {
      features[i] = extract(videos[i]);
    }
    return features;
  }

  pool.parallel_for(clones.size() + 1, [&](std::size_t s) {
    FeatureExtractor& ex = s == 0 ? *this : *clones[s - 1];
    for (std::size_t i = s; i < videos.size(); i += clones.size() + 1) {
      features[i] = ex.extract(videos[i]);
    }
  });
  return features;
}

}  // namespace duo::models
