#pragma once

// FeatureExtractor: the deep model of Fig. 1. Maps a video to a feature
// vector Fea(v) ∈ R^D; retrieval ranks gallery videos by L2 distance in this
// space. Attack code additionally needs d(feature-loss)/d(input-video), which
// `backward_to_input` provides after an `extract_*` call.
//
// Extractors are stateful across forward/backward (layer caches), so a single
// instance must not be used from multiple threads concurrently.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "video/video.hpp"

namespace duo::models {

class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;

  FeatureExtractor() = default;
  FeatureExtractor(const FeatureExtractor&) = delete;
  FeatureExtractor& operator=(const FeatureExtractor&) = delete;

  // Feature for a video (converts to model space internally).
  Tensor extract(const video::Video& v) {
    return extract_model_input(v.to_model_input());
  }

  // Feature for a model-space input [C, T, H, W] in [0, 1].
  virtual Tensor extract_model_input(const Tensor& input) = 0;

  // Features for a batch of videos, in input order — the batched entry point
  // used by gallery ingestion and the serve layer's micro-batching scheduler.
  // The default implementation shards the batch over clone() replicas on the
  // compute pool (one clone per worker, amortized across the whole batch);
  // a non-cloneable extractor degrades to a serial extract() loop. Either
  // way the result is bitwise identical to calling extract() serially on
  // this instance, and overrides must preserve that contract — retrieval
  // answers may not depend on how requests were batched.
  virtual std::vector<Tensor> extract_batch(
      std::span<const video::Video> videos);

  // Gradient of a scalar loss w.r.t. the *model-space input* of the most
  // recent extract call, given d(loss)/d(feature). Also accumulates parameter
  // gradients (harmless at attack time where only input grads are read).
  virtual Tensor backward_to_input(const Tensor& grad_feature) = 0;

  virtual std::vector<nn::Parameter*> parameters() = 0;
  virtual void set_training(bool training) = 0;

  // Deep copy with identical parameters and fresh layer caches, for
  // thread-private replicas in parallel inference (extractors are stateful,
  // see above). Default: nullptr, meaning "not cloneable" — callers must
  // fall back to serial use of the original instance.
  virtual std::unique_ptr<FeatureExtractor> clone() const { return nullptr; }

  virtual std::int64_t feature_dim() const = 0;
  virtual std::string name() const = 0;

  std::int64_t parameter_count() {
    std::int64_t n = 0;
    for (auto* p : parameters()) n += p->size();
    return n;
  }

  // -- data-parallel training support --------------------------------------
  // Replicas made with clone() accumulate parameter gradients locally during
  // backward_to_input; the training loop pulls them off with
  // parameter_grads(), reduces them serially in fixed sample order, and
  // pushes updated weights back with copy_parameters_from().

  void zero_grad() {
    for (auto* p : parameters()) p->zero_grad();
  }

  // Copy of the current parameter gradients, in parameters() order.
  std::vector<Tensor> parameter_grads() {
    std::vector<Tensor> out;
    auto params = parameters();
    out.reserve(params.size());
    for (auto* p : params) out.push_back(p->grad);
    return out;
  }

  // Overwrite this extractor's parameter values with `src`'s. Both must be
  // clones of the same architecture (same parameters() order and shapes).
  void copy_parameters_from(FeatureExtractor& src) {
    auto dst_params = parameters();
    auto src_params = src.parameters();
    DUO_CHECK_MSG(dst_params.size() == src_params.size(),
                  "copy_parameters_from: parameter count mismatch");
    for (std::size_t i = 0; i < dst_params.size(); ++i) {
      dst_params[i]->value = src_params[i]->value;
    }
  }
};

// The architectures of the paper's evaluation (§V-B): four victims
// (I3D, TPN, SlowFast, ResNet34), two surrogates (C3D, ResNet18), and the
// generic LSTM+CNN retrieval backbone of Fig. 1.
enum class ModelKind {
  kI3D,
  kTPN,
  kSlowFast,
  kResNet34,
  kC3D,
  kResNet18,
  kLstmNet,
};

const char* model_kind_name(ModelKind kind) noexcept;

// All victim kinds in paper order (Fig. 3 / Table II columns).
std::vector<ModelKind> victim_model_kinds();
// Both surrogate kinds (DUO-C3D, DUO-Res18).
std::vector<ModelKind> surrogate_model_kinds();

// Build a miniature analogue of `kind` for the given input geometry.
// Weights are randomly initialized from `rng` (train before use).
std::unique_ptr<FeatureExtractor> make_extractor(
    ModelKind kind, const video::VideoGeometry& geometry,
    std::int64_t feature_dim, Rng& rng);

}  // namespace duo::models
