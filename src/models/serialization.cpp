#include "models/serialization.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace duo::models {

namespace io {

void write_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool read_u64(std::istream& in, std::uint64_t& value) {
  std::uint64_t buf = 0;
  in.read(reinterpret_cast<char*>(&buf), sizeof(buf));
  if (!in) return false;
  value = buf;
  return true;
}

void write_i64(std::ostream& out, std::int64_t value) {
  write_u64(out, static_cast<std::uint64_t>(value));
}

bool read_i64(std::istream& in, std::int64_t& value) {
  std::uint64_t buf = 0;
  if (!read_u64(in, buf)) return false;
  value = static_cast<std::int64_t>(buf);
  return true;
}

void write_f64(std::ostream& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  write_u64(out, bits);
}

bool read_f64(std::istream& in, double& value) {
  std::uint64_t bits = 0;
  if (!read_u64(in, bits)) return false;
  std::memcpy(&value, &bits, sizeof(value));
  return true;
}

void write_tensor(std::ostream& out, const Tensor& t) {
  write_i64(out, static_cast<std::int64_t>(t.rank()));
  for (std::size_t d = 0; d < t.rank(); ++d) write_i64(out, t.dim(d));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
}

bool read_tensor(std::istream& in, Tensor& t) {
  std::int64_t rank = 0;
  if (!read_i64(in, rank) || rank < 0 || rank > 8) return false;
  Tensor::Shape shape(static_cast<std::size_t>(rank));
  std::int64_t elements = 1;
  for (auto& dim : shape) {
    if (!read_i64(in, dim) || dim < 0) return false;
    elements *= dim;
    if (elements > std::numeric_limits<std::int32_t>::max()) return false;
  }
  Tensor staged(std::move(shape));
  in.read(reinterpret_cast<char*>(staged.data()),
          static_cast<std::streamsize>(staged.size() * sizeof(float)));
  if (!in) return false;
  t = std::move(staged);
  return true;
}

void write_i64_vec(std::ostream& out, const std::vector<std::int64_t>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(std::int64_t)));
}

bool read_i64_vec(std::istream& in, std::vector<std::int64_t>& v) {
  std::int64_t size = 0;
  if (!read_i64(in, size) || size < 0 ||
      size > std::numeric_limits<std::int32_t>::max()) {
    return false;
  }
  std::vector<std::int64_t> staged(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(staged.data()),
          static_cast<std::streamsize>(staged.size() * sizeof(std::int64_t)));
  if (!in) return false;
  v = std::move(staged);
  return true;
}

void write_f64_vec(std::ostream& out, const std::vector<double>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

bool read_f64_vec(std::istream& in, std::vector<double>& v) {
  std::int64_t size = 0;
  if (!read_i64(in, size) || size < 0 ||
      size > std::numeric_limits<std::int32_t>::max()) {
    return false;
  }
  std::vector<double> staged(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(staged.data()),
          static_cast<std::streamsize>(staged.size() * sizeof(double)));
  if (!in) return false;
  v = std::move(staged);
  return true;
}

void write_f32_vec(std::ostream& out, const std::vector<float>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool read_f32_vec(std::istream& in, std::vector<float>& v) {
  std::int64_t size = 0;
  if (!read_i64(in, size) || size < 0 ||
      size > std::numeric_limits<std::int32_t>::max()) {
    return false;
  }
  std::vector<float> staged(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(staged.data()),
          static_cast<std::streamsize>(staged.size() * sizeof(float)));
  if (!in) return false;
  v = std::move(staged);
  return true;
}

void write_i32_vec(std::ostream& out, const std::vector<int>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(int)));
}

bool read_i32_vec(std::istream& in, std::vector<int>& v) {
  std::int64_t size = 0;
  if (!read_i64(in, size) || size < 0 ||
      size > std::numeric_limits<std::int32_t>::max()) {
    return false;
  }
  std::vector<int> staged(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(staged.data()),
          static_cast<std::streamsize>(staged.size() * sizeof(int)));
  if (!in) return false;
  v = std::move(staged);
  return true;
}

void write_i8_vec(std::ostream& out, const std::vector<std::int8_t>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size()));
}

bool read_i8_vec(std::istream& in, std::vector<std::int8_t>& v) {
  std::int64_t size = 0;
  if (!read_i64(in, size) || size < 0 ||
      size > std::numeric_limits<std::int32_t>::max()) {
    return false;
  }
  std::vector<std::int8_t> staged(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(staged.data()),
          static_cast<std::streamsize>(staged.size()));
  if (!in) return false;
  v = std::move(staged);
  return true;
}

void write_string(std::ostream& out, const std::string& s) {
  write_i64(out, static_cast<std::int64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool read_string(std::istream& in, std::string& s) {
  std::int64_t size = 0;
  if (!read_i64(in, size) || size < 0 || size > (1 << 20)) return false;
  std::string staged(static_cast<std::size_t>(size), '\0');
  in.read(staged.data(), static_cast<std::streamsize>(staged.size()));
  if (!in) return false;
  s = std::move(staged);
  return true;
}

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  return fnv1a(data, bytes, 0xCBF29CE484222325ULL);
}

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t basis) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = basis;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t fnv1a(const Tensor& t) {
  return fnv1a(t.data(), static_cast<std::size_t>(t.size()) * sizeof(float));
}

namespace {

// fsync the file at `path` (and with O_DIRECTORY, the directory itself).
// rename() orders the publish against other *metadata* operations, but not
// against the tmp file's *data* reaching disk: without an fsync of the file
// before the rename — and of the parent directory after it — a power loss
// can publish a valid-looking name pointing at truncated bytes, which
// defeats the whole point of write-then-rename. Windows has no fsync/dirfd
// equivalents here; the stream flush above is the best this code path gets.
bool sync_path(const std::string& path, bool directory) {
#ifndef _WIN32
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_WRONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  (void)directory;
  return true;
#endif
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& write) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    try {
      write(out);
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  // Data must be durable BEFORE the rename publishes the name; the directory
  // fsync after makes the rename itself durable.
  if (!sync_path(tmp, /*directory=*/false)) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  sync_path(parent_dir(path), /*directory=*/true);
  return true;
}

}  // namespace io

namespace {
constexpr char kMagic[8] = {'D', 'U', 'O', 'W', '1', '\0', '\0', '\0'};
}

bool save_parameters(FeatureExtractor& extractor, const std::string& path) {
  const auto params = extractor.parameters();
  return io::atomic_write(path, [&](std::ostream& out) {
    out.write(kMagic, sizeof(kMagic));
    io::write_i64(out, static_cast<std::int64_t>(params.size()));
    for (const auto* p : params) io::write_i64(out, p->size());
    for (const auto* p : params) {
      out.write(reinterpret_cast<const char*>(p->value.data()),
                static_cast<std::streamsize>(p->size() * sizeof(float)));
    }
  });
}

bool load_parameters(FeatureExtractor& extractor, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;

  const auto params = extractor.parameters();
  std::int64_t count = 0;
  if (!io::read_i64(in, count) ||
      count != static_cast<std::int64_t>(params.size())) {
    return false;
  }

  std::vector<std::int64_t> sizes(static_cast<std::size_t>(count));
  for (auto& s : sizes) {
    if (!io::read_i64(in, s)) return false;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (sizes[i] != params[i]->size()) return false;
  }

  // All-or-nothing: stage into buffers, then commit.
  std::vector<std::vector<float>> staged(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    staged[i].resize(static_cast<std::size_t>(sizes[i]));
    in.read(reinterpret_cast<char*>(staged[i].data()),
            static_cast<std::streamsize>(staged[i].size() * sizeof(float)));
  }
  if (!in) return false;

  for (std::size_t i = 0; i < params.size(); ++i) {
    float* dst = params[i]->value.data();
    std::memcpy(dst, staged[i].data(), staged[i].size() * sizeof(float));
  }
  return true;
}

}  // namespace duo::models
