#include "models/serialization.hpp"

#include <cstring>
#include <fstream>
#include <vector>

namespace duo::models {

namespace {
constexpr char kMagic[8] = {'D', 'U', 'O', 'W', '1', '\0', '\0', '\0'};
}

bool save_parameters(FeatureExtractor& extractor, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;

  const auto params = extractor.parameters();
  out.write(kMagic, sizeof(kMagic));
  const std::int64_t count = static_cast<std::int64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto* p : params) {
    const std::int64_t size = p->size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  }
  for (const auto* p : params) {
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool load_parameters(FeatureExtractor& extractor, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;

  const auto params = extractor.parameters();
  std::int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != static_cast<std::int64_t>(params.size())) return false;

  std::vector<std::int64_t> sizes(static_cast<std::size_t>(count));
  for (auto& s : sizes) {
    in.read(reinterpret_cast<char*>(&s), sizeof(s));
  }
  if (!in) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (sizes[i] != params[i]->size()) return false;
  }

  // All-or-nothing: stage into buffers, then commit.
  std::vector<std::vector<float>> staged(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    staged[i].resize(static_cast<std::size_t>(sizes[i]));
    in.read(reinterpret_cast<char*>(staged[i].data()),
            static_cast<std::streamsize>(staged[i].size() * sizeof(float)));
  }
  if (!in) return false;

  for (std::size_t i = 0; i < params.size(); ++i) {
    float* dst = params[i]->value.data();
    std::memcpy(dst, staged[i].data(), staged[i].size() * sizeof(float));
  }
  return true;
}

}  // namespace duo::models
