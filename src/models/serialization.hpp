#pragma once

// Model-weight serialization: flat binary checkpoint of all parameters of a
// FeatureExtractor, in parameter-iteration order. A checkpoint only loads
// back into the identical architecture/feature-dim/geometry (validated via a
// layout fingerprint), which is exactly the deployment story the library
// needs: train a victim once, attack it across bench runs.

#include <string>

#include "models/feature_extractor.hpp"

namespace duo::models {

// Save every parameter tensor of `extractor` to `path`. Returns false on
// I/O failure.
bool save_parameters(FeatureExtractor& extractor, const std::string& path);

// Load a checkpoint written by save_parameters into `extractor`. Returns
// false on I/O failure or if the checkpoint's parameter layout (count and
// per-parameter sizes) does not match the extractor.
bool load_parameters(FeatureExtractor& extractor, const std::string& path);

}  // namespace duo::models
