#pragma once

// Binary serialization. Two layers:
//
//  - models::io — small primitives (integers, doubles, tensors, vectors,
//    FNV-1a fingerprints, atomic file commit) shared by every checkpoint
//    format in the library. All multi-byte values are written in the host's
//    native byte order; checkpoints are a single-machine resume/deploy
//    mechanism, not an interchange format.
//  - save_parameters / load_parameters — flat checkpoint of all parameters
//    of a FeatureExtractor, in parameter-iteration order. A checkpoint only
//    loads back into the identical architecture/feature-dim/geometry
//    (validated via a layout fingerprint), which is exactly the deployment
//    story the library needs: train a victim once, attack it across bench
//    runs.
//
// Attack-state checkpoints (src/attack/checkpoint.hpp) build on models::io.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "models/feature_extractor.hpp"
#include "tensor/tensor.hpp"

namespace duo::models {

namespace io {

// Primitive writes never fail by themselves; check the stream after a batch
// of writes (ofstream reports failure at flush/close). Reads return false on
// EOF/short reads and leave the output untouched on failure.
void write_u64(std::ostream& out, std::uint64_t value);
bool read_u64(std::istream& in, std::uint64_t& value);
void write_i64(std::ostream& out, std::int64_t value);
bool read_i64(std::istream& in, std::int64_t& value);
void write_f64(std::ostream& out, double value);
bool read_f64(std::istream& in, double& value);

// Tensor: rank, dims, then the float payload. read_tensor validates the
// header (rank <= 8, non-negative dims, element count < 2^31) before
// allocating, so a corrupt file cannot trigger a huge allocation.
void write_tensor(std::ostream& out, const Tensor& t);
bool read_tensor(std::istream& in, Tensor& t);

// Length-prefixed vectors.
void write_i64_vec(std::ostream& out, const std::vector<std::int64_t>& v);
bool read_i64_vec(std::istream& in, std::vector<std::int64_t>& v);
void write_f64_vec(std::ostream& out, const std::vector<double>& v);
bool read_f64_vec(std::istream& in, std::vector<double>& v);
void write_f32_vec(std::ostream& out, const std::vector<float>& v);
bool read_f32_vec(std::istream& in, std::vector<float>& v);
void write_i32_vec(std::ostream& out, const std::vector<int>& v);
bool read_i32_vec(std::istream& in, std::vector<int>& v);
void write_i8_vec(std::ostream& out, const std::vector<std::int8_t>& v);
bool read_i8_vec(std::istream& in, std::vector<std::int8_t>& v);

// Length-prefixed byte string. read_string validates the length (< 2^20)
// before allocating, so a corrupt file cannot trigger a huge allocation.
void write_string(std::ostream& out, const std::string& s);
bool read_string(std::istream& in, std::string& s);

// FNV-1a over raw bytes — the fingerprint used to bind an attack checkpoint
// to the exact inputs it was taken against. The basis overload chains: pass
// a previous digest to fold additional bytes into a running hash.
std::uint64_t fnv1a(const void* data, std::size_t bytes);
std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t basis);
std::uint64_t fnv1a(const Tensor& t);

// Write-then-rename commit: `write` streams into `path + ".tmp"`, which is
// flushed + fsync'd and only then renamed over `path` (the parent directory
// is fsync'd after the rename on POSIX, making the publish itself durable).
// A reader therefore never observes a torn checkpoint, and a crash — even a
// power loss mid-write — leaves any previous checkpoint intact. If `write`
// throws, the tmp file is removed and the exception propagates; the
// destination is never touched.
bool atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& write);

}  // namespace io

// Save every parameter tensor of `extractor` to `path`. Returns false on
// I/O failure.
bool save_parameters(FeatureExtractor& extractor, const std::string& path);

// Load a checkpoint written by save_parameters into `extractor`. Returns
// false on I/O failure or if the checkpoint's parameter layout (count and
// per-parameter sizes) does not match the extractor.
bool load_parameters(FeatureExtractor& extractor, const std::string& path);

}  // namespace duo::models
