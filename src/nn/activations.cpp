#include "nn/activations.hpp"

#include <cmath>

namespace duo::nn {

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& x : out.flat()) x = x > 0.0f ? x : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(grad_output.same_shape(cached_input_),
                "ReLU: backward shape mismatch");
  Tensor grad = grad_output;
  auto g = grad.flat();
  const auto x = cached_input_.flat();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (auto& x : out.flat()) x = std::tanh(x);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(grad_output.same_shape(cached_output_),
                "Tanh: backward shape mismatch");
  Tensor grad = grad_output;
  auto g = grad.flat();
  const auto y = cached_output_.flat();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (auto& x : out.flat()) x = sigmoid_scalar(x);
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(grad_output.same_shape(cached_output_),
                "Sigmoid: backward shape mismatch");
  Tensor grad = grad_output;
  auto g = grad.flat();
  const auto y = cached_output_.flat();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= y[i] * (1.0f - y[i]);
  return grad;
}

float sigmoid_scalar(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }
float tanh_scalar(float x) noexcept { return std::tanh(x); }

Tensor Flatten::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  return input.reshaped({input.size()});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(grad_output.size() == shape_numel(cached_shape_),
                "Flatten: backward size mismatch");
  return grad_output.reshaped(cached_shape_);
}

}  // namespace duo::nn
