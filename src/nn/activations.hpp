#pragma once

#include <string>

#include "nn/module.hpp"

namespace duo::nn {

// Rectified linear unit.
class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<ReLU>();
  }
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

// Hyperbolic tangent.
class Tanh final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<Tanh>();
  }
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

// Logistic sigmoid.
class Sigmoid final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<Sigmoid>();
  }
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

// Functional forms, used by LSTM gates where module state is unnecessary.
float sigmoid_scalar(float x) noexcept;
float tanh_scalar(float x) noexcept;

// Reshape to a flat vector [numel]; backward restores the original shape.
class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<Flatten>();
  }
  std::string name() const override { return "Flatten"; }

 private:
  Tensor::Shape cached_shape_;
};

}  // namespace duo::nn
