#include "nn/compose.hpp"

namespace duo::nn {

Tensor Parallel::forward(const Tensor& input) {
  DUO_CHECK_MSG(!children_.empty(), "Parallel: no children");
  std::vector<Tensor> outs;
  outs.reserve(children_.size());
  cached_out_shapes_.clear();
  for (auto& child : children_) {
    outs.push_back(child->forward(input));
    cached_out_shapes_.push_back(outs.back().shape());
  }

  const std::size_t rank = outs.front().rank();
  std::int64_t axis0 = 0;
  for (const auto& o : outs) {
    DUO_CHECK_MSG(o.rank() == rank, "Parallel: rank mismatch across children");
    for (std::size_t a = 1; a < rank; ++a) {
      DUO_CHECK_MSG(o.shape()[a] == outs.front().shape()[a],
                    "Parallel: non-concat axis mismatch");
    }
    axis0 += o.shape()[0];
  }

  Tensor::Shape out_shape = outs.front().shape();
  out_shape[0] = axis0;
  Tensor out(out_shape);
  float* dst = out.data();
  for (const auto& o : outs) {
    const float* src = o.data();
    for (std::int64_t i = 0; i < o.size(); ++i) *dst++ = src[i];
  }
  return out;
}

Tensor Parallel::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(cached_out_shapes_.size() == children_.size(),
                "Parallel: backward before forward");
  Tensor grad_input;
  const float* src = grad_output.data();
  std::int64_t consumed = 0;
  for (std::size_t c = 0; c < children_.size(); ++c) {
    Tensor g(cached_out_shapes_[c]);
    float* dst = g.data();
    for (std::int64_t i = 0; i < g.size(); ++i) dst[i] = src[consumed + i];
    consumed += g.size();
    Tensor gi = children_[c]->backward(g);
    if (grad_input.empty()) {
      grad_input = std::move(gi);
    } else {
      grad_input += gi;
    }
  }
  DUO_CHECK_MSG(consumed == grad_output.size(),
                "Parallel: grad size mismatch");
  return grad_input;
}

std::vector<Parameter*> Parallel::parameters() {
  std::vector<Parameter*> out;
  for (auto& child : children_) {
    auto p = child->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

void Parallel::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

Tensor SpatialAvgPool::forward(const Tensor& input) {
  DUO_CHECK_MSG(input.rank() == 4, "SpatialAvgPool expects [C, T, H, W]");
  cached_input_shape_ = input.shape();
  const std::int64_t c = input.shape()[0], t = input.shape()[1];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  const float inv = 1.0f / static_cast<float>(hw);
  Tensor out({t, c});
  const float* x = input.data();
  for (std::int64_t cc = 0; cc < c; ++cc) {
    for (std::int64_t tt = 0; tt < t; ++tt) {
      const float* plane = x + (cc * t + tt) * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
      out.at(tt, cc) = static_cast<float>(acc) * inv;
    }
  }
  return out;
}

Tensor SpatialAvgPool::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(cached_input_shape_.size() == 4,
                "SpatialAvgPool: backward before forward");
  const std::int64_t c = cached_input_shape_[0], t = cached_input_shape_[1];
  const std::int64_t hw = cached_input_shape_[2] * cached_input_shape_[3];
  DUO_CHECK(grad_output.shape() == Tensor::Shape({t, c}));
  const float inv = 1.0f / static_cast<float>(hw);
  Tensor grad_input(cached_input_shape_);
  float* gx = grad_input.data();
  for (std::int64_t cc = 0; cc < c; ++cc) {
    for (std::int64_t tt = 0; tt < t; ++tt) {
      const float g = grad_output.at(tt, cc) * inv;
      float* plane = gx + (cc * t + tt) * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

Tensor TemporalMean::forward(const Tensor& input) {
  DUO_CHECK_MSG(input.rank() == 2, "TemporalMean expects [T, D]");
  cached_input_shape_ = input.shape();
  const std::int64_t t = input.shape()[0], d = input.shape()[1];
  const float inv = 1.0f / static_cast<float>(t);
  Tensor out({d});
  for (std::int64_t tt = 0; tt < t; ++tt) {
    for (std::int64_t dd = 0; dd < d; ++dd) out[dd] += input.at(tt, dd) * inv;
  }
  return out;
}

Tensor TemporalMean::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(cached_input_shape_.size() == 2,
                "TemporalMean: backward before forward");
  const std::int64_t t = cached_input_shape_[0], d = cached_input_shape_[1];
  DUO_CHECK(grad_output.size() == d);
  const float inv = 1.0f / static_cast<float>(t);
  Tensor grad_input(cached_input_shape_);
  for (std::int64_t tt = 0; tt < t; ++tt) {
    for (std::int64_t dd = 0; dd < d; ++dd) {
      grad_input.at(tt, dd) = grad_output[dd] * inv;
    }
  }
  return grad_input;
}

}  // namespace duo::nn
