#pragma once

// Composition modules for multi-path architectures (MiniI3D's inception-style
// branches, MiniSlowFast's dual pathways, MiniTPN's temporal pyramid).

#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace duo::nn {

// Applies each child to the same input and concatenates the outputs along
// axis 0. Children must produce outputs that agree on all axes except 0:
// rank-4 [C, T, H, W] activations (channel concat) or rank-1 [D] feature
// vectors (vector concat). Backward splits the gradient back per child.
class Parallel final : public Module {
 public:
  Parallel() = default;

  Parallel& add(std::unique_ptr<Module> m) {
    children_.push_back(std::move(m));
    return *this;
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void set_training(bool training) override;
  std::unique_ptr<Module> clone() const override {
    auto copy = std::make_unique<Parallel>();
    for (const auto& child : children_) {
      auto c = child->clone();
      if (!c) return nullptr;
      copy->add(std::move(c));
    }
    copy->set_training(training());
    return copy;
  }
  std::string name() const override { return "Parallel"; }

 private:
  std::vector<std::unique_ptr<Module>> children_;
  std::vector<Tensor::Shape> cached_out_shapes_;
};

// Spatial-only average pooling: [C, T, H, W] → [T, C]. Bridges convolutional
// backbones into sequence models (the LSTM retrieval backbone of Fig. 1).
class SpatialAvgPool final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<SpatialAvgPool>();
  }
  std::string name() const override { return "SpatialAvgPool"; }

 private:
  Tensor::Shape cached_input_shape_;
};

// Mean over the time axis: [T, D] → [D].
class TemporalMean final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<TemporalMean>();
  }
  std::string name() const override { return "TemporalMean"; }

 private:
  Tensor::Shape cached_input_shape_;
};

}  // namespace duo::nn
