#include "nn/conv3d.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "common/thread_pool.hpp"
#include "nn/gemm.hpp"
#include "nn/init.hpp"

namespace duo::nn {

namespace {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  const std::int64_t out = (in + 2 * p - k) / s + 1;
  DUO_CHECK_MSG(out > 0, "Conv3d: non-positive output dimension");
  return out;
}

Conv3dKernel kernel_from_env() noexcept {
  const char* v = std::getenv("DUO_CONV3D_KERNEL");
  if (v != nullptr) {
    const std::string_view s(v);
    if (s == "direct" || s == "reference") return Conv3dKernel::kDirect;
  }
  return Conv3dKernel::kGemm;
}

// kAuto encodes "not yet resolved"; first read resolves from the env.
std::atomic<Conv3dKernel> g_default_kernel{Conv3dKernel::kAuto};

}  // namespace

const char* conv3d_kernel_name(Conv3dKernel kernel) noexcept {
  switch (kernel) {
    case Conv3dKernel::kAuto: return "auto";
    case Conv3dKernel::kDirect: return "direct";
    case Conv3dKernel::kGemm: return "gemm";
  }
  return "?";
}

Conv3dKernel default_conv3d_kernel() noexcept {
  Conv3dKernel k = g_default_kernel.load(std::memory_order_relaxed);
  if (k == Conv3dKernel::kAuto) {
    k = kernel_from_env();
    g_default_kernel.store(k, std::memory_order_relaxed);
  }
  return k;
}

void set_default_conv3d_kernel(Conv3dKernel kernel) noexcept {
  g_default_kernel.store(kernel == Conv3dKernel::kAuto ? kernel_from_env()
                                                       : kernel,
                         std::memory_order_relaxed);
}

Conv3d::Conv3d(Conv3dSpec spec, Rng& rng)
    : spec_(spec),
      weight_(kaiming_uniform(
          {spec.out_channels, spec.in_channels, spec.kernel[0], spec.kernel[1],
           spec.kernel[2]},
          spec.in_channels * spec.kernel[0] * spec.kernel[1] * spec.kernel[2],
          rng)),
      bias_(Tensor({spec.out_channels})) {
  DUO_CHECK(spec.in_channels > 0 && spec.out_channels > 0);
  for (int a = 0; a < 3; ++a) {
    DUO_CHECK(spec.kernel[a] > 0 && spec.stride[a] > 0 && spec.padding[a] >= 0);
  }
}

Conv3d::Conv3d(Conv3dSpec spec, Uninitialized)
    : spec_(spec),
      weight_(Tensor({spec.out_channels, spec.in_channels, spec.kernel[0],
                      spec.kernel[1], spec.kernel[2]})),
      bias_(Tensor({spec.out_channels})) {}

Conv3dKernel Conv3d::resolved_kernel() const noexcept {
  return spec_.kernel_impl == Conv3dKernel::kAuto ? default_conv3d_kernel()
                                                  : spec_.kernel_impl;
}

Im2colGeom Conv3d::make_geom(const Tensor::Shape& in,
                             const Tensor::Shape& out) const noexcept {
  Im2colGeom g;
  g.cin = spec_.in_channels;
  g.ti = in[1];
  g.hi = in[2];
  g.wi = in[3];
  g.kernel = spec_.kernel;
  g.stride = spec_.stride;
  g.padding = spec_.padding;
  g.to = out[1];
  g.ho = out[2];
  g.wo = out[3];
  return g;
}

Tensor::Shape Conv3d::output_shape(const Tensor::Shape& in) const {
  DUO_CHECK_MSG(in.size() == 4, "Conv3d expects [C, T, H, W]");
  DUO_CHECK_MSG(in[0] == spec_.in_channels, "Conv3d: channel mismatch");
  return {spec_.out_channels,
          conv_out_dim(in[1], spec_.kernel[0], spec_.stride[0], spec_.padding[0]),
          conv_out_dim(in[2], spec_.kernel[1], spec_.stride[1], spec_.padding[1]),
          conv_out_dim(in[3], spec_.kernel[2], spec_.stride[2], spec_.padding[2])};
}

Tensor Conv3d::forward(const Tensor& input) {
  const auto out_shape = output_shape(input.shape());
  cached_input_ = input;
  forward_kernel_ = resolved_kernel();
  if (forward_kernel_ == Conv3dKernel::kGemm) {
    return forward_gemm(input, out_shape);
  }
  cached_cols_ = Tensor();
  return forward_direct(input, out_shape);
}

Tensor Conv3d::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(!cached_input_.empty(), "Conv3d: backward before forward");
  const auto out_shape = output_shape(cached_input_.shape());
  DUO_CHECK_MSG(grad_output.shape() == out_shape,
                "Conv3d: grad_output shape mismatch");
  // Backward must consume the caches the matching forward produced, so the
  // kernel resolved at forward time wins over any default flipped since.
  if (forward_kernel_ == Conv3dKernel::kGemm) {
    return backward_gemm(grad_output, out_shape);
  }
  return backward_direct(grad_output, out_shape);
}

// ---------------------------------------------------------------------------
// im2col + GEMM kernel
// ---------------------------------------------------------------------------

Tensor Conv3d::forward_gemm(const Tensor& input,
                            const Tensor::Shape& out_shape) {
  const Im2colGeom g = make_geom(input.shape(), out_shape);
  cached_cols_ = Tensor({g.rows(), g.cols()});
  im2col(g, input.data(), cached_cols_.data());

  // Seed each output row with its bias (the reference kernel starts every
  // accumulator at the bias), then Y += W·cols. The im2col row order equals
  // the reference kernel's tap order, so every output element accumulates
  // the same chain in the same order: forward is bitwise-reproducible
  // against the direct kernel on real (finite) inputs.
  Tensor out(out_shape);
  const std::int64_t n = g.cols();
  if (spec_.bias) {
    float* y = out.data();
    for (std::int64_t co = 0; co < spec_.out_channels; ++co) {
      const float b = bias_.value[co];
      for (std::int64_t i = 0; i < n; ++i) y[co * n + i] = b;
    }
  }
  gemm_accumulate(spec_.out_channels, g.rows(), n, weight_.value.data(),
                  cached_cols_.data(), out.data());
  return out;
}

Tensor Conv3d::backward_gemm(const Tensor& grad_output,
                             const Tensor::Shape& out_shape) {
  DUO_CHECK_MSG(!cached_cols_.empty(), "Conv3d: gemm backward without cols");
  const Im2colGeom g = make_geom(cached_input_.shape(), out_shape);
  const std::int64_t cout = spec_.out_channels;
  const std::int64_t k = g.rows(), n = g.cols();
  const float* gy = grad_output.data();

  // Bias: accumulate each channel's grad_output row in column order — the
  // same order the reference kernel adds them.
  if (spec_.bias) {
    float* gb = bias_.grad.data();
    for (std::int64_t co = 0; co < cout; ++co) {
      float acc = gb[co];
      const float* grow = gy + co * n;
      for (std::int64_t i = 0; i < n; ++i) acc += grow[i];
      gb[co] = acc;
    }
  }

  // Weight grad as its transpose: gwT[K, Cout] += cols[K, N] · gyT[N, Cout].
  // Working in the transposed layout lets the GEMM vectorize over Cout while
  // each gw element still accumulates over output positions in increasing
  // order, seeded from the existing gradient — the reference kernel's chain.
  {
    Tensor gyt({n, cout});
    float* t = gyt.data();
    for (std::int64_t co = 0; co < cout; ++co) {
      for (std::int64_t i = 0; i < n; ++i) t[i * cout + co] = gy[co * n + i];
    }
    Tensor gwt({k, cout});
    float* wt = gwt.data();
    const float* gw = weight_.grad.data();
    for (std::int64_t co = 0; co < cout; ++co) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        wt[kk * cout + co] = gw[co * k + kk];
      }
    }
    gemm_accumulate(k, n, cout, cached_cols_.data(), gyt.data(), gwt.data());
    float* gw_out = weight_.grad.data();
    for (std::int64_t co = 0; co < cout; ++co) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        gw_out[co * k + kk] = wt[kk * cout + co];
      }
    }
  }

  // Input grad: cols_grad[K, N] = Wᵀ[K, Cout] · gy[Cout, N], scattered back
  // through col2im. This reassociates the reduction relative to the direct
  // kernel (sum over channels happens before the tap scatter), so gx is
  // numerically equivalent but not bitwise identical to the reference —
  // while remaining bitwise deterministic across thread counts.
  Tensor wt({k, cout});
  {
    const float* w = weight_.value.data();
    float* t = wt.data();
    for (std::int64_t co = 0; co < cout; ++co) {
      for (std::int64_t kk = 0; kk < k; ++kk) t[kk * cout + co] = w[co * k + kk];
    }
  }
  Tensor cols_grad({k, n});
  gemm_accumulate(k, cout, n, wt.data(), gy, cols_grad.data());
  Tensor grad_input(cached_input_.shape());
  col2im_accumulate(g, cols_grad.data(), grad_input.data());
  return grad_input;
}

// ---------------------------------------------------------------------------
// Direct (reference) kernel
// ---------------------------------------------------------------------------

Tensor Conv3d::forward_direct(const Tensor& input,
                              const Tensor::Shape& out_shape) {
  const std::int64_t cin = spec_.in_channels, cout = spec_.out_channels;
  const std::int64_t ti = input.shape()[1], hi = input.shape()[2],
                     wi = input.shape()[3];
  const std::int64_t to = out_shape[1], ho = out_shape[2], wo = out_shape[3];
  const auto [kt, kh, kw] = spec_.kernel;
  const auto [st, sh, sw] = spec_.stride;
  const auto [pt, ph, pw] = spec_.padding;

  Tensor out(out_shape);
  const float* x = input.data();
  const float* w = weight_.value.data();
  float* y = out.data();

  // Each output channel owns a disjoint slice of y and is computed in the
  // same inner order regardless of which thread runs it, so the result is
  // bitwise identical across thread counts (including serial).
  compute_pool().parallel_for(
      static_cast<std::size_t>(cout), [&](std::size_t co_idx) {
    const auto co = static_cast<std::int64_t>(co_idx);
    const float b = spec_.bias ? bias_.value[co] : 0.0f;
    for (std::int64_t ot = 0; ot < to; ++ot) {
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow) {
          float acc = b;
          for (std::int64_t ci = 0; ci < cin; ++ci) {
            const float* wc = w + (((co * cin + ci) * kt) * kh * kw);
            const float* xc = x + ci * ti * hi * wi;
            for (std::int64_t dt = 0; dt < kt; ++dt) {
              const std::int64_t it = ot * st - pt + dt;
              if (it < 0 || it >= ti) continue;
              for (std::int64_t dh = 0; dh < kh; ++dh) {
                const std::int64_t ih = oh * sh - ph + dh;
                if (ih < 0 || ih >= hi) continue;
                const float* xrow = xc + (it * hi + ih) * wi;
                const float* wrow = wc + (dt * kh + dh) * kw;
                for (std::int64_t dw = 0; dw < kw; ++dw) {
                  const std::int64_t iw = ow * sw - pw + dw;
                  if (iw < 0 || iw >= wi) continue;
                  acc += wrow[dw] * xrow[iw];
                }
              }
            }
          }
          y[((co * to + ot) * ho + oh) * wo + ow] = acc;
        }
      }
    }
  });
  return out;
}

Tensor Conv3d::backward_direct(const Tensor& grad_output,
                               const Tensor::Shape& out_shape) {
  const std::int64_t cin = spec_.in_channels, cout = spec_.out_channels;
  const std::int64_t ti = cached_input_.shape()[1],
                     hi = cached_input_.shape()[2],
                     wi = cached_input_.shape()[3];
  const std::int64_t to = out_shape[1], ho = out_shape[2], wo = out_shape[3];
  const auto [kt, kh, kw] = spec_.kernel;
  const auto [st, sh, sw] = spec_.stride;
  const auto [pt, ph, pw] = spec_.padding;

  Tensor grad_input(cached_input_.shape());
  const float* x = cached_input_.data();
  const float* w = weight_.value.data();
  const float* gy = grad_output.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  float* gx = grad_input.data();

  // Two passes, each sharded so that every accumulated address is owned by
  // exactly one shard and accumulated in the same order as the serial loop:
  // weight/bias grads are disjoint per output channel, input grads are
  // disjoint per input channel. Results are therefore bitwise identical
  // across thread counts.
  compute_pool().parallel_for(
      static_cast<std::size_t>(cout), [&](std::size_t co_idx) {
    const auto co = static_cast<std::int64_t>(co_idx);
    for (std::int64_t ot = 0; ot < to; ++ot) {
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow) {
          const float g = gy[((co * to + ot) * ho + oh) * wo + ow];
          if (g == 0.0f) continue;
          if (spec_.bias) gb[co] += g;
          for (std::int64_t ci = 0; ci < cin; ++ci) {
            float* gwc = gw + (((co * cin + ci) * kt) * kh * kw);
            const float* xc = x + ci * ti * hi * wi;
            for (std::int64_t dt = 0; dt < kt; ++dt) {
              const std::int64_t it = ot * st - pt + dt;
              if (it < 0 || it >= ti) continue;
              for (std::int64_t dh = 0; dh < kh; ++dh) {
                const std::int64_t ih = oh * sh - ph + dh;
                if (ih < 0 || ih >= hi) continue;
                const float* xrow = xc + (it * hi + ih) * wi;
                float* gwrow = gwc + (dt * kh + dh) * kw;
                for (std::int64_t dw = 0; dw < kw; ++dw) {
                  const std::int64_t iw = ow * sw - pw + dw;
                  if (iw < 0 || iw >= wi) continue;
                  gwrow[dw] += g * xrow[iw];
                }
              }
            }
          }
        }
      }
    }
  });

  compute_pool().parallel_for(
      static_cast<std::size_t>(cin), [&](std::size_t ci_idx) {
    const auto ci = static_cast<std::int64_t>(ci_idx);
    float* gxc = gx + ci * ti * hi * wi;
    for (std::int64_t co = 0; co < cout; ++co) {
      const float* wc = w + (((co * cin + ci) * kt) * kh * kw);
      for (std::int64_t ot = 0; ot < to; ++ot) {
        for (std::int64_t oh = 0; oh < ho; ++oh) {
          for (std::int64_t ow = 0; ow < wo; ++ow) {
            const float g = gy[((co * to + ot) * ho + oh) * wo + ow];
            if (g == 0.0f) continue;
            for (std::int64_t dt = 0; dt < kt; ++dt) {
              const std::int64_t it = ot * st - pt + dt;
              if (it < 0 || it >= ti) continue;
              for (std::int64_t dh = 0; dh < kh; ++dh) {
                const std::int64_t ih = oh * sh - ph + dh;
                if (ih < 0 || ih >= hi) continue;
                float* gxrow = gxc + (it * hi + ih) * wi;
                const float* wrow = wc + (dt * kh + dh) * kw;
                for (std::int64_t dw = 0; dw < kw; ++dw) {
                  const std::int64_t iw = ow * sw - pw + dw;
                  if (iw < 0 || iw >= wi) continue;
                  gxrow[iw] += g * wrow[dw];
                }
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

std::vector<Parameter*> Conv3d::parameters() {
  if (spec_.bias) return {&weight_, &bias_};
  return {&weight_};
}

std::unique_ptr<Module> Conv3d::clone() const {
  // Uninitialized construction: no point drawing a kaiming init that the
  // copies below immediately overwrite (clones happen once per worker on
  // every parallel extract/train launch).
  auto copy = std::unique_ptr<Conv3d>(new Conv3d(spec_, Uninitialized{}));
  copy->weight_.value = weight_.value;
  copy->bias_.value = bias_.value;
  copy->set_training(training());
  return copy;
}

}  // namespace duo::nn
