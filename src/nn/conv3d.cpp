#include "nn/conv3d.hpp"

#include "common/thread_pool.hpp"
#include "nn/init.hpp"

namespace duo::nn {

namespace {
std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t s,
                          std::int64_t p) {
  const std::int64_t out = (in + 2 * p - k) / s + 1;
  DUO_CHECK_MSG(out > 0, "Conv3d: non-positive output dimension");
  return out;
}
}  // namespace

Conv3d::Conv3d(Conv3dSpec spec, Rng& rng)
    : spec_(spec),
      weight_(kaiming_uniform(
          {spec.out_channels, spec.in_channels, spec.kernel[0], spec.kernel[1],
           spec.kernel[2]},
          spec.in_channels * spec.kernel[0] * spec.kernel[1] * spec.kernel[2],
          rng)),
      bias_(Tensor({spec.out_channels})) {
  DUO_CHECK(spec.in_channels > 0 && spec.out_channels > 0);
  for (int a = 0; a < 3; ++a) {
    DUO_CHECK(spec.kernel[a] > 0 && spec.stride[a] > 0 && spec.padding[a] >= 0);
  }
}

Tensor::Shape Conv3d::output_shape(const Tensor::Shape& in) const {
  DUO_CHECK_MSG(in.size() == 4, "Conv3d expects [C, T, H, W]");
  DUO_CHECK_MSG(in[0] == spec_.in_channels, "Conv3d: channel mismatch");
  return {spec_.out_channels,
          conv_out_dim(in[1], spec_.kernel[0], spec_.stride[0], spec_.padding[0]),
          conv_out_dim(in[2], spec_.kernel[1], spec_.stride[1], spec_.padding[1]),
          conv_out_dim(in[3], spec_.kernel[2], spec_.stride[2], spec_.padding[2])};
}

Tensor Conv3d::forward(const Tensor& input) {
  const auto out_shape = output_shape(input.shape());
  cached_input_ = input;

  const std::int64_t cin = spec_.in_channels, cout = spec_.out_channels;
  const std::int64_t ti = input.shape()[1], hi = input.shape()[2],
                     wi = input.shape()[3];
  const std::int64_t to = out_shape[1], ho = out_shape[2], wo = out_shape[3];
  const auto [kt, kh, kw] = spec_.kernel;
  const auto [st, sh, sw] = spec_.stride;
  const auto [pt, ph, pw] = spec_.padding;

  Tensor out(out_shape);
  const float* x = input.data();
  const float* w = weight_.value.data();
  float* y = out.data();

  // Each output channel owns a disjoint slice of y and is computed in the
  // same inner order regardless of which thread runs it, so the result is
  // bitwise identical across thread counts (including serial).
  compute_pool().parallel_for(
      static_cast<std::size_t>(cout), [&](std::size_t co_idx) {
    const auto co = static_cast<std::int64_t>(co_idx);
    const float b = spec_.bias ? bias_.value[co] : 0.0f;
    for (std::int64_t ot = 0; ot < to; ++ot) {
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow) {
          float acc = b;
          for (std::int64_t ci = 0; ci < cin; ++ci) {
            const float* wc = w + (((co * cin + ci) * kt) * kh * kw);
            const float* xc = x + ci * ti * hi * wi;
            for (std::int64_t dt = 0; dt < kt; ++dt) {
              const std::int64_t it = ot * st - pt + dt;
              if (it < 0 || it >= ti) continue;
              for (std::int64_t dh = 0; dh < kh; ++dh) {
                const std::int64_t ih = oh * sh - ph + dh;
                if (ih < 0 || ih >= hi) continue;
                const float* xrow = xc + (it * hi + ih) * wi;
                const float* wrow = wc + (dt * kh + dh) * kw;
                for (std::int64_t dw = 0; dw < kw; ++dw) {
                  const std::int64_t iw = ow * sw - pw + dw;
                  if (iw < 0 || iw >= wi) continue;
                  acc += wrow[dw] * xrow[iw];
                }
              }
            }
          }
          y[((co * to + ot) * ho + oh) * wo + ow] = acc;
        }
      }
    }
  });
  return out;
}

Tensor Conv3d::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(!cached_input_.empty(), "Conv3d: backward before forward");
  const auto out_shape = output_shape(cached_input_.shape());
  DUO_CHECK_MSG(grad_output.shape() == out_shape,
                "Conv3d: grad_output shape mismatch");

  const std::int64_t cin = spec_.in_channels, cout = spec_.out_channels;
  const std::int64_t ti = cached_input_.shape()[1],
                     hi = cached_input_.shape()[2],
                     wi = cached_input_.shape()[3];
  const std::int64_t to = out_shape[1], ho = out_shape[2], wo = out_shape[3];
  const auto [kt, kh, kw] = spec_.kernel;
  const auto [st, sh, sw] = spec_.stride;
  const auto [pt, ph, pw] = spec_.padding;

  Tensor grad_input(cached_input_.shape());
  const float* x = cached_input_.data();
  const float* w = weight_.value.data();
  const float* gy = grad_output.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  float* gx = grad_input.data();

  // Two passes, each sharded so that every accumulated address is owned by
  // exactly one shard and accumulated in the same order as the serial loop:
  // weight/bias grads are disjoint per output channel, input grads are
  // disjoint per input channel. Results are therefore bitwise identical
  // across thread counts.
  compute_pool().parallel_for(
      static_cast<std::size_t>(cout), [&](std::size_t co_idx) {
    const auto co = static_cast<std::int64_t>(co_idx);
    for (std::int64_t ot = 0; ot < to; ++ot) {
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow) {
          const float g = gy[((co * to + ot) * ho + oh) * wo + ow];
          if (g == 0.0f) continue;
          if (spec_.bias) gb[co] += g;
          for (std::int64_t ci = 0; ci < cin; ++ci) {
            float* gwc = gw + (((co * cin + ci) * kt) * kh * kw);
            const float* xc = x + ci * ti * hi * wi;
            for (std::int64_t dt = 0; dt < kt; ++dt) {
              const std::int64_t it = ot * st - pt + dt;
              if (it < 0 || it >= ti) continue;
              for (std::int64_t dh = 0; dh < kh; ++dh) {
                const std::int64_t ih = oh * sh - ph + dh;
                if (ih < 0 || ih >= hi) continue;
                const float* xrow = xc + (it * hi + ih) * wi;
                float* gwrow = gwc + (dt * kh + dh) * kw;
                for (std::int64_t dw = 0; dw < kw; ++dw) {
                  const std::int64_t iw = ow * sw - pw + dw;
                  if (iw < 0 || iw >= wi) continue;
                  gwrow[dw] += g * xrow[iw];
                }
              }
            }
          }
        }
      }
    }
  });

  compute_pool().parallel_for(
      static_cast<std::size_t>(cin), [&](std::size_t ci_idx) {
    const auto ci = static_cast<std::int64_t>(ci_idx);
    float* gxc = gx + ci * ti * hi * wi;
    for (std::int64_t co = 0; co < cout; ++co) {
      const float* wc = w + (((co * cin + ci) * kt) * kh * kw);
      for (std::int64_t ot = 0; ot < to; ++ot) {
        for (std::int64_t oh = 0; oh < ho; ++oh) {
          for (std::int64_t ow = 0; ow < wo; ++ow) {
            const float g = gy[((co * to + ot) * ho + oh) * wo + ow];
            if (g == 0.0f) continue;
            for (std::int64_t dt = 0; dt < kt; ++dt) {
              const std::int64_t it = ot * st - pt + dt;
              if (it < 0 || it >= ti) continue;
              for (std::int64_t dh = 0; dh < kh; ++dh) {
                const std::int64_t ih = oh * sh - ph + dh;
                if (ih < 0 || ih >= hi) continue;
                float* gxrow = gxc + (it * hi + ih) * wi;
                const float* wrow = wc + (dt * kh + dh) * kw;
                for (std::int64_t dw = 0; dw < kw; ++dw) {
                  const std::int64_t iw = ow * sw - pw + dw;
                  if (iw < 0 || iw >= wi) continue;
                  gxrow[iw] += g * wrow[dw];
                }
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

std::vector<Parameter*> Conv3d::parameters() {
  if (spec_.bias) return {&weight_, &bias_};
  return {&weight_};
}

std::unique_ptr<Module> Conv3d::clone() const {
  Rng rng(0);  // the freshly initialized weights are overwritten below
  auto copy = std::make_unique<Conv3d>(spec_, rng);
  copy->weight_.value = weight_.value;
  copy->bias_.value = bias_.value;
  copy->set_training(training());
  return copy;
}

}  // namespace duo::nn
