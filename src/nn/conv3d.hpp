#pragma once

#include <array>
#include <string>

#include "nn/module.hpp"

namespace duo::nn {

// 3D convolution over [C, T, H, W] activations with zero padding.
//
// A temporal kernel size of 1 makes this a per-frame 2D convolution, which is
// how the MiniResNet models (2D backbone + temporal pooling) are expressed
// without a separate Conv2d implementation.
struct Conv3dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::array<std::int64_t, 3> kernel = {3, 3, 3};   // {kt, kh, kw}
  std::array<std::int64_t, 3> stride = {1, 1, 1};   // {st, sh, sw}
  std::array<std::int64_t, 3> padding = {1, 1, 1};  // {pt, ph, pw}
  bool bias = true;
};

class Conv3d final : public Module {
 public:
  Conv3d(Conv3dSpec spec, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override { return "Conv3d"; }

  const Conv3dSpec& spec() const noexcept { return spec_; }

  // Output shape for a given input shape (also validates the input shape).
  Tensor::Shape output_shape(const Tensor::Shape& input_shape) const;

 private:
  Conv3dSpec spec_;
  Parameter weight_;  // [Cout, Cin, kt, kh, kw]
  Parameter bias_;    // [Cout] (unused storage when spec_.bias == false)
  Tensor cached_input_;
};

}  // namespace duo::nn
