#pragma once

#include <array>
#include <string>

#include "nn/im2col.hpp"
#include "nn/module.hpp"

namespace duo::nn {

// Which Conv3d implementation executes forward/backward.
//
//  - kDirect: the scalar reference kernel (nested tap loops, parallel over
//    output/input channels). Kept for verification: the gradient checker and
//    the determinism suite compare the fast path against it.
//  - kGemm:   im2col + register/cache-blocked GEMM (see nn/gemm.hpp),
//    parallelized over row×column blocks of the output matrix. The forward
//    accumulates each output element in the same tap order as the reference
//    kernel, so forward features (and therefore retrieval lists) reproduce
//    the reference kernel exactly on real inputs; backward reassociates the
//    input-gradient reduction (im2col scatter) and is numerically equivalent
//    but not bitwise. Both kernels are bitwise deterministic across thread
//    counts.
//  - kAuto:   resolve via the process default (DUO_CONV3D_KERNEL env or
//    set_default_conv3d_kernel); defaults to kGemm.
enum class Conv3dKernel { kAuto, kDirect, kGemm };

const char* conv3d_kernel_name(Conv3dKernel kernel) noexcept;

// Process-wide default used by specs that leave kernel_impl = kAuto.
// Initialized lazily from DUO_CONV3D_KERNEL ("direct" or "gemm"; anything
// else, including unset, selects gemm). The setter overrides the env value
// (passing kAuto re-reads the env); it is not synchronized against kernels
// already running on other threads.
Conv3dKernel default_conv3d_kernel() noexcept;
void set_default_conv3d_kernel(Conv3dKernel kernel) noexcept;

// 3D convolution over [C, T, H, W] activations with zero padding.
//
// A temporal kernel size of 1 makes this a per-frame 2D convolution, which is
// how the MiniResNet models (2D backbone + temporal pooling) are expressed
// without a separate Conv2d implementation.
struct Conv3dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::array<std::int64_t, 3> kernel = {3, 3, 3};   // {kt, kh, kw}
  std::array<std::int64_t, 3> stride = {1, 1, 1};   // {st, sh, sw}
  std::array<std::int64_t, 3> padding = {1, 1, 1};  // {pt, ph, pw}
  bool bias = true;
  Conv3dKernel kernel_impl = Conv3dKernel::kAuto;
};

class Conv3d final : public Module {
 public:
  Conv3d(Conv3dSpec spec, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override { return "Conv3d"; }

  const Conv3dSpec& spec() const noexcept { return spec_; }

  // Output shape for a given input shape (also validates the input shape).
  Tensor::Shape output_shape(const Tensor::Shape& input_shape) const;

 private:
  // Tag for the clone path: allocate parameter storage without drawing the
  // kaiming init from an Rng (the values are overwritten right after).
  struct Uninitialized {};
  Conv3d(Conv3dSpec spec, Uninitialized);

  Conv3dKernel resolved_kernel() const noexcept;
  Im2colGeom make_geom(const Tensor::Shape& in,
                       const Tensor::Shape& out) const noexcept;

  Tensor forward_direct(const Tensor& input, const Tensor::Shape& out_shape);
  Tensor forward_gemm(const Tensor& input, const Tensor::Shape& out_shape);
  Tensor backward_direct(const Tensor& grad_output,
                         const Tensor::Shape& out_shape);
  Tensor backward_gemm(const Tensor& grad_output,
                       const Tensor::Shape& out_shape);

  Conv3dSpec spec_;
  Parameter weight_;  // [Cout, Cin, kt, kh, kw]
  Parameter bias_;    // [Cout] (unused storage when spec_.bias == false)
  Tensor cached_input_;
  Tensor cached_cols_;  // im2col patch matrix (kGemm forwards only)
  Conv3dKernel forward_kernel_ = Conv3dKernel::kAuto;  // kernel of last forward
};

}  // namespace duo::nn
