#include "nn/gemm.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace duo::nn {

namespace {

// Tile shape of the accumulator panel. kRowBlock × kColBlock floats live on
// the stack (8 KB), small enough for L1 while giving the vectorizer a long
// contiguous j loop; each B row is loaded once per tile and reused across all
// kRowBlock rows.
constexpr std::int64_t kRowBlock = 16;
constexpr std::int64_t kColBlock = 128;

}  // namespace

void gemm_accumulate(std::int64_t m, std::int64_t k, std::int64_t n,
                     const float* a, const float* b, float* c) {
  DUO_CHECK_MSG(m >= 0 && k >= 0 && n >= 0, "gemm: negative dimension");
  if (m == 0 || n == 0 || k == 0) return;

  const std::int64_t row_tiles = (m + kRowBlock - 1) / kRowBlock;
  const std::int64_t col_tiles = (n + kColBlock - 1) / kColBlock;

  compute_pool().parallel_for(
      static_cast<std::size_t>(row_tiles * col_tiles), [&](std::size_t t) {
    const std::int64_t i0 =
        (static_cast<std::int64_t>(t) / col_tiles) * kRowBlock;
    const std::int64_t j0 =
        (static_cast<std::int64_t>(t) % col_tiles) * kColBlock;
    const std::int64_t ib = std::min(kRowBlock, m - i0);
    const std::int64_t jb = std::min(kColBlock, n - j0);

    float acc[kRowBlock][kColBlock];
    for (std::int64_t r = 0; r < ib; ++r) {
      const float* crow = c + (i0 + r) * n + j0;
      for (std::int64_t j = 0; j < jb; ++j) acc[r][j] = crow[j];
    }
    // kk outer / row inner: each B row is read once per tile and applied to
    // every accumulator row while hot. Per-element chains still advance in
    // strict kk order (one fused multiply-add per kk), which is what makes
    // the result independent of the tiling.
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * n + j0;
      for (std::int64_t r = 0; r < ib; ++r) {
        const float av = a[(i0 + r) * k + kk];
        float* ar = acc[r];
        for (std::int64_t j = 0; j < jb; ++j) ar[j] += av * brow[j];
      }
    }
    for (std::int64_t r = 0; r < ib; ++r) {
      float* crow = c + (i0 + r) * n + j0;
      for (std::int64_t j = 0; j < jb; ++j) crow[j] = acc[r][j];
    }
  });
}

}  // namespace duo::nn
