#pragma once

// Register/cache-blocked single-precision GEMM for the im2col convolution
// path: C[m×n] += A[m×k]·B[k×n], all row-major.
//
// Determinism contract: every C element's accumulation chain starts from the
// value already in C and adds the k products in strictly increasing k order,
// regardless of tiling or thread count. Tiles partition C disjointly, so the
// result is bitwise identical across DUO_THREADS counts — and matches any
// scalar loop that accumulates the same chain in the same order (the direct
// Conv3d kernel's order, by construction of the im2col row layout).
//
// Callers seed C with the additive term (bias rows, an existing gradient to
// accumulate into, or zeros) before the call.

#include <cstdint>

namespace duo::nn {

// C += A·B with the per-element ordering contract above. Parallelized over
// row×column blocks of C on the compute pool; the inner kernel keeps a
// register-blocked accumulator panel and streams each B row across all rows
// of the tile, vectorizing over columns.
void gemm_accumulate(std::int64_t m, std::int64_t k, std::int64_t n,
                     const float* a, const float* b, float* c);

}  // namespace duo::nn
