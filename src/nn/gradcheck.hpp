#pragma once

// Numerical gradient checking.
//
// Two layers of tooling:
//  - numerical_gradient / gradient_max_relative_error: building blocks for
//    ad-hoc per-layer checks (losses, LSTM internals, property tests).
//  - CheckGrad: a dynet-style harness that sweeps every parameter *and* the
//    input of a Module against central finite differences under a fixed
//    scalar objective, and reports the coordinates whose relative error is
//    an outlier. Every layer and every full extractor architecture is run
//    through it in tests/test_gradcheck.cpp; it is the gate that makes
//    aggressive kernel work (the im2col/GEMM Conv3d path) safe to land.

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace duo::nn {

// Central-difference gradient of a scalar function at `x`.
inline Tensor numerical_gradient(const std::function<double(const Tensor&)>& f,
                                 const Tensor& x, float eps = 1e-3f) {
  Tensor grad(x.shape());
  Tensor probe = x;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const float orig = probe[i];
    probe[i] = orig + eps;
    const double up = f(probe);
    probe[i] = orig - eps;
    const double down = f(probe);
    probe[i] = orig;
    grad[i] = static_cast<float>((up - down) / (2.0 * eps));
  }
  return grad;
}

// Worst per-coordinate deviation between analytic and numerical gradients,
// dynet-style: |a − n| relative to max(|a|, |n|). Deviations at or below
// `abs_tolerance` are ignored outright — that is the escape hatch for
// coordinates where both gradients sit in the finite-difference noise floor
// (float32 forward evaluated at eps ~ 1e-3 resolves gradients down to
// roughly 1e-4; anything smaller is indistinguishable from zero). Unlike the
// old fixed 1e-2 scale floor, a genuinely wrong gradient of magnitude ~1e-3
// now shows up as a large relative error instead of being silently scaled
// away.
inline double gradient_max_relative_error(const Tensor& analytic,
                                          const Tensor& numerical,
                                          double abs_tolerance = 2e-4) {
  double worst = 0.0;
  for (std::int64_t i = 0; i < analytic.size(); ++i) {
    const double a = analytic[i];
    const double n = numerical[i];
    const double diff = std::abs(a - n);
    if (diff <= abs_tolerance) continue;
    worst = std::max(worst, diff / std::max(std::abs(a), std::abs(n)));
  }
  return worst;
}

struct CheckGradConfig {
  float eps = 1e-3f;            // central-difference step
  double tolerance = 2e-2;      // max relative error before a coordinate flags
  double abs_tolerance = 2e-4;  // noise-floor escape hatch (see above)
  std::uint64_t seed = 42;      // input and objective-weight draws
  // Coordinates probed per tensor: 0 sweeps every coordinate (per-layer
  // tests); a positive value probes a deterministic stride-spread subset
  // (full architectures, where a complete sweep costs two forwards per
  // scalar parameter).
  std::int64_t max_probes_per_tensor = 0;
  bool check_input = true;
  bool check_parameters = true;
};

struct CheckGradOutlier {
  std::string tensor;  // "input" or "param[i] size=N"
  std::int64_t index = 0;
  double analytic = 0.0;
  double numerical = 0.0;
  double relative_error = 0.0;
};

struct CheckGradReport {
  bool ok = true;
  std::int64_t coordinates_checked = 0;
  std::vector<CheckGradOutlier> outliers;

  std::string summary() const {
    std::ostringstream os;
    if (ok) {
      os << "CheckGrad OK: " << coordinates_checked << " coordinates";
      return os.str();
    }
    os << "CheckGrad FAILED: " << outliers.size() << " outlier(s) over "
       << coordinates_checked << " coordinates";
    const std::size_t shown = std::min<std::size_t>(outliers.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      const auto& o = outliers[i];
      os << "\n  " << o.tensor << "[" << o.index << "]: analytic "
         << o.analytic << " vs numerical " << o.numerical << " (rel "
         << o.relative_error << ")";
    }
    if (outliers.size() > shown) os << "\n  ...";
    return os.str();
  }
};

namespace detail {

// Probes a single tensor (the module input or one parameter value) against
// central differences of `objective`, appending outliers to the report.
// `objective` must re-run the module forward and return the scalar loss;
// `read_analytic(i)` returns the analytic gradient coordinate.
template <typename Objective, typename ReadAnalytic>
void checkgrad_sweep_tensor(Tensor& values, const std::string& label,
                            const CheckGradConfig& cfg,
                            const Objective& objective,
                            const ReadAnalytic& read_analytic,
                            CheckGradReport& report) {
  const std::int64_t size = values.size();
  if (size == 0) return;
  const std::int64_t stride =
      cfg.max_probes_per_tensor > 0
          ? std::max<std::int64_t>(
                1, (size + cfg.max_probes_per_tensor - 1) /
                       cfg.max_probes_per_tensor)
          : 1;
  for (std::int64_t i = 0; i < size; i += stride) {
    const float orig = values[i];
    values[i] = orig + cfg.eps;
    const double up = objective();
    values[i] = orig - cfg.eps;
    const double down = objective();
    values[i] = orig;
    const double numerical = (up - down) / (2.0 * static_cast<double>(cfg.eps));
    const double analytic = read_analytic(i);
    ++report.coordinates_checked;
    const double diff = std::abs(analytic - numerical);
    if (diff <= cfg.abs_tolerance) continue;
    const double rel = diff / std::max(std::abs(analytic), std::abs(numerical));
    if (rel > cfg.tolerance) {
      report.ok = false;
      report.outliers.push_back({label, i, analytic, numerical, rel});
    }
  }
}

}  // namespace detail

// Sweep `module`'s input and every parameter against central finite
// differences of a fixed scalar objective (a weighted sum of the module
// output with seeded uniform weights, so the gradient is non-trivial in
// every coordinate), flagging relative-error outliers. The module is left
// with the caches/gradients of a final forward+backward at the unperturbed
// point.
inline CheckGradReport CheckGrad(Module& module,
                                 const Tensor::Shape& input_shape,
                                 const CheckGradConfig& cfg = {}) {
  Rng rng(cfg.seed);
  const Tensor x = Tensor::uniform(input_shape, -1.0f, 1.0f, rng);
  Tensor probe_x = x;

  // Objective weights drawn from the output shape of an initial forward.
  const Tensor out0 = module.forward(x);
  Rng wrng(cfg.seed + 1);
  const Tensor weights = Tensor::uniform(out0.shape(), -1.0f, 1.0f, wrng);

  // Analytic gradients at the unperturbed point.
  module.zero_grad();
  (void)module.forward(x);
  const Tensor analytic_input = module.backward(weights);
  auto params = module.parameters();
  std::vector<Tensor> analytic_params;
  analytic_params.reserve(params.size());
  for (auto* p : params) analytic_params.push_back(p->grad);

  CheckGradReport report;
  if (cfg.check_input) {
    detail::checkgrad_sweep_tensor(
        probe_x, "input", cfg,
        [&] { return module.forward(probe_x).dot(weights); },
        [&](std::int64_t i) {
          return static_cast<double>(analytic_input[i]);
        },
        report);
  }
  if (cfg.check_parameters) {
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
      std::ostringstream label;
      label << "param[" << pi << "] size=" << params[pi]->size();
      detail::checkgrad_sweep_tensor(
          params[pi]->value, label.str(), cfg,
          [&] { return module.forward(x).dot(weights); },
          [&](std::int64_t i) {
            return static_cast<double>(analytic_params[pi][i]);
          },
          report);
    }
  }

  // Leave the module in a consistent forward/backward state at the
  // unperturbed point (probing perturbed the caches).
  module.zero_grad();
  (void)module.forward(x);
  (void)module.backward(weights);
  return report;
}

}  // namespace duo::nn
