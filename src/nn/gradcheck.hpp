#pragma once

// Numerical gradient checking. Every layer's analytic backward pass is
// verified against central finite differences in the test suite.

#include <functional>

#include "tensor/tensor.hpp"

namespace duo::nn {

// Central-difference gradient of a scalar function at `x`.
inline Tensor numerical_gradient(const std::function<double(const Tensor&)>& f,
                                 const Tensor& x, float eps = 1e-3f) {
  Tensor grad(x.shape());
  Tensor probe = x;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const float orig = probe[i];
    probe[i] = orig + eps;
    const double up = f(probe);
    probe[i] = orig - eps;
    const double down = f(probe);
    probe[i] = orig;
    grad[i] = static_cast<float>((up - down) / (2.0 * eps));
  }
  return grad;
}

// Max absolute deviation between analytic and numerical gradients, relative
// to the gradient scale (plus a floor to avoid 0/0).
inline double gradient_max_relative_error(const Tensor& analytic,
                                          const Tensor& numerical) {
  double worst = 0.0;
  for (std::int64_t i = 0; i < analytic.size(); ++i) {
    const double a = analytic[i];
    const double n = numerical[i];
    const double scale = std::max({std::abs(a), std::abs(n), 1e-2});
    worst = std::max(worst, std::abs(a - n) / scale);
  }
  return worst;
}

}  // namespace duo::nn
