#include "nn/im2col.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace duo::nn {

namespace {

struct TapCoords {
  std::int64_t ci, dt, dh, dw;
};

// Inverse of k = ((ci·kt + dt)·kh + dh)·kw + dw.
TapCoords tap_coords(std::int64_t row, const std::array<std::int64_t, 3>& k) {
  TapCoords t;
  t.dw = row % k[2];
  row /= k[2];
  t.dh = row % k[1];
  row /= k[1];
  t.dt = row % k[0];
  t.ci = row / k[0];
  return t;
}

}  // namespace

void im2col(const Im2colGeom& g, const float* x, float* out) {
  const std::int64_t rows = g.rows(), cols = g.cols();
  DUO_CHECK_MSG(rows > 0 && cols > 0, "im2col: empty geometry");
  const auto [st, sh, sw] = g.stride;
  const auto [pt, ph, pw] = g.padding;

  compute_pool().parallel_for(static_cast<std::size_t>(rows), [&](std::size_t r) {
    const TapCoords tap = tap_coords(static_cast<std::int64_t>(r), g.kernel);
    const float* xc = x + tap.ci * g.ti * g.hi * g.wi;
    float* orow = out + static_cast<std::int64_t>(r) * cols;
    std::int64_t n = 0;
    for (std::int64_t ot = 0; ot < g.to; ++ot) {
      const std::int64_t it = ot * st - pt + tap.dt;
      if (it < 0 || it >= g.ti) {
        std::fill(orow + n, orow + n + g.ho * g.wo, 0.0f);
        n += g.ho * g.wo;
        continue;
      }
      for (std::int64_t oh = 0; oh < g.ho; ++oh) {
        const std::int64_t ih = oh * sh - ph + tap.dh;
        if (ih < 0 || ih >= g.hi) {
          std::fill(orow + n, orow + n + g.wo, 0.0f);
          n += g.wo;
          continue;
        }
        const float* xrow = xc + (it * g.hi + ih) * g.wi;
        for (std::int64_t ow = 0; ow < g.wo; ++ow, ++n) {
          const std::int64_t iw = ow * sw - pw + tap.dw;
          orow[n] = (iw >= 0 && iw < g.wi) ? xrow[iw] : 0.0f;
        }
      }
    }
  });
}

void col2im_accumulate(const Im2colGeom& g, const float* cols, float* gx) {
  const std::int64_t kvol = g.kernel[0] * g.kernel[1] * g.kernel[2];
  const std::int64_t ncols = g.cols();
  const auto [st, sh, sw] = g.stride;
  const auto [pt, ph, pw] = g.padding;

  compute_pool().parallel_for(
      static_cast<std::size_t>(g.cin), [&](std::size_t ci_idx) {
    const auto ci = static_cast<std::int64_t>(ci_idx);
    float* gxc = gx + ci * g.ti * g.hi * g.wi;
    for (std::int64_t kk = 0; kk < kvol; ++kk) {
      const std::int64_t row = ci * kvol + kk;
      const TapCoords tap = tap_coords(row, g.kernel);
      const float* crow = cols + row * ncols;
      std::int64_t n = 0;
      for (std::int64_t ot = 0; ot < g.to; ++ot) {
        const std::int64_t it = ot * st - pt + tap.dt;
        if (it < 0 || it >= g.ti) {
          n += g.ho * g.wo;
          continue;
        }
        for (std::int64_t oh = 0; oh < g.ho; ++oh) {
          const std::int64_t ih = oh * sh - ph + tap.dh;
          if (ih < 0 || ih >= g.hi) {
            n += g.wo;
            continue;
          }
          float* gxrow = gxc + (it * g.hi + ih) * g.wi;
          for (std::int64_t ow = 0; ow < g.wo; ++ow, ++n) {
            const std::int64_t iw = ow * sw - pw + tap.dw;
            if (iw >= 0 && iw < g.wi) gxrow[iw] += crow[n];
          }
        }
      }
    }
  });
}

}  // namespace duo::nn
