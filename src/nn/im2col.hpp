#pragma once

// im2col / col2im for [C, T, H, W] activations with zero padding.
//
// im2col lowers a 3D convolution to a matrix product: the patch matrix has
// one row per kernel tap k = ((ci·kt + dt)·kh + dh)·kw + dw and one column
// per output position n = (ot·Ho + oh)·Wo + ow, so the row order matches the
// flattened weight layout [Cout, Cin·kt·kh·kw] and the direct kernel's
// accumulation order over (ci, dt, dh, dw). Padding taps are stored as 0.

#include <array>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace duo::nn {

// Geometry of one im2col lowering. All dims must be consistent with a valid
// convolution (output dims positive, strides positive, paddings >= 0).
struct Im2colGeom {
  std::int64_t cin = 0, ti = 0, hi = 0, wi = 0;  // input [Cin, Ti, Hi, Wi]
  std::array<std::int64_t, 3> kernel = {1, 1, 1};
  std::array<std::int64_t, 3> stride = {1, 1, 1};
  std::array<std::int64_t, 3> padding = {0, 0, 0};
  std::int64_t to = 0, ho = 0, wo = 0;  // output spatial dims

  std::int64_t rows() const noexcept {
    return cin * kernel[0] * kernel[1] * kernel[2];
  }
  std::int64_t cols() const noexcept { return to * ho * wo; }
};

// Fill `out` [rows() × cols(), row-major] from x [Cin, Ti, Hi, Wi].
// Sharded over patch-matrix rows on the compute pool; rows are disjoint, so
// the result is bitwise identical across thread counts.
void im2col(const Im2colGeom& g, const float* x, float* out);

// Scatter-accumulate the patch-matrix gradient back: for every (row, col)
// entry of `cols` that im2col sourced from input position p, gx[p] += entry.
// Padding taps are dropped. Sharded over input channels (each channel owns a
// disjoint row band and a disjoint slice of gx) with a fixed (row, col)
// accumulation order per channel — bitwise identical across thread counts.
void col2im_accumulate(const Im2colGeom& g, const float* cols, float* gx);

}  // namespace duo::nn
