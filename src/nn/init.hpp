#pragma once

// Weight initialization schemes.

#include <cmath>

#include "tensor/tensor.hpp"

namespace duo::nn {

// Kaiming/He uniform init for ReLU networks: U(-b, b), b = sqrt(6 / fan_in).
inline Tensor kaiming_uniform(Tensor::Shape shape, std::int64_t fan_in,
                              Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(std::max<std::int64_t>(fan_in, 1)));
  return Tensor::uniform(std::move(shape), -bound, bound, rng);
}

// Xavier/Glorot uniform for tanh/sigmoid gates (LSTM).
inline Tensor xavier_uniform(Tensor::Shape shape, std::int64_t fan_in,
                             std::int64_t fan_out, Rng& rng) {
  const float bound = std::sqrt(
      6.0f / static_cast<float>(std::max<std::int64_t>(fan_in + fan_out, 1)));
  return Tensor::uniform(std::move(shape), -bound, bound, rng);
}

}  // namespace duo::nn
