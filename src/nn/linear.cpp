#include "nn/linear.hpp"

#include "nn/init.hpp"

namespace duo::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(kaiming_uniform({out_features, in_features}, in_features, rng)),
      bias_(Tensor({out_features})) {}

Tensor Linear::forward(const Tensor& input) {
  DUO_CHECK_MSG(input.size() == in_, "Linear: input size mismatch");
  cached_input_ = input.reshaped({in_});
  Tensor out({out_});
  const float* w = weight_.value.data();
  const float* x = cached_input_.data();
  float* y = out.data();
  for (std::int64_t o = 0; o < out_; ++o) {
    const float* wrow = w + o * in_;
    float acc = bias_.value[o];
    for (std::int64_t i = 0; i < in_; ++i) acc += wrow[i] * x[i];
    y[o] = acc;
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(grad_output.size() == out_, "Linear: grad size mismatch");
  DUO_CHECK_MSG(cached_input_.size() == in_, "Linear: backward before forward");
  Tensor grad_input({in_});
  const float* w = weight_.value.data();
  const float* x = cached_input_.data();
  const float* gy = grad_output.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  float* gx = grad_input.data();
  for (std::int64_t o = 0; o < out_; ++o) {
    const float g = gy[o];
    gb[o] += g;
    if (g == 0.0f) continue;
    const float* wrow = w + o * in_;
    float* gwrow = gw + o * in_;
    for (std::int64_t i = 0; i < in_; ++i) {
      gwrow[i] += g * x[i];
      gx[i] += g * wrow[i];
    }
  }
  return grad_input;
}

}  // namespace duo::nn
