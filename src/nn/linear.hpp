#pragma once

#include <string>

#include "nn/module.hpp"

namespace duo::nn {

// Fully-connected layer: y = W·x + b for a 1-D input [in]. Used for feature
// flattening/projection heads in the retrieval models (paper Fig. 1).
class Linear final : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::unique_ptr<Module> clone() const override {
    Rng rng(0);  // the freshly initialized weights are overwritten below
    auto copy = std::make_unique<Linear>(in_, out_, rng);
    copy->weight_.value = weight_.value;
    copy->bias_.value = bias_.value;
    copy->set_training(training());
    return copy;
  }
  std::string name() const override { return "Linear"; }

  std::int64_t in_features() const noexcept { return in_; }
  std::int64_t out_features() const noexcept { return out_; }

  Parameter& weight() noexcept { return weight_; }
  Parameter& bias() noexcept { return bias_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace duo::nn
