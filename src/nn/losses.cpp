#include "nn/losses.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "nn/init.hpp"

namespace duo::nn {

namespace {

// Squared L2 distance between rows a and b of `f` ([B, D]).
double row_dist_sq(const Tensor& f, std::int64_t a, std::int64_t b) {
  const std::int64_t d = f.shape()[1];
  const float* fa = f.data() + a * d;
  const float* fb = f.data() + b * d;
  double acc = 0.0;
  for (std::int64_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(fa[i]) - fb[i];
    acc += diff * diff;
  }
  return acc;
}

void check_batch(const Tensor& features, const std::vector<int>& labels) {
  DUO_CHECK_MSG(features.rank() == 2, "loss expects [B, D] features");
  DUO_CHECK_MSG(static_cast<std::int64_t>(labels.size()) == features.shape()[0],
                "labels size != batch size");
}

}  // namespace

BatchLossResult TripletMarginLoss::compute(const Tensor& features,
                                           const std::vector<int>& labels) {
  check_batch(features, labels);
  const std::int64_t b = features.shape()[0], d = features.shape()[1];
  BatchLossResult out;
  out.feature_grads = Tensor({b, d});
  std::int64_t active = 0;
  double total = 0.0;

  // First pass counts contributing triplets so gradients are means.
  std::vector<std::array<std::int64_t, 3>> triplets;
  for (std::int64_t a = 0; a < b; ++a) {
    for (std::int64_t p = 0; p < b; ++p) {
      if (p == a || labels[p] != labels[a]) continue;
      for (std::int64_t n = 0; n < b; ++n) {
        if (labels[n] == labels[a]) continue;
        triplets.push_back({a, p, n});
      }
    }
  }
  if (triplets.empty()) return out;

  const double inv = 1.0 / static_cast<double>(triplets.size());
  for (const auto& [a, p, n] : triplets) {
    const double term =
        row_dist_sq(features, a, p) - row_dist_sq(features, a, n) + margin_;
    if (term <= 0.0) continue;
    ++active;
    total += term;
    // d/da = 2(a−p) − 2(a−n) = 2(n−p); d/dp = −2(a−p); d/dn = 2(a−n)
    const float* fa = features.data() + a * d;
    const float* fp = features.data() + p * d;
    const float* fn = features.data() + n * d;
    float* ga = out.feature_grads.data() + a * d;
    float* gp = out.feature_grads.data() + p * d;
    float* gn = out.feature_grads.data() + n * d;
    const float w = static_cast<float>(inv);
    for (std::int64_t i = 0; i < d; ++i) {
      ga[i] += w * 2.0f * (fn[i] - fp[i]);
      gp[i] += w * -2.0f * (fa[i] - fp[i]);
      gn[i] += w * 2.0f * (fa[i] - fn[i]);
    }
  }
  (void)active;
  out.loss = total * inv;
  return out;
}

ArcFaceLoss::ArcFaceLoss(std::int64_t feature_dim, std::int64_t num_classes,
                         Rng& rng, float scale, float margin)
    : dim_(feature_dim),
      classes_(num_classes),
      scale_(scale),
      margin_(margin),
      weights_(kaiming_uniform({num_classes, feature_dim}, feature_dim, rng)) {
  DUO_CHECK(feature_dim > 0 && num_classes > 1);
}

BatchLossResult ArcFaceLoss::compute(const Tensor& features,
                                     const std::vector<int>& labels) {
  check_batch(features, labels);
  DUO_CHECK_MSG(features.shape()[1] == dim_, "ArcFace: feature dim mismatch");
  const std::int64_t b = features.shape()[0];
  BatchLossResult out;
  out.feature_grads = Tensor({b, dim_});
  const double inv_b = 1.0 / static_cast<double>(b);
  const float cos_m = std::cos(margin_), sin_m = std::sin(margin_);

  // Normalized class weights and their norms (shared across the batch).
  std::vector<float> wnorm(static_cast<std::size_t>(classes_));
  std::vector<float> what(static_cast<std::size_t>(classes_ * dim_));
  for (std::int64_t c = 0; c < classes_; ++c) {
    const float* w = weights_.value.data() + c * dim_;
    double n2 = 0.0;
    for (std::int64_t i = 0; i < dim_; ++i) n2 += static_cast<double>(w[i]) * w[i];
    const float n = std::sqrt(static_cast<float>(n2)) + 1e-12f;
    wnorm[static_cast<std::size_t>(c)] = n;
    for (std::int64_t i = 0; i < dim_; ++i) {
      what[static_cast<std::size_t>(c * dim_ + i)] = w[i] / n;
    }
  }

  double total = 0.0;
  for (std::int64_t s = 0; s < b; ++s) {
    const int y = labels[static_cast<std::size_t>(s)];
    DUO_CHECK_MSG(y >= 0 && y < classes_, "ArcFace: label out of range");
    const float* x = features.data() + s * dim_;
    double xn2 = 0.0;
    for (std::int64_t i = 0; i < dim_; ++i) xn2 += static_cast<double>(x[i]) * x[i];
    const float xnorm = std::sqrt(static_cast<float>(xn2)) + 1e-12f;
    std::vector<float> xhat(static_cast<std::size_t>(dim_));
    for (std::int64_t i = 0; i < dim_; ++i) {
      xhat[static_cast<std::size_t>(i)] = x[i] / xnorm;
    }

    // Cosine logits; the true class gets the additive angular margin.
    std::vector<float> cosines(static_cast<std::size_t>(classes_));
    for (std::int64_t c = 0; c < classes_; ++c) {
      double acc = 0.0;
      const float* wc = what.data() + c * dim_;
      for (std::int64_t i = 0; i < dim_; ++i) acc += static_cast<double>(wc[i]) * xhat[static_cast<std::size_t>(i)];
      cosines[static_cast<std::size_t>(c)] = static_cast<float>(acc);
    }
    const float cy = std::clamp(cosines[static_cast<std::size_t>(y)], -0.999f, 0.999f);
    const float sin_y = std::sqrt(1.0f - cy * cy);
    const float cy_margined = cy * cos_m - sin_y * sin_m;
    // d cos(θ+m) / d cosθ
    const float dmargin = cos_m + (cy / sin_y) * sin_m;

    std::vector<float> logits(static_cast<std::size_t>(classes_));
    float max_logit = -1e30f;
    for (std::int64_t c = 0; c < classes_; ++c) {
      logits[static_cast<std::size_t>(c)] =
          scale_ * (c == y ? cy_margined : cosines[static_cast<std::size_t>(c)]);
      max_logit = std::max(max_logit, logits[static_cast<std::size_t>(c)]);
    }
    double denom = 0.0;
    for (std::int64_t c = 0; c < classes_; ++c) {
      denom += std::exp(static_cast<double>(logits[static_cast<std::size_t>(c)] - max_logit));
    }
    const double log_py =
        static_cast<double>(logits[static_cast<std::size_t>(y)] - max_logit) -
        std::log(denom);
    total += -log_py;

    // Backward: dL/d cos_c, then project through the normalizations.
    std::vector<float> dcos(static_cast<std::size_t>(classes_));
    for (std::int64_t c = 0; c < classes_; ++c) {
      const double pc =
          std::exp(static_cast<double>(logits[static_cast<std::size_t>(c)] - max_logit)) / denom;
      float dlogit = static_cast<float>(pc) - (c == y ? 1.0f : 0.0f);
      dlogit *= static_cast<float>(inv_b);
      dcos[static_cast<std::size_t>(c)] =
          dlogit * scale_ * (c == y ? dmargin : 1.0f);
    }

    // g = Σ_c dcos_c · ŵ_c ; grad_x = (g − (g·x̂)x̂)/‖x‖
    std::vector<float> g(static_cast<std::size_t>(dim_), 0.0f);
    for (std::int64_t c = 0; c < classes_; ++c) {
      const float dc = dcos[static_cast<std::size_t>(c)];
      if (dc == 0.0f) continue;
      const float* wc = what.data() + c * dim_;
      for (std::int64_t i = 0; i < dim_; ++i) g[static_cast<std::size_t>(i)] += dc * wc[i];
    }
    double gdotx = 0.0;
    for (std::int64_t i = 0; i < dim_; ++i) {
      gdotx += static_cast<double>(g[static_cast<std::size_t>(i)]) * xhat[static_cast<std::size_t>(i)];
    }
    float* gx = out.feature_grads.data() + s * dim_;
    for (std::int64_t i = 0; i < dim_; ++i) {
      gx[i] = (g[static_cast<std::size_t>(i)] -
               static_cast<float>(gdotx) * xhat[static_cast<std::size_t>(i)]) /
              xnorm;
    }

    // grad_w_c = dcos_c · (x̂ − (x̂·ŵ_c)ŵ_c)/‖w_c‖
    float* gw = weights_.grad.data();
    for (std::int64_t c = 0; c < classes_; ++c) {
      const float dc = dcos[static_cast<std::size_t>(c)];
      if (dc == 0.0f) continue;
      const float* wc = what.data() + c * dim_;
      const float cdot = cosines[static_cast<std::size_t>(c)];
      for (std::int64_t i = 0; i < dim_; ++i) {
        gw[c * dim_ + i] += dc *
                            (xhat[static_cast<std::size_t>(i)] - cdot * wc[i]) /
                            wnorm[static_cast<std::size_t>(c)];
      }
    }
  }
  out.loss = total * inv_b;
  return out;
}

BatchLossResult LiftedStructureLoss::compute(const Tensor& features,
                                             const std::vector<int>& labels) {
  check_batch(features, labels);
  const std::int64_t b = features.shape()[0], d = features.shape()[1];
  BatchLossResult out;
  out.feature_grads = Tensor({b, d});

  // Distances (plain L2, not squared — the lifted formulation uses D_ij).
  std::vector<double> dist(static_cast<std::size_t>(b * b), 0.0);
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t j = i + 1; j < b; ++j) {
      const double dd = std::sqrt(row_dist_sq(features, i, j)) + 1e-12;
      dist[static_cast<std::size_t>(i * b + j)] = dd;
      dist[static_cast<std::size_t>(j * b + i)] = dd;
    }
  }

  struct PosPair { std::int64_t i, j; };
  std::vector<PosPair> positives;
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t j = i + 1; j < b; ++j) {
      if (labels[static_cast<std::size_t>(i)] == labels[static_cast<std::size_t>(j)]) {
        positives.push_back({i, j});
      }
    }
  }
  if (positives.empty()) return out;

  // Gradient of distance D_ab w.r.t. features: dD/df_a = (f_a − f_b)/D.
  auto add_dist_grad = [&](std::int64_t a, std::int64_t bb, double coeff) {
    const double dd = dist[static_cast<std::size_t>(a * b + bb)];
    const float* fa = features.data() + a * d;
    const float* fb = features.data() + bb * d;
    float* ga = out.feature_grads.data() + a * d;
    float* gb = out.feature_grads.data() + bb * d;
    const float w = static_cast<float>(coeff / dd);
    for (std::int64_t k = 0; k < d; ++k) {
      const float diff = fa[k] - fb[k];
      ga[k] += w * diff;
      gb[k] -= w * diff;
    }
  };

  double total = 0.0;
  const double inv_p = 1.0 / (2.0 * static_cast<double>(positives.size()));
  for (const auto& pp : positives) {
    // J_ij = log Σ_{k∉class(i)} e^{m − D_ik} + log Σ_{k∉class(j)} e^{m − D_jk} + D_ij
    auto neg_lse = [&](std::int64_t a, double& lse,
                       std::vector<std::pair<std::int64_t, double>>& weights) {
      double max_e = -1e30;
      std::vector<std::pair<std::int64_t, double>> terms;
      for (std::int64_t k = 0; k < b; ++k) {
        if (labels[static_cast<std::size_t>(k)] == labels[static_cast<std::size_t>(a)]) continue;
        const double e = margin_ - dist[static_cast<std::size_t>(a * b + k)];
        terms.emplace_back(k, e);
        max_e = std::max(max_e, e);
      }
      if (terms.empty()) { lse = 0.0; return false; }
      double denom = 0.0;
      for (auto& [k, e] : terms) denom += std::exp(e - max_e);
      lse = max_e + std::log(denom);
      for (auto& [k, e] : terms) {
        weights.emplace_back(k, std::exp(e - max_e) / denom);
      }
      return true;
    };

    double lse_i = 0.0, lse_j = 0.0;
    std::vector<std::pair<std::int64_t, double>> wi, wj;
    const bool has_i = neg_lse(pp.i, lse_i, wi);
    const bool has_j = neg_lse(pp.j, lse_j, wj);
    if (!has_i && !has_j) continue;

    const double j_ij = lse_i + lse_j + dist[static_cast<std::size_t>(pp.i * b + pp.j)];
    if (j_ij <= 0.0) continue;
    total += j_ij * j_ij;

    // d(J²)/dD = 2J · dJ/dD ; dJ/dD_ij = 1 ; dJ/dD_ik = −softmax weight
    const double c = 2.0 * j_ij * inv_p;
    add_dist_grad(pp.i, pp.j, c);
    for (const auto& [k, w] : wi) add_dist_grad(pp.i, k, -c * w);
    for (const auto& [k, w] : wj) add_dist_grad(pp.j, k, -c * w);
  }
  out.loss = total * inv_p;
  return out;
}

AngularLoss::AngularLoss(float alpha_degrees) {
  const float a = alpha_degrees * 3.14159265358979323846f / 180.0f;
  const float t = std::tan(a);
  tan_alpha_sq_4_ = 4.0f * t * t;
}

BatchLossResult AngularLoss::compute(const Tensor& features,
                                     const std::vector<int>& labels) {
  check_batch(features, labels);
  const std::int64_t b = features.shape()[0], d = features.shape()[1];
  BatchLossResult out;
  out.feature_grads = Tensor({b, d});

  std::vector<std::array<std::int64_t, 3>> triplets;
  for (std::int64_t a = 0; a < b; ++a) {
    for (std::int64_t p = a + 1; p < b; ++p) {
      if (labels[static_cast<std::size_t>(p)] != labels[static_cast<std::size_t>(a)]) continue;
      for (std::int64_t n = 0; n < b; ++n) {
        if (labels[static_cast<std::size_t>(n)] == labels[static_cast<std::size_t>(a)]) continue;
        triplets.push_back({a, p, n});
      }
    }
  }
  if (triplets.empty()) return out;
  const double inv = 1.0 / static_cast<double>(triplets.size());

  double total = 0.0;
  for (const auto& [a, p, n] : triplets) {
    const float* fa = features.data() + a * d;
    const float* fp = features.data() + p * d;
    const float* fn = features.data() + n * d;
    double ap = 0.0, nc = 0.0;
    for (std::int64_t i = 0; i < d; ++i) {
      const double dap = static_cast<double>(fa[i]) - fp[i];
      ap += dap * dap;
      const double dnc = static_cast<double>(fn[i]) - 0.5 * (fa[i] + fp[i]);
      nc += dnc * dnc;
    }
    const double term = ap - tan_alpha_sq_4_ * nc;
    if (term <= 0.0) continue;
    total += term;
    float* ga = out.feature_grads.data() + a * d;
    float* gp = out.feature_grads.data() + p * d;
    float* gn = out.feature_grads.data() + n * d;
    const float w = static_cast<float>(inv);
    const float c4 = tan_alpha_sq_4_;
    for (std::int64_t i = 0; i < d; ++i) {
      const float dap = fa[i] - fp[i];
      const float dnc = fn[i] - 0.5f * (fa[i] + fp[i]);
      // d(ap)/da = 2(a−p); d(nc)/da = −(n − (a+p)/2)
      ga[i] += w * (2.0f * dap + c4 * dnc);
      gp[i] += w * (-2.0f * dap + c4 * dnc);
      gn[i] += w * (-c4 * 2.0f * dnc);
    }
  }
  out.loss = total * inv;
  return out;
}

const char* victim_loss_name(VictimLossKind kind) noexcept {
  switch (kind) {
    case VictimLossKind::kArcFace: return "ArcFaceLoss";
    case VictimLossKind::kLifted: return "LiftedLoss";
    case VictimLossKind::kAngular: return "AngularLoss";
  }
  return "?";
}

std::unique_ptr<BatchMetricLoss> make_victim_loss(VictimLossKind kind,
                                                  std::int64_t feature_dim,
                                                  std::int64_t num_classes,
                                                  Rng& rng) {
  switch (kind) {
    case VictimLossKind::kArcFace:
      return std::make_unique<ArcFaceLoss>(feature_dim, num_classes, rng);
    case VictimLossKind::kLifted:
      return std::make_unique<LiftedStructureLoss>();
    case VictimLossKind::kAngular:
      return std::make_unique<AngularLoss>();
  }
  DUO_CHECK_MSG(false, "unknown loss kind");
  return nullptr;
}

RankedTripletGrads ranked_triplet_loss(const Tensor& anchor,
                                       const Tensor& closer,
                                       const Tensor& farther, float gamma) {
  DUO_CHECK(anchor.same_shape(closer) && anchor.same_shape(farther));
  RankedTripletGrads out;
  out.anchor_grad = Tensor(anchor.shape());
  out.closer_grad = Tensor(anchor.shape());
  out.farther_grad = Tensor(anchor.shape());

  // [D(v, v_j) − D(v, v_i) + γ]_+ : v_i ranks above v_j, so we want the
  // distance to the closer (higher-ranked) video to be smaller by γ.
  double d_close = 0.0, d_far = 0.0;
  const std::int64_t n = anchor.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const double dc = static_cast<double>(anchor[i]) - closer[i];
    const double df = static_cast<double>(anchor[i]) - farther[i];
    d_close += dc * dc;
    d_far += df * df;
  }
  const double term = d_close - d_far + gamma;
  if (term <= 0.0) return out;
  out.loss = term;
  for (std::int64_t i = 0; i < n; ++i) {
    const float dc = anchor[i] - closer[i];
    const float df = anchor[i] - farther[i];
    out.anchor_grad[i] = 2.0f * (dc - df);
    out.closer_grad[i] = -2.0f * dc;
    out.farther_grad[i] = 2.0f * df;
  }
  return out;
}

}  // namespace duo::nn
