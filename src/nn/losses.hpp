#pragma once

// Metric-learning losses for training retrieval models.
//
// All losses share the BatchMetricLoss interface: given a batch of features
// [B, D] and integer labels, they return the scalar loss and the gradient
// with respect to every feature. The victim models are trained with ArcFace,
// Lifted-structure, or Angular loss (paper Fig. 3 / Table IV); the surrogate
// is trained with the triplet ranking loss of §IV-B1 (margin γ = 0.2).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace duo::nn {

struct BatchLossResult {
  double loss = 0.0;     // mean loss over the contributing terms
  Tensor feature_grads;  // [B, D], d(loss)/d(feature)
};

class BatchMetricLoss {
 public:
  virtual ~BatchMetricLoss() = default;

  // labels.size() must equal features.shape()[0].
  virtual BatchLossResult compute(const Tensor& features,
                                  const std::vector<int>& labels) = 0;

  // Loss-owned trainable parameters (ArcFace class weights); default none.
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;
};

// max(0, ‖a−p‖² − ‖a−n‖² + margin) over all in-batch (a, p, n) triplets.
class TripletMarginLoss final : public BatchMetricLoss {
 public:
  explicit TripletMarginLoss(float margin = 0.2f) : margin_(margin) {}
  BatchLossResult compute(const Tensor& features,
                          const std::vector<int>& labels) override;
  std::string name() const override { return "TripletMargin"; }

 private:
  float margin_;
};

// Additive angular margin loss (ArcFace [50]) with loss-owned class weights.
class ArcFaceLoss final : public BatchMetricLoss {
 public:
  ArcFaceLoss(std::int64_t feature_dim, std::int64_t num_classes, Rng& rng,
              float scale = 8.0f, float margin = 0.3f);
  BatchLossResult compute(const Tensor& features,
                          const std::vector<int>& labels) override;
  std::vector<Parameter*> parameters() override { return {&weights_}; }
  std::string name() const override { return "ArcFace"; }

 private:
  std::int64_t dim_;
  std::int64_t classes_;
  float scale_;
  float margin_;
  Parameter weights_;  // [classes, dim]
};

// Lifted-structure embedding loss [51] (smooth log-sum-exp variant).
class LiftedStructureLoss final : public BatchMetricLoss {
 public:
  explicit LiftedStructureLoss(float margin = 1.0f) : margin_(margin) {}
  BatchLossResult compute(const Tensor& features,
                          const std::vector<int>& labels) override;
  std::string name() const override { return "LiftedStructure"; }

 private:
  float margin_;
};

// Angular loss [52]: max(0, ‖a−p‖² − 4·tan²α·‖n − (a+p)/2‖²) over triplets.
class AngularLoss final : public BatchMetricLoss {
 public:
  explicit AngularLoss(float alpha_degrees = 40.0f);
  BatchLossResult compute(const Tensor& features,
                          const std::vector<int>& labels) override;
  std::string name() const override { return "Angular"; }

 private:
  float tan_alpha_sq_4_;  // 4·tan²α
};

// Factory for the three victim losses (bench parameterization).
enum class VictimLossKind { kArcFace, kLifted, kAngular };
const char* victim_loss_name(VictimLossKind kind) noexcept;
std::unique_ptr<BatchMetricLoss> make_victim_loss(VictimLossKind kind,
                                                  std::int64_t feature_dim,
                                                  std::int64_t num_classes,
                                                  Rng& rng);

// Ranking triplet loss of §IV-B1 for features already extracted:
// Σ_{j>i} [D(v,v_j) − D(v,v_i) + γ]_+ with D = squared L2.
// Returns loss and gradients w.r.t. (anchor, closer, farther).
struct RankedTripletGrads {
  double loss = 0.0;
  Tensor anchor_grad;
  Tensor closer_grad;
  Tensor farther_grad;
};
RankedTripletGrads ranked_triplet_loss(const Tensor& anchor,
                                       const Tensor& closer,
                                       const Tensor& farther, float gamma);

}  // namespace duo::nn
