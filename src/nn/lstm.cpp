#include "nn/lstm.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/init.hpp"

namespace duo::nn {

Lstm::Lstm(std::int64_t input_size, std::int64_t hidden_size, Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      wx_(xavier_uniform({4 * hidden_size, input_size}, input_size,
                         hidden_size, rng)),
      wh_(xavier_uniform({4 * hidden_size, hidden_size}, hidden_size,
                         hidden_size, rng)),
      bias_(Tensor({4 * hidden_size})) {
  DUO_CHECK(input_size > 0 && hidden_size > 0);
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (std::int64_t h = 0; h < hidden_; ++h) bias_.value[hidden_ + h] = 1.0f;
}

Lstm::Lstm(std::int64_t input_size, std::int64_t hidden_size, Uninitialized)
    : input_(input_size),
      hidden_(hidden_size),
      wx_(Tensor({4 * hidden_size, input_size})),
      wh_(Tensor({4 * hidden_size, hidden_size})),
      bias_(Tensor({4 * hidden_size})) {}

Tensor Lstm::forward(const Tensor& input) {
  DUO_CHECK_MSG(input.rank() == 2 && input.shape()[1] == input_,
                "Lstm expects [T, D]");
  const std::int64_t t_len = input.shape()[0];
  const std::int64_t h_sz = hidden_;
  steps_.clear();
  steps_.reserve(static_cast<std::size_t>(t_len));

  Tensor out({t_len, h_sz});
  Tensor h({h_sz});
  Tensor c({h_sz});
  const float* wx = wx_.value.data();
  const float* wh = wh_.value.data();

  for (std::int64_t t = 0; t < t_len; ++t) {
    StepCache sc;
    sc.x = Tensor({input_});
    for (std::int64_t d = 0; d < input_; ++d) sc.x[d] = input.at(t, d);
    sc.h_prev = h;
    sc.c_prev = c;

    // z = Wx·x + Wh·h_prev + b, gates split along 4H.
    Tensor z({4 * h_sz});
    for (std::int64_t r = 0; r < 4 * h_sz; ++r) {
      float acc = bias_.value[r];
      const float* wxr = wx + r * input_;
      for (std::int64_t d = 0; d < input_; ++d) acc += wxr[d] * sc.x[d];
      const float* whr = wh + r * h_sz;
      for (std::int64_t k = 0; k < h_sz; ++k) acc += whr[k] * sc.h_prev[k];
      z[r] = acc;
    }

    sc.i = Tensor({h_sz});
    sc.f = Tensor({h_sz});
    sc.g = Tensor({h_sz});
    sc.o = Tensor({h_sz});
    sc.c = Tensor({h_sz});
    sc.tanh_c = Tensor({h_sz});
    for (std::int64_t k = 0; k < h_sz; ++k) {
      sc.i[k] = sigmoid_scalar(z[k]);
      sc.f[k] = sigmoid_scalar(z[h_sz + k]);
      sc.g[k] = tanh_scalar(z[2 * h_sz + k]);
      sc.o[k] = sigmoid_scalar(z[3 * h_sz + k]);
      sc.c[k] = sc.f[k] * sc.c_prev[k] + sc.i[k] * sc.g[k];
      sc.tanh_c[k] = std::tanh(sc.c[k]);
      h[k] = sc.o[k] * sc.tanh_c[k];
      out.at(t, k) = h[k];
    }
    c = sc.c;
    steps_.push_back(std::move(sc));
  }
  return out;
}

Tensor Lstm::backward(const Tensor& grad_output) {
  const std::int64_t t_len = static_cast<std::int64_t>(steps_.size());
  DUO_CHECK_MSG(t_len > 0, "Lstm: backward before forward");
  DUO_CHECK_MSG(grad_output.rank() == 2 && grad_output.shape()[0] == t_len &&
                    grad_output.shape()[1] == hidden_,
                "Lstm: grad shape mismatch");

  const std::int64_t h_sz = hidden_;
  Tensor grad_input({t_len, input_});
  Tensor dh_next({h_sz});
  Tensor dc_next({h_sz});

  const float* wx = wx_.value.data();
  const float* wh = wh_.value.data();
  float* gwx = wx_.grad.data();
  float* gwh = wh_.grad.data();
  float* gb = bias_.grad.data();

  for (std::int64_t t = t_len - 1; t >= 0; --t) {
    const StepCache& sc = steps_[static_cast<std::size_t>(t)];
    Tensor dz({4 * h_sz});
    Tensor dh({h_sz});
    for (std::int64_t k = 0; k < h_sz; ++k) {
      dh[k] = grad_output.at(t, k) + dh_next[k];
    }
    Tensor dc({h_sz});
    for (std::int64_t k = 0; k < h_sz; ++k) {
      const float dtanh = 1.0f - sc.tanh_c[k] * sc.tanh_c[k];
      dc[k] = dh[k] * sc.o[k] * dtanh + dc_next[k];
      const float di = dc[k] * sc.g[k];
      const float df = dc[k] * sc.c_prev[k];
      const float dg = dc[k] * sc.i[k];
      const float do_ = dh[k] * sc.tanh_c[k];
      dz[k] = di * sc.i[k] * (1.0f - sc.i[k]);
      dz[h_sz + k] = df * sc.f[k] * (1.0f - sc.f[k]);
      dz[2 * h_sz + k] = dg * (1.0f - sc.g[k] * sc.g[k]);
      dz[3 * h_sz + k] = do_ * sc.o[k] * (1.0f - sc.o[k]);
      dc_next[k] = dc[k] * sc.f[k];
    }

    dh_next.fill(0.0f);
    for (std::int64_t r = 0; r < 4 * h_sz; ++r) {
      const float g = dz[r];
      gb[r] += g;
      if (g == 0.0f) continue;
      float* gwxr = gwx + r * input_;
      const float* wxr = wx + r * input_;
      for (std::int64_t d = 0; d < input_; ++d) {
        gwxr[d] += g * sc.x[d];
        grad_input.at(t, d) += g * wxr[d];
      }
      float* gwhr = gwh + r * h_sz;
      const float* whr = wh + r * h_sz;
      for (std::int64_t k = 0; k < h_sz; ++k) {
        gwhr[k] += g * sc.h_prev[k];
        dh_next[k] += g * whr[k];
      }
    }
  }
  return grad_input;
}

}  // namespace duo::nn
