#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"

namespace duo::nn {

// Single-layer LSTM over a sequence [T, D] → hidden sequence [T, H].
//
// The paper's reference retrieval model (Fig. 1) couples an LSTM for temporal
// features with a stacked CNN for spatial features; MiniLstmRetrieval uses
// this module over per-frame CNN embeddings. Backward is full BPTT.
class Lstm final : public Module {
 public:
  Lstm(std::int64_t input_size, std::int64_t hidden_size, Rng& rng);

  Tensor forward(const Tensor& input) override;       // [T, D] → [T, H]
  Tensor backward(const Tensor& grad_output) override;  // [T, H] → [T, D]
  std::vector<Parameter*> parameters() override {
    return {&wx_, &wh_, &bias_};
  }
  std::unique_ptr<Module> clone() const override {
    // Uninitialized construction: no point drawing a xavier init that the
    // copies below immediately overwrite.
    auto copy = std::unique_ptr<Lstm>(new Lstm(input_, hidden_, Uninitialized{}));
    copy->wx_.value = wx_.value;
    copy->wh_.value = wh_.value;
    copy->bias_.value = bias_.value;
    copy->set_training(training());
    return copy;
  }
  std::string name() const override { return "Lstm"; }

  std::int64_t hidden_size() const noexcept { return hidden_; }

 private:
  // Tag ctor for clone(): allocates parameter storage without an Rng draw.
  struct Uninitialized {};
  Lstm(std::int64_t input_size, std::int64_t hidden_size, Uninitialized);

  std::int64_t input_;
  std::int64_t hidden_;
  // Gate order along the 4H axis: input (i), forget (f), cell (g), output (o).
  Parameter wx_;    // [4H, D]
  Parameter wh_;    // [4H, H]
  Parameter bias_;  // [4H]

  // Per-timestep caches for BPTT.
  struct StepCache {
    Tensor x;      // [D]
    Tensor h_prev; // [H]
    Tensor c_prev; // [H]
    Tensor i, f, g, o;  // gate activations [H]
    Tensor c;      // [H]
    Tensor tanh_c; // [H]
  };
  std::vector<StepCache> steps_;
};

}  // namespace duo::nn
