#pragma once

// Layer framework with hand-written backward passes.
//
// Modules operate on a single sample (no batch axis): video activations are
// [C, T, H, W], vectors are [D]. Mini-batching is done by the training loop,
// which accumulates parameter gradients across samples before an optimizer
// step. This keeps every backward pass simple enough to verify against
// numerical differentiation (see nn/gradcheck.hpp), which the test suite
// does for every layer.
//
// forward() caches whatever the matching backward() needs; backward(grad_out)
// accumulates parameter gradients (`Parameter::grad += ...`) and returns the
// gradient with respect to the layer input. Calling backward without a prior
// forward is a programming error and raises via DUO_CHECK.

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace duo::nn {

// A trainable tensor with its accumulated gradient.
struct Parameter {
  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}

  Tensor value;
  Tensor grad;

  void zero_grad() noexcept { grad.fill(0.0f); }

  // grad += scale * g. The reduction primitive of data-parallel training:
  // per-sample gradients pulled off replicas are summed into the primary's
  // grad serially, in a caller-fixed order, so the reduced gradient is
  // bitwise identical for any number of replicas.
  void accumulate_grad(const Tensor& g, float scale = 1.0f) {
    grad.axpy(scale, g);
  }

  std::int64_t size() const noexcept { return value.size(); }
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Deep copy: same architecture and parameter values, fresh (empty)
  // forward caches and zeroed gradients. Enables thread-private replicas of
  // a model for parallel inference (modules are stateful across
  // forward/backward, so a single instance is not usable from two threads).
  // Returns nullptr when the module (or any child) is not cloneable.
  virtual std::unique_ptr<Module> clone() const { return nullptr; }

  // All trainable parameters, recursively. Default: none.
  virtual std::vector<Parameter*> parameters() { return {}; }

  // Train/eval switch (batch-norm running stats, dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const noexcept { return training_; }

  virtual std::string name() const = 0;

  void zero_grad() {
    for (auto* p : parameters()) p->zero_grad();
  }

  std::int64_t parameter_count() {
    std::int64_t n = 0;
    for (auto* p : parameters()) n += p->size();
    return n;
  }

 protected:
  bool training_ = true;
};

// Sequential container. Owns its children.
class Sequential final : public Module {
 public:
  Sequential() = default;

  // Builder-style: seq.add(std::make_unique<Linear>(...)).
  Sequential& add(std::unique_ptr<Module> m) {
    children_.push_back(std::move(m));
    return *this;
  }

  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    children_.push_back(std::make_unique<M>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor forward(const Tensor& input) override {
    Tensor x = input;
    for (auto& child : children_) x = child->forward(x);
    return x;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  std::vector<Parameter*> parameters() override {
    std::vector<Parameter*> out;
    for (auto& child : children_) {
      auto p = child->parameters();
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  void set_training(bool training) override {
    Module::set_training(training);
    for (auto& child : children_) child->set_training(training);
  }

  std::unique_ptr<Module> clone() const override {
    auto copy = std::make_unique<Sequential>();
    for (const auto& child : children_) {
      auto c = child->clone();
      if (!c) return nullptr;
      copy->add(std::move(c));
    }
    copy->set_training(training());
    return copy;
  }

  std::string name() const override { return "Sequential"; }

  std::size_t child_count() const noexcept { return children_.size(); }
  Module& child(std::size_t i) { return *children_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace duo::nn
