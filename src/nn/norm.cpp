#include "nn/norm.hpp"

#include <cmath>

namespace duo::nn {

InstanceNorm3d::InstanceNorm3d(std::int64_t channels, float eps)
    : channels_(channels),
      eps_(eps),
      gamma_(Tensor::ones({channels})),
      beta_(Tensor({channels})) {
  DUO_CHECK(channels > 0);
}

Tensor InstanceNorm3d::forward(const Tensor& input) {
  DUO_CHECK_MSG(input.rank() == 4 && input.shape()[0] == channels_,
                "InstanceNorm3d: bad input shape");
  const std::int64_t c = channels_;
  const std::int64_t spatial = input.size() / c;
  DUO_CHECK_MSG(spatial > 1, "InstanceNorm3d: needs > 1 element per channel");

  Tensor out(input.shape());
  cached_normalized_ = Tensor(input.shape());
  cached_inv_std_.assign(static_cast<std::size_t>(c), 0.0f);

  const float* x = input.data();
  float* y = out.data();
  float* xh = cached_normalized_.data();
  for (std::int64_t cc = 0; cc < c; ++cc) {
    const float* xc = x + cc * spatial;
    double mean = 0.0;
    for (std::int64_t i = 0; i < spatial; ++i) mean += xc[i];
    mean /= static_cast<double>(spatial);
    double var = 0.0;
    for (std::int64_t i = 0; i < spatial; ++i) {
      const double d = xc[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(spatial);
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    cached_inv_std_[static_cast<std::size_t>(cc)] = inv_std;
    const float g = gamma_.value[cc], b = beta_.value[cc];
    for (std::int64_t i = 0; i < spatial; ++i) {
      const float n = (xc[i] - static_cast<float>(mean)) * inv_std;
      xh[cc * spatial + i] = n;
      y[cc * spatial + i] = g * n + b;
    }
  }
  return out;
}

Tensor InstanceNorm3d::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(grad_output.same_shape(cached_normalized_),
                "InstanceNorm3d: backward shape mismatch");
  const std::int64_t c = channels_;
  const std::int64_t spatial = grad_output.size() / c;
  const float inv_n = 1.0f / static_cast<float>(spatial);

  Tensor grad_input(grad_output.shape());
  const float* gy = grad_output.data();
  const float* xh = cached_normalized_.data();
  float* gx = grad_input.data();
  float* gg = gamma_.grad.data();
  float* gb = beta_.grad.data();

  for (std::int64_t cc = 0; cc < c; ++cc) {
    const float* gyc = gy + cc * spatial;
    const float* xhc = xh + cc * spatial;
    float* gxc = gx + cc * spatial;
    const float g = gamma_.value[cc];
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(cc)];

    double sum_gy = 0.0, sum_gy_xh = 0.0;
    for (std::int64_t i = 0; i < spatial; ++i) {
      sum_gy += gyc[i];
      sum_gy_xh += static_cast<double>(gyc[i]) * xhc[i];
    }
    gb[cc] += static_cast<float>(sum_gy);
    gg[cc] += static_cast<float>(sum_gy_xh);

    // dL/dx = gamma * inv_std * (gy - mean(gy) - xh * mean(gy*xh))
    const float mean_gy = static_cast<float>(sum_gy) * inv_n;
    const float mean_gy_xh = static_cast<float>(sum_gy_xh) * inv_n;
    for (std::int64_t i = 0; i < spatial; ++i) {
      gxc[i] = g * inv_std * (gyc[i] - mean_gy - xhc[i] * mean_gy_xh);
    }
  }
  return grad_input;
}

}  // namespace duo::nn
