#pragma once

#include <string>

#include "nn/module.hpp"

namespace duo::nn {

// Per-channel instance normalization over [C, T, H, W] with a learned affine
// transform. The framework is per-sample (no batch axis), so instance norm
// plays the stabilizing role batch norm plays in the original architectures;
// it normalizes each channel over its own T×H×W extent, train and eval alike.
class InstanceNorm3d final : public Module {
 public:
  explicit InstanceNorm3d(std::int64_t channels, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::unique_ptr<Module> clone() const override {
    auto copy = std::make_unique<InstanceNorm3d>(channels_, eps_);
    copy->gamma_.value = gamma_.value;
    copy->beta_.value = beta_.value;
    copy->set_training(training());
    return copy;
  }
  std::string name() const override { return "InstanceNorm3d"; }

 private:
  std::int64_t channels_;
  float eps_;
  Parameter gamma_;  // [C]
  Parameter beta_;   // [C]
  Tensor cached_normalized_;      // x_hat
  std::vector<float> cached_inv_std_;  // per channel
};

}  // namespace duo::nn
