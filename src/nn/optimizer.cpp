#include "nn/optimizer.hpp"

#include <cmath>

namespace duo::nn {

void Optimizer::accumulate_grad(const std::vector<Tensor>& grads, float scale) {
  DUO_CHECK_MSG(grads.size() == params_.size(),
                "accumulate_grad: gradient count != parameter count");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i]->accumulate_grad(grads[i], scale);
  }
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (auto* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    float* vd = v.data();
    const float* gd = p.grad.data();
    float* wd = p.value.data();
    const std::int64_t n = p.size();
    for (std::int64_t j = 0; j < n; ++j) {
      vd[j] = momentum_ * vd[j] - lr_ * gd[j];
      wd[j] += vd[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* md = m_[i].data();
    float* vd = v_[i].data();
    const float* gd = p.grad.data();
    float* wd = p.value.data();
    const std::int64_t n = p.size();
    for (std::int64_t j = 0; j < n; ++j) {
      md[j] = beta1_ * md[j] + (1.0f - beta1_) * gd[j];
      vd[j] = beta2_ * vd[j] + (1.0f - beta2_) * gd[j] * gd[j];
      const float mhat = md[j] / bc1;
      const float vhat = vd[j] / bc2;
      wd[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

float StepDecay::lr_at(std::int64_t step) const noexcept {
  const std::int64_t k = every_ > 0 ? step / every_ : 0;
  return initial_ * std::pow(rate_, static_cast<float>(k));
}

}  // namespace duo::nn
