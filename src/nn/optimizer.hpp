#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"

namespace duo::nn {

// Base optimizer over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void step() = 0;

  void zero_grad() {
    for (auto* p : params_) p->zero_grad();
  }

  // Gradient-accumulation path for data-parallel training: add one sample's
  // externally computed parameter gradients into this optimizer's parameter
  // set (params_[i].grad += scale * grads[i]). `grads` must match the
  // parameter set in count and shapes — e.g. Module::clone() replicas expose
  // parameters() in the same order as the original. Callers reduce samples
  // serially in a fixed order, then issue a single step(); the accumulation
  // order (not the replica count) determines the result bit for bit.
  void accumulate_grad(const std::vector<Tensor>& grads, float scale = 1.0f);

  float lr() const noexcept { return lr_; }
  void set_lr(float lr) noexcept { lr_ = lr; }

 protected:
  std::vector<Parameter*> params_;
  float lr_;
};

// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9f);
  void step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba, the paper's surrogate-training optimizer [44]).
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Step-decay learning-rate schedule (paper §V-B: ×0.9 every 50 steps).
class StepDecay {
 public:
  StepDecay(float initial_lr, std::int64_t every, float rate)
      : initial_(initial_lr), every_(every), rate_(rate) {}

  float lr_at(std::int64_t step) const noexcept;

 private:
  float initial_;
  std::int64_t every_;
  float rate_;
};

}  // namespace duo::nn
