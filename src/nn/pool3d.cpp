#include "nn/pool3d.hpp"

#include "common/thread_pool.hpp"

namespace duo::nn {

namespace {
std::int64_t pool_out_dim(std::int64_t in, std::int64_t k, std::int64_t s) {
  DUO_CHECK_MSG(in >= k, "pool window larger than input");
  return (in - k) / s + 1;
}
}  // namespace

MaxPool3d::MaxPool3d(std::array<std::int64_t, 3> kernel,
                     std::array<std::int64_t, 3> stride)
    : kernel_(kernel), stride_(stride) {
  for (int a = 0; a < 3; ++a) DUO_CHECK(kernel[a] > 0 && stride[a] > 0);
}

Tensor MaxPool3d::forward(const Tensor& input) {
  DUO_CHECK_MSG(input.rank() == 4, "MaxPool3d expects [C, T, H, W]");
  cached_input_shape_ = input.shape();
  const std::int64_t c = input.shape()[0], ti = input.shape()[1],
                     hi = input.shape()[2], wi = input.shape()[3];
  const std::int64_t to = pool_out_dim(ti, kernel_[0], stride_[0]);
  const std::int64_t ho = pool_out_dim(hi, kernel_[1], stride_[1]);
  const std::int64_t wo = pool_out_dim(wi, kernel_[2], stride_[2]);

  Tensor out({c, to, ho, wo});
  argmax_.assign(static_cast<std::size_t>(out.size()), -1);
  const float* x = input.data();
  float* y = out.data();

  // Channels own disjoint slices of y and argmax_, so the channel loop is
  // safe to shard across threads with bitwise-identical results.
  compute_pool().parallel_for(static_cast<std::size_t>(c), [&](std::size_t ci) {
    const auto cc = static_cast<std::int64_t>(ci);
    const float* xc = x + cc * ti * hi * wi;
    std::int64_t oi = cc * to * ho * wo;
    for (std::int64_t ot = 0; ot < to; ++ot) {
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow, ++oi) {
          // Seed from the window's first element rather than a -inf sentinel:
          // a window of all NaN (or all -inf) never satisfies `x > best`, and
          // a sentinel seed would leave best_idx == -1, making backward
          // scatter to gx[-1]. Seeding keeps the argmax deterministic (first
          // strict maximum wins, as before) and NaN-propagating.
          const std::int64_t first =
              ((ot * stride_[0]) * hi + oh * stride_[1]) * wi + ow * stride_[2];
          float best = xc[first];
          std::int64_t best_idx = cc * ti * hi * wi + first;
          for (std::int64_t dt = 0; dt < kernel_[0]; ++dt) {
            const std::int64_t it = ot * stride_[0] + dt;
            for (std::int64_t dh = 0; dh < kernel_[1]; ++dh) {
              const std::int64_t ih = oh * stride_[1] + dh;
              for (std::int64_t dw = 0; dw < kernel_[2]; ++dw) {
                const std::int64_t iw = ow * stride_[2] + dw;
                const std::int64_t idx = (it * hi + ih) * wi + iw;
                if (xc[idx] > best) {
                  best = xc[idx];
                  best_idx = cc * ti * hi * wi + idx;
                }
              }
            }
          }
          y[oi] = best;
          argmax_[static_cast<std::size_t>(oi)] = best_idx;
        }
      }
    }
  });
  return out;
}

Tensor MaxPool3d::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(static_cast<std::size_t>(grad_output.size()) == argmax_.size(),
                "MaxPool3d: backward before forward / shape mismatch");
  Tensor grad_input(cached_input_shape_);
  float* gx = grad_input.data();
  const float* gy = grad_output.data();
  // An argmax index always lands inside its own channel's input slice, so
  // sharding the scatter per channel keeps writes disjoint.
  const std::int64_t c = cached_input_shape_[0];
  const std::size_t per_channel = argmax_.size() / static_cast<std::size_t>(c);
  compute_pool().parallel_for(static_cast<std::size_t>(c), [&](std::size_t cc) {
    const std::size_t begin = cc * per_channel;
    for (std::size_t i = begin; i < begin + per_channel; ++i) {
      gx[argmax_[i]] += gy[i];
    }
  });
  return grad_input;
}

AvgPool3d::AvgPool3d(std::array<std::int64_t, 3> kernel,
                     std::array<std::int64_t, 3> stride)
    : kernel_(kernel), stride_(stride) {
  for (int a = 0; a < 3; ++a) DUO_CHECK(kernel[a] > 0 && stride[a] > 0);
}

Tensor AvgPool3d::forward(const Tensor& input) {
  DUO_CHECK_MSG(input.rank() == 4, "AvgPool3d expects [C, T, H, W]");
  cached_input_shape_ = input.shape();
  const std::int64_t c = input.shape()[0], ti = input.shape()[1],
                     hi = input.shape()[2], wi = input.shape()[3];
  const std::int64_t to = pool_out_dim(ti, kernel_[0], stride_[0]);
  const std::int64_t ho = pool_out_dim(hi, kernel_[1], stride_[1]);
  const std::int64_t wo = pool_out_dim(wi, kernel_[2], stride_[2]);
  const float inv =
      1.0f / static_cast<float>(kernel_[0] * kernel_[1] * kernel_[2]);

  Tensor out({c, to, ho, wo});
  const float* x = input.data();
  float* y = out.data();
  compute_pool().parallel_for(static_cast<std::size_t>(c), [&](std::size_t ci) {
    const auto cc = static_cast<std::int64_t>(ci);
    const float* xc = x + cc * ti * hi * wi;
    std::int64_t oi = cc * to * ho * wo;
    for (std::int64_t ot = 0; ot < to; ++ot) {
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow, ++oi) {
          float acc = 0.0f;
          for (std::int64_t dt = 0; dt < kernel_[0]; ++dt) {
            const std::int64_t it = ot * stride_[0] + dt;
            for (std::int64_t dh = 0; dh < kernel_[1]; ++dh) {
              const std::int64_t ih = oh * stride_[1] + dh;
              const float* xrow = xc + (it * hi + ih) * wi;
              for (std::int64_t dw = 0; dw < kernel_[2]; ++dw) {
                acc += xrow[ow * stride_[2] + dw];
              }
            }
          }
          y[oi] = acc * inv;
        }
      }
    }
  });
  return out;
}

Tensor AvgPool3d::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(cached_input_shape_.size() == 4,
                "AvgPool3d: backward before forward");
  const std::int64_t c = cached_input_shape_[0], ti = cached_input_shape_[1],
                     hi = cached_input_shape_[2], wi = cached_input_shape_[3];
  const std::int64_t to = pool_out_dim(ti, kernel_[0], stride_[0]);
  const std::int64_t ho = pool_out_dim(hi, kernel_[1], stride_[1]);
  const std::int64_t wo = pool_out_dim(wi, kernel_[2], stride_[2]);
  DUO_CHECK(grad_output.shape() == Tensor::Shape({c, to, ho, wo}));
  const float inv =
      1.0f / static_cast<float>(kernel_[0] * kernel_[1] * kernel_[2]);

  Tensor grad_input(cached_input_shape_);
  float* gx = grad_input.data();
  const float* gy = grad_output.data();
  compute_pool().parallel_for(static_cast<std::size_t>(c), [&](std::size_t ci) {
    const auto cc = static_cast<std::int64_t>(ci);
    float* gxc = gx + cc * ti * hi * wi;
    std::int64_t oi = cc * to * ho * wo;
    for (std::int64_t ot = 0; ot < to; ++ot) {
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow, ++oi) {
          const float g = gy[oi] * inv;
          for (std::int64_t dt = 0; dt < kernel_[0]; ++dt) {
            const std::int64_t it = ot * stride_[0] + dt;
            for (std::int64_t dh = 0; dh < kernel_[1]; ++dh) {
              const std::int64_t ih = oh * stride_[1] + dh;
              float* gxrow = gxc + (it * hi + ih) * wi;
              for (std::int64_t dw = 0; dw < kernel_[2]; ++dw) {
                gxrow[ow * stride_[2] + dw] += g;
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  DUO_CHECK_MSG(input.rank() == 4, "GlobalAvgPool expects [C, T, H, W]");
  cached_input_shape_ = input.shape();
  const std::int64_t c = input.shape()[0];
  const std::int64_t spatial = input.size() / c;
  Tensor out({c});
  const float* x = input.data();
  for (std::int64_t cc = 0; cc < c; ++cc) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < spatial; ++i) acc += x[cc * spatial + i];
    out[cc] = static_cast<float>(acc / static_cast<double>(spatial));
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(cached_input_shape_.size() == 4,
                "GlobalAvgPool: backward before forward");
  const std::int64_t c = cached_input_shape_[0];
  DUO_CHECK(grad_output.size() == c);
  const std::int64_t spatial = shape_numel(cached_input_shape_) / c;
  const float inv = 1.0f / static_cast<float>(spatial);
  Tensor grad_input(cached_input_shape_);
  float* gx = grad_input.data();
  for (std::int64_t cc = 0; cc < c; ++cc) {
    const float g = grad_output[cc] * inv;
    for (std::int64_t i = 0; i < spatial; ++i) gx[cc * spatial + i] = g;
  }
  return grad_input;
}

}  // namespace duo::nn
