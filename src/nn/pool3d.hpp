#pragma once

#include <array>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace duo::nn {

// Max pooling over [C, T, H, W] with non-overlapping or strided windows.
class MaxPool3d final : public Module {
 public:
  MaxPool3d(std::array<std::int64_t, 3> kernel,
            std::array<std::int64_t, 3> stride);
  explicit MaxPool3d(std::array<std::int64_t, 3> kernel)
      : MaxPool3d(kernel, kernel) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<MaxPool3d>(kernel_, stride_);
  }
  std::string name() const override { return "MaxPool3d"; }

 private:
  std::array<std::int64_t, 3> kernel_;
  std::array<std::int64_t, 3> stride_;
  Tensor::Shape cached_input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

// Average pooling over [C, T, H, W].
class AvgPool3d final : public Module {
 public:
  AvgPool3d(std::array<std::int64_t, 3> kernel,
            std::array<std::int64_t, 3> stride);
  explicit AvgPool3d(std::array<std::int64_t, 3> kernel)
      : AvgPool3d(kernel, kernel) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<AvgPool3d>(kernel_, stride_);
  }
  std::string name() const override { return "AvgPool3d"; }

 private:
  std::array<std::int64_t, 3> kernel_;
  std::array<std::int64_t, 3> stride_;
  Tensor::Shape cached_input_shape_;
};

// Global average pool: [C, T, H, W] → [C].
class GlobalAvgPool final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<GlobalAvgPool>();
  }
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Tensor::Shape cached_input_shape_;
};

}  // namespace duo::nn
