#include "nn/residual.hpp"

namespace duo::nn {

Residual::Residual(std::unique_ptr<Module> body,
                   std::unique_ptr<Module> shortcut)
    : body_(std::move(body)), shortcut_(std::move(shortcut)) {
  DUO_CHECK_MSG(body_ != nullptr, "Residual: body must not be null");
}

Tensor Residual::forward(const Tensor& input) {
  Tensor main = body_->forward(input);
  Tensor side = shortcut_ ? shortcut_->forward(input) : input;
  DUO_CHECK_MSG(main.same_shape(side),
                "Residual: body and shortcut shapes differ");
  cached_sum_ = main + side;
  Tensor out = cached_sum_;
  for (auto& x : out.flat()) x = x > 0.0f ? x : 0.0f;
  return out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  DUO_CHECK_MSG(grad_output.same_shape(cached_sum_),
                "Residual: backward shape mismatch");
  Tensor grad_sum = grad_output;
  auto g = grad_sum.flat();
  const auto s = cached_sum_.flat();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (s[i] <= 0.0f) g[i] = 0.0f;
  }
  Tensor grad_input = body_->backward(grad_sum);
  if (shortcut_) {
    grad_input += shortcut_->backward(grad_sum);
  } else {
    grad_input += grad_sum;
  }
  return grad_input;
}

std::vector<Parameter*> Residual::parameters() {
  std::vector<Parameter*> out = body_->parameters();
  if (shortcut_) {
    auto p = shortcut_->parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

void Residual::set_training(bool training) {
  Module::set_training(training);
  body_->set_training(training);
  if (shortcut_) shortcut_->set_training(training);
}

}  // namespace duo::nn
