#pragma once

#include <memory>
#include <string>

#include "nn/module.hpp"

namespace duo::nn {

// Residual connection: y = relu(body(x) + shortcut(x)).
//
// `shortcut` may be null, meaning identity (requires body to preserve shape).
// This is the building block of the MiniResNet backbones and the lateral
// fusion paths in MiniSlowFast.
class Residual final : public Module {
 public:
  Residual(std::unique_ptr<Module> body, std::unique_ptr<Module> shortcut);
  explicit Residual(std::unique_ptr<Module> body)
      : Residual(std::move(body), nullptr) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void set_training(bool training) override;
  std::unique_ptr<Module> clone() const override {
    auto body = body_->clone();
    if (!body) return nullptr;
    std::unique_ptr<Module> shortcut;
    if (shortcut_) {
      shortcut = shortcut_->clone();
      if (!shortcut) return nullptr;
    }
    auto copy = std::make_unique<Residual>(std::move(body), std::move(shortcut));
    copy->set_training(training());
    return copy;
  }
  std::string name() const override { return "Residual"; }

 private:
  std::unique_ptr<Module> body_;
  std::unique_ptr<Module> shortcut_;  // nullptr = identity
  Tensor cached_sum_;                 // pre-ReLU sum
};

}  // namespace duo::nn
