#include "retrieval/ensemble.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"

namespace duo::retrieval {

void EnsembleRetrievalSystem::add_member(
    std::unique_ptr<RetrievalSystem> member) {
  DUO_CHECK_MSG(member != nullptr, "ensemble: null member");
  if (!members_.empty()) {
    DUO_CHECK_MSG(member->gallery_size() == members_.front()->gallery_size(),
                  "ensemble: members must index the same gallery");
  }
  members_.push_back(std::move(member));
}

metrics::RetrievalList EnsembleRetrievalSystem::retrieve(const video::Video& v,
                                                         std::size_t m) {
  DUO_CHECK_MSG(!members_.empty(), "ensemble: no members");
  std::unordered_map<std::int64_t, double> scores;
  for (auto& member : members_) {
    const auto list = member->retrieve(v, 2 * m);
    for (std::size_t rank = 0; rank < list.size(); ++rank) {
      // Reciprocal-rank fusion with the standard k = 60 smoothing constant.
      scores[list[rank]] += 1.0 / (60.0 + static_cast<double>(rank));
    }
  }

  std::vector<std::pair<std::int64_t, double>> ranked(scores.begin(),
                                                      scores.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  metrics::RetrievalList out;
  const std::size_t take = std::min(m, ranked.size());
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(ranked[i].first);
  return out;
}

}  // namespace duo::retrieval
