#pragma once

// Ensemble retrieval (paper §V-D, "a potential defense against DUO"):
// serve retrieval from several independently trained backbones and fuse
// their lists. An AE crafted against any one feature space must now move
// all of them, which blunts both transfer- and query-based attacks.

#include <memory>
#include <vector>

#include "retrieval/system.hpp"

namespace duo::retrieval {

class EnsembleRetrievalSystem {
 public:
  EnsembleRetrievalSystem() = default;

  // Members must already hold their (identical) galleries.
  void add_member(std::unique_ptr<RetrievalSystem> member);
  std::size_t member_count() const noexcept { return members_.size(); }
  RetrievalSystem& member(std::size_t i) { return *members_.at(i); }

  // Fused top-m via reciprocal-rank fusion: score(id) = Σ_members 1/(60 + r)
  // over each member's top-(2m) list, descending. Ties break by id.
  metrics::RetrievalList retrieve(const video::Video& v, std::size_t m);

 private:
  std::vector<std::unique_ptr<RetrievalSystem>> members_;
};

}  // namespace duo::retrieval
