#include "retrieval/index.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace duo::retrieval {

DataNode::DataNode(std::int64_t feature_dim) : dim_(feature_dim) {
  DUO_CHECK(feature_dim > 0);
}

void DataNode::add(const GalleryEntry& entry) {
  DUO_CHECK_MSG(entry.feature.size() == dim_, "DataNode: feature dim mismatch");
  ids_.push_back(entry.id);
  labels_.push_back(entry.label);
  const float* f = entry.feature.data();
  features_.insert(features_.end(), f, f + dim_);
}

bool DataNode::remove(std::int64_t id) {
  const auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it == ids_.end()) return false;
  const auto r = static_cast<std::size_t>(it - ids_.begin());
  const std::size_t last = ids_.size() - 1;
  const auto d = static_cast<std::size_t>(dim_);
  if (r != last) {
    ids_[r] = ids_[last];
    labels_[r] = labels_[last];
    std::copy_n(features_.begin() + static_cast<std::ptrdiff_t>(last * d), d,
                features_.begin() + static_cast<std::ptrdiff_t>(r * d));
  }
  ids_.pop_back();
  labels_.pop_back();
  features_.resize(last * d);
  return true;
}

std::vector<Neighbor> DataNode::query(const Tensor& feature,
                                      std::size_t m) const {
  DUO_CHECK_MSG(feature.size() == dim_, "DataNode: query dim mismatch");
  const float* q = feature.data();
  std::vector<Neighbor> all;
  all.reserve(ids_.size());
  for (std::size_t r = 0; r < ids_.size(); ++r) {
    const float* f = features_.data() + r * static_cast<std::size_t>(dim_);
    double acc = 0.0;
    for (std::int64_t i = 0; i < dim_; ++i) {
      const double d = static_cast<double>(q[i]) - f[i];
      acc += d * d;
    }
    all.push_back({ids_[r], labels_[r], acc});
  }
  const std::size_t k = std::min(m, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                    neighbor_less);
  all.resize(k);
  return all;
}

RetrievalIndex::RetrievalIndex(std::int64_t feature_dim, std::size_t num_nodes)
    : dim_(feature_dim) {
  DUO_CHECK_MSG(num_nodes >= 1, "RetrievalIndex: needs at least one node");
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) nodes_.emplace_back(feature_dim);
}

void RetrievalIndex::add(const GalleryEntry& entry) {
  nodes_[next_node_].add(entry);
  next_node_ = (next_node_ + 1) % nodes_.size();
  ++total_;
}

bool RetrievalIndex::remove(std::int64_t id) {
  for (auto& node : nodes_) {
    if (node.remove(id)) {
      --total_;
      return true;
    }
  }
  return false;
}

std::vector<Neighbor> RetrievalIndex::query(const Tensor& feature,
                                            std::size_t m,
                                            bool parallel) const {
  std::vector<std::vector<Neighbor>> partials(nodes_.size());
  if (parallel && nodes_.size() > 1) {
    compute_pool().parallel_for(nodes_.size(), [&](std::size_t i) {
      partials[i] = nodes_[i].query(feature, m);
    });
  } else {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      partials[i] = nodes_[i].query(feature, m);
    }
  }

  std::vector<Neighbor> merged;
  for (auto& p : partials) {
    merged.insert(merged.end(), p.begin(), p.end());
  }
  const std::size_t k = std::min(m, merged.size());
  std::partial_sort(merged.begin(), merged.begin() + static_cast<long>(k),
                    merged.end(), neighbor_less);
  merged.resize(k);
  return merged;
}

}  // namespace duo::retrieval
