#include "retrieval/index.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "models/serialization.hpp"

namespace duo::retrieval {

DataNode::DataNode(std::int64_t feature_dim) : dim_(feature_dim) {
  DUO_CHECK(feature_dim > 0);
}

void DataNode::add(const GalleryEntry& entry) {
  DUO_CHECK_MSG(entry.feature.size() == dim_, "DataNode: feature dim mismatch");
  ids_.push_back(entry.id);
  labels_.push_back(entry.label);
  const float* f = entry.feature.data();
  features_.insert(features_.end(), f, f + dim_);
}

bool DataNode::remove(std::int64_t id) {
  const auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it == ids_.end()) return false;
  const auto r = static_cast<std::size_t>(it - ids_.begin());
  const std::size_t last = ids_.size() - 1;
  const auto d = static_cast<std::size_t>(dim_);
  if (r != last) {
    ids_[r] = ids_[last];
    labels_[r] = labels_[last];
    std::copy_n(features_.begin() + static_cast<std::ptrdiff_t>(last * d), d,
                features_.begin() + static_cast<std::ptrdiff_t>(r * d));
  }
  ids_.pop_back();
  labels_.pop_back();
  features_.resize(last * d);
  return true;
}

std::vector<Neighbor> DataNode::query(const Tensor& feature,
                                      std::size_t m) const {
  DUO_CHECK_MSG(feature.size() == dim_, "DataNode: query dim mismatch");
  const float* q = feature.data();
  std::vector<Neighbor> all;
  all.reserve(ids_.size());
  for (std::size_t r = 0; r < ids_.size(); ++r) {
    const float* f = features_.data() + r * static_cast<std::size_t>(dim_);
    double acc = 0.0;
    for (std::int64_t i = 0; i < dim_; ++i) {
      const double d = static_cast<double>(q[i]) - f[i];
      acc += d * d;
    }
    all.push_back({ids_[r], labels_[r], acc});
  }
  const std::size_t k = std::min(m, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                    neighbor_less);
  all.resize(k);
  return all;
}

bool DataNode::restore(std::vector<std::int64_t> ids, std::vector<int> labels,
                       std::vector<float> features) {
  const auto d = static_cast<std::size_t>(dim_);
  if (labels.size() != ids.size() || features.size() != ids.size() * d) {
    return false;
  }
  ids_ = std::move(ids);
  labels_ = std::move(labels);
  features_ = std::move(features);
  return true;
}

RetrievalIndex::RetrievalIndex(std::int64_t feature_dim, std::size_t num_nodes)
    : dim_(feature_dim) {
  DUO_CHECK_MSG(num_nodes >= 1, "RetrievalIndex: needs at least one node");
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) nodes_.emplace_back(feature_dim);
}

void RetrievalIndex::add(const GalleryEntry& entry) {
  nodes_[next_node_].add(entry);
  next_node_ = (next_node_ + 1) % nodes_.size();
  ++total_;
}

bool RetrievalIndex::remove(std::int64_t id) {
  for (auto& node : nodes_) {
    if (node.remove(id)) {
      --total_;
      return true;
    }
  }
  return false;
}

std::vector<Neighbor> RetrievalIndex::query(const Tensor& feature,
                                            std::size_t m,
                                            bool parallel) const {
  std::vector<std::vector<Neighbor>> partials(nodes_.size());
  if (parallel && nodes_.size() > 1) {
    compute_pool().parallel_for(nodes_.size(), [&](std::size_t i) {
      partials[i] = nodes_[i].query(feature, m);
    });
  } else {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      partials[i] = nodes_[i].query(feature, m);
    }
  }

  std::vector<Neighbor> merged;
  for (auto& p : partials) {
    merged.insert(merged.end(), p.begin(), p.end());
  }
  const std::size_t k = std::min(m, merged.size());
  std::partial_sort(merged.begin(), merged.begin() + static_cast<long>(k),
                    merged.end(), neighbor_less);
  merged.resize(k);
  return merged;
}

namespace {
// Kind tag leading every save_state payload, so loading a flat snapshot into
// an IVF index (or vice versa) is rejected instead of misparsed.
constexpr std::int64_t kFlatStateTag = 1;
}  // namespace

void RetrievalIndex::save_state(std::ostream& out) const {
  namespace mio = models::io;
  mio::write_i64(out, kFlatStateTag);
  mio::write_i64(out, dim_);
  mio::write_i64(out, static_cast<std::int64_t>(nodes_.size()));
  mio::write_i64(out, static_cast<std::int64_t>(next_node_));
  for (const auto& node : nodes_) {
    mio::write_i64_vec(out, node.ids());
    mio::write_i32_vec(out, node.labels());
    mio::write_f32_vec(out, node.features());
  }
}

bool RetrievalIndex::load_state(std::istream& in) {
  namespace mio = models::io;
  std::int64_t tag = 0;
  std::int64_t dim = 0;
  std::int64_t node_count = 0;
  std::int64_t next_node = 0;
  if (!mio::read_i64(in, tag) || tag != kFlatStateTag) return false;
  if (!mio::read_i64(in, dim) || dim != dim_) return false;
  if (!mio::read_i64(in, node_count) ||
      node_count != static_cast<std::int64_t>(nodes_.size())) {
    return false;
  }
  if (!mio::read_i64(in, next_node) || next_node < 0 ||
      next_node >= node_count) {
    return false;
  }

  // All-or-nothing: stage every shard, then commit.
  std::vector<DataNode> staged;
  staged.reserve(nodes_.size());
  std::size_t total = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    std::vector<std::int64_t> ids;
    std::vector<int> labels;
    std::vector<float> features;
    if (!mio::read_i64_vec(in, ids) || !mio::read_i32_vec(in, labels) ||
        !mio::read_f32_vec(in, features)) {
      return false;
    }
    DataNode node(dim_);
    if (!node.restore(std::move(ids), std::move(labels), std::move(features))) {
      return false;
    }
    total += node.size();
    staged.push_back(std::move(node));
  }
  nodes_ = std::move(staged);
  next_node_ = static_cast<std::size_t>(next_node);
  total_ = total;
  return true;
}

}  // namespace duo::retrieval
