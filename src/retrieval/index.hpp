#pragma once

// Distributed retrieval index (Fig. 1): gallery features are sharded over
// DataNodes; a query fans out to every node (scatter), each node returns its
// local top-m by L2 distance, and the results are merged (gather) into the
// global top-m list.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace duo::retrieval {

struct GalleryEntry {
  std::int64_t id = -1;
  int label = -1;
  Tensor feature;  // [D]
};

struct Neighbor {
  std::int64_t id = -1;
  int label = -1;
  double distance = 0.0;
};

// One storage shard. Holds features contiguously for cache-friendly scans.
class DataNode {
 public:
  explicit DataNode(std::int64_t feature_dim);

  void add(const GalleryEntry& entry);
  std::size_t size() const noexcept { return ids_.size(); }

  // Local top-m nearest neighbors by L2 distance (ties broken by id for
  // determinism). m may exceed size(); fewer results are returned then.
  std::vector<Neighbor> query(const Tensor& feature, std::size_t m) const;

 private:
  std::int64_t dim_;
  std::vector<std::int64_t> ids_;
  std::vector<int> labels_;
  std::vector<float> features_;  // row-major [size, dim]
};

// The scatter-gather index across nodes.
class RetrievalIndex {
 public:
  // `num_nodes` shards; entries are assigned round-robin by insertion order.
  RetrievalIndex(std::int64_t feature_dim, std::size_t num_nodes);

  void add(const GalleryEntry& entry);
  std::size_t size() const noexcept { return total_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::int64_t feature_dim() const noexcept { return dim_; }

  // Global top-m: scatter to all nodes (in parallel when parallel=true),
  // gather and merge.
  std::vector<Neighbor> query(const Tensor& feature, std::size_t m,
                              bool parallel = false) const;

 private:
  std::int64_t dim_;
  std::vector<DataNode> nodes_;
  std::size_t next_node_ = 0;
  std::size_t total_ = 0;
};

}  // namespace duo::retrieval
