#pragma once

// Distributed retrieval index (Fig. 1): gallery features are sharded over
// DataNodes; a query fans out to every node (scatter), each node returns its
// local top-m by squared L2 distance, and the results are merged (gather)
// into the global top-m list.
//
// Two implementations live behind the GalleryIndex interface:
//  - RetrievalIndex (this header): exact flat scan, entries round-robin over
//    DataNode shards. O(N·D) per query — the paper's ~10^3-video victim.
//  - IvfIndex (ivf_index.hpp): two-stage IVF — seeded k-means coarse cells,
//    nprobe pruning, int8 scalar-quantized cell scans, exact float re-rank.
//    Sub-linear scans for the million-video north star.
// RetrievalSystem picks one via IndexConfig; every caller above it (serve
// layer, attacks, evaluate_map) is implementation-agnostic.

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace duo::retrieval {

struct GalleryEntry {
  std::int64_t id = -1;
  int label = -1;
  Tensor feature;  // [D]
};

struct Neighbor {
  std::int64_t id = -1;
  int label = -1;
  // Squared L2 distance. Kept squared on purpose: the monotone sqrt never
  // changes an ordering, and every caller only compares. Name the unit so
  // mixed-metric bugs (e.g. a quantized scan feeding unsquared distances
  // into the merge) fail review instead of silently reordering lists.
  double distance_sq = 0.0;
};

// Total order over neighbors: ascending distance_sq, ties broken by id, NaN
// distances sinking last (among themselves, again by id). The std::isnan
// branches matter: raw `a < b` on doubles is NOT a strict weak ordering once
// a NaN appears (NaN is incomparable with everything, but finite values
// still compare — equivalence stops being transitive), which is undefined
// behavior inside std::partial_sort and in practice returned NaN-poisoned
// entries ranked above strictly closer finite ones. One NaN feature value in
// a query or gallery vector is exactly the corruption class the MaxPool3d
// fix (PR 6) proved reachable, so the hot scan path must stay total.
inline bool neighbor_less(const Neighbor& a, const Neighbor& b) noexcept {
  const bool a_nan = std::isnan(a.distance_sq);
  const bool b_nan = std::isnan(b.distance_sq);
  if (a_nan != b_nan) return b_nan;  // non-NaN before NaN
  if (!a_nan && a.distance_sq != b.distance_sq) {
    return a.distance_sq < b.distance_sq;
  }
  return a.id < b.id;
}

// Which index implementation RetrievalSystem builds, plus its knobs.
enum class IndexKind {
  kFlat,  // exact scatter-gather scan (RetrievalIndex)
  kIvf,   // coarse-quantized two-stage index (IvfIndex)
};

struct IndexConfig {
  IndexKind kind = IndexKind::kFlat;
  // Shard count: DataNodes for kFlat; cell-scan worker shards for kIvf.
  std::size_t num_nodes = 4;

  // --- kIvf only ---------------------------------------------------------
  // Coarse k-means cell count (clamped to the gallery size at train time).
  std::size_t num_cells = 64;
  // Cells scanned per query; nprobe >= num_cells degrades gracefully to an
  // exhaustive (but still cell-pruned) scan with exact re-rank.
  std::size_t nprobe = 8;
  // int8 scalar quantization of the cell-scan feature store. The exact
  // float store is always retained for the re-rank stage.
  bool quantize = true;
  // Candidate pool per shard = rerank × m when quantized (the approximate
  // scan over-fetches, the exact re-rank reorders); 1 disables over-fetch.
  std::size_t rerank = 4;
  // k-means training: sample cap, Lloyd iterations, and the seed for the
  // sample/init draws. Deterministic: same gallery + config → same cells.
  std::size_t train_sample = 4096;
  int kmeans_iters = 10;
  std::uint64_t seed = 42;
  // Auto-train once this many entries are buffered by incremental add()
  // calls (bulk ingest paths call finalize() instead). Before training the
  // index answers with an exact flat scan over the buffer.
  std::size_t train_after = 1024;
  // nprobe used while the index is in degraded mode (set_degraded(true)):
  // the serve layer's graceful-degradation ladder trades recall for latency
  // under sustained queue pressure. Clamped to [1, nprobe] at query time so
  // degrading never *increases* work.
  std::size_t degraded_nprobe = 1;
};

// Interface RetrievalSystem programs against. Implementations must be
// deterministic: query results are a pure function of index content and
// arguments — independent of shard count, thread count, and insertion /
// removal history (neighbor_less is total, ids are unique).
class GalleryIndex {
 public:
  virtual ~GalleryIndex() = default;

  virtual void add(const GalleryEntry& entry) = 0;
  // Remove by id; false when the id is not present. O(shard) for the flat
  // index, O(1) lookup + O(D) row swap for IVF.
  virtual bool remove(std::int64_t id) = 0;
  virtual std::size_t size() const noexcept = 0;
  virtual std::int64_t feature_dim() const noexcept = 0;
  virtual std::size_t shard_count() const noexcept = 0;

  // Global top-m (ascending distance_sq, ties by id). m may exceed size();
  // m == 0 returns empty. `parallel` fans the per-shard scans out on
  // compute_pool().
  virtual std::vector<Neighbor> query(const Tensor& feature, std::size_t m,
                                      bool parallel = false) const = 0;

  // One-time bulk-ingest hook: trains an untrained IVF index; no-op for the
  // flat index (and for an already-trained IVF one).
  virtual void finalize() {}

  // Graceful-degradation hook for the serve layer: while degraded, an
  // implementation may trade recall for latency (IvfIndex probes
  // degraded_nprobe cells instead of nprobe). Returns whether the
  // implementation honors the request; the exact flat index has no cheaper
  // mode and reports false. Must be safe to call concurrently with query().
  virtual bool set_degraded(bool on) {
    (void)on;
    return false;
  }
  virtual bool degraded() const noexcept { return false; }

  // Durable snapshots. save_state streams the complete index content (for
  // IVF: centroids, int8 codes and scales, pending buffer, trained flag;
  // the degraded bit is recorded for observability only). load_state
  // replaces this index's content with the stream's; it returns false —
  // leaving the index untouched — on a kind/dim mismatch or a malformed
  // stream. A loaded index answers every query bitwise identically to the
  // saved one, but always restores NON-degraded with the configured nprobe:
  // degraded mode is a live-load response and re-enters only via the serve
  // layer's hysteresis ladder. Use save_index/load_index below for the
  // fingerprint-validated atomic file wrapper.
  virtual void save_state(std::ostream& out) const = 0;
  virtual bool load_state(std::istream& in) = 0;
};

// Build the index described by `config` (kFlat → RetrievalIndex, kIvf →
// IvfIndex). Defined in ivf_index.cpp.
std::unique_ptr<GalleryIndex> make_index(std::int64_t feature_dim,
                                         const IndexConfig& config);

// Durable index files (index_io.cpp): magic + FNV-1a fingerprint over the
// save_state payload, committed via models::io::atomic_write (flush + fsync
// + rename), so a crash mid-save never corrupts the previous snapshot and a
// truncated/bit-flipped file is rejected at load instead of silently
// answering queries from garbage. load_index leaves `index` untouched on
// failure.
bool save_index(const GalleryIndex& index, const std::string& path);
bool load_index(GalleryIndex& index, const std::string& path);

// One storage shard. Holds features contiguously for cache-friendly scans.
class DataNode {
 public:
  explicit DataNode(std::int64_t feature_dim);

  void add(const GalleryEntry& entry);
  // Swap-remove by id (row order is not an observable: results are totally
  // ordered). Returns false when the id is not stored here.
  bool remove(std::int64_t id);
  std::size_t size() const noexcept { return ids_.size(); }

  // Local top-m nearest neighbors by squared L2 distance (neighbor_less
  // order). m may exceed size(); fewer results are returned then.
  std::vector<Neighbor> query(const Tensor& feature, std::size_t m) const;

  // Serialization hooks for RetrievalIndex::save_state / load_state.
  const std::vector<std::int64_t>& ids() const noexcept { return ids_; }
  const std::vector<int>& labels() const noexcept { return labels_; }
  const std::vector<float>& features() const noexcept { return features_; }
  // Replace the shard's content wholesale; false (shard untouched) when the
  // vector sizes are mutually inconsistent with the shard's feature dim.
  bool restore(std::vector<std::int64_t> ids, std::vector<int> labels,
               std::vector<float> features);

 private:
  std::int64_t dim_;
  std::vector<std::int64_t> ids_;
  std::vector<int> labels_;
  std::vector<float> features_;  // row-major [size, dim]
};

// The exact scatter-gather index across nodes.
class RetrievalIndex : public GalleryIndex {
 public:
  // `num_nodes` shards; entries are assigned round-robin by insertion order.
  RetrievalIndex(std::int64_t feature_dim, std::size_t num_nodes);

  void add(const GalleryEntry& entry) override;
  bool remove(std::int64_t id) override;
  std::size_t size() const noexcept override { return total_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t shard_count() const noexcept override { return nodes_.size(); }
  std::int64_t feature_dim() const noexcept override { return dim_; }

  // Global top-m: scatter to all nodes (in parallel when parallel=true),
  // gather and merge.
  std::vector<Neighbor> query(const Tensor& feature, std::size_t m,
                              bool parallel = false) const override;

  // Per-shard rows plus the round-robin cursor, so add() after a load lands
  // on the same shard it would have without the save/load cycle.
  void save_state(std::ostream& out) const override;
  bool load_state(std::istream& in) override;

 private:
  std::int64_t dim_;
  std::vector<DataNode> nodes_;
  std::size_t next_node_ = 0;
  std::size_t total_ = 0;
};

}  // namespace duo::retrieval
