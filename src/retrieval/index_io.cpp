#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "retrieval/index.hpp"

#include "models/serialization.hpp"

namespace duo::retrieval {
namespace {

// 8-byte magic for durable index snapshot files (versioned like the model
// checkpoint magic "DUOW1" in models/serialization.cpp).
constexpr char kIndexMagic[8] = {'D', 'U', 'O', 'I', 'X', '1', '\0', '\0'};

}  // namespace

bool save_index(const GalleryIndex& index, const std::string& path) {
  namespace mio = models::io;
  // Serialize to memory first so the fingerprint can lead the payload: a
  // loader then validates before parsing, and a crash mid-save can never
  // publish a file whose digest matches truncated bytes.
  std::ostringstream payload_out(std::ios::binary);
  index.save_state(payload_out);
  const std::string payload = payload_out.str();
  return mio::atomic_write(path, [&](std::ostream& out) {
    out.write(kIndexMagic, sizeof(kIndexMagic));
    mio::write_u64(out, mio::fnv1a(payload.data(), payload.size()));
    mio::write_i64(out, static_cast<std::int64_t>(payload.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  });
}

bool load_index(GalleryIndex& index, const std::string& path) {
  namespace mio = models::io;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return false;
  }
  std::uint64_t fingerprint = 0;
  std::int64_t size = 0;
  if (!mio::read_u64(in, fingerprint) || !mio::read_i64(in, size) || size < 0 ||
      size > std::numeric_limits<std::int32_t>::max()) {
    return false;
  }
  std::string payload(static_cast<std::size_t>(size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in) return false;
  if (mio::fnv1a(payload.data(), payload.size()) != fingerprint) return false;

  std::istringstream payload_in(payload, std::ios::binary);
  return index.load_state(payload_in);
}

}  // namespace duo::retrieval
