#include "retrieval/ivf_index.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "models/serialization.hpp"

namespace duo::retrieval {
namespace {

double l2_sq(const float* a, const float* b, std::int64_t dim) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

// NaN-safe total order on (distance, index) pairs — the centroid-ranking
// analogue of neighbor_less.
bool dist_index_less(double da, std::size_t ia, double db, std::size_t ib) {
  const bool a_nan = std::isnan(da);
  const bool b_nan = std::isnan(db);
  if (a_nan != b_nan) return b_nan;
  if (!a_nan && da != db) return da < db;
  return ia < ib;
}

// Per-row max-abs int8 quantization. Non-finite values (the NaN corruption
// class the scan must survive) code to 0 — the approximate scan then sees a
// plausible small distance, and the exact re-rank restores the NaN, which
// neighbor_less sinks last.
void quantize_row(const float* f, std::int64_t dim, std::int8_t* codes,
                  float* scale_out) {
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < dim; ++i) {
    const float a = std::fabs(f[i]);
    if (std::isfinite(a) && a > max_abs) max_abs = a;
  }
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 0.0f;
  *scale_out = scale;
  for (std::int64_t i = 0; i < dim; ++i) {
    if (scale == 0.0f || !std::isfinite(f[i])) {
      codes[i] = 0;
      continue;
    }
    const long q = std::lround(f[i] / scale);
    codes[i] = static_cast<std::int8_t>(std::clamp(q, -127L, 127L));
  }
}

}  // namespace

IvfIndex::IvfIndex(std::int64_t feature_dim, IndexConfig config)
    : dim_(feature_dim),
      config_(std::move(config)),
      shards_(std::max<std::size_t>(config_.num_nodes, 1)) {
  DUO_CHECK(feature_dim > 0);
  DUO_CHECK_MSG(config_.num_cells >= 1, "IvfIndex: needs at least one cell");
}

void IvfIndex::append_row(Cell& cell, std::int32_t cell_id, std::int64_t id,
                          int label, const float* f) {
  const auto row = cell.ids.size();
  cell.ids.push_back(id);
  cell.labels.push_back(label);
  cell.features.insert(cell.features.end(), f, f + dim_);
  if (config_.quantize && cell_id >= 0) {
    cell.codes.resize(cell.codes.size() + static_cast<std::size_t>(dim_));
    cell.scales.resize(cell.scales.size() + 1);
    quantize_row(f, dim_,
                 cell.codes.data() + row * static_cast<std::size_t>(dim_),
                 &cell.scales[row]);
  }
  const bool inserted = loc_.emplace(id, Loc{cell_id, row}).second;
  DUO_CHECK_MSG(inserted, "IvfIndex: duplicate gallery id");
}

void IvfIndex::swap_remove_row(Cell& cell, std::int32_t cell_id,
                               std::size_t row) {
  const std::size_t last = cell.ids.size() - 1;
  const auto d = static_cast<std::size_t>(dim_);
  if (row != last) {
    cell.ids[row] = cell.ids[last];
    cell.labels[row] = cell.labels[last];
    std::copy_n(cell.features.begin() + static_cast<std::ptrdiff_t>(last * d),
                d, cell.features.begin() + static_cast<std::ptrdiff_t>(row * d));
    if (!cell.codes.empty()) {
      std::copy_n(cell.codes.begin() + static_cast<std::ptrdiff_t>(last * d), d,
                  cell.codes.begin() + static_cast<std::ptrdiff_t>(row * d));
      cell.scales[row] = cell.scales[last];
    }
    loc_[cell.ids[row]] = Loc{cell_id, row};
  }
  cell.ids.pop_back();
  cell.labels.pop_back();
  cell.features.resize(last * d);
  if (!cell.codes.empty()) {
    cell.codes.resize(last * d);
    cell.scales.pop_back();
  }
}

void IvfIndex::add(const GalleryEntry& entry) {
  DUO_CHECK_MSG(entry.feature.size() == dim_, "IvfIndex: feature dim mismatch");
  if (trained_) {
    const auto c = static_cast<std::int32_t>(nearest_cell(entry.feature.data()));
    append_row(cells_[static_cast<std::size_t>(c)], c, entry.id, entry.label,
               entry.feature.data());
    return;
  }
  append_row(pending_, -1, entry.id, entry.label, entry.feature.data());
  if (config_.train_after > 0 && pending_.ids.size() >= config_.train_after) {
    train();
  }
}

bool IvfIndex::remove(std::int64_t id) {
  const auto it = loc_.find(id);
  if (it == loc_.end()) return false;
  const Loc loc = it->second;
  loc_.erase(it);
  if (loc.cell < 0) {
    swap_remove_row(pending_, -1, loc.row);
  } else {
    swap_remove_row(cells_[static_cast<std::size_t>(loc.cell)], loc.cell,
                    loc.row);
  }
  return true;
}

std::size_t IvfIndex::cell_size(std::size_t cell) const {
  DUO_CHECK(cell < cells_.size());
  return cells_[cell].ids.size();
}

void IvfIndex::finalize() {
  if (!trained_ && !pending_.ids.empty()) train();
}

void IvfIndex::retrain() {
  // Fold every cell back into the pending buffer (in cell order — training
  // is sample-order dependent, so keep the fold deterministic) and train
  // from scratch on the full current content.
  Cell all;
  auto fold = [&](Cell& src) {
    all.ids.insert(all.ids.end(), src.ids.begin(), src.ids.end());
    all.labels.insert(all.labels.end(), src.labels.begin(), src.labels.end());
    all.features.insert(all.features.end(), src.features.begin(),
                        src.features.end());
  };
  fold(pending_);
  for (auto& cell : cells_) fold(cell);
  cells_.clear();
  centroids_.clear();
  trained_ = false;
  pending_ = std::move(all);
  loc_.clear();
  for (std::size_t r = 0; r < pending_.ids.size(); ++r) {
    loc_.emplace(pending_.ids[r], Loc{-1, r});
  }
  if (!pending_.ids.empty()) train();
}

void IvfIndex::train() {
  const std::size_t n = pending_.ids.size();
  DUO_CHECK_MSG(!trained_, "IvfIndex: already trained");
  DUO_CHECK_MSG(n > 0, "IvfIndex: cannot train on an empty gallery");
  const auto d = static_cast<std::size_t>(dim_);
  const std::size_t kcells = std::min(config_.num_cells, n);
  Rng rng(config_.seed);

  // Training sample: everything when the gallery fits the cap, else a
  // partial Fisher-Yates draw without replacement (deterministic in
  // insertion order + seed).
  std::vector<std::size_t> sample(n);
  for (std::size_t i = 0; i < n; ++i) sample[i] = i;
  if (n > config_.train_sample) {
    for (std::size_t i = 0; i < config_.train_sample; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_index(n - i));
      std::swap(sample[i], sample[j]);
    }
    sample.resize(config_.train_sample);
  }
  const std::size_t s = sample.size();
  const auto row_of = [&](std::size_t si) {
    return pending_.features.data() + sample[si] * d;
  };

  // Init: kcells distinct sample points, chosen by a seeded shuffle.
  std::vector<std::size_t> init(s);
  for (std::size_t i = 0; i < s; ++i) init[i] = i;
  rng.shuffle(init);
  centroids_.assign(kcells * d, 0.0f);
  for (std::size_t c = 0; c < kcells; ++c) {
    std::copy_n(row_of(init[c % s]), d, centroids_.data() + c * d);
  }

  // Lloyd sweeps. Assignment ties resolve to the lowest cell id; sums are
  // accumulated in double in sample order; an empty cell reseeds from the
  // sample point farthest from its current centroid — all deterministic.
  std::vector<std::size_t> assign(s, 0);
  std::vector<double> dist_to_own(s, 0.0);
  std::vector<double> sums(kcells * d);
  std::vector<std::size_t> counts(kcells);
  for (int iter = 0; iter < std::max(config_.kmeans_iters, 1); ++iter) {
    bool changed = false;
    for (std::size_t si = 0; si < s; ++si) {
      const float* f = row_of(si);
      std::size_t best = 0;
      double best_d = l2_sq(f, centroids_.data(), dim_);
      for (std::size_t c = 1; c < kcells; ++c) {
        const double dc = l2_sq(f, centroids_.data() + c * d, dim_);
        if (dist_index_less(dc, c, best_d, best)) {
          best_d = dc;
          best = c;
        }
      }
      if (assign[si] != best) changed = true;
      assign[si] = best;
      dist_to_own[si] = best_d;
    }
    for (std::size_t c = 0; c < kcells; ++c) counts[c] = 0;
    for (std::size_t si = 0; si < s; ++si) ++counts[assign[si]];
    for (std::size_t c = 0; c < kcells; ++c) {
      if (counts[c] != 0) continue;
      // Reseed the empty cell on the worst-served point and steal it.
      std::size_t far = 0;
      for (std::size_t si = 1; si < s; ++si) {
        if (dist_index_less(dist_to_own[far], far, dist_to_own[si], si)) {
          far = si;
        }
      }
      --counts[assign[far]];
      assign[far] = c;
      counts[c] = 1;
      dist_to_own[far] = 0.0;
      changed = true;
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    for (std::size_t si = 0; si < s; ++si) {
      const float* f = row_of(si);
      double* sum = sums.data() + assign[si] * d;
      for (std::size_t i = 0; i < d; ++i) sum[i] += f[i];
    }
    for (std::size_t c = 0; c < kcells; ++c) {
      for (std::size_t i = 0; i < d; ++i) {
        centroids_[c * d + i] = static_cast<float>(
            sums[c * d + i] / static_cast<double>(counts[c]));
      }
    }
    if (!changed && iter > 0) break;
  }

  // Flush the buffer into its cells. Nearest-centroid choices are
  // independent per row, so they fan out; rows append serially in insertion
  // order afterwards (cell content order is not observable either way —
  // neighbor_less is total — but keep it reproducible for debugging).
  trained_ = true;
  cells_.assign(kcells, Cell{});
  Cell buffered = std::move(pending_);
  pending_ = Cell{};
  loc_.clear();
  const std::size_t total = buffered.ids.size();
  std::vector<std::int32_t> target(total);
  compute_pool().parallel_for(total, [&](std::size_t r) {
    target[r] =
        static_cast<std::int32_t>(nearest_cell(buffered.features.data() + r * d));
  });
  for (std::size_t r = 0; r < total; ++r) {
    append_row(cells_[static_cast<std::size_t>(target[r])], target[r],
               buffered.ids[r], buffered.labels[r],
               buffered.features.data() + r * d);
  }
}

std::size_t IvfIndex::nearest_cell(const float* f) const {
  const auto d = static_cast<std::size_t>(dim_);
  std::size_t best = 0;
  double best_d = l2_sq(f, centroids_.data(), dim_);
  for (std::size_t c = 1; c < cells_.size(); ++c) {
    const double dc = l2_sq(f, centroids_.data() + c * d, dim_);
    if (dist_index_less(dc, c, best_d, best)) {
      best_d = dc;
      best = c;
    }
  }
  return best;
}

void IvfIndex::scan_cell(const Cell& cell, std::int32_t cell_id, const float* q,
                         bool quantized, std::vector<Candidate>& out) const {
  const auto d = static_cast<std::size_t>(dim_);
  for (std::size_t r = 0; r < cell.ids.size(); ++r) {
    double acc = 0.0;
    if (quantized) {
      const std::int8_t* codes = cell.codes.data() + r * d;
      const double scale = cell.scales[r];
      for (std::size_t i = 0; i < d; ++i) {
        const double diff = static_cast<double>(q[i]) - codes[i] * scale;
        acc += diff * diff;
      }
    } else {
      acc = l2_sq(q, cell.features.data() + r * d, dim_);
    }
    out.push_back({Neighbor{cell.ids[r], cell.labels[r], acc}, cell_id, r});
  }
}

double IvfIndex::exact_distance_sq(const Candidate& c, const float* q) const {
  const Cell& cell = c.cell < 0 ? pending_ : cells_[static_cast<std::size_t>(c.cell)];
  return l2_sq(q, cell.features.data() + c.row * static_cast<std::size_t>(dim_),
               dim_);
}

std::vector<Neighbor> IvfIndex::query(const Tensor& feature, std::size_t m,
                                      bool parallel) const {
  return query_with_stats(feature, m, parallel, nullptr);
}

std::vector<Neighbor> IvfIndex::query_with_stats(const Tensor& feature,
                                                 std::size_t m, bool parallel,
                                                 IvfQueryStats* stats) const {
  DUO_CHECK_MSG(feature.size() == dim_, "IvfIndex: query dim mismatch");
  if (stats != nullptr) *stats = IvfQueryStats{};
  const float* q = feature.data();

  // Untrained: exact flat scan over the buffer. Correct (and for the small
  // galleries that land here, faster) — the index degrades to RetrievalIndex
  // semantics until training.
  if (!trained_) {
    std::vector<Candidate> all;
    all.reserve(pending_.ids.size());
    scan_cell(pending_, -1, q, /*quantized=*/false, all);
    std::vector<Neighbor> result;
    result.reserve(all.size());
    for (const auto& c : all) result.push_back(c.approx);
    const std::size_t k = std::min(m, result.size());
    std::partial_sort(result.begin(),
                      result.begin() + static_cast<long>(k), result.end(),
                      neighbor_less);
    result.resize(k);
    if (stats != nullptr) stats->vectors_scanned = pending_.ids.size();
    return result;
  }

  if (m == 0) {
    if (stats != nullptr) stats->trained = true;
    return {};
  }

  // Stage 1: rank centroids, keep the nprobe nearest cells. Degraded mode
  // (serve-layer pressure relief) probes min(degraded_nprobe, nprobe) cells
  // instead — strictly less work, the recall-for-latency trade. The flag is
  // read once here, so each query is internally consistent.
  const std::size_t kcells = cells_.size();
  const std::size_t want =
      degraded() ? std::max<std::size_t>(
                       1, std::min(config_.degraded_nprobe, config_.nprobe))
                 : std::max<std::size_t>(config_.nprobe, 1);
  const std::size_t nprobe = std::min(want, kcells);
  const auto d = static_cast<std::size_t>(dim_);
  std::vector<std::pair<double, std::size_t>> ranked(kcells);
  for (std::size_t c = 0; c < kcells; ++c) {
    ranked[c] = {l2_sq(q, centroids_.data() + c * d, dim_), c};
  }
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(nprobe),
                    ranked.end(),
                    [](const std::pair<double, std::size_t>& a,
                       const std::pair<double, std::size_t>& b) {
                      return dist_index_less(a.first, a.second, b.first,
                                             b.second);
                    });

  // Stage 2: scan the probed cells, sharded by cell ownership (cell %
  // shards). Each shard prunes to its own candidate pool; pools merge in
  // shard order, so the result is independent of the fan-out.
  const std::size_t pool =
      config_.quantize ? m * std::max<std::size_t>(config_.rerank, 1) : m;
  std::vector<std::vector<std::size_t>> probes_by_shard(shards_);
  for (std::size_t p = 0; p < nprobe; ++p) {
    const std::size_t cell = ranked[p].second;
    probes_by_shard[cell % shards_].push_back(cell);
  }
  std::vector<std::vector<Candidate>> shard_pools(shards_);
  std::vector<std::size_t> shard_scanned(shards_, 0);
  const auto scan_shard = [&](std::size_t sh) {
    std::vector<Candidate>& pool_out = shard_pools[sh];
    for (const std::size_t cell : probes_by_shard[sh]) {
      shard_scanned[sh] += cells_[cell].ids.size();
      scan_cell(cells_[cell], static_cast<std::int32_t>(cell), q,
                config_.quantize, pool_out);
    }
    const std::size_t keep = std::min(pool, pool_out.size());
    std::partial_sort(pool_out.begin(),
                      pool_out.begin() + static_cast<long>(keep),
                      pool_out.end(), [](const Candidate& a, const Candidate& b) {
                        return neighbor_less(a.approx, b.approx);
                      });
    pool_out.resize(keep);
  };
  if (parallel && shards_ > 1) {
    compute_pool().parallel_for(shards_, scan_shard);
  } else {
    for (std::size_t sh = 0; sh < shards_; ++sh) scan_shard(sh);
  }

  // Stage 3: exact float re-rank of the merged candidate pool.
  std::vector<Neighbor> result;
  std::size_t reranked = 0;
  for (const auto& shard_pool : shard_pools) {
    for (const auto& c : shard_pool) {
      result.push_back(
          Neighbor{c.approx.id, c.approx.label, exact_distance_sq(c, q)});
      ++reranked;
    }
  }
  const std::size_t k = std::min(m, result.size());
  std::partial_sort(result.begin(), result.begin() + static_cast<long>(k),
                    result.end(), neighbor_less);
  result.resize(k);

  if (stats != nullptr) {
    stats->trained = true;
    stats->cells_probed = nprobe;
    for (const std::size_t v : shard_scanned) stats->vectors_scanned += v;
    stats->candidates_reranked = reranked;
  }
  return result;
}

namespace {

constexpr std::int64_t kIvfStateTag = 2;  // RetrievalIndex uses tag 1

void write_cell_rows(std::ostream& out, const std::vector<std::int64_t>& ids,
                     const std::vector<int>& labels,
                     const std::vector<float>& features,
                     const std::vector<std::int8_t>& codes,
                     const std::vector<float>& scales) {
  namespace mio = duo::models::io;
  mio::write_i64_vec(out, ids);
  mio::write_i32_vec(out, labels);
  mio::write_f32_vec(out, features);
  mio::write_i8_vec(out, codes);
  mio::write_f32_vec(out, scales);
}

}  // namespace

void IvfIndex::save_state(std::ostream& out) const {
  namespace mio = models::io;
  mio::write_i64(out, kIvfStateTag);
  mio::write_i64(out, dim_);
  mio::write_i64(out, config_.quantize ? 1 : 0);
  mio::write_i64(out, trained_ ? 1 : 0);
  // Observability only: load_state always restores non-degraded (degraded
  // mode is the serve layer's live-load response, not index content).
  mio::write_i64(out, degraded() ? 1 : 0);
  mio::write_f32_vec(out, centroids_);
  write_cell_rows(out, pending_.ids, pending_.labels, pending_.features,
                  pending_.codes, pending_.scales);
  mio::write_i64(out, static_cast<std::int64_t>(cells_.size()));
  for (const Cell& cell : cells_) {
    write_cell_rows(out, cell.ids, cell.labels, cell.features, cell.codes,
                    cell.scales);
  }
}

bool IvfIndex::load_state(std::istream& in) {
  namespace mio = models::io;
  const auto d = static_cast<std::size_t>(dim_);
  std::int64_t tag = 0;
  std::int64_t dim = 0;
  std::int64_t quantize = 0;
  std::int64_t trained = 0;
  std::int64_t was_degraded = 0;
  if (!mio::read_i64(in, tag) || tag != kIvfStateTag) return false;
  if (!mio::read_i64(in, dim) || dim != dim_) return false;
  if (!mio::read_i64(in, quantize) ||
      (quantize != 0) != config_.quantize) {
    return false;
  }
  if (!mio::read_i64(in, trained) || (trained != 0 && trained != 1)) {
    return false;
  }
  if (!mio::read_i64(in, was_degraded)) return false;

  std::vector<float> centroids;
  if (!mio::read_f32_vec(in, centroids)) return false;

  const auto read_cell = [&](Cell& cell, bool quantized_cell) {
    if (!mio::read_i64_vec(in, cell.ids) || !mio::read_i32_vec(in, cell.labels) ||
        !mio::read_f32_vec(in, cell.features) ||
        !mio::read_i8_vec(in, cell.codes) ||
        !mio::read_f32_vec(in, cell.scales)) {
      return false;
    }
    const std::size_t n = cell.ids.size();
    if (cell.labels.size() != n || cell.features.size() != n * d) return false;
    if (quantized_cell) {
      if (cell.codes.size() != n * d || cell.scales.size() != n) return false;
    } else if (!cell.codes.empty() || !cell.scales.empty()) {
      return false;
    }
    return true;
  };

  // All-or-nothing: stage everything, validate, then commit.
  Cell pending;
  if (!read_cell(pending, /*quantized_cell=*/false)) return false;
  std::int64_t cell_count = 0;
  if (!mio::read_i64(in, cell_count) || cell_count < 0 ||
      cell_count > (1 << 24)) {
    return false;
  }
  if (trained != 0) {
    if (centroids.size() != static_cast<std::size_t>(cell_count) * d) {
      return false;
    }
  } else if (cell_count != 0 || !centroids.empty()) {
    return false;
  }
  std::vector<Cell> cells(static_cast<std::size_t>(cell_count));
  for (Cell& cell : cells) {
    if (!read_cell(cell, config_.quantize)) return false;
  }

  // Rebuild loc_ and reject duplicate ids across cells + pending.
  std::unordered_map<std::int64_t, Loc> loc;
  for (std::size_t r = 0; r < pending.ids.size(); ++r) {
    if (!loc.emplace(pending.ids[r], Loc{-1, r}).second) return false;
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t r = 0; r < cells[c].ids.size(); ++r) {
      if (!loc.emplace(cells[c].ids[r],
                       Loc{static_cast<std::int32_t>(c), r})
               .second) {
        return false;
      }
    }
  }

  trained_ = trained != 0;
  centroids_ = std::move(centroids);
  pending_ = std::move(pending);
  cells_ = std::move(cells);
  loc_ = std::move(loc);
  set_degraded(false);  // see header: hysteresis ladder re-enters, not load
  return true;
}

std::unique_ptr<GalleryIndex> make_index(std::int64_t feature_dim,
                                         const IndexConfig& config) {
  if (config.kind == IndexKind::kIvf) {
    return std::make_unique<IvfIndex>(feature_dim, config);
  }
  return std::make_unique<RetrievalIndex>(feature_dim,
                                          std::max<std::size_t>(config.num_nodes, 1));
}

}  // namespace duo::retrieval
