#pragma once

// IvfIndex: the two-stage, sharded, quantized gallery index for
// million-video galleries (ROADMAP "production-scale victim").
//
// Stage 0 (training): seeded k-means clusters a sample of the gallery into
// `num_cells` coarse cells. Training is deterministic — sample selection,
// init, Lloyd sweeps, and empty-cell reseeding all run off one Rng(seed) in
// fixed order — so the cell structure is a pure function of (gallery
// content, insertion order, config). Entries added before training are
// buffered and answered with an exact flat scan; training fires on
// finalize() (bulk ingest) or automatically once `train_after` entries are
// buffered. Entries added after training are assigned to their nearest
// centroid incrementally; centroids are never moved after training (call
// retrain() after heavy drift).
//
// Stage 1 (coarse probe): a query ranks all centroids by squared L2 and
// scans only the `nprobe` nearest cells.
//
// Stage 2 (cell scan + re-rank): probed cells are scanned against an int8
// scalar-quantized store (4× smaller, per-row max-abs scale) to build a
// candidate pool of `rerank × m` per shard; candidates are then re-ranked
// with exact float distances from the retained full-precision store, so the
// final top-m is exact *within the probed cells*. With quantize=false the
// cell scan itself is exact. With nprobe >= num_cells and quantize=false
// the result is identical (same ids, same order) to RetrievalIndex.
//
// Sharding: cells are owned by `num_nodes` shards (cell % num_nodes); the
// per-shard scans fan out on compute_pool() when parallel=true and merge in
// fixed shard order under the total neighbor_less order, so results are
// bitwise identical across shard counts, thread counts, and storage order
// (swap-removal is invisible).

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "retrieval/index.hpp"

namespace duo::retrieval {

// Per-query instrumentation (gallery_scale bench, tests). vectors_scanned
// vs gallery size is the scan-reduction headline; candidates_reranked is
// the exact-distance work the re-rank stage paid.
struct IvfQueryStats {
  bool trained = false;  // false → exact flat fallback over the buffer
  std::size_t cells_probed = 0;
  std::size_t vectors_scanned = 0;
  std::size_t candidates_reranked = 0;
};

class IvfIndex : public GalleryIndex {
 public:
  // `config.kind` is ignored (constructing an IvfIndex *is* the choice).
  IvfIndex(std::int64_t feature_dim, IndexConfig config);

  // Movable despite the atomic degraded_ flag (atomics delete the implicit
  // moves); moving is only sensible while no other thread queries the
  // source, so a plain value transfer is enough. degraded_ deliberately does
  // NOT transfer: it is the serve scheduler's live-load response for the
  // *source* object, not index content — a clone/snapshot taken while
  // degraded must answer with the configured nprobe and re-enter degraded
  // mode only via the hysteresis ladder (same contract as load_state).
  IvfIndex(IvfIndex&& other) noexcept
      : dim_(other.dim_),
        config_(std::move(other.config_)),
        shards_(other.shards_),
        degraded_(false),
        trained_(other.trained_),
        centroids_(std::move(other.centroids_)),
        pending_(std::move(other.pending_)),
        cells_(std::move(other.cells_)),
        loc_(std::move(other.loc_)) {}
  IvfIndex& operator=(IvfIndex&&) = delete;

  void add(const GalleryEntry& entry) override;
  bool remove(std::int64_t id) override;
  std::size_t size() const noexcept override { return loc_.size(); }
  std::int64_t feature_dim() const noexcept override { return dim_; }
  std::size_t shard_count() const noexcept override { return shards_; }

  std::vector<Neighbor> query(const Tensor& feature, std::size_t m,
                              bool parallel = false) const override;
  // query() with instrumentation (stats may be null).
  std::vector<Neighbor> query_with_stats(const Tensor& feature, std::size_t m,
                                         bool parallel,
                                         IvfQueryStats* stats) const;

  // Train the coarse quantizer on the buffered entries (no-op when already
  // trained or empty). Bulk-ingest paths call this once after the last add.
  void finalize() override;
  // Drop the cell structure and re-train on the full current content —
  // the answer to centroid drift after heavy add/remove churn.
  void retrain();

  // Degraded mode probes min(degraded_nprobe, nprobe) cells — the serve
  // scheduler flips this under queue pressure. A relaxed atomic: each query
  // reads the flag once at its start, so any individual query is internally
  // consistent, and no ordering with other state is required.
  bool set_degraded(bool on) override {
    degraded_.store(on, std::memory_order_relaxed);
    return true;
  }
  bool degraded() const noexcept override {
    return degraded_.load(std::memory_order_relaxed);
  }

  bool trained() const noexcept { return trained_; }
  std::size_t cell_count() const noexcept { return cells_.size(); }
  std::size_t cell_size(std::size_t cell) const;
  const IndexConfig& config() const noexcept { return config_; }

  // Full content snapshot: trained flag, centroids, pending buffer, every
  // cell's rows + int8 codes/scales (loc_ is rebuilt on load). The degraded
  // bit is written for observability but ignored on load — see the move
  // constructor note.
  void save_state(std::ostream& out) const override;
  bool load_state(std::istream& in) override;

 private:
  // One coarse cell: parallel row arrays, exact float store always present,
  // int8 codes + per-row scales only when config_.quantize.
  struct Cell {
    std::vector<std::int64_t> ids;
    std::vector<int> labels;
    std::vector<float> features;    // row-major [n, dim]
    std::vector<std::int8_t> codes;  // row-major [n, dim]
    std::vector<float> scales;       // [n]
  };
  struct Loc {
    std::int32_t cell = -1;  // -1 → pending_ buffer
    std::size_t row = 0;
  };
  // A cell-scan hit before exact re-rank: approximate (or exact, when
  // unquantized) distance plus the row address for the re-rank lookup.
  struct Candidate {
    Neighbor approx;
    std::int32_t cell = -1;
    std::size_t row = 0;
  };

  void append_row(Cell& cell, std::int32_t cell_id, std::int64_t id, int label,
                  const float* f);
  void swap_remove_row(Cell& cell, std::int32_t cell_id, std::size_t row);
  void train();
  std::size_t nearest_cell(const float* f) const;
  void scan_cell(const Cell& cell, std::int32_t cell_id, const float* q,
                 bool quantized, std::vector<Candidate>& out) const;
  double exact_distance_sq(const Candidate& c, const float* q) const;

  std::int64_t dim_;
  IndexConfig config_;
  std::size_t shards_;
  std::atomic<bool> degraded_{false};
  bool trained_ = false;
  std::vector<float> centroids_;  // row-major [cell_count, dim]
  Cell pending_;                  // untrained buffer (codes/scales unused)
  std::vector<Cell> cells_;
  std::unordered_map<std::int64_t, Loc> loc_;
};

}  // namespace duo::retrieval
