#include "retrieval/system.hpp"

#include <unordered_set>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace duo::retrieval {

RetrievalSystem::RetrievalSystem(
    std::unique_ptr<models::FeatureExtractor> extractor, IndexConfig config)
    : extractor_(std::move(extractor)),
      index_config_(config),
      index_(make_index(extractor_ ? extractor_->feature_dim() : 1, config)) {
  DUO_CHECK_MSG(extractor_ != nullptr, "RetrievalSystem: null extractor");
  extractor_->set_training(false);
}

RetrievalSystem::RetrievalSystem(
    std::unique_ptr<models::FeatureExtractor> extractor, std::size_t num_nodes)
    : RetrievalSystem(std::move(extractor), [num_nodes] {
        IndexConfig config;
        config.kind = IndexKind::kFlat;
        config.num_nodes = num_nodes;
        return config;
      }()) {}

void RetrievalSystem::add_to_gallery(const video::Video& v) {
  // Validate before mutating: a rejected video must leave the index and the
  // label maps exactly as they were.
  DUO_CHECK_MSG(labels_.find(v.id()) == labels_.end(), "duplicate gallery id");
  GalleryEntry entry;
  entry.id = v.id();
  entry.label = v.label();
  entry.feature = extractor_->extract(v);
  index_->add(entry);
  labels_.emplace(v.id(), v.label());
  ++label_counts_[v.label()];
}

bool RetrievalSystem::remove_from_gallery(std::int64_t gallery_id) {
  const auto it = labels_.find(gallery_id);
  if (it == labels_.end()) return false;
  const bool removed = index_->remove(gallery_id);
  DUO_CHECK_MSG(removed, "RetrievalSystem: index and label map out of sync");
  const auto count_it = label_counts_.find(it->second);
  DUO_CHECK_MSG(count_it != label_counts_.end() && count_it->second > 0,
                "RetrievalSystem: label count underflow");
  if (--count_it->second == 0) label_counts_.erase(count_it);
  labels_.erase(it);
  return true;
}

void RetrievalSystem::add_all(const std::vector<video::Video>& videos) {
  // Validate the whole batch (against the gallery and within the batch)
  // before touching anything, so a duplicate anywhere rejects atomically.
  std::unordered_set<std::int64_t> batch_ids;
  batch_ids.reserve(videos.size());
  for (const auto& v : videos) {
    DUO_CHECK_MSG(labels_.find(v.id()) == labels_.end(),
                  "duplicate gallery id");
    DUO_CHECK_MSG(batch_ids.insert(v.id()).second,
                  "duplicate gallery id within batch");
  }
  const std::vector<Tensor> features = extract_features(videos);
  for (std::size_t i = 0; i < videos.size(); ++i) {
    const auto& v = videos[i];
    GalleryEntry entry;
    entry.id = v.id();
    entry.label = v.label();
    entry.feature = features[i];
    index_->add(entry);
    labels_.emplace(v.id(), v.label());
    ++label_counts_[v.label()];
  }
  // Bulk ingest is the natural training point for a coarse-quantized index
  // (no-op for the flat one, or when already trained).
  index_->finalize();
}

std::vector<Tensor> RetrievalSystem::extract_features(
    const std::vector<video::Video>& videos) {
  return extractor_->extract_batch(videos);
}

metrics::RetrievalList RetrievalSystem::retrieve(const video::Video& v,
                                                 std::size_t m) {
  const auto detailed = retrieve_detailed(v, m);
  metrics::RetrievalList out;
  out.reserve(detailed.size());
  for (const auto& n : detailed) out.push_back(n.id);
  return out;
}

std::vector<Neighbor> RetrievalSystem::retrieve_detailed(const video::Video& v,
                                                         std::size_t m) {
  const Tensor feature = extractor_->extract(v);
  return retrieve_feature(feature, m);
}

std::vector<Neighbor> RetrievalSystem::retrieve_feature(const Tensor& feature,
                                                        std::size_t m) const {
  // Fan the shard scans out — unless this call is already running on a
  // compute-pool worker (evaluate_map / the serve batch loop shard per
  // query). A nested parallel_for would only re-drain the saturated pool
  // through the caller-runs path; going serial here says so explicitly.
  const bool parallel =
      index_->shard_count() > 1 && !compute_pool().in_worker_context();
  return index_->query(feature, m, parallel);
}

bool RetrievalSystem::load_gallery_index(const std::string& path) {
  // Stage into a scratch index so a rejected file leaves the live one
  // untouched, then sanity-check the restored entry count against the label
  // bookkeeping this system already holds — the file fingerprint catches
  // corruption, this catches "valid snapshot of the wrong gallery".
  auto staged = make_index(extractor_->feature_dim(), index_config_);
  if (!retrieval::load_index(*staged, path)) return false;
  if (staged->size() != labels_.size()) return false;
  index_ = std::move(staged);
  return true;
}

int RetrievalSystem::label_of(std::int64_t gallery_id) const {
  const auto it = labels_.find(gallery_id);
  DUO_CHECK_MSG(it != labels_.end(), "unknown gallery id");
  return it->second;
}

std::int64_t RetrievalSystem::relevant_count(int label) const {
  const auto it = label_counts_.find(label);
  return it == label_counts_.end() ? 0 : it->second;
}

double evaluate_map(RetrievalSystem& system,
                    const std::vector<video::Video>& queries, std::size_t m) {
  if (queries.empty()) return 0.0;
  // Extraction is parallelized over extractor replicas; the per-query index
  // scan and AP are independent, so they shard freely. The final sum runs in
  // query order, keeping the result bitwise stable across thread counts.
  const std::vector<Tensor> features = system.extract_features(queries);
  std::vector<double> ap(queries.size(), 0.0);
  compute_pool().parallel_for(queries.size(), [&](std::size_t qi) {
    const auto& q = queries[qi];
    const auto result = system.retrieve_feature(features[qi], m);
    std::vector<bool> relevant(result.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      relevant[i] = result[i].label == q.label();
    }
    ap[qi] = metrics::average_precision(relevant,
                                        system.relevant_count(q.label()));
  });
  double acc = 0.0;
  for (const double a : ap) acc += a;
  return acc / static_cast<double>(queries.size());
}

}  // namespace duo::retrieval
