#include "retrieval/system.hpp"

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace duo::retrieval {

RetrievalSystem::RetrievalSystem(
    std::unique_ptr<models::FeatureExtractor> extractor, std::size_t num_nodes)
    : extractor_(std::move(extractor)),
      index_(extractor_ ? extractor_->feature_dim() : 1, num_nodes) {
  DUO_CHECK_MSG(extractor_ != nullptr, "RetrievalSystem: null extractor");
  extractor_->set_training(false);
}

void RetrievalSystem::add_to_gallery(const video::Video& v) {
  GalleryEntry entry;
  entry.id = v.id();
  entry.label = v.label();
  entry.feature = extractor_->extract(v);
  index_.add(entry);
  DUO_CHECK_MSG(labels_.emplace(v.id(), v.label()).second,
                "duplicate gallery id");
  ++label_counts_[v.label()];
}

void RetrievalSystem::add_all(const std::vector<video::Video>& videos) {
  const std::vector<Tensor> features = extract_features(videos);
  for (std::size_t i = 0; i < videos.size(); ++i) {
    const auto& v = videos[i];
    GalleryEntry entry;
    entry.id = v.id();
    entry.label = v.label();
    entry.feature = features[i];
    index_.add(entry);
    DUO_CHECK_MSG(labels_.emplace(v.id(), v.label()).second,
                  "duplicate gallery id");
    ++label_counts_[v.label()];
  }
}

std::vector<Tensor> RetrievalSystem::extract_features(
    const std::vector<video::Video>& videos) {
  std::vector<Tensor> features(videos.size());
  ThreadPool& pool = compute_pool();
  const std::size_t shards = std::min(pool.size(), videos.size());

  // One extractor per shard: shard 0 reuses the member extractor, the rest
  // are clones. Extractors are stateful across forward passes, so sharing
  // one instance across threads is not an option.
  std::vector<std::unique_ptr<models::FeatureExtractor>> clones;
  if (shards >= 2) {
    clones.reserve(shards - 1);
    for (std::size_t s = 1; s < shards; ++s) {
      auto c = extractor_->clone();
      if (!c) {
        clones.clear();
        break;
      }
      clones.push_back(std::move(c));
    }
  }

  if (clones.empty()) {
    for (std::size_t i = 0; i < videos.size(); ++i) {
      features[i] = extractor_->extract(videos[i]);
    }
    return features;
  }

  pool.parallel_for(clones.size() + 1, [&](std::size_t s) {
    models::FeatureExtractor& ex = s == 0 ? *extractor_ : *clones[s - 1];
    for (std::size_t i = s; i < videos.size(); i += clones.size() + 1) {
      features[i] = ex.extract(videos[i]);
    }
  });
  return features;
}

metrics::RetrievalList RetrievalSystem::retrieve(const video::Video& v,
                                                 std::size_t m) {
  const auto detailed = retrieve_detailed(v, m);
  metrics::RetrievalList out;
  out.reserve(detailed.size());
  for (const auto& n : detailed) out.push_back(n.id);
  return out;
}

std::vector<Neighbor> RetrievalSystem::retrieve_detailed(const video::Video& v,
                                                         std::size_t m) {
  const Tensor feature = extractor_->extract(v);
  return retrieve_feature(feature, m);
}

std::vector<Neighbor> RetrievalSystem::retrieve_feature(const Tensor& feature,
                                                        std::size_t m) const {
  return index_.query(feature, m, /*parallel=*/index_.node_count() > 1);
}

int RetrievalSystem::label_of(std::int64_t gallery_id) const {
  const auto it = labels_.find(gallery_id);
  DUO_CHECK_MSG(it != labels_.end(), "unknown gallery id");
  return it->second;
}

std::int64_t RetrievalSystem::relevant_count(int label) const {
  const auto it = label_counts_.find(label);
  return it == label_counts_.end() ? 0 : it->second;
}

double evaluate_map(RetrievalSystem& system,
                    const std::vector<video::Video>& queries, std::size_t m) {
  if (queries.empty()) return 0.0;
  // Extraction is parallelized over extractor replicas; the per-query index
  // scan and AP are independent, so they shard freely. The final sum runs in
  // query order, keeping the result bitwise stable across thread counts.
  const std::vector<Tensor> features = system.extract_features(queries);
  std::vector<double> ap(queries.size(), 0.0);
  compute_pool().parallel_for(queries.size(), [&](std::size_t qi) {
    const auto& q = queries[qi];
    const auto result = system.retrieve_feature(features[qi], m);
    std::vector<bool> relevant(result.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      relevant[i] = result[i].label == q.label();
    }
    ap[qi] = metrics::average_precision(relevant,
                                        system.relevant_count(q.label()));
  });
  double acc = 0.0;
  for (const double a : ap) acc += a;
  return acc / static_cast<double>(queries.size());
}

}  // namespace duo::retrieval
