#include "retrieval/system.hpp"

#include "common/check.hpp"

namespace duo::retrieval {

RetrievalSystem::RetrievalSystem(
    std::unique_ptr<models::FeatureExtractor> extractor, std::size_t num_nodes)
    : extractor_(std::move(extractor)),
      index_(extractor_ ? extractor_->feature_dim() : 1, num_nodes) {
  DUO_CHECK_MSG(extractor_ != nullptr, "RetrievalSystem: null extractor");
  extractor_->set_training(false);
}

void RetrievalSystem::add_to_gallery(const video::Video& v) {
  GalleryEntry entry;
  entry.id = v.id();
  entry.label = v.label();
  entry.feature = extractor_->extract(v);
  index_.add(entry);
  DUO_CHECK_MSG(labels_.emplace(v.id(), v.label()).second,
                "duplicate gallery id");
  ++label_counts_[v.label()];
}

void RetrievalSystem::add_all(const std::vector<video::Video>& videos) {
  for (const auto& v : videos) add_to_gallery(v);
}

metrics::RetrievalList RetrievalSystem::retrieve(const video::Video& v,
                                                 std::size_t m) {
  const auto detailed = retrieve_detailed(v, m);
  metrics::RetrievalList out;
  out.reserve(detailed.size());
  for (const auto& n : detailed) out.push_back(n.id);
  return out;
}

std::vector<Neighbor> RetrievalSystem::retrieve_detailed(const video::Video& v,
                                                         std::size_t m) {
  const Tensor feature = extractor_->extract(v);
  return retrieve_feature(feature, m);
}

std::vector<Neighbor> RetrievalSystem::retrieve_feature(const Tensor& feature,
                                                        std::size_t m) const {
  return index_.query(feature, m, /*parallel=*/index_.node_count() > 1);
}

int RetrievalSystem::label_of(std::int64_t gallery_id) const {
  const auto it = labels_.find(gallery_id);
  DUO_CHECK_MSG(it != labels_.end(), "unknown gallery id");
  return it->second;
}

std::int64_t RetrievalSystem::relevant_count(int label) const {
  const auto it = label_counts_.find(label);
  return it == label_counts_.end() ? 0 : it->second;
}

double evaluate_map(RetrievalSystem& system,
                    const std::vector<video::Video>& queries, std::size_t m) {
  if (queries.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& q : queries) {
    const auto result = system.retrieve_detailed(q, m);
    std::vector<bool> relevant(result.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      relevant[i] = result[i].label == q.label();
    }
    acc += metrics::average_precision(relevant,
                                      system.relevant_count(q.label()));
  }
  return acc / static_cast<double>(queries.size());
}

}  // namespace duo::retrieval
