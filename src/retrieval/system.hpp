#pragma once

// RetrievalSystem: feature extractor + distributed index + gallery metadata —
// the victim service R(·) of the paper. BlackBoxHandle is the attacker-facing
// facade: it only exposes retrieve(v, m) and counts queries, enforcing the
// black-box threat model in the type system.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "metrics/metrics.hpp"
#include "models/feature_extractor.hpp"
#include "retrieval/index.hpp"
#include "video/video.hpp"

namespace duo::retrieval {

class RetrievalSystem {
 public:
  // Takes ownership of the (trained) extractor. `config` selects and tunes
  // the gallery index (flat exact scan vs sharded IVF with quantized
  // re-rank — see retrieval/index.hpp); retrieval semantics are identical
  // either way up to IVF's nprobe recall.
  RetrievalSystem(std::unique_ptr<models::FeatureExtractor> extractor,
                  IndexConfig config);
  // Flat-index shorthand: `num_nodes` distributed data nodes.
  explicit RetrievalSystem(std::unique_ptr<models::FeatureExtractor> extractor,
                           std::size_t num_nodes = 4);

  // Featurize and index a gallery video. Rejects duplicate ids (throws
  // std::logic_error) *before* mutating any internal state.
  void add_to_gallery(const video::Video& v);
  // Remove a gallery video by id, keeping the index and the label /
  // relevant-count bookkeeping consistent. Returns false (and changes
  // nothing) when the id is unknown.
  bool remove_from_gallery(std::int64_t gallery_id);
  // Bulk ingestion: features are extracted in parallel (over thread-private
  // extractor replicas) and then indexed in input order, so the resulting
  // gallery is identical to sequential add_to_gallery calls. The whole batch
  // is validated for duplicate ids up front; a rejected batch leaves the
  // system untouched.
  void add_all(const std::vector<video::Video>& videos);

  // Features for a batch of videos, in order. Delegates to
  // FeatureExtractor::extract_batch: parallelized across the compute pool
  // when the extractor is cloneable; bitwise identical to a serial
  // extraction loop either way.
  std::vector<Tensor> extract_features(const std::vector<video::Video>& videos);

  // Top-m retrieval R^m(v): gallery ids in descending similarity.
  metrics::RetrievalList retrieve(const video::Video& v, std::size_t m);
  // Retrieval with distances/labels (used by evaluation harnesses).
  std::vector<Neighbor> retrieve_detailed(const video::Video& v,
                                          std::size_t m);
  // Retrieval for a precomputed feature (no extractor forward). The index
  // scan fans out across shards on compute_pool() — except when the caller
  // is already a pool worker (evaluate_map's per-query fan-out), where the
  // scan runs serially instead of re-entering the saturated pool.
  std::vector<Neighbor> retrieve_feature(const Tensor& feature,
                                         std::size_t m) const;

  models::FeatureExtractor& extractor() noexcept { return *extractor_; }
  const GalleryIndex& index() const noexcept { return *index_; }
  // Serve-layer degradation passthrough (see GalleryIndex::set_degraded):
  // returns whether the underlying index honors degraded mode.
  bool set_index_degraded(bool on) { return index_->set_degraded(on); }
  bool index_degraded() const noexcept { return index_->degraded(); }

  // Durable gallery snapshots (fingerprint-validated atomic files — see
  // retrieval::save_index / load_index). load_gallery_index stages the file
  // into a scratch index built from this system's config, validates that the
  // restored entry count matches the label bookkeeping (a snapshot of a
  // *different* gallery is rejected with false, system untouched), then
  // swaps it in. Not safe concurrently with queries — the serve layer calls
  // these only while the server is stopped.
  bool save_gallery_index(const std::string& path) const {
    return retrieval::save_index(*index_, path);
  }
  bool load_gallery_index(const std::string& path);
  std::size_t gallery_size() const noexcept { return index_->size(); }
  int label_of(std::int64_t gallery_id) const;
  std::int64_t relevant_count(int label) const;

 private:
  std::unique_ptr<models::FeatureExtractor> extractor_;
  IndexConfig index_config_;  // retained to stage load_gallery_index
  std::unique_ptr<GalleryIndex> index_;
  std::unordered_map<std::int64_t, int> labels_;
  std::unordered_map<int, std::int64_t> label_counts_;
};

// Attacker's view of the victim: retrieval lists only, with query accounting.
// Wraps any queryable backend (single system, ensemble, instrumented fake in
// tests) behind a type-erased retrieve function.
//
// The query counter is atomic, so concurrent clients sharing one handle
// account correctly (routine once queries go through the serve layer). The
// wrapped backend itself must be thread-safe for concurrent retrieve calls —
// a raw RetrievalSystem is not (stateful extractor); a RetrievalServer is.
class BlackBoxHandle {
 public:
  using RetrieveFn =
      std::function<metrics::RetrievalList(const video::Video&, std::size_t)>;

  explicit BlackBoxHandle(RetrievalSystem& system)
      : retrieve_([&system](const video::Video& v, std::size_t m) {
          return system.retrieve(v, m);
        }) {}

  explicit BlackBoxHandle(RetrieveFn retrieve)
      : retrieve_(std::move(retrieve)) {}

  metrics::RetrievalList retrieve(const video::Video& v, std::size_t m) {
    query_count_.fetch_add(1, std::memory_order_relaxed);
    return retrieve_(v, m);
  }

  std::int64_t query_count() const noexcept {
    return query_count_.load(std::memory_order_relaxed);
  }
  void reset_query_count() noexcept {
    query_count_.store(0, std::memory_order_relaxed);
  }

 private:
  RetrieveFn retrieve_;
  std::atomic<std::int64_t> query_count_{0};
};

// mAP of the system over labeled queries (paper Fig. 3/4): relevance = label
// match against the gallery, AP per query over the top-m list.
double evaluate_map(RetrievalSystem& system,
                    const std::vector<video::Video>& queries, std::size_t m);

}  // namespace duo::retrieval
