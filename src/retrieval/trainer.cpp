#include "retrieval/trainer.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hpp"
#include "nn/optimizer.hpp"

namespace duo::retrieval {

namespace {

// Sample a class-balanced batch: pick batch_size/2 classes, two videos each,
// guaranteeing positive pairs for the metric losses.
std::vector<std::size_t> sample_batch(
    const std::unordered_map<int, std::vector<std::size_t>>& by_class,
    int batch_size, Rng& rng) {
  std::vector<int> class_ids;
  class_ids.reserve(by_class.size());
  for (const auto& [label, idxs] : by_class) {
    if (idxs.size() >= 2) class_ids.push_back(label);
  }
  DUO_CHECK_MSG(!class_ids.empty(),
                "training set needs a class with >= 2 videos");
  rng.shuffle(class_ids);

  std::vector<std::size_t> batch;
  const int pairs = std::max(1, batch_size / 2);
  for (int p = 0; p < pairs; ++p) {
    const int label = class_ids[static_cast<std::size_t>(p) % class_ids.size()];
    const auto& idxs = by_class.at(label);
    const std::size_t a = idxs[rng.uniform_index(idxs.size())];
    std::size_t b = idxs[rng.uniform_index(idxs.size())];
    while (b == a) b = idxs[rng.uniform_index(idxs.size())];
    batch.push_back(a);
    batch.push_back(b);
  }
  return batch;
}

}  // namespace

TrainStats train_extractor(models::FeatureExtractor& extractor,
                           nn::BatchMetricLoss& loss,
                           const std::vector<video::Video>& train,
                           const TrainerConfig& config) {
  DUO_CHECK_MSG(!train.empty(), "empty training set");
  extractor.set_training(true);

  std::unordered_map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < train.size(); ++i) {
    by_class[train[i].label()].push_back(i);
  }

  std::vector<nn::Parameter*> params = extractor.parameters();
  {
    auto loss_params = loss.parameters();
    params.insert(params.end(), loss_params.begin(), loss_params.end());
  }
  nn::Adam optimizer(params, config.learning_rate);
  Rng rng(config.seed);

  const int steps_per_epoch = std::max<int>(
      1, static_cast<int>(train.size()) / std::max(1, config.batch_size));

  TrainStats stats;
  const std::int64_t dim = extractor.feature_dim();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (int step = 0; step < steps_per_epoch; ++step) {
      const auto batch = sample_batch(by_class, config.batch_size, rng);
      const std::int64_t b = static_cast<std::int64_t>(batch.size());

      // Forward each sample; features stacked [B, D]. Layer caches are
      // per-forward, so backward must be interleaved per sample: we re-run
      // forward before each backward to restore the caches.
      Tensor features({b, dim});
      std::vector<int> labels(batch.size());
      for (std::int64_t s = 0; s < b; ++s) {
        const auto& v = train[batch[static_cast<std::size_t>(s)]];
        const Tensor f = extractor.extract(v);
        for (std::int64_t d = 0; d < dim; ++d) features.at(s, d) = f[d];
        labels[static_cast<std::size_t>(s)] = v.label();
      }

      // zero_grad before compute: the loss accumulates its own parameter
      // grads (ArcFace class weights) inside compute().
      optimizer.zero_grad();
      const nn::BatchLossResult result = loss.compute(features, labels);
      epoch_loss += result.loss;

      for (std::int64_t s = 0; s < b; ++s) {
        Tensor grad_f({dim});
        bool nonzero = false;
        for (std::int64_t d = 0; d < dim; ++d) {
          grad_f[d] = result.feature_grads.at(s, d);
          nonzero = nonzero || grad_f[d] != 0.0f;
        }
        if (!nonzero) continue;
        const auto& v = train[batch[static_cast<std::size_t>(s)]];
        (void)extractor.extract(v);  // restore layer caches for this sample
        (void)extractor.backward_to_input(grad_f);
      }
      optimizer.step();
    }
    epoch_loss /= steps_per_epoch;
    stats.epoch_losses.push_back(epoch_loss);
    if (config.verbose) {
      DUO_LOG_INFO("train %s epoch %d/%d loss=%.4f", extractor.name().c_str(),
                   epoch + 1, config.epochs, epoch_loss);
    }
  }
  extractor.set_training(false);
  return stats;
}

}  // namespace duo::retrieval
