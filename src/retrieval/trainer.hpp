#pragma once

// Metric-learning trainer for feature extractors. Victim models are trained
// on labeled videos with one of the three paper losses (ArcFace / Lifted /
// Angular); the attack's surrogate is trained elsewhere (attack/surrogate.hpp)
// from query-harvested triplets.

#include <memory>

#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "video/video.hpp"

namespace duo::retrieval {

struct TrainerConfig {
  int epochs = 6;
  int batch_size = 12;
  float learning_rate = 2e-3f;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct TrainStats {
  std::vector<double> epoch_losses;
  double final_loss() const {
    return epoch_losses.empty() ? 0.0 : epoch_losses.back();
  }
};

// Trains `extractor` in place. Batches are class-balanced samples of the
// training set (metric losses need same-class pairs in every batch).
TrainStats train_extractor(models::FeatureExtractor& extractor,
                           nn::BatchMetricLoss& loss,
                           const std::vector<video::Video>& train,
                           const TrainerConfig& config);

}  // namespace duo::retrieval
