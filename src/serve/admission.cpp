#include "serve/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace duo::serve {

namespace {

double validated_rate(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("token bucket rate must be > 0");
  return rate;
}

double validated_burst(double burst) {
  if (burst < 1.0) throw std::invalid_argument("token bucket burst must be >= 1");
  return burst;
}

}  // namespace

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(validated_rate(rate_per_sec)),
      burst_(validated_burst(burst)),
      tokens_(burst) {}

double TokenBucket::try_acquire(double now_ms) {
  // A caller that sleeps exactly the returned wait refills by exactly the
  // deficit — up to floating-point rounding, which can strand tokens_ a few
  // ulps under 1.0. Granting within this epsilon keeps such callers from
  // looping on waits too small for the clock to even represent.
  constexpr double kEpsilon = 1e-9;
  if (!primed_) {
    // Anchor the refill timeline at the first call instead of at
    // construction, so two identically configured buckets driven by the same
    // virtual timestamps decide identically regardless of when each was
    // built.
    primed_ = true;
    last_ms_ = now_ms;
  }
  const double elapsed_ms = std::max(0.0, now_ms - last_ms_);
  tokens_ = std::min(burst_, tokens_ + elapsed_ms * rate_ / 1000.0);
  last_ms_ = now_ms;
  if (tokens_ >= 1.0 - kEpsilon) {
    tokens_ = std::max(0.0, tokens_ - 1.0);
    return 0.0;
  }
  return (1.0 - tokens_) * 1000.0 / rate_;
}

double TokenBucket::peek_tokens(double now_ms) const noexcept {
  if (!primed_) return tokens_;
  const double elapsed_ms = std::max(0.0, now_ms - last_ms_);
  return std::min(burst_, tokens_ + elapsed_ms * rate_ / 1000.0);
}

RateLimiter::RateLimiter(double rate_per_sec, double burst)
    : rate_(validated_rate(rate_per_sec)), burst_(validated_burst(burst)) {}

double RateLimiter::try_acquire(const std::string& client_id, double now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) {
    it = buckets_.emplace(client_id, TokenBucket(rate_, burst_)).first;
  }
  return it->second.try_acquire(now_ms);
}

std::int64_t RateLimiter::clients_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(buckets_.size());
}

Pacer::Pacer(PacerConfig config, std::shared_ptr<Clock> clock)
    : config_(config),
      clock_(ensure_clock(std::move(clock))),
      bucket_(config.rate_per_sec, config.burst) {}

void Pacer::acquire() {
  for (;;) {
    double wait_ms = 0.0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      wait_ms = bucket_.try_acquire(clock_->now_ms());
      if (wait_ms <= 0.0) {
        ++granted_;
        return;
      }
      // Floor the sleep so progress survives even a wait too small for the
      // clock's resolution at large timestamps (guaranteed termination).
      wait_ms = std::max(wait_ms, 0.01);
      ++waits_;
      waited_ms_ += wait_ms;
    }
    // Sleep outside the lock: with a VirtualClock several pacing threads can
    // advance time concurrently without serializing on the bucket.
    clock_->sleep_ms(wait_ms);
  }
}

std::int64_t Pacer::granted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return granted_;
}

std::int64_t Pacer::waits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waits_;
}

double Pacer::waited_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waited_ms_;
}

double Pacer::tokens_available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bucket_.peek_tokens(clock_->now_ms());
}

}  // namespace duo::serve
