#include "serve/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace duo::serve {

namespace {

double validated_rate(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("token bucket rate must be > 0");
  return rate;
}

double validated_burst(double burst) {
  if (burst < 1.0) throw std::invalid_argument("token bucket burst must be >= 1");
  return burst;
}

}  // namespace

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(validated_rate(rate_per_sec)),
      burst_(validated_burst(burst)),
      tokens_(burst) {}

double TokenBucket::try_acquire(double now_ms) {
  // A caller that sleeps exactly the returned wait refills by exactly the
  // deficit — up to floating-point rounding, which can strand tokens_ a few
  // ulps under 1.0. Granting within this epsilon keeps such callers from
  // looping on waits too small for the clock to even represent.
  constexpr double kEpsilon = 1e-9;
  if (!primed_) {
    // Anchor the refill timeline at the first call instead of at
    // construction, so two identically configured buckets driven by the same
    // virtual timestamps decide identically regardless of when each was
    // built.
    primed_ = true;
    last_ms_ = now_ms;
  }
  const double elapsed_ms = std::max(0.0, now_ms - last_ms_);
  tokens_ = std::min(burst_, tokens_ + elapsed_ms * rate_ / 1000.0);
  last_ms_ = now_ms;
  if (tokens_ >= 1.0 - kEpsilon) {
    tokens_ = std::max(0.0, tokens_ - 1.0);
    return 0.0;
  }
  return (1.0 - tokens_) * 1000.0 / rate_;
}

double TokenBucket::peek_tokens(double now_ms) const noexcept {
  if (!primed_) return tokens_;
  const double elapsed_ms = std::max(0.0, now_ms - last_ms_);
  return std::min(burst_, tokens_ + elapsed_ms * rate_ / 1000.0);
}

void TokenBucket::set_rate(double rate_per_sec, double now_ms) {
  // Settle accrual at the old rate before swapping: the new rate applies
  // only from `now_ms` forward, never retroactively to the elapsed window.
  if (primed_) {
    const double elapsed_ms = std::max(0.0, now_ms - last_ms_);
    tokens_ = std::min(burst_, tokens_ + elapsed_ms * rate_ / 1000.0);
    last_ms_ = now_ms;
  }
  rate_ = validated_rate(rate_per_sec);
}

TokenBucketState TokenBucket::state() const noexcept {
  return TokenBucketState{rate_, burst_, tokens_, last_ms_, primed_};
}

void TokenBucket::restore(const TokenBucketState& state) {
  rate_ = validated_rate(state.rate);
  burst_ = validated_burst(state.burst);
  tokens_ = state.tokens;
  last_ms_ = state.last_ms;
  primed_ = state.primed;
}

RateLimiter::RateLimiter(double rate_per_sec, double burst)
    : rate_(validated_rate(rate_per_sec)), burst_(validated_burst(burst)) {}

double RateLimiter::try_acquire(const std::string& client_id, double now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) {
    it = buckets_.emplace(client_id, TokenBucket(rate_, burst_)).first;
  }
  return it->second.try_acquire(now_ms);
}

void RateLimiter::set_rate(double rate_per_sec, double now_ms) {
  const double rate = validated_rate(rate_per_sec);
  std::lock_guard<std::mutex> lock(mutex_);
  rate_ = rate;
  for (auto& [id, bucket] : buckets_) bucket.set_rate(rate_, now_ms);
}

double RateLimiter::rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rate_;
}

std::int64_t RateLimiter::clients_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(buckets_.size());
}

RateLimiter::State RateLimiter::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  State out;
  out.rate = rate_;
  out.burst = burst_;
  out.buckets.reserve(buckets_.size());
  for (const auto& [id, bucket] : buckets_) {
    out.buckets.emplace_back(id, bucket.state());
  }
  std::sort(out.buckets.begin(), out.buckets.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void RateLimiter::restore(const State& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  rate_ = validated_rate(state.rate);
  burst_ = validated_burst(state.burst);
  buckets_.clear();
  for (const auto& [id, bucket_state] : state.buckets) {
    TokenBucket bucket(rate_, burst_);
    bucket.restore(bucket_state);
    buckets_.emplace(id, bucket);
  }
}

namespace {

PacerConfig validated_pacer_config(PacerConfig config) {
  if (config.aimd) {
    if (config.aimd_increase <= 0.0) {
      throw std::invalid_argument("aimd_increase must be > 0");
    }
    if (config.aimd_decrease <= 0.0 || config.aimd_decrease >= 1.0) {
      throw std::invalid_argument("aimd_decrease must be in (0, 1)");
    }
    if (config.aimd_floor <= 0.0) {
      throw std::invalid_argument("aimd_floor must be > 0");
    }
    if (config.aimd_ceiling < config.aimd_floor) {
      throw std::invalid_argument("aimd_ceiling must be >= aimd_floor");
    }
    // The loop keeps the rate inside [floor, ceiling]; start it there too so
    // the very first decision already respects the configured band.
    config.rate_per_sec = std::clamp(config.rate_per_sec, config.aimd_floor,
                                     config.aimd_ceiling);
  }
  return config;
}

}  // namespace

Pacer::Pacer(PacerConfig config, std::shared_ptr<Clock> clock)
    : config_(validated_pacer_config(config)),
      clock_(ensure_clock(std::move(clock))),
      bucket_(config_.rate_per_sec, config_.burst) {}

void Pacer::acquire() {
  for (;;) {
    double wait_ms = 0.0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      wait_ms = bucket_.try_acquire(clock_->now_ms());
      if (wait_ms <= 0.0) {
        ++granted_;
        return;
      }
      // Floor the sleep so progress survives even a wait too small for the
      // clock's resolution at large timestamps (guaranteed termination).
      wait_ms = std::max(wait_ms, 0.01);
      ++waits_;
      waited_ms_ += wait_ms;
    }
    // Sleep outside the lock: with a VirtualClock several pacing threads can
    // advance time concurrently without serializing on the bucket.
    clock_->sleep_ms(wait_ms);
  }
}

std::int64_t Pacer::granted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return granted_;
}

std::int64_t Pacer::waits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waits_;
}

double Pacer::waited_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waited_ms_;
}

double Pacer::tokens_available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bucket_.peek_tokens(clock_->now_ms());
}

void Pacer::on_success() {
  if (!config_.aimd) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const double rate = bucket_.rate();
  // `+= increase / rate` per served answer ≈ `increase` tokens/sec of growth
  // per second of sustained service — the classic linear probe, expressed
  // per-event so it needs no timer.
  const double next =
      std::min(config_.aimd_ceiling,
               rate + config_.aimd_increase / std::max(rate, config_.aimd_floor));
  bucket_.set_rate(next, clock_->now_ms());
  ++rate_increases_;
}

void Pacer::on_overload(double retry_after_ms) {
  if (!config_.aimd) return;
  std::lock_guard<std::mutex> lock(mutex_);
  double next = bucket_.rate() * config_.aimd_decrease;
  // A throttle hint is (1 - tokens) · 1000 / server_rate ≤ 1000 / server_rate,
  // so 1000/hint upper-bounds the server's refill rate: seeding from it pulls
  // a wildly mis-set rate to within one burst of the limit in one round trip.
  if (retry_after_ms > 0.0) next = std::min(next, 1000.0 / retry_after_ms);
  next = std::max(config_.aimd_floor, next);
  bucket_.set_rate(next, clock_->now_ms());
  ++rate_decreases_;
}

double Pacer::current_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bucket_.rate();
}

std::int64_t Pacer::rate_increases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rate_increases_;
}

std::int64_t Pacer::rate_decreases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rate_decreases_;
}

}  // namespace duo::serve
