#pragma once

// Overload-control primitives shared by the server's admission path and the
// attacker's client policy:
//
//  - TokenBucket: the deterministic leaky-bucket core. Given the same
//    sequence of (timestamp, acquire) calls it makes the same sequence of
//    grant/deny decisions — all state is explicit, no hidden clock reads.
//  - RateLimiter: per-client TokenBuckets keyed by client id; the server's
//    "one API key, one sustained rate" model (QAIR frames the realistic
//    victim as exactly this kind of rate-limited service).
//  - AdmissionPolicy: what RetrievalServer::submit does when the queue is
//    at the configured load threshold — block (legacy backpressure),
//    reject-with-retry-after, or shed the oldest queued request.
//  - Pacer: the client-side counterpart — one shared token bucket across
//    any number of ResilientHandle instances, modeling concurrent attack
//    processes pacing themselves under a single API key instead of
//    hammering the victim and eating throttles. With PacerConfig::aimd the
//    pacer closes the loop: ResilientHandle feeds served answers and
//    overload pushback back into it, and the shared rate converges on the
//    victim's undisclosed limit with zero configuration
//    (additive-increase / multiplicative-decrease, seeded by the server's
//    retry_after_ms hints).
//
// TokenBucket is not thread-safe (callers lock); RateLimiter and Pacer are.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/clock.hpp"

namespace duo::serve {

// What RetrievalServer::submit does once queue occupancy reaches the
// admission threshold (ServerConfig::admission_threshold × queue_capacity).
enum class AdmissionPolicy {
  kBlock,   // wait for room (bounded by the caller's submit deadline)
  kReject,  // fail immediately with ServeError{kOverloaded} + retry_after
  kShed,    // accept, evicting the queued request closest to its deadline
            // (least useful work; its future fails with ServeError{kShed}),
            // falling back to oldest-first among undeadlined requests
};

// The complete decision state of a TokenBucket, exposed so a server snapshot
// can persist per-client rate-limit levels across a crash/restart: a client
// that had drained its burst before the crash must not get a fresh burst
// after recovery, or the billing trajectory would depend on crash timing.
struct TokenBucketState {
  double rate = 0.0;
  double burst = 0.0;
  double tokens = 0.0;
  double last_ms = 0.0;
  bool primed = false;

  friend bool operator==(const TokenBucketState& a, const TokenBucketState& b) {
    return a.rate == b.rate && a.burst == b.burst && a.tokens == b.tokens &&
           a.last_ms == b.last_ms && a.primed == b.primed;
  }
};

// Deterministic token bucket: `rate` tokens/sec refill up to `burst`.
// Decisions depend only on the constructor arguments and the sequence of
// try_acquire(now_ms) calls, so a virtual clock makes them reproducible.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst);

  // Takes one token at time `now_ms` if available. Returns 0.0 on success,
  // otherwise the milliseconds until a token will exist (the retry_after
  // hint) without consuming anything. `now_ms` must be monotone.
  double try_acquire(double now_ms);

  // Tokens that would be available at `now_ms`, without consuming anything
  // or advancing the refill timeline. Before the first acquire the bucket
  // reports its full burst. Pure observation — interleaving peeks between
  // acquires never changes any grant/deny decision.
  double peek_tokens(double now_ms) const noexcept;

  // Retune the refill rate at time `now_ms`: accrual up to `now_ms` is
  // settled at the old rate first, so a rate change never rewrites history —
  // decisions stay a pure function of the (call, timestamp) sequence. Burst
  // and current tokens are untouched.
  void set_rate(double rate_per_sec, double now_ms);

  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

  // Snapshot / restore the full decision state. A restored bucket makes
  // exactly the decisions the snapshotted one would have made for the same
  // subsequent (call, timestamp) sequence.
  TokenBucketState state() const noexcept;
  void restore(const TokenBucketState& state);

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_ms_ = 0.0;
  bool primed_ = false;  // first acquire anchors the refill timeline
};

// One TokenBucket per client id, created lazily on first sight. All buckets
// share the same (rate, burst) configuration.
class RateLimiter {
 public:
  RateLimiter(double rate_per_sec, double burst);

  // Grant/deny for `client_id` at `now_ms`; same contract as
  // TokenBucket::try_acquire. Thread-safe.
  double try_acquire(const std::string& client_id, double now_ms);

  // Mid-run limit change: retunes the sustained rate for every existing
  // bucket (settled at `now_ms`, see TokenBucket::set_rate) and for buckets
  // created later. The serving story behind AIMD's re-convergence test: the
  // victim quietly drops its rate and clients must rediscover it.
  void set_rate(double rate_per_sec, double now_ms);

  double rate() const;
  std::int64_t clients_seen() const;

  // Per-client bucket states sorted by client id (deterministic order for
  // serialization/fingerprinting), plus the configured rate/burst. restore()
  // replaces every existing bucket with the snapshotted set.
  struct State {
    double rate = 0.0;
    double burst = 0.0;
    std::vector<std::pair<std::string, TokenBucketState>> buckets;

    friend bool operator==(const State& a, const State& b) {
      return a.rate == b.rate && a.burst == b.burst && a.buckets == b.buckets;
    }
  };
  State snapshot() const;
  void restore(const State& state);

 private:
  double rate_;
  double burst_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, TokenBucket> buckets_;
};

struct PacerConfig {
  // Sustained submissions/sec shared by every handle on this pacer, and the
  // burst the bucket tolerates. rate must be > 0. Under AIMD this is only
  // the *initial* rate — the loop retunes it from server feedback.
  double rate_per_sec = 50.0;
  double burst = 4.0;

  // AIMD mode: converge on the victim's undisclosed rate limit with zero
  // hand-tuning. Each served answer grows the rate by aimd_increase/rate
  // (≈ aimd_increase tokens/sec per second of sustained service — the
  // classic linear probe); each overload pushback contracts it to
  // aimd_decrease × rate; a throttle's retry_after_ms hint additionally
  // seeds the rate directly (the hint upper-bounds the server's refill
  // rate), so a wildly mis-set initial rate converges in one round trip
  // instead of decaying geometrically. The rate is clamped to
  // [aimd_floor, aimd_ceiling] throughout.
  bool aimd = false;
  double aimd_increase = 4.0;  // probe slope, tokens/sec per sec of service
  double aimd_decrease = 0.5;  // back-off factor on pushback, in (0, 1)
  double aimd_floor = 0.1;     // rate never contracts below this
  double aimd_ceiling = 1e6;   // rate never grows above this
};

// Shared client-side pacer: acquire() blocks (through the clock, so a
// VirtualClock pacer never wall-waits) until the shared bucket grants a
// token. Hand one shared_ptr<Pacer> to every ResilientHandle that shares an
// API key; their combined submission rate then respects the bucket.
class Pacer {
 public:
  explicit Pacer(PacerConfig config, std::shared_ptr<Clock> clock = nullptr);

  // Blocks until a token is granted. Thread-safe.
  void acquire();

  // AIMD feedback (no-ops unless config.aimd). ResilientHandle calls these
  // for every handle sharing the pacer, so the discovered rate is the joint
  // rate of the whole API key, not per handle. Deterministic: the rate
  // trajectory is a pure function of the (success, overload-hint) call
  // sequence and the clock timestamps at which they land.
  void on_success();  // served answer → additive increase
  // Overload pushback (kThrottled / kOverloaded / kShed / kExpired) →
  // multiplicative decrease. `retry_after_ms` > 0 (throttle / reject hints)
  // also seeds the rate from the hint-implied server rate.
  void on_overload(double retry_after_ms);

  std::int64_t granted() const;    // tokens handed out
  std::int64_t waits() const;      // sleep rounds taken while pacing
  double waited_ms() const;        // total clock time spent pacing
  // Tokens the shared bucket holds right now (reads the clock, consumes
  // nothing) — lets a campaign report show residual client-side headroom.
  double tokens_available() const;
  // The current shared rate: under AIMD, the discovered limit estimate;
  // otherwise the static configured rate.
  double current_rate() const;
  std::int64_t rate_increases() const;  // AIMD additive steps taken
  std::int64_t rate_decreases() const;  // AIMD contractions taken

  const PacerConfig& config() const noexcept { return config_; }
  Clock& clock() noexcept { return *clock_; }

 private:
  PacerConfig config_;
  std::shared_ptr<Clock> clock_;
  mutable std::mutex mutex_;
  TokenBucket bucket_;
  std::int64_t granted_ = 0;
  std::int64_t waits_ = 0;
  double waited_ms_ = 0.0;
  std::int64_t rate_increases_ = 0;
  std::int64_t rate_decreases_ = 0;
};

}  // namespace duo::serve
