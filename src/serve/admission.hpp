#pragma once

// Overload-control primitives shared by the server's admission path and the
// attacker's client policy:
//
//  - TokenBucket: the deterministic leaky-bucket core. Given the same
//    sequence of (timestamp, acquire) calls it makes the same sequence of
//    grant/deny decisions — all state is explicit, no hidden clock reads.
//  - RateLimiter: per-client TokenBuckets keyed by client id; the server's
//    "one API key, one sustained rate" model (QAIR frames the realistic
//    victim as exactly this kind of rate-limited service).
//  - AdmissionPolicy: what RetrievalServer::submit does when the queue is
//    at the configured load threshold — block (legacy backpressure),
//    reject-with-retry-after, or shed the oldest queued request.
//  - Pacer: the client-side counterpart — one shared token bucket across
//    any number of ResilientHandle instances, modeling concurrent attack
//    processes pacing themselves under a single API key instead of
//    hammering the victim and eating throttles.
//
// TokenBucket is not thread-safe (callers lock); RateLimiter and Pacer are.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/clock.hpp"

namespace duo::serve {

// What RetrievalServer::submit does once queue occupancy reaches the
// admission threshold (ServerConfig::admission_threshold × queue_capacity).
enum class AdmissionPolicy {
  kBlock,   // wait for room (bounded by the caller's submit deadline)
  kReject,  // fail immediately with ServeError{kOverloaded} + retry_after
  kShed,    // accept, dropping the oldest queued request (its future fails
            // with ServeError{kShed}) — freshest-first under overload
};

// Deterministic token bucket: `rate` tokens/sec refill up to `burst`.
// Decisions depend only on the constructor arguments and the sequence of
// try_acquire(now_ms) calls, so a virtual clock makes them reproducible.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst);

  // Takes one token at time `now_ms` if available. Returns 0.0 on success,
  // otherwise the milliseconds until a token will exist (the retry_after
  // hint) without consuming anything. `now_ms` must be monotone.
  double try_acquire(double now_ms);

  // Tokens that would be available at `now_ms`, without consuming anything
  // or advancing the refill timeline. Before the first acquire the bucket
  // reports its full burst. Pure observation — interleaving peeks between
  // acquires never changes any grant/deny decision.
  double peek_tokens(double now_ms) const noexcept;

  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_ms_ = 0.0;
  bool primed_ = false;  // first acquire anchors the refill timeline
};

// One TokenBucket per client id, created lazily on first sight. All buckets
// share the same (rate, burst) configuration.
class RateLimiter {
 public:
  RateLimiter(double rate_per_sec, double burst);

  // Grant/deny for `client_id` at `now_ms`; same contract as
  // TokenBucket::try_acquire. Thread-safe.
  double try_acquire(const std::string& client_id, double now_ms);

  std::int64_t clients_seen() const;

 private:
  double rate_;
  double burst_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, TokenBucket> buckets_;
};

struct PacerConfig {
  // Sustained submissions/sec shared by every handle on this pacer, and the
  // burst the bucket tolerates. rate must be > 0.
  double rate_per_sec = 50.0;
  double burst = 4.0;
};

// Shared client-side pacer: acquire() blocks (through the clock, so a
// VirtualClock pacer never wall-waits) until the shared bucket grants a
// token. Hand one shared_ptr<Pacer> to every ResilientHandle that shares an
// API key; their combined submission rate then respects the bucket.
class Pacer {
 public:
  explicit Pacer(PacerConfig config, std::shared_ptr<Clock> clock = nullptr);

  // Blocks until a token is granted. Thread-safe.
  void acquire();

  std::int64_t granted() const;    // tokens handed out
  std::int64_t waits() const;      // sleep rounds taken while pacing
  double waited_ms() const;        // total clock time spent pacing
  // Tokens the shared bucket holds right now (reads the clock, consumes
  // nothing) — lets a campaign report show residual client-side headroom.
  double tokens_available() const;

  const PacerConfig& config() const noexcept { return config_; }
  Clock& clock() noexcept { return *clock_; }

 private:
  PacerConfig config_;
  std::shared_ptr<Clock> clock_;
  mutable std::mutex mutex_;
  TokenBucket bucket_;
  std::int64_t granted_ = 0;
  std::int64_t waits_ = 0;
  double waited_ms_ = 0.0;
};

}  // namespace duo::serve
