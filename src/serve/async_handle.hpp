#pragma once

// AsyncBlackBoxHandle: the attacker's asynchronous view of a served victim.
// Like BlackBoxHandle it exposes only retrieval lists plus query accounting,
// but submission returns a future, so an attacker (or many concurrent
// clients) can keep several victim forwards in flight — exactly the handle
// SparseQuery's pipelined mode drives.
//
// Accounting is honest and thread-safe: every submit() counts as one victim
// query at submission time, whether or not the caller ends up using the
// answer (a speculative candidate the attacker discards still cost the
// victim a forward pass).

#include <atomic>
#include <cstdint>
#include <future>
#include <utility>

#include "metrics/metrics.hpp"
#include "serve/server.hpp"
#include "video/video.hpp"

namespace duo::serve {

class AsyncBlackBoxHandle {
 public:
  explicit AsyncBlackBoxHandle(RetrievalServer& server) : server_(server) {}

  AsyncBlackBoxHandle(const AsyncBlackBoxHandle&) = delete;
  AsyncBlackBoxHandle& operator=(const AsyncBlackBoxHandle&) = delete;

  // Asynchronous R^m(v): counts one query, returns a future for the list.
  std::future<metrics::RetrievalList> submit(video::Video v, std::size_t m) {
    query_count_.fetch_add(1, std::memory_order_relaxed);
    return server_.submit(std::move(v), m);
  }

  // Synchronous convenience wrapper (submit + wait).
  metrics::RetrievalList retrieve(const video::Video& v, std::size_t m) {
    return submit(v, m).get();
  }

  std::int64_t query_count() const noexcept {
    return query_count_.load(std::memory_order_relaxed);
  }
  void reset_query_count() noexcept {
    query_count_.store(0, std::memory_order_relaxed);
  }

  // Server-side accounting snapshot (batch histogram, latency percentiles).
  ServerStats server_stats() const { return server_.stats(); }

 private:
  RetrievalServer& server_;
  std::atomic<std::int64_t> query_count_{0};
};

}  // namespace duo::serve
