#pragma once

// AsyncBlackBoxHandle: the attacker's asynchronous view of a served victim.
// Like BlackBoxHandle it exposes only retrieval lists plus query accounting,
// but submission returns a future, so an attacker (or many concurrent
// clients) can keep several victim forwards in flight — exactly the handle
// SparseQuery's pipelined mode drives.
//
// Accounting is honest and thread-safe: every submit() counts as one victim
// query at submission time, whether or not the caller ends up using the
// answer (a speculative candidate the attacker discards still cost the
// victim a forward pass). submit_with_deadline bills only accepted
// submissions — a request rejected at the queue never reached the victim.
//
// Failures surface as typed serve::ServeError (serve/errors.hpp) so callers
// can tell retryable hiccups from fatal conditions and know whether the
// failed query was billed; a dropped response (abandoned promise) is
// translated from std::future_error into ServeError{kDropped, billed}.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <utility>

#include "metrics/metrics.hpp"
#include "serve/errors.hpp"
#include "serve/server.hpp"
#include "video/video.hpp"

namespace duo::serve {

class AsyncBlackBoxHandle {
 public:
  // `options` travels with every request from this handle: the rate-limit
  // client_id (the attacker's API key) and the per-request freshness ttl.
  explicit AsyncBlackBoxHandle(RetrievalServer& server,
                               RequestOptions options = {})
      : server_(server), options_(std::move(options)) {}

  AsyncBlackBoxHandle(const AsyncBlackBoxHandle&) = delete;
  AsyncBlackBoxHandle& operator=(const AsyncBlackBoxHandle&) = delete;

  // Asynchronous R^m(v): counts one query, returns a future for the list.
  // (A submission that loses the race with shutdown is still counted here;
  // use submit_with_deadline for billing that tracks acceptance.)
  std::future<metrics::RetrievalList> submit(video::Video v, std::size_t m) {
    query_count_.fetch_add(1, std::memory_order_relaxed);
    return server_.submit(std::move(v), m, options_);
  }

  // Bounded-wait submission: bills one victim query iff the request was
  // accepted into the queue. Rejections — queue-full timeouts, admission
  // kReject, rate-limit throttles — come back unbilled with the ServeError
  // already set on the future (see RetrievalServer).
  SubmitOutcome submit_with_deadline(video::Video v, std::size_t m,
                                     std::chrono::milliseconds deadline) {
    SubmitOutcome out =
        server_.submit_with_deadline(std::move(v), m, deadline, options_);
    if (out.accepted) query_count_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  // Synchronous convenience wrapper (submit + wait). Throws ServeError on
  // failure — typed, so callers can branch on retryable()/billed().
  metrics::RetrievalList retrieve(const video::Video& v, std::size_t m) {
    auto future = submit(v, m);
    try {
      return future.get();
    } catch (const ServeError&) {
      throw;  // already typed (injected faults, shutdown, backend failure)
    } catch (const std::future_error&) {
      throw ServeError(ServeErrorCode::kDropped, /*billed=*/true,
                       "AsyncBlackBoxHandle: response dropped by the server");
    }
  }

  std::int64_t query_count() const noexcept {
    return query_count_.load(std::memory_order_relaxed);
  }
  void reset_query_count() noexcept {
    query_count_.store(0, std::memory_order_relaxed);
  }

  // Server-side accounting snapshot (batch histogram, latency percentiles).
  ServerStats server_stats() const { return server_.stats(); }

  const RequestOptions& options() const noexcept { return options_; }

 private:
  RetrievalServer& server_;
  RequestOptions options_;
  std::atomic<std::int64_t> query_count_{0};
};

}  // namespace duo::serve
