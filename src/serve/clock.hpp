#pragma once

// Time as a dependency, not an ambient global. Every overload-robustness
// policy in the serve layer — per-request deadlines, token-bucket rate
// limiting, client-side pacing, circuit-breaker cooldowns — reads time
// through a Clock so the policy's decisions are a pure function of its
// inputs:
//
//  - SystemClock is the production clock (steady wall time, real sleeps).
//  - VirtualClock is the test clock: time stands still until someone
//    advances it, and sleep_ms *is* an advance, so a policy driven by a
//    VirtualClock runs instantly and makes bit-for-bit reproducible
//    decisions. That is what extends the serve layer's
//    bitwise-identical-under-retry guarantee to
//    bitwise-identical-under-throttling (tests/test_failure_modes.cpp).
//
// Both clocks are thread-safe.

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "common/stopwatch.hpp"

namespace duo::serve {

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotone milliseconds since an arbitrary epoch.
  virtual double now_ms() = 0;
  // Blocks the caller for `ms` of this clock's time. Non-positive = no-op.
  virtual void sleep_ms(double ms) = 0;
};

class SystemClock final : public Clock {
 public:
  double now_ms() override { return epoch_.elapsed_ms(); }
  void sleep_ms(double ms) override {
    if (ms <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }

 private:
  Stopwatch epoch_;  // steady_clock underneath; never goes backwards
};

// Manually advanced clock. sleep_ms advances the clock instead of blocking,
// so virtual-clocked policies (pacers, backoffs, cooldowns) never wall-wait.
class VirtualClock final : public Clock {
 public:
  double now_ms() override {
    std::lock_guard<std::mutex> lock(mutex_);
    return now_ms_;
  }
  void sleep_ms(double ms) override { advance_ms(ms); }
  void advance_ms(double ms) {
    if (ms <= 0.0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    now_ms_ += ms;
  }

 private:
  std::mutex mutex_;
  double now_ms_ = 0.0;
};

// Config plumbing: a null clock means "wall time".
inline std::shared_ptr<Clock> ensure_clock(std::shared_ptr<Clock> clock) {
  return clock != nullptr ? std::move(clock)
                          : std::make_shared<SystemClock>();
}

}  // namespace duo::serve
