#pragma once

// Typed serve-layer failures. Everything that can go wrong between an
// attacker's submit() and the victim's answer is surfaced as a ServeError so
// callers can tell a retryable hiccup (transient backend error, dropped
// response, backpressure timeout, throttle) from a fatal condition (server
// shut down, retry budget exhausted, circuit open, extractor blew up) — and
// whether the failed attempt billed a victim query, which a query-budgeted
// attack must account for even when the answer never arrived.
//
// ServeError derives from std::runtime_error, so pre-existing callers that
// caught the old untyped exceptions keep working.

#include <stdexcept>
#include <string>

namespace duo::serve {

enum class ServeErrorCode {
  kTransient,       // backend answered with a transient failure; retry
  kOverloaded,      // bounded submit deadline expired with the queue full,
                    // or admission policy kReject turned the request away
  kDropped,         // response lost (promise abandoned / per-query timeout)
  kShutdown,        // server stopped; no retry will ever succeed
  kRetryExhausted,  // resilient client ran out of attempts or retry budget
  kFatal,           // unrecoverable backend error (extractor failure, ...)
  kThrottled,       // per-client rate limit denied the request (unbilled)
  kExpired,         // request's deadline passed while queued; shed before
                    // extraction (billed: it was accepted)
  kShed,            // admission policy kShed evicted it to admit fresher
                    // work (billed: it was accepted)
  kUnavailable,     // client-side circuit breaker is open; nothing was sent
                    // to the victim (unbilled, not retryable — checkpoint
                    // and surface instead of burning the retry budget)
  kConnectionLost,  // server crashed: the request was lost in flight (billed
                    // — it was accepted) or arrived while the server is down
                    // (unbilled). Retryable: reconnect and re-submit once
                    // the server restarts.
};

class ServeError : public std::runtime_error {
 public:
  ServeError(ServeErrorCode code, bool billed, const std::string& what,
             double retry_after_ms = 0.0)
      : std::runtime_error(what),
        code_(code),
        billed_(billed),
        retry_after_ms_(retry_after_ms) {}

  ServeErrorCode code() const noexcept { return code_; }

  // True when the victim (is believed to have) spent a forward pass on the
  // failed attempt — honest query accounting must count it.
  bool billed() const noexcept { return billed_; }

  // Server hint (throttle / admission rejection): milliseconds until a retry
  // has a chance. 0 = no hint. A well-behaved client waits at least this
  // long instead of its own backoff guess.
  double retry_after_ms() const noexcept { return retry_after_ms_; }

  // Retryable failures are transient by construction: a later identical
  // submission can succeed. Fatal codes never clear on retry; kUnavailable
  // is the circuit breaker telling the caller to *stop* retrying.
  bool retryable() const noexcept {
    return code_ == ServeErrorCode::kTransient ||
           code_ == ServeErrorCode::kOverloaded ||
           code_ == ServeErrorCode::kDropped ||
           code_ == ServeErrorCode::kThrottled ||
           code_ == ServeErrorCode::kExpired ||
           code_ == ServeErrorCode::kShed ||
           code_ == ServeErrorCode::kConnectionLost;
  }

  // Overload-family failures: the victim pushed back on load rather than
  // malfunctioning. The circuit breaker ignores these (a throttled victim is
  // up, just busy), and the resilient client honors retry_after for them.
  bool overload() const noexcept {
    return code_ == ServeErrorCode::kOverloaded ||
           code_ == ServeErrorCode::kThrottled ||
           code_ == ServeErrorCode::kExpired ||
           code_ == ServeErrorCode::kShed;
  }

  // Connection-lost failures are their own family, distinct from both the
  // fault family (the breaker must not open: the server is *restarting*, not
  // malfunctioning — tripping it would strand the client after recovery) and
  // the overload family (the pacer must not contract: a crash says nothing
  // about the victim's rate limit). The resilient client reconnects with
  // backoff until the server returns.
  bool connection_lost() const noexcept {
    return code_ == ServeErrorCode::kConnectionLost;
  }

 private:
  ServeErrorCode code_;
  bool billed_;
  double retry_after_ms_;
};

}  // namespace duo::serve
