#pragma once

// Typed serve-layer failures. Everything that can go wrong between an
// attacker's submit() and the victim's answer is surfaced as a ServeError so
// callers can tell a retryable hiccup (transient backend error, dropped
// response, backpressure timeout) from a fatal condition (server shut down,
// retry budget exhausted, extractor blew up) — and whether the failed
// attempt billed a victim query, which a query-budgeted attack must account
// for even when the answer never arrived.
//
// ServeError derives from std::runtime_error, so pre-existing callers that
// caught the old untyped exceptions keep working.

#include <stdexcept>
#include <string>

namespace duo::serve {

enum class ServeErrorCode {
  kTransient,       // backend answered with a transient failure; retry
  kOverloaded,      // bounded submit deadline expired with the queue full
  kDropped,         // response lost (promise abandoned / per-query timeout)
  kShutdown,        // server stopped; no retry will ever succeed
  kRetryExhausted,  // resilient client ran out of attempts or retry budget
  kFatal,           // unrecoverable backend error (extractor failure, ...)
};

class ServeError : public std::runtime_error {
 public:
  ServeError(ServeErrorCode code, bool billed, const std::string& what)
      : std::runtime_error(what), code_(code), billed_(billed) {}

  ServeErrorCode code() const noexcept { return code_; }

  // True when the victim (is believed to have) spent a forward pass on the
  // failed attempt — honest query accounting must count it.
  bool billed() const noexcept { return billed_; }

  // Retryable failures are transient by construction: a later identical
  // submission can succeed. Fatal codes never clear on retry.
  bool retryable() const noexcept {
    return code_ == ServeErrorCode::kTransient ||
           code_ == ServeErrorCode::kOverloaded ||
           code_ == ServeErrorCode::kDropped;
  }

 private:
  ServeErrorCode code_;
  bool billed_;
};

}  // namespace duo::serve
