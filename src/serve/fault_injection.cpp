#include "serve/fault_injection.hpp"

#include <thread>

#include "common/check.hpp"

namespace duo::serve {

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_(config.seed) {
  DUO_CHECK_MSG(config_.error_prob >= 0.0 && config_.delay_prob >= 0.0 &&
                    config_.drop_prob >= 0.0,
                "FaultInjector: negative fault probability");
  DUO_CHECK_MSG(
      config_.error_prob + config_.delay_prob + config_.drop_prob <= 1.0,
      "FaultInjector: fault probabilities sum past 1");
  DUO_CHECK_MSG(config_.delay_ms >= 0.0, "FaultInjector: negative delay");
  DUO_CHECK_MSG(config_.error_until >= 0,
                "FaultInjector: negative error_until");
  DUO_CHECK_MSG(config_.error_from >= -1,
                "FaultInjector: error_from must be -1 or a request index");
}

FaultKind FaultInjector::draw() {
  // One uniform draw per request keeps the schedule a pure function of the
  // seed and the request index, whatever mix of fault kinds is enabled.
  if (decisions_ == config_.fatal_at) {
    ++decisions_;
    ++injected_;
    return FaultKind::kFatalError;
  }
  const std::int64_t index = decisions_++;
  const double u = rng_.uniform();
  if (index < config_.error_until ||
      (config_.error_from >= 0 && index >= config_.error_from)) {
    ++injected_;
    return FaultKind::kTransientError;
  }
  FaultKind kind = FaultKind::kNone;
  if (u < config_.error_prob) {
    kind = FaultKind::kTransientError;
  } else if (u < config_.error_prob + config_.delay_prob) {
    kind = FaultKind::kDelay;
  } else if (u < config_.error_prob + config_.delay_prob + config_.drop_prob) {
    kind = FaultKind::kDrop;
  }
  if (kind != FaultKind::kNone) ++injected_;
  return kind;
}

FaultKind FaultInjector::next() {
  std::lock_guard<std::mutex> lock(mutex_);
  return draw();
}

std::int64_t FaultInjector::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

std::int64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

std::vector<FaultKind> FaultInjector::schedule(const FaultConfig& config,
                                               std::size_t n) {
  FaultInjector preview(config);
  std::vector<FaultKind> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(preview.next());
  return out;
}

metrics::RetrievalList FaultySystem::retrieve(const video::Video& v,
                                              std::size_t m) {
  switch (injector_.next()) {
    case FaultKind::kTransientError:
      throw ServeError(ServeErrorCode::kTransient, /*billed=*/true,
                       "FaultySystem: injected transient error");
    case FaultKind::kDrop:
      // In the synchronous world a dropped response surfaces as the client's
      // own timeout; the backend still did the work.
      throw ServeError(ServeErrorCode::kDropped, /*billed=*/true,
                       "FaultySystem: injected dropped response");
    case FaultKind::kFatalError:
      throw ServeError(ServeErrorCode::kFatal, /*billed=*/true,
                       "FaultySystem: injected fatal victim error");
    case FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(injector_.config().delay_ms));
      break;
    case FaultKind::kNone:
      break;
  }
  return system_.retrieve(v, m);
}

}  // namespace duo::serve
