#pragma once

// Deterministic fault injection for the victim service. A FaultInjector
// draws one fault decision per request from a seeded Rng, so a given seed
// always yields the same fault schedule over the same arrival order — every
// fault-tolerance test is bit-for-bit reproducible. Faults model the ways a
// deployed black-box API misbehaves under load (the operating conditions
// SimBA-style query attacks meet in practice): transient errors, fixed-delay
// slowdowns, and dropped responses, plus an optional fatal fault at a fixed
// request index for kill-and-resume tests.
//
// Two injection points share the schedule engine:
//  - RetrievalServer consults a FaultInjector (ServerConfig::fault_injector)
//    when fulfilling each request, in arrival order.
//  - FaultySystem wraps a RetrievalSystem for the synchronous, non-served
//    path: retrieve() throws / sleeps per the same schedule. Like the raw
//    system it wraps, it is NOT safe for concurrent retrieve calls.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "retrieval/system.hpp"
#include "serve/errors.hpp"
#include "video/video.hpp"

namespace duo::serve {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kTransientError,  // answer replaced by a retryable ServeError
  kDelay,           // answer delayed by FaultConfig::delay_ms
  kDrop,            // answer never delivered (promise abandoned)
  kFatalError,      // unrecoverable ServeError (kill-and-resume tests)
};

struct FaultConfig {
  // Per-request probabilities; must sum to <= 1. The remainder is kNone.
  double error_prob = 0.0;
  double delay_prob = 0.0;
  double drop_prob = 0.0;
  // Fixed slowdown applied to kDelay requests.
  double delay_ms = 5.0;
  // Request index (0-based, in arrival order) that fails fatally; -1 = never.
  std::int64_t fatal_at = -1;
  // Every request with index < error_until fails transiently, before any
  // probability draw — models an outage that heals ("down for the first N
  // requests"), the deterministic shape circuit-breaker tests need. The
  // probabilistic schedule still consumes one uniform per such request, so
  // enabling error_until shifts nothing for later indices.
  std::int64_t error_until = 0;
  // Mirror image of error_until: every request with index >= error_from
  // fails transiently — models a victim that goes down mid-attack and stays
  // down (the shape that trips a client circuit breaker after real
  // progress). -1 disables. Also consumes one uniform per request, so the
  // probabilistic schedule below the cutover is unshifted.
  std::int64_t error_from = -1;
  // Seed of the fault schedule. Same seed + same arrival order = same faults.
  std::uint64_t seed = 1;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  // Fault decision for the next request, consuming the schedule. Thread-safe;
  // decisions are deterministic in consumption order.
  FaultKind next();

  // Requests decided so far / faults (anything but kNone) injected so far.
  std::int64_t decisions() const;
  std::int64_t injected() const;

  const FaultConfig& config() const noexcept { return config_; }

  // Pure preview of the schedule a fresh injector with `config` would
  // produce for its first `n` requests (tests assert determinism with this).
  static std::vector<FaultKind> schedule(const FaultConfig& config,
                                         std::size_t n);

 private:
  FaultKind draw();  // requires mutex_ held

  FaultConfig config_;
  mutable std::mutex mutex_;
  Rng rng_;
  std::int64_t decisions_ = 0;
  std::int64_t injected_ = 0;
};

// The synchronous victim with faults: wraps a RetrievalSystem and applies a
// FaultInjector schedule to direct retrieve() calls. Injected faults throw
// ServeError with billed=true — the backend did (or would have done) the
// forward pass; only the answer is lost. kDelay sleeps, then answers.
class FaultySystem {
 public:
  FaultySystem(retrieval::RetrievalSystem& system, FaultConfig config)
      : system_(system), injector_(config) {}

  metrics::RetrievalList retrieve(const video::Video& v, std::size_t m);

  // Adapter for retrieval::BlackBoxHandle's type-erased constructor.
  retrieval::BlackBoxHandle::RetrieveFn retrieve_fn() {
    return [this](const video::Video& v, std::size_t m) {
      return retrieve(v, m);
    };
  }

  FaultInjector& injector() noexcept { return injector_; }

 private:
  retrieval::RetrievalSystem& system_;
  FaultInjector injector_;
};

}  // namespace duo::serve
