#include "serve/resilient.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"

namespace duo::serve {

metrics::RetrievalList PendingRetrieval::get() {
  return handle_->await_with_retry(std::move(future_), accepted_, probe_,
                                   video_, m_);
}

ResilientHandle::ResilientHandle(AsyncBlackBoxHandle& inner,
                                 RetryPolicy policy,
                                 std::shared_ptr<Pacer> pacer,
                                 std::shared_ptr<Clock> clock)
    : inner_(inner),
      policy_(policy),
      pacer_(std::move(pacer)),
      clock_(ensure_clock(std::move(clock))),
      jitter_rng_(policy.seed),
      budget_left_(policy.retry_budget) {
  DUO_CHECK_MSG(policy_.max_attempts >= 1,
                "ResilientHandle: max_attempts < 1");
  DUO_CHECK_MSG(policy_.jitter >= 0.0, "ResilientHandle: negative jitter");
  DUO_CHECK_MSG(policy_.circuit_threshold >= 0,
                "ResilientHandle: negative circuit_threshold");
  DUO_CHECK_MSG(policy_.circuit_cooldown_ms >= 0.0,
                "ResilientHandle: negative circuit_cooldown_ms");
  DUO_CHECK_MSG(policy_.reconnect_attempts >= 0,
                "ResilientHandle: negative reconnect_attempts");
  DUO_CHECK_MSG(policy_.reconnect_wait_ms >= 0.0,
                "ResilientHandle: negative reconnect_wait_ms");
}

ResilientHandle::Gate ResilientHandle::circuit_gate() {
  if (policy_.circuit_threshold <= 0) return Gate::kAllow;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (circuit_) {
    case CircuitState::kClosed:
      return Gate::kAllow;
    case CircuitState::kOpen:
      if (clock_->now_ms() - opened_at_ms_ >= cooldown_ms_) {
        circuit_ = CircuitState::kHalfOpen;
        probe_in_flight_ = true;
        return Gate::kAllowProbe;
      }
      ++fast_failures_;
      return Gate::kFailFast;
    case CircuitState::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return Gate::kAllowProbe;
      }
      ++fast_failures_;
      return Gate::kFailFast;
  }
  return Gate::kAllow;  // unreachable
}

ResilientHandle::GuardedSubmit ResilientHandle::guarded_submit(
    const video::Video& v, std::size_t m) {
  const Gate gate = circuit_gate();
  GuardedSubmit g;
  if (gate == Gate::kFailFast) {
    // Nothing is sent to the victim: surface kUnavailable through the
    // future so pipelined callers hit it inside get(), where their
    // checkpoint-on-fatal path runs.
    std::promise<metrics::RetrievalList> rejected;
    g.out.future = rejected.get_future();
    g.out.accepted = false;
    rejected.set_exception(std::make_exception_ptr(ServeError(
        ServeErrorCode::kUnavailable, /*billed=*/false,
        "ResilientHandle: circuit open, victim presumed unavailable")));
    return g;
  }
  if (pacer_ != nullptr) pacer_->acquire();
  g.out = inner_.submit_with_deadline(v, m, policy_.submit_deadline);
  g.probe = (gate == Gate::kAllowProbe);
  return g;
}

metrics::RetrievalList ResilientHandle::retrieve(const video::Video& v,
                                                 std::size_t m) {
  GuardedSubmit first = guarded_submit(v, m);
  return await_with_retry(std::move(first.out.future), first.out.accepted,
                          first.probe, v, m);
}

PendingRetrieval ResilientHandle::submit(video::Video v, std::size_t m) {
  GuardedSubmit first = guarded_submit(v, m);
  const bool probe = first.probe;
  return PendingRetrieval(*this, std::move(v), m, std::move(first.out), probe);
}

ResilientHandle::FailureInfo ResilientHandle::classify_failure(
    std::future<metrics::RetrievalList>& future, bool was_probe) {
  FailureInfo info;
  try {
    (void)future.get();
    DUO_CHECK_MSG(false, "ResilientHandle: classify_failure on a success");
  } catch (const ServeError& e) {
    if (!e.retryable()) {
      // A probe dying on a non-retryable error leaves via throw; release
      // the half-open slot so later queries can re-probe.
      if (was_probe) release_probe();
      throw;
    }
    if (e.connection_lost()) {
      note_connection_lost(was_probe);
      info.connection_lost = true;
      return info;
    }
    note_retryable(e.overload(), was_probe);
    if (pacer_ != nullptr && e.overload()) pacer_->on_overload(e.retry_after_ms());
    info.retry_after_ms = e.retry_after_ms();
    return info;
  } catch (const std::future_error&) {
    // Dropped response: promise abandoned server-side. Breaker-relevant.
    note_retryable(/*overload=*/false, was_probe);
  }
  return info;
}

metrics::RetrievalList ResilientHandle::await_with_retry(
    std::future<metrics::RetrievalList> future, bool accepted, bool probe,
    const video::Video& v, std::size_t m) {
  bool any_billed = accepted;
  int attempt = 1;
  int lost_streak = 0;  // consecutive connection-lost failures
  double retry_after_ms = 0.0;
  bool lost = false;
  if (!accepted) {
    const FailureInfo info = classify_failure(future, probe);  // throws if fatal
    retry_after_ms = info.retry_after_ms;
    lost = info.connection_lost;
  }
  for (;;) {
    if (accepted) {
      lost = false;
      if (future.wait_for(policy_.query_timeout) ==
          std::future_status::ready) {
        try {
          auto list = future.get();
          note_success(probe);
          if (pacer_ != nullptr) pacer_->on_success();
          return list;
        } catch (const ServeError& e) {
          if (!e.retryable()) {
            if (probe) release_probe();
            throw;
          }
          if (e.connection_lost()) {
            // The request died with the server (billed — it was accepted).
            // Replay it through the reconnect path below.
            note_connection_lost(probe);
            lost = true;
          } else {
            note_retryable(e.overload(), probe);
            if (pacer_ != nullptr && e.overload()) {
              pacer_->on_overload(e.retry_after_ms());
            }
            retry_after_ms = e.retry_after_ms();
          }
        } catch (const std::future_error&) {
          // Dropped response: promise abandoned server-side.
          note_retryable(/*overload=*/false, probe);
        }
      } else {
        // Answer overdue: declare it lost and resubmit. The abandoned future
        // may still be fulfilled later; that forward stays billed. A victim
        // that stops answering is breaker-relevant.
        note_retryable(/*overload=*/false, probe);
        retry_after_ms = 0.0;
      }
    }
    if (lost) {
      // Reconnect path: the victim crashed — ride out the downtime without
      // spending attempts or budget (the crash is not this query's fault),
      // bounded by its own allowance so a server that never comes back
      // still fails closed. The wait is REAL wall time: the restart runs in
      // real time on another thread, and under a VirtualClock a clocked
      // sleep would complete instantly and burn the allowance dry before
      // the server is back.
      if (++lost_streak > policy_.reconnect_attempts) {
        throw ServeError(ServeErrorCode::kRetryExhausted, any_billed,
                         "ResilientHandle: reconnect attempts exhausted — "
                         "the server never came back");
      }
      if (policy_.reconnect_wait_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            policy_.reconnect_wait_ms));
      }
      retry_after_ms = 0.0;
    } else {
      lost_streak = 0;
      if (attempt >= policy_.max_attempts) {
        throw ServeError(ServeErrorCode::kRetryExhausted, any_billed,
                         "ResilientHandle: attempts exhausted for this query");
      }
      consume_budget(any_billed);
      const auto backoff = next_backoff(attempt);
      // A server retry_after hint is a floor on the wait, not a replacement
      // for backoff: the client never retries sooner than the victim asked.
      const double wait_ms = std::max(backoff.count(), retry_after_ms);
      if (wait_ms > 0.0) clock_->sleep_ms(wait_ms);
      retry_after_ms = 0.0;
      ++attempt;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++retries_;
      }
    }
    GuardedSubmit retry = guarded_submit(v, m);
    accepted = retry.out.accepted;
    probe = retry.probe;
    any_billed = any_billed || accepted;
    future = std::move(retry.out.future);
    if (!accepted) {
      const FailureInfo info = classify_failure(future, probe);
      retry_after_ms = info.retry_after_ms;
      lost = info.connection_lost;
      probe = false;  // the failed probe already released its slot
    }
  }
}

void ResilientHandle::open_circuit_locked() {
  circuit_ = CircuitState::kOpen;
  opened_at_ms_ = clock_->now_ms();
  // Jittered cooldown from the same seeded stream as backoff, so the
  // open → half-open schedule is deterministic under a fixed seed.
  cooldown_ms_ =
      policy_.circuit_cooldown_ms * (1.0 + policy_.jitter * jitter_rng_.uniform());
  probe_in_flight_ = false;
  consecutive_failures_ = 0;
  ++circuit_opens_;
}

void ResilientHandle::note_retryable(bool overload, bool was_probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++faults_seen_;
  if (overload) {
    ++overloads_seen_;
    // Overload pushback proves the victim is alive: never advances the
    // breaker. A throttled probe just releases its half-open slot so the
    // next attempt can re-probe.
    if (was_probe && circuit_ == CircuitState::kHalfOpen) {
      probe_in_flight_ = false;
    }
    return;
  }
  if (policy_.circuit_threshold <= 0) return;
  if (was_probe && circuit_ == CircuitState::kHalfOpen) {
    open_circuit_locked();  // probe failed: back to open, fresh cooldown
    return;
  }
  if (circuit_ == CircuitState::kClosed) {
    if (++consecutive_failures_ >= policy_.circuit_threshold) {
      open_circuit_locked();
    }
  }
}

void ResilientHandle::note_connection_lost(bool was_probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++faults_seen_;
  ++connection_losses_;
  // Never advances the breaker: a crash heals via restart, and an open
  // circuit would abort the whole attack with kUnavailable. A half-open
  // probe just releases its slot (like overload pushback) so the next
  // attempt can re-probe.
  if (was_probe && circuit_ == CircuitState::kHalfOpen) {
    probe_in_flight_ = false;
  }
}

void ResilientHandle::release_probe() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (circuit_ == CircuitState::kHalfOpen) probe_in_flight_ = false;
}

void ResilientHandle::note_success(bool was_probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (was_probe || circuit_ == CircuitState::kHalfOpen) {
    circuit_ = CircuitState::kClosed;
    probe_in_flight_ = false;
  }
}

void ResilientHandle::consume_budget(bool any_billed) {
  if (policy_.retry_budget < 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_left_ <= 0) {
    throw ServeError(ServeErrorCode::kRetryExhausted, any_billed,
                     "ResilientHandle: total retry budget exhausted");
  }
  --budget_left_;
}

std::chrono::duration<double, std::milli> ResilientHandle::next_backoff(
    int attempt) {
  // min(cap, base * 2^(attempt-1)), scaled by deterministic jitter. The
  // shift is clamped so pathological attempt counts cannot overflow.
  const int shift = std::min(attempt - 1, 20);
  const double base = static_cast<double>(policy_.backoff_base.count()) *
                      static_cast<double>(1 << shift);
  const double capped =
      std::min(base, static_cast<double>(policy_.backoff_cap.count()));
  double u = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    u = jitter_rng_.uniform();
  }
  return std::chrono::duration<double, std::milli>(
      capped * (1.0 + policy_.jitter * u));
}

std::int64_t ResilientHandle::retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retries_;
}

std::int64_t ResilientHandle::faults_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_seen_;
}

std::int64_t ResilientHandle::overloads_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overloads_seen_;
}

std::int64_t ResilientHandle::connection_losses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connection_losses_;
}

std::int64_t ResilientHandle::circuit_opens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return circuit_opens_;
}

std::int64_t ResilientHandle::fast_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fast_failures_;
}

CircuitState ResilientHandle::circuit_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return circuit_;
}

}  // namespace duo::serve
