#include "serve/resilient.hpp"

#include <algorithm>
#include <thread>

#include "common/check.hpp"

namespace duo::serve {

metrics::RetrievalList PendingRetrieval::get() {
  return handle_->await_with_retry(std::move(future_), accepted_, video_, m_);
}

ResilientHandle::ResilientHandle(AsyncBlackBoxHandle& inner,
                                 RetryPolicy policy)
    : inner_(inner),
      policy_(policy),
      jitter_rng_(policy.seed),
      budget_left_(policy.retry_budget) {
  DUO_CHECK_MSG(policy_.max_attempts >= 1,
                "ResilientHandle: max_attempts < 1");
  DUO_CHECK_MSG(policy_.jitter >= 0.0, "ResilientHandle: negative jitter");
}

metrics::RetrievalList ResilientHandle::retrieve(const video::Video& v,
                                                 std::size_t m) {
  SubmitOutcome first =
      inner_.submit_with_deadline(v, m, policy_.submit_deadline);
  return await_with_retry(std::move(first.future), first.accepted, v, m);
}

PendingRetrieval ResilientHandle::submit(video::Video v, std::size_t m) {
  SubmitOutcome first =
      inner_.submit_with_deadline(v, m, policy_.submit_deadline);
  return PendingRetrieval(*this, std::move(v), m, std::move(first));
}

void ResilientHandle::classify_failure(
    std::future<metrics::RetrievalList>& future) {
  try {
    (void)future.get();
    DUO_CHECK_MSG(false, "ResilientHandle: classify_failure on a success");
  } catch (const ServeError& e) {
    if (!e.retryable()) throw;
    note_fault();
  } catch (const std::future_error&) {
    note_fault();  // dropped response: promise abandoned server-side
  }
}

metrics::RetrievalList ResilientHandle::await_with_retry(
    std::future<metrics::RetrievalList> future, bool accepted,
    const video::Video& v, std::size_t m) {
  bool any_billed = accepted;
  int attempt = 1;
  if (!accepted) classify_failure(future);  // throws when non-retryable
  for (;;) {
    if (accepted) {
      if (future.wait_for(policy_.query_timeout) ==
          std::future_status::ready) {
        bool retryable_failure = false;
        try {
          return future.get();
        } catch (const ServeError& e) {
          if (!e.retryable()) throw;
          retryable_failure = true;
        } catch (const std::future_error&) {
          retryable_failure = true;  // dropped response
        }
        if (retryable_failure) note_fault();
      } else {
        // Answer overdue: declare it lost and resubmit. The abandoned future
        // may still be fulfilled later; that forward stays billed.
        note_fault();
      }
    }
    if (attempt >= policy_.max_attempts) {
      throw ServeError(ServeErrorCode::kRetryExhausted, any_billed,
                       "ResilientHandle: attempts exhausted for this query");
    }
    consume_budget(any_billed);
    const auto backoff = next_backoff(attempt);
    if (backoff.count() > 0.0) std::this_thread::sleep_for(backoff);
    ++attempt;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++retries_;
    }
    SubmitOutcome retry =
        inner_.submit_with_deadline(v, m, policy_.submit_deadline);
    accepted = retry.accepted;
    any_billed = any_billed || retry.accepted;
    future = std::move(retry.future);
    if (!accepted) classify_failure(future);
  }
}

void ResilientHandle::note_fault() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++faults_seen_;
}

void ResilientHandle::consume_budget(bool any_billed) {
  if (policy_.retry_budget < 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_left_ <= 0) {
    throw ServeError(ServeErrorCode::kRetryExhausted, any_billed,
                     "ResilientHandle: total retry budget exhausted");
  }
  --budget_left_;
}

std::chrono::duration<double, std::milli> ResilientHandle::next_backoff(
    int attempt) {
  // min(cap, base * 2^(attempt-1)), scaled by deterministic jitter. The
  // shift is clamped so pathological attempt counts cannot overflow.
  const int shift = std::min(attempt - 1, 20);
  const double base = static_cast<double>(policy_.backoff_base.count()) *
                      static_cast<double>(1 << shift);
  const double capped =
      std::min(base, static_cast<double>(policy_.backoff_cap.count()));
  double u = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    u = jitter_rng_.uniform();
  }
  return std::chrono::duration<double, std::milli>(
      capped * (1.0 + policy_.jitter * u));
}

std::int64_t ResilientHandle::retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retries_;
}

std::int64_t ResilientHandle::faults_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_seen_;
}

}  // namespace duo::serve
