#pragma once

// ResilientHandle: the retry policy a query-budgeted attacker runs against a
// victim that times out, errors, and drops responses. It wraps an
// AsyncBlackBoxHandle with
//   - a bounded submit deadline (no infinite backpressure block),
//   - a per-query timeout on the answer,
//   - capped exponential backoff with deterministic (seeded) jitter,
//   - a per-query attempt cap and a handle-wide total retry budget,
// and keeps the accounting honest: every *accepted* submission bills one
// victim query (queries_billed()), including retries whose answers replace a
// lost one — exactly like a real black-box API charges per request, not per
// useful answer.
//
// Determinism contract: against a deterministic victim, every attempt for
// the same video returns the same list, so retries change only query counts
// and wall time — never the sequence of answers an attack observes. That is
// what keeps fault-injected attack runs bitwise identical to fault-free
// ones (tests/test_failure_modes.cpp).
//
// Thread-safe: multiple client threads may share one handle (the jitter
// stream, retry counters, and budget are lock-protected).

#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <utility>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "serve/async_handle.hpp"
#include "serve/errors.hpp"
#include "video/video.hpp"

namespace duo::serve {

struct RetryPolicy {
  // Maximum wait for queue space per submission attempt.
  std::chrono::milliseconds submit_deadline{250};
  // Maximum wait for the answer per attempt; past it the response is
  // declared lost and the query is resubmitted (the late answer, if any, is
  // discarded — the victim was still billed for it).
  std::chrono::milliseconds query_timeout{250};
  // Submission attempts per logical query (first try + retries).
  int max_attempts = 10;
  // Handle-wide retry budget across all queries; <0 = unlimited.
  std::int64_t retry_budget = -1;
  // Backoff before attempt k+1: min(cap, base * 2^(k-1)) * (1 + jitter * u),
  // u ~ U[0,1) from the seeded stream.
  std::chrono::milliseconds backoff_base{1};
  std::chrono::milliseconds backoff_cap{32};
  double jitter = 0.25;
  std::uint64_t seed = 71;
};

class ResilientHandle;

// A query in flight through the resilient policy. submit() launches the
// first attempt immediately (so callers can pipeline several); get() waits,
// retrying through the policy until an answer lands or the policy gives up
// with ServeError{kRetryExhausted} (or a fatal error surfaces).
class PendingRetrieval {
 public:
  metrics::RetrievalList get();

 private:
  friend class ResilientHandle;
  PendingRetrieval(ResilientHandle& handle, video::Video video, std::size_t m,
                   SubmitOutcome first)
      : handle_(&handle),
        video_(std::move(video)),
        m_(m),
        future_(std::move(first.future)),
        accepted_(first.accepted) {}

  ResilientHandle* handle_;
  video::Video video_;  // kept for resubmission
  std::size_t m_;
  std::future<metrics::RetrievalList> future_;
  bool accepted_;
};

class ResilientHandle {
 public:
  explicit ResilientHandle(AsyncBlackBoxHandle& inner, RetryPolicy policy = {});

  ResilientHandle(const ResilientHandle&) = delete;
  ResilientHandle& operator=(const ResilientHandle&) = delete;

  // Synchronous R^m(v) with retries. Throws ServeError only when the policy
  // is out of road (fatal error, shutdown, retry budget exhausted).
  metrics::RetrievalList retrieve(const video::Video& v, std::size_t m);

  // Asynchronous variant for pipelined attacks: the first attempt is
  // submitted before returning; retries happen inside get().
  PendingRetrieval submit(video::Video v, std::size_t m);

  // Adapter for retrieval::BlackBoxHandle's type-erased constructor, so the
  // serial attack drivers run unchanged over a faulty victim. Note the
  // BlackBoxHandle built on this counts *logical* queries (one per
  // retrieve); queries_billed() stays the honest victim-side count.
  std::function<metrics::RetrievalList(const video::Video&, std::size_t)>
  retrieve_fn() {
    return [this](const video::Video& v, std::size_t m) {
      return retrieve(v, m);
    };
  }

  // Victim-side billing: accepted submissions, retries included.
  std::int64_t queries_billed() const noexcept { return inner_.query_count(); }
  // Alias so ResilientHandle satisfies the same handle concept as
  // AsyncBlackBoxHandle (attack drivers template over query_count()).
  std::int64_t query_count() const noexcept { return queries_billed(); }
  // Retry attempts performed / retryable failures observed so far.
  std::int64_t retries() const;
  std::int64_t faults_seen() const;

  const RetryPolicy& policy() const noexcept { return policy_; }
  AsyncBlackBoxHandle& inner() noexcept { return inner_; }

 private:
  friend class PendingRetrieval;

  // Waits out `future` (first attempt already submitted iff `accepted`),
  // retrying per the policy. `v` is the request payload for resubmission.
  metrics::RetrievalList await_with_retry(
      std::future<metrics::RetrievalList> future, bool accepted,
      const video::Video& v, std::size_t m);

  // Classifies the error in a ready future: returns normally when the
  // failure is retryable (counting it), rethrows otherwise.
  void classify_failure(std::future<metrics::RetrievalList>& future);

  void note_fault();
  // Consumes one unit of retry budget; throws kRetryExhausted when dry.
  void consume_budget(bool any_billed);
  std::chrono::duration<double, std::milli> next_backoff(int attempt);

  AsyncBlackBoxHandle& inner_;
  RetryPolicy policy_;
  mutable std::mutex mutex_;
  Rng jitter_rng_;
  std::int64_t retries_ = 0;
  std::int64_t faults_seen_ = 0;
  std::int64_t budget_left_ = 0;  // ignored when policy_.retry_budget < 0
};

}  // namespace duo::serve
