#pragma once

// ResilientHandle: the retry policy a query-budgeted attacker runs against a
// victim that times out, errors, drops responses, and pushes back on load.
// It wraps an AsyncBlackBoxHandle with
//   - a bounded submit deadline (no infinite backpressure block),
//   - a per-query timeout on the answer,
//   - capped exponential backoff with deterministic (seeded) jitter, which
//     honors server retry_after hints (throttles / admission rejections),
//   - a per-query attempt cap and a handle-wide total retry budget,
//   - an optional shared Pacer (one API key, many attack processes: every
//     submission first takes a token from the shared bucket); when the pacer
//     runs in AIMD mode the handle closes the loop, reporting every served
//     answer (additive increase) and every overload-family failure with its
//     retry_after hint (multiplicative decrease) back into the shared rate —
//     timeouts and drops carry no load signal and report nothing,
//   - an optional circuit breaker: after `circuit_threshold` consecutive
//     breaker-relevant failures (transient errors, drops, timeouts — NOT
//     overload pushback, which proves the victim is up) the circuit opens
//     and submissions fail fast with ServeError{kUnavailable} instead of
//     burning the retry budget; after a seeded-jittered cooldown one
//     half-open probe is let through, and its outcome closes or re-opens
//     the circuit,
// and keeps the accounting honest: every *accepted* submission bills one
// victim query (queries_billed()), including retries whose answers replace a
// lost one — exactly like a real black-box API charges per request, not per
// useful answer. Fail-fast rejections never reach the victim and bill
// nothing.
//
// Determinism contract: against a deterministic victim, every attempt for
// the same video returns the same list, so retries change only query counts
// and wall time — never the sequence of answers an attack observes. With a
// VirtualClock shared by handle, pacer, and server, the throttling/pacing
// decisions are deterministic too: fault-injected, throttled attack runs
// stay bitwise identical to fault-free unthrottled ones
// (tests/test_failure_modes.cpp).
//
// Thread-safe: multiple client threads may share one handle (the jitter
// stream, retry counters, budget, and circuit state are lock-protected).

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <utility>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/async_handle.hpp"
#include "serve/clock.hpp"
#include "serve/errors.hpp"
#include "video/video.hpp"

namespace duo::serve {

struct RetryPolicy {
  // Maximum wait for queue space per submission attempt.
  std::chrono::milliseconds submit_deadline{250};
  // Maximum wait for the answer per attempt; past it the response is
  // declared lost and the query is resubmitted (the late answer, if any, is
  // discarded — the victim was still billed for it).
  std::chrono::milliseconds query_timeout{250};
  // Submission attempts per logical query (first try + retries).
  int max_attempts = 10;
  // Handle-wide retry budget across all queries; <0 = unlimited.
  std::int64_t retry_budget = -1;
  // Backoff before attempt k+1: min(cap, base * 2^(k-1)) * (1 + jitter * u),
  // u ~ U[0,1) from the seeded stream. A server retry_after hint raises the
  // wait to at least the hinted value.
  std::chrono::milliseconds backoff_base{1};
  std::chrono::milliseconds backoff_cap{32};
  double jitter = 0.25;
  std::uint64_t seed = 71;
  // Circuit breaker: consecutive breaker-relevant failures (transient /
  // drop / timeout; overload pushback excluded) that open the circuit.
  // 0 disables the breaker entirely.
  int circuit_threshold = 0;
  // Open → half-open probe delay, scaled by the same seeded jitter stream.
  double circuit_cooldown_ms = 100.0;
  // Crash-reconnect policy. ServeError{kConnectionLost} means the victim
  // process died (request lost in flight, or submitted while it is down) —
  // a third failure family beside faults and overload: it does not advance
  // the circuit breaker (the crash is expected to heal via restart, and an
  // open circuit would abort the attack), does not signal the pacer, and
  // does not consume per-query attempts or the retry budget. Instead the
  // handle rides out the downtime: up to `reconnect_attempts` consecutive
  // connection-lost failures per logical query (then kRetryExhausted), each
  // waiting `reconnect_wait_ms` of REAL wall time before resubmitting. The
  // real-time wait matters under a VirtualClock — the restart happens in
  // real time on another thread, and virtual sleeps complete instantly, so
  // a clocked wait would burn the whole reconnect allowance before the
  // server is back (precedent: ServerConfig::batch_timeout_ms also waits
  // real time). Defaults cover ~2 s of downtime.
  int reconnect_attempts = 8000;
  double reconnect_wait_ms = 0.25;
};

enum class CircuitState { kClosed, kOpen, kHalfOpen };

class ResilientHandle;

// A query in flight through the resilient policy. submit() launches the
// first attempt immediately (so callers can pipeline several); get() waits,
// retrying through the policy until an answer lands or the policy gives up
// with ServeError{kRetryExhausted} (or a fatal / kUnavailable error
// surfaces).
class PendingRetrieval {
 public:
  metrics::RetrievalList get();

 private:
  friend class ResilientHandle;
  PendingRetrieval(ResilientHandle& handle, video::Video video, std::size_t m,
                   SubmitOutcome first, bool probe)
      : handle_(&handle),
        video_(std::move(video)),
        m_(m),
        future_(std::move(first.future)),
        accepted_(first.accepted),
        probe_(probe) {}

  ResilientHandle* handle_;
  video::Video video_;  // kept for resubmission
  std::size_t m_;
  std::future<metrics::RetrievalList> future_;
  bool accepted_;
  bool probe_;  // this attempt is the half-open circuit probe
};

class ResilientHandle {
 public:
  // `pacer`, when set, is shared across handles: every submission (first
  // try and retries alike) takes one token before reaching the server.
  // `clock` drives backoff sleeps and circuit-breaker timing (null = wall
  // time); hand the same VirtualClock to handle, pacer, and server for
  // fully virtualized, deterministic runs.
  explicit ResilientHandle(AsyncBlackBoxHandle& inner, RetryPolicy policy = {},
                           std::shared_ptr<Pacer> pacer = nullptr,
                           std::shared_ptr<Clock> clock = nullptr);

  ResilientHandle(const ResilientHandle&) = delete;
  ResilientHandle& operator=(const ResilientHandle&) = delete;

  // Synchronous R^m(v) with retries. Throws ServeError only when the policy
  // is out of road (fatal error, shutdown, retry budget exhausted, circuit
  // open → kUnavailable).
  metrics::RetrievalList retrieve(const video::Video& v, std::size_t m);

  // Asynchronous variant for pipelined attacks: the first attempt is
  // submitted before returning; retries happen inside get(). A fail-fast
  // (open circuit) does NOT throw here — the kUnavailable error is set on
  // the pending future so it surfaces inside get(), where pipelined drivers
  // run their checkpoint-on-fatal path.
  PendingRetrieval submit(video::Video v, std::size_t m);

  // Adapter for retrieval::BlackBoxHandle's type-erased constructor, so the
  // serial attack drivers run unchanged over a faulty victim. Note the
  // BlackBoxHandle built on this counts *logical* queries (one per
  // retrieve); queries_billed() stays the honest victim-side count.
  std::function<metrics::RetrievalList(const video::Video&, std::size_t)>
  retrieve_fn() {
    return [this](const video::Video& v, std::size_t m) {
      return retrieve(v, m);
    };
  }

  // Victim-side billing: accepted submissions, retries included.
  std::int64_t queries_billed() const noexcept { return inner_.query_count(); }
  // Alias so ResilientHandle satisfies the same handle concept as
  // AsyncBlackBoxHandle (attack drivers template over query_count()).
  std::int64_t query_count() const noexcept { return queries_billed(); }
  // Retry attempts performed / retryable failures observed so far.
  std::int64_t retries() const;
  std::int64_t faults_seen() const;
  // Overload-family failures (throttle / reject / shed / expiry) — a subset
  // of faults_seen that never feeds the circuit breaker.
  std::int64_t overloads_seen() const;
  // Connection-lost failures survived (crash casualties + submits bounced
  // off a down server) — a subset of faults_seen; each one triggered a
  // reconnect resubmission. These do not count as retries().
  std::int64_t connection_losses() const;
  // Circuit breaker observability.
  std::int64_t circuit_opens() const;
  std::int64_t fast_failures() const;  // submissions refused while open
  CircuitState circuit_state() const;

  const RetryPolicy& policy() const noexcept { return policy_; }
  AsyncBlackBoxHandle& inner() noexcept { return inner_; }
  const std::shared_ptr<Pacer>& pacer() const noexcept { return pacer_; }

 private:
  friend class PendingRetrieval;

  enum class Gate { kAllow, kAllowProbe, kFailFast };
  struct GuardedSubmit {
    SubmitOutcome out;
    bool probe = false;
  };

  // circuit gate → pacer token → bounded submit. On an open circuit the
  // outcome is a fail-fast: accepted=false and the future already holds
  // ServeError{kUnavailable}; nothing reached the victim.
  GuardedSubmit guarded_submit(const video::Video& v, std::size_t m);
  Gate circuit_gate();

  // Waits out `future` (first attempt already submitted iff `accepted`),
  // retrying per the policy. `v` is the request payload for resubmission.
  metrics::RetrievalList await_with_retry(
      std::future<metrics::RetrievalList> future, bool accepted, bool probe,
      const video::Video& v, std::size_t m);

  // Classification of a retryable failure: the server's retry_after hint
  // (0 if none) and whether it was a connection loss (crash family — takes
  // the reconnect path instead of the attempt-counted retry path).
  struct FailureInfo {
    double retry_after_ms = 0.0;
    bool connection_lost = false;
  };

  // Classifies the error in a ready future: returns the FailureInfo when
  // the failure is retryable (counting it), rethrows otherwise.
  FailureInfo classify_failure(std::future<metrics::RetrievalList>& future,
                               bool was_probe);

  // Records one retryable failure. `overload` failures release a probe
  // without reopening (the victim is up, just busy); breaker-relevant ones
  // advance the consecutive-failure count and can open the circuit.
  void note_retryable(bool overload, bool was_probe);
  // Records one connection-lost failure: counted in faults_seen and
  // connection_losses, never advances the breaker (a half-open probe just
  // releases its slot, like overload pushback).
  void note_connection_lost(bool was_probe);
  void note_success(bool was_probe);
  void release_probe();  // frees the half-open slot without counting a fault
  void open_circuit_locked();  // requires mutex_ held

  // Consumes one unit of retry budget; throws kRetryExhausted when dry.
  void consume_budget(bool any_billed);
  std::chrono::duration<double, std::milli> next_backoff(int attempt);

  AsyncBlackBoxHandle& inner_;
  RetryPolicy policy_;
  std::shared_ptr<Pacer> pacer_;  // may be null
  std::shared_ptr<Clock> clock_;
  mutable std::mutex mutex_;
  Rng jitter_rng_;
  std::int64_t retries_ = 0;
  std::int64_t faults_seen_ = 0;
  std::int64_t overloads_seen_ = 0;
  std::int64_t connection_losses_ = 0;
  std::int64_t budget_left_ = 0;  // ignored when policy_.retry_budget < 0
  // Circuit breaker state (all under mutex_).
  CircuitState circuit_ = CircuitState::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  double opened_at_ms_ = 0.0;
  double cooldown_ms_ = 0.0;  // jittered at each open
  std::int64_t circuit_opens_ = 0;
  std::int64_t fast_failures_ = 0;
};

}  // namespace duo::serve
