#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "serve/errors.hpp"
#include "serve/fault_injection.hpp"

namespace duo::serve {

namespace {

// q-th percentile (nearest-rank on the sorted order) of `xs`; mutates `xs`.
double percentile(std::vector<double>& xs, double q) {
  if (xs.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(xs.size() - 1)));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(idx),
                   xs.end());
  return xs[idx];
}

std::unique_ptr<retrieval::RetrievalSystem> checked_nonnull(
    std::unique_ptr<retrieval::RetrievalSystem> system) {
  DUO_CHECK_MSG(system != nullptr, "RetrievalServer: null system");
  return system;
}

}  // namespace

RetrievalServer::RetrievalServer(retrieval::RetrievalSystem& system,
                                 ServerConfig config)
    : system_(system), config_(std::move(config)) {
  start();
}

RetrievalServer::RetrievalServer(
    std::unique_ptr<retrieval::RetrievalSystem> system, ServerConfig config)
    : owned_(checked_nonnull(std::move(system))),
      system_(*owned_),
      config_(std::move(config)) {
  start();
}

void RetrievalServer::start() {
  DUO_CHECK_MSG(config_.max_batch >= 1, "RetrievalServer: max_batch < 1");
  DUO_CHECK_MSG(config_.queue_capacity >= 1,
                "RetrievalServer: queue_capacity < 1");
  DUO_CHECK_MSG(config_.latency_reservoir >= 1,
                "RetrievalServer: latency_reservoir < 1");
  DUO_CHECK_MSG(
      config_.admission_threshold > 0.0 && config_.admission_threshold <= 1.0,
      "RetrievalServer: admission_threshold must be in (0, 1]");
  clock_ = ensure_clock(config_.clock);
  if (config_.client_rate > 0.0) {
    limiter_ = std::make_unique<RateLimiter>(config_.client_rate,
                                             config_.client_burst);
  }
  admit_limit_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.admission_threshold *
                                  static_cast<double>(config_.queue_capacity)));
  batch_size_counts_.assign(config_.max_batch + 1, 0);
  latency_reservoir_.reserve(config_.latency_reservoir);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

RetrievalServer::~RetrievalServer() { shutdown(); }

bool RetrievalServer::enqueue(Request& req,
                              const std::chrono::milliseconds* deadline,
                              const RequestOptions& opts) {
  // Rate limiting first: a throttled request must not even contend for queue
  // space, and the decision needs no queue lock.
  if (limiter_ != nullptr) {
    const double wait_ms = limiter_->try_acquire(opts.client_id,
                                                 clock_->now_ms());
    if (wait_ms > 0.0) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++requests_throttled_;
      }
      req.promise.set_exception(std::make_exception_ptr(ServeError(
          ServeErrorCode::kThrottled, /*billed=*/false,
          "RetrievalServer: per-client rate limit exceeded", wait_ms)));
      return false;
    }
  }

  std::vector<Request> shed_victims;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (config_.admission == AdmissionPolicy::kBlock) {
      const auto have_room = [this] {
        return stop_ || queue_.size() < config_.queue_capacity;
      };
      if (deadline == nullptr) {
        not_full_.wait(lock, have_room);
      } else if (!not_full_.wait_for(lock, *deadline, have_room)) {
        lock.unlock();
        req.promise.set_exception(std::make_exception_ptr(ServeError(
            ServeErrorCode::kOverloaded, /*billed=*/false,
            "RetrievalServer: queue full past the submit deadline")));
        return false;
      }
    }
    if (stop_) {
      lock.unlock();
      req.promise.set_exception(std::make_exception_ptr(
          ServeError(ServeErrorCode::kShutdown, /*billed=*/false,
                     "RetrievalServer: submit after shutdown")));
      return false;
    }
    if (config_.admission == AdmissionPolicy::kReject &&
        queue_.size() >= admit_limit_) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++requests_rejected_;
      }
      req.promise.set_exception(std::make_exception_ptr(ServeError(
          ServeErrorCode::kOverloaded, /*billed=*/false,
          "RetrievalServer: admission rejected under load",
          config_.reject_retry_after_ms)));
      return false;
    }
    if (config_.admission == AdmissionPolicy::kShed) {
      // Freshest-first under overload: evict from the front (oldest) until
      // the newcomer fits under the admit limit.
      while (queue_.size() >= admit_limit_) {
        shed_victims.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (opts.has_deadline()) {
      req.has_deadline = true;
      req.deadline_ms = clock_->now_ms() + opts.ttl_ms;
    }
    req.queued.reset();  // latency clock starts at enqueue
    queue_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  if (config_.admission == AdmissionPolicy::kShed) not_full_.notify_all();

  if (!shed_victims.empty()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      requests_shed_ += static_cast<std::int64_t>(shed_victims.size());
    }
    // Shed requests were accepted (and billed at acceptance); fail them with
    // the typed eviction error so retrying clients can resubmit.
    const auto error = std::make_exception_ptr(
        ServeError(ServeErrorCode::kShed, /*billed=*/true,
                   "RetrievalServer: shed to admit fresher work"));
    for (auto& victim : shed_victims) victim.promise.set_exception(error);
  }
  return true;
}

std::future<metrics::RetrievalList> RetrievalServer::submit(
    video::Video v, std::size_t m, const RequestOptions& opts) {
  Request req;
  req.video = std::move(v);
  req.m = m;
  auto future = req.promise.get_future();
  enqueue(req, nullptr, opts);
  return future;
}

SubmitOutcome RetrievalServer::submit_with_deadline(
    video::Video v, std::size_t m, std::chrono::milliseconds deadline,
    const RequestOptions& opts) {
  Request req;
  req.video = std::move(v);
  req.m = m;
  SubmitOutcome out;
  out.future = req.promise.get_future();
  out.accepted = enqueue(req, &deadline, opts);
  return out;
}

void RetrievalServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // The join itself must happen exactly once, but every racer has to block
  // until draining finishes — std::call_once gives both (concurrent callers
  // wait for the active execution).
  std::call_once(join_once_, [this] {
    if (scheduler_.joinable()) scheduler_.join();
  });
}

bool RetrievalServer::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

void RetrievalServer::scheduler_loop() {
  std::vector<Request> batch;
  std::vector<Request> expired;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and everything drained
      batch.clear();
      expired.clear();
      // Shed expired requests before they cost a batch slot (and before the
      // backend pays for extraction): only live requests fill the batch.
      const double now_ms = clock_->now_ms();
      while (batch.size() < config_.max_batch && !queue_.empty()) {
        Request r = std::move(queue_.front());
        queue_.pop_front();
        if (r.has_deadline && now_ms > r.deadline_ms) {
          expired.push_back(std::move(r));
        } else {
          batch.push_back(std::move(r));
        }
      }
    }
    not_full_.notify_all();
    if (!expired.empty()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        requests_expired_ += static_cast<std::int64_t>(expired.size());
      }
      const auto error = std::make_exception_ptr(
          ServeError(ServeErrorCode::kExpired, /*billed=*/true,
                     "RetrievalServer: deadline expired while queued"));
      for (auto& r : expired) r.promise.set_exception(error);
    }
    if (!batch.empty()) process_batch(batch);
  }
}

void RetrievalServer::process_batch(std::vector<Request>& batch) {
  // Fault decisions are drawn up front, one per request in arrival order, so
  // the injected schedule is a pure function of the injector seed and the
  // request sequence — independent of batching.
  std::vector<FaultKind> faults(batch.size(), FaultKind::kNone);
  if (config_.fault_injector != nullptr) {
    for (auto& f : faults) f = config_.fault_injector->next();
  }

  // Featurize the whole tick in one extract_batch call. A failure here (bad
  // geometry, extractor misuse) poisons the batch, not the scheduler: every
  // affected future gets a fatal ServeError and the loop keeps serving.
  std::vector<video::Video> videos;
  videos.reserve(batch.size());
  for (auto& r : batch) videos.push_back(std::move(r.video));

  std::vector<Tensor> features;
  try {
    features = system_.extractor().extract_batch(videos);
  } catch (const std::exception& e) {
    const auto error = std::make_exception_ptr(
        ServeError(ServeErrorCode::kFatal, /*billed=*/true,
                   std::string("RetrievalServer: backend failure: ") +
                       e.what()));
    for (auto& r : batch) r.promise.set_exception(error);
    return;
  }

  // Answer the index lookups for every request that will need one, fanned
  // out across the compute pool (each inner shard scan goes serial via
  // RetrievalSystem::retrieve_feature's worker-context guard, so this is a
  // flat per-request fan-out, not nested). Answers are bitwise identical to
  // the serial loop — each slot is written by exactly one worker — and
  // fulfillment below stays in arrival order.
  struct Answer {
    metrics::RetrievalList list;
    std::exception_ptr error;
  };
  std::vector<Answer> answers(batch.size());
  std::vector<std::size_t> needs_answer;
  needs_answer.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (faults[i] == FaultKind::kNone || faults[i] == FaultKind::kDelay) {
      needs_answer.push_back(i);
    }
  }
  const auto answer_one = [&](std::size_t i) {
    try {
      const auto neighbors = system_.retrieve_feature(features[i], batch[i].m);
      answers[i].list.reserve(neighbors.size());
      for (const auto& n : neighbors) answers[i].list.push_back(n.id);
    } catch (const std::exception& e) {
      answers[i].error = std::make_exception_ptr(
          ServeError(ServeErrorCode::kFatal, /*billed=*/true,
                     std::string("RetrievalServer: backend failure: ") +
                         e.what()));
    }
  };
  if (needs_answer.size() > 1) {
    compute_pool().parallel_for(needs_answer.size(), [&](std::size_t j) {
      answer_one(needs_answer[j]);
    });
  } else {
    for (const std::size_t i : needs_answer) answer_one(i);
  }

  std::vector<double> latencies;
  latencies.reserve(batch.size());
  std::int64_t served = 0;
  std::int64_t faulted = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    switch (faults[i]) {
      case FaultKind::kTransientError:
        batch[i].promise.set_exception(std::make_exception_ptr(
            ServeError(ServeErrorCode::kTransient, /*billed=*/true,
                       "RetrievalServer: injected transient error")));
        ++faulted;
        continue;
      case FaultKind::kFatalError:
        batch[i].promise.set_exception(std::make_exception_ptr(
            ServeError(ServeErrorCode::kFatal, /*billed=*/true,
                       "RetrievalServer: injected fatal victim error")));
        ++faulted;
        continue;
      case FaultKind::kDrop:
        // Abandoning the promise makes the future ready with
        // std::future_error{broken_promise} — the lost-response signal.
        batch[i].promise = std::promise<metrics::RetrievalList>();
        ++faulted;
        continue;
      case FaultKind::kDelay:
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            config_.fault_injector->config().delay_ms));
        break;
      case FaultKind::kNone:
        break;
    }
    if (answers[i].error != nullptr) {
      batch[i].promise.set_exception(answers[i].error);
      continue;
    }
    latencies.push_back(batch[i].queued.elapsed_ms());
    batch[i].promise.set_value(std::move(answers[i].list));
    ++served;
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  queries_served_ += served;
  faults_injected_ += faulted;
  ++batches_;
  ++batch_size_counts_[batch.size()];
  for (const double ms : latencies) record_latency(ms);
}

void RetrievalServer::record_latency(double ms) {
  max_latency_ms_ = std::max(max_latency_ms_, ms);
  if (latency_reservoir_.size() < config_.latency_reservoir) {
    latency_reservoir_.push_back(ms);
  } else {
    // Algorithm R: sample i replaces a reservoir slot with probability R/i,
    // keeping a uniform sample of everything observed so far.
    const auto j = reservoir_rng_.uniform_index(
        static_cast<std::uint64_t>(latency_count_) + 1);
    if (j < latency_reservoir_.size()) latency_reservoir_[j] = ms;
  }
  ++latency_count_;
}

ServerStats RetrievalServer::stats() const {
  ServerStats out;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out.queries_served = queries_served_;
    out.batches = batches_;
    out.faults_injected = faults_injected_;
    out.requests_throttled = requests_throttled_;
    out.requests_rejected = requests_rejected_;
    out.requests_shed = requests_shed_;
    out.requests_expired = requests_expired_;
    out.batch_size_counts = batch_size_counts_;
    out.latency_count = latency_count_;
    out.latency_samples_retained =
        static_cast<std::int64_t>(latency_reservoir_.size());
    out.max_latency_ms = max_latency_ms_;
    latencies = latency_reservoir_;
  }
  out.p50_latency_ms = percentile(latencies, 0.50);
  out.p95_latency_ms = percentile(latencies, 0.95);
  return out;
}

void RetrievalServer::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  queries_served_ = 0;
  batches_ = 0;
  faults_injected_ = 0;
  requests_throttled_ = 0;
  requests_rejected_ = 0;
  requests_shed_ = 0;
  requests_expired_ = 0;
  std::fill(batch_size_counts_.begin(), batch_size_counts_.end(), 0);
  latency_reservoir_.clear();
  latency_count_ = 0;
  max_latency_ms_ = 0.0;
  reservoir_rng_ = Rng(kReservoirSeed);
}

}  // namespace duo::serve
