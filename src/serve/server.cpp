#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"

namespace duo::serve {

namespace {

// q-th percentile (nearest-rank on the sorted order) of `xs`; mutates `xs`.
double percentile(std::vector<double>& xs, double q) {
  if (xs.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(xs.size() - 1)));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(idx),
                   xs.end());
  return xs[idx];
}

std::unique_ptr<retrieval::RetrievalSystem> checked_nonnull(
    std::unique_ptr<retrieval::RetrievalSystem> system) {
  DUO_CHECK_MSG(system != nullptr, "RetrievalServer: null system");
  return system;
}

}  // namespace

RetrievalServer::RetrievalServer(retrieval::RetrievalSystem& system,
                                 ServerConfig config)
    : system_(system), config_(config) {
  DUO_CHECK_MSG(config_.max_batch >= 1, "RetrievalServer: max_batch < 1");
  DUO_CHECK_MSG(config_.queue_capacity >= 1,
                "RetrievalServer: queue_capacity < 1");
  batch_size_counts_.assign(config_.max_batch + 1, 0);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

RetrievalServer::RetrievalServer(
    std::unique_ptr<retrieval::RetrievalSystem> system, ServerConfig config)
    : owned_(checked_nonnull(std::move(system))),
      system_(*owned_),
      config_(config) {
  DUO_CHECK_MSG(config_.max_batch >= 1, "RetrievalServer: max_batch < 1");
  DUO_CHECK_MSG(config_.queue_capacity >= 1,
                "RetrievalServer: queue_capacity < 1");
  batch_size_counts_.assign(config_.max_batch + 1, 0);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

RetrievalServer::~RetrievalServer() { shutdown(); }

std::future<metrics::RetrievalList> RetrievalServer::submit(video::Video v,
                                                            std::size_t m) {
  Request req;
  req.video = std::move(v);
  req.m = m;
  auto future = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return stop_ || queue_.size() < config_.queue_capacity;
    });
    if (stop_) {
      lock.unlock();
      req.promise.set_exception(std::make_exception_ptr(std::runtime_error(
          "RetrievalServer: submit after shutdown")));
      return future;
    }
    req.queued.reset();  // latency clock starts at enqueue
    queue_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  return future;
}

void RetrievalServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

bool RetrievalServer::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

void RetrievalServer::scheduler_loop() {
  std::vector<Request> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and everything drained
      const std::size_t n = std::min(config_.max_batch, queue_.size());
      batch.clear();
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    not_full_.notify_all();
    process_batch(batch);
  }
}

void RetrievalServer::process_batch(std::vector<Request>& batch) {
  // Featurize the whole tick in one extract_batch call. A failure here (bad
  // geometry, extractor misuse) poisons the batch, not the scheduler: every
  // affected future gets the exception and the loop keeps serving.
  std::vector<video::Video> videos;
  videos.reserve(batch.size());
  for (auto& r : batch) videos.push_back(std::move(r.video));

  std::vector<Tensor> features;
  try {
    features = system_.extractor().extract_batch(videos);
  } catch (...) {
    const auto error = std::current_exception();
    for (auto& r : batch) r.promise.set_exception(error);
    return;
  }

  std::vector<double> latencies;
  latencies.reserve(batch.size());
  std::int64_t served = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    try {
      const auto neighbors = system_.retrieve_feature(features[i], batch[i].m);
      metrics::RetrievalList list;
      list.reserve(neighbors.size());
      for (const auto& n : neighbors) list.push_back(n.id);
      latencies.push_back(batch[i].queued.elapsed_ms());
      batch[i].promise.set_value(std::move(list));
      ++served;
    } catch (...) {
      batch[i].promise.set_exception(std::current_exception());
    }
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  queries_served_ += served;
  ++batches_;
  ++batch_size_counts_[batch.size()];
  latencies_ms_.insert(latencies_ms_.end(), latencies.begin(),
                       latencies.end());
}

ServerStats RetrievalServer::stats() const {
  ServerStats out;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out.queries_served = queries_served_;
    out.batches = batches_;
    out.batch_size_counts = batch_size_counts_;
    latencies = latencies_ms_;
  }
  out.p50_latency_ms = percentile(latencies, 0.50);
  out.p95_latency_ms = percentile(latencies, 0.95);
  out.max_latency_ms =
      latencies.empty() ? 0.0
                        : *std::max_element(latencies.begin(), latencies.end());
  return out;
}

void RetrievalServer::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  queries_served_ = 0;
  batches_ = 0;
  std::fill(batch_size_counts_.begin(), batch_size_counts_.end(), 0);
  latencies_ms_.clear();
}

}  // namespace duo::serve
