#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "serve/errors.hpp"
#include "serve/fault_injection.hpp"

namespace duo::serve {

namespace {

// q-th percentile (nearest-rank on the sorted order) of `xs`; mutates `xs`.
double percentile(std::vector<double>& xs, double q) {
  if (xs.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(xs.size() - 1)));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(idx),
                   xs.end());
  return xs[idx];
}

std::unique_ptr<retrieval::RetrievalSystem> checked_nonnull(
    std::unique_ptr<retrieval::RetrievalSystem> system) {
  DUO_CHECK_MSG(system != nullptr, "RetrievalServer: null system");
  return system;
}

// FNV-1a over the client id, used to derive a per-client reservoir seed.
// (Local copy: duo_serve does not link duo_models, where the shared fnv1a
// helper for checkpoints lives.)
std::uint64_t client_seed_hash(const std::string& id) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const unsigned char c : id) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

RetrievalServer::RetrievalServer(retrieval::RetrievalSystem& system,
                                 ServerConfig config)
    : system_(system), config_(std::move(config)) {
  start();
}

RetrievalServer::RetrievalServer(
    std::unique_ptr<retrieval::RetrievalSystem> system, ServerConfig config)
    : owned_(checked_nonnull(std::move(system))),
      system_(*owned_),
      config_(std::move(config)) {
  start();
}

void RetrievalServer::start() {
  DUO_CHECK_MSG(config_.max_batch >= 1, "RetrievalServer: max_batch < 1");
  DUO_CHECK_MSG(config_.queue_capacity >= 1,
                "RetrievalServer: queue_capacity < 1");
  DUO_CHECK_MSG(config_.latency_reservoir >= 1,
                "RetrievalServer: latency_reservoir < 1");
  DUO_CHECK_MSG(
      config_.admission_threshold > 0.0 && config_.admission_threshold <= 1.0,
      "RetrievalServer: admission_threshold must be in (0, 1]");
  DUO_CHECK_MSG(config_.batch_timeout_ms >= 0.0,
                "RetrievalServer: negative batch_timeout_ms");
  if (config_.degrade_high > 0.0) {
    DUO_CHECK_MSG(config_.degrade_high <= 1.0,
                  "RetrievalServer: degrade_high must be in (0, 1]");
    DUO_CHECK_MSG(
        config_.degrade_low >= 0.0 && config_.degrade_low < config_.degrade_high,
        "RetrievalServer: degrade_low must be in [0, degrade_high)");
  }
  clock_ = ensure_clock(config_.clock);
  if (config_.client_rate > 0.0) {
    limiter_ = std::make_unique<RateLimiter>(config_.client_rate,
                                             config_.client_burst);
  }
  admit_limit_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.admission_threshold *
                                  static_cast<double>(config_.queue_capacity)));
  batch_size_counts_.assign(config_.max_batch + 1, 0);
  occupancy_deciles_.assign(11, 0);
  retry_after_buckets_.assign(12, 0);
  latency_reservoir_.reserve(config_.latency_reservoir);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

RetrievalServer::~RetrievalServer() { shutdown(); }

bool RetrievalServer::enqueue(Request& req,
                              const std::chrono::milliseconds* deadline,
                              const RequestOptions& opts) {
  req.client_id = opts.client_id;
  // Rate limiting first: a throttled request must not even contend for queue
  // space, and the decision needs no queue lock.
  if (limiter_ != nullptr) {
    const double wait_ms = limiter_->try_acquire(opts.client_id,
                                                 clock_->now_ms());
    if (wait_ms > 0.0) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++requests_throttled_;
        ++client_slot(opts.client_id).throttled;
        record_retry_after(wait_ms);
      }
      req.promise.set_exception(std::make_exception_ptr(ServeError(
          ServeErrorCode::kThrottled, /*billed=*/false,
          "RetrievalServer: per-client rate limit exceeded", wait_ms)));
      return false;
    }
  }

  std::vector<Request> shed_victims;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (config_.admission == AdmissionPolicy::kBlock) {
      const auto have_room = [this] {
        return stop_ || queue_.size() < config_.queue_capacity;
      };
      if (deadline == nullptr) {
        not_full_.wait(lock, have_room);
      } else if (!not_full_.wait_for(lock, *deadline, have_room)) {
        lock.unlock();
        req.promise.set_exception(std::make_exception_ptr(ServeError(
            ServeErrorCode::kOverloaded, /*billed=*/false,
            "RetrievalServer: queue full past the submit deadline")));
        return false;
      }
    }
    if (stop_) {
      // A crashed server is DOWN, not gone: fail with the retryable
      // connection-lost error (unbilled — nothing was accepted) so resilient
      // clients keep reconnecting through the downtime. Only a deliberate
      // shutdown is terminal.
      const bool crashed = crashed_.load(std::memory_order_relaxed);
      lock.unlock();
      if (crashed) {
        req.promise.set_exception(std::make_exception_ptr(
            ServeError(ServeErrorCode::kConnectionLost, /*billed=*/false,
                       "RetrievalServer: server crashed; reconnect and "
                       "retry")));
      } else {
        req.promise.set_exception(std::make_exception_ptr(
            ServeError(ServeErrorCode::kShutdown, /*billed=*/false,
                       "RetrievalServer: submit after shutdown")));
      }
      return false;
    }
    if (config_.admission == AdmissionPolicy::kReject &&
        queue_.size() >= admit_limit_) {
      lock.unlock();
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++requests_rejected_;
        ++client_slot(opts.client_id).rejected;
        record_retry_after(config_.reject_retry_after_ms);
      }
      req.promise.set_exception(std::make_exception_ptr(ServeError(
          ServeErrorCode::kOverloaded, /*billed=*/false,
          "RetrievalServer: admission rejected under load",
          config_.reject_retry_after_ms)));
      return false;
    }
    if (config_.admission == AdmissionPolicy::kShed) {
      // Evict the queued request closest to its deadline — the least useful
      // work left, since it is the likeliest to expire before serving anyway.
      // Undeadlined requests key as +inf, so among them the strict `<` scan
      // keeps the earliest index and the policy falls back to oldest-first.
      while (queue_.size() >= admit_limit_) {
        std::size_t victim = 0;
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          const double key = queue_[i].has_deadline
                                 ? queue_[i].deadline_ms
                                 : std::numeric_limits<double>::infinity();
          if (key < best) {
            best = key;
            victim = i;
          }
        }
        shed_victims.push_back(std::move(queue_[victim]));
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
    if (opts.has_deadline()) {
      req.has_deadline = true;
      req.deadline_ms = clock_->now_ms() + opts.ttl_ms;
    }
    req.queued.reset();  // latency clock starts at enqueue
    queue_.push_back(std::move(req));
  }
  not_empty_.notify_one();
  if (config_.admission == AdmissionPolicy::kShed) not_full_.notify_all();

  if (!shed_victims.empty()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      requests_shed_ += static_cast<std::int64_t>(shed_victims.size());
      // Attribute each eviction to the victim's own client, not the
      // newcomer that displaced it.
      for (const auto& victim : shed_victims) {
        ++client_slot(victim.client_id).shed;
      }
    }
    // Shed requests were accepted (and billed at acceptance); fail them with
    // the typed eviction error so retrying clients can resubmit.
    const auto error = std::make_exception_ptr(
        ServeError(ServeErrorCode::kShed, /*billed=*/true,
                   "RetrievalServer: shed to admit fresher work"));
    for (auto& victim : shed_victims) victim.promise.set_exception(error);
  }
  return true;
}

std::future<metrics::RetrievalList> RetrievalServer::submit(
    video::Video v, std::size_t m, const RequestOptions& opts) {
  Request req;
  req.video = std::move(v);
  req.m = m;
  auto future = req.promise.get_future();
  enqueue(req, nullptr, opts);
  return future;
}

SubmitOutcome RetrievalServer::submit_with_deadline(
    video::Video v, std::size_t m, std::chrono::milliseconds deadline,
    const RequestOptions& opts) {
  Request req;
  req.video = std::move(v);
  req.m = m;
  SubmitOutcome out;
  out.future = req.promise.get_future();
  out.accepted = enqueue(req, &deadline, opts);
  return out;
}

void RetrievalServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  join_scheduler();
}

void RetrievalServer::join_scheduler() {
  // The join itself must happen exactly once, but every racer has to block
  // until it finishes. Racers serialize on the mutex; whichever arrives
  // first performs the join, late arrivals see an unjoinable thread and fall
  // through. (The old std::call_once could never be re-armed, which restart()
  // needs after relaunching the scheduler.)
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (scheduler_.joinable()) scheduler_.join();
}

bool RetrievalServer::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

bool RetrievalServer::crashed() const {
  return crashed_.load(std::memory_order_relaxed);
}

std::int64_t RetrievalServer::epoch() const noexcept {
  return epoch_.load(std::memory_order_relaxed);
}

void RetrievalServer::fail_lost(std::vector<Request>& lost) {
  if (lost.empty()) return;
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    for (const auto& r : lost) {
      ++faults_injected_;
      ++requests_lost_;
      auto& c = client_slot(r.client_id);
      ++c.faulted;
      ++c.lost;
    }
  }
  // Lost requests were accepted — the victim may already have spent (or been
  // about to spend) backend work on them — so they stay billed, mirroring
  // the shed/expired convention. kConnectionLost is retryable: the client
  // re-submits after the restart.
  const auto error = std::make_exception_ptr(
      ServeError(ServeErrorCode::kConnectionLost, /*billed=*/true,
                 "RetrievalServer: server crashed with the request in "
                 "flight"));
  for (auto& r : lost) r.promise.set_exception(error);
  lost.clear();
}

void RetrievalServer::crash() {
  std::vector<Request> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;  // already down (crashed or shut down)
    stop_ = true;
    crashed_.store(true, std::memory_order_release);
    // NO draining — the queue dies with the process. Move it out so the
    // scheduler wakes to an empty queue and exits immediately.
    while (!queue_.empty()) {
      orphans.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  join_scheduler();
  // Requests the scheduler had in flight failed inside process_batch (it
  // polls crashed_); the queued ones die here.
  fail_lost(orphans);
  std::lock_guard<std::mutex> slock(stats_mutex_);
  ++crashes_;
}

ServerSnapshot RetrievalServer::snapshot() const {
  if (!stopped()) {
    throw std::logic_error(
        "RetrievalServer::snapshot: requires a stopped server (a consistent "
        "ledger cannot be read out from under a live scheduler)");
  }
  ServerSnapshot snap;
  snap.epoch = epoch_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  snap.queries_served = queries_served_;
  snap.batches = batches_;
  snap.faults_injected = faults_injected_;
  snap.requests_throttled = requests_throttled_;
  snap.requests_rejected = requests_rejected_;
  snap.requests_shed = requests_shed_;
  snap.requests_expired = requests_expired_;
  snap.requests_lost = requests_lost_;
  snap.crashes = crashes_;
  snap.batch_size_counts = batch_size_counts_;
  snap.occupancy_deciles = occupancy_deciles_;
  snap.retry_after_buckets = retry_after_buckets_;
  snap.latency_reservoir = latency_reservoir_;
  snap.latency_count = latency_count_;
  snap.max_latency_ms = max_latency_ms_;
  snap.reservoir_rng_state = reservoir_rng_.state();
  snap.degrade_entries = degrade_entries_;
  snap.degraded_accum_ms = degraded_accum_ms_;
  snap.degraded_served = degraded_served_;
  snap.clients.reserve(clients_.size());
  for (const auto& [id, acc] : clients_) {  // std::map → sorted by id
    ServerSnapshot::ClientSlice slice;
    slice.id = id;
    slice.served = acc.served;
    slice.faulted = acc.faulted;
    slice.throttled = acc.throttled;
    slice.rejected = acc.rejected;
    slice.shed = acc.shed;
    slice.expired = acc.expired;
    slice.lost = acc.lost;
    slice.reservoir = acc.reservoir;
    slice.latency_count = acc.latency_count;
    slice.max_latency_ms = acc.max_latency_ms;
    slice.rng_state = acc.rng.state();
    snap.clients.push_back(std::move(slice));
  }
  if (limiter_ != nullptr) {
    snap.has_limiter = true;
    snap.limiter = limiter_->snapshot();
  }
  return snap;
}

void RetrievalServer::restart() { restart_internal(nullptr); }

void RetrievalServer::restart(const ServerSnapshot& snap) {
  restart_internal(&snap);
}

void RetrievalServer::restart_internal(const ServerSnapshot* snap) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stop_) {
      throw std::logic_error(
          "RetrievalServer::restart: server is still running");
    }
  }
  join_scheduler();  // the previous scheduler must be fully gone

  if (snap == nullptr) {
    // A new process with empty ledgers: billing reconciliation across the
    // restart is exactly what this path does NOT give you — that is the
    // snapshot overload's job.
    reset_stats();
  } else {
    if (snap->batch_size_counts.size() != config_.max_batch + 1 ||
        snap->occupancy_deciles.size() != 11 ||
        snap->retry_after_buckets.size() != 12) {
      throw std::logic_error(
          "RetrievalServer::restart: snapshot does not match this server's "
          "configuration");
    }
    std::lock_guard<std::mutex> slock(stats_mutex_);
    queries_served_ = snap->queries_served;
    batches_ = snap->batches;
    faults_injected_ = snap->faults_injected;
    requests_throttled_ = snap->requests_throttled;
    requests_rejected_ = snap->requests_rejected;
    requests_shed_ = snap->requests_shed;
    requests_expired_ = snap->requests_expired;
    requests_lost_ = snap->requests_lost;
    crashes_ = snap->crashes;
    batch_size_counts_ = snap->batch_size_counts;
    occupancy_deciles_ = snap->occupancy_deciles;
    retry_after_buckets_ = snap->retry_after_buckets;
    latency_reservoir_ = snap->latency_reservoir;
    latency_count_ = snap->latency_count;
    max_latency_ms_ = snap->max_latency_ms;
    reservoir_rng_ = Rng(snap->reservoir_rng_state);
    degrade_entries_ = snap->degrade_entries;
    degraded_accum_ms_ = snap->degraded_accum_ms;
    degraded_served_ = snap->degraded_served;
    degraded_stat_ = false;  // recovery restores the configured index mode
    clients_.clear();
    for (const auto& slice : snap->clients) {
      ClientAccounting acc;
      acc.served = slice.served;
      acc.faulted = slice.faulted;
      acc.throttled = slice.throttled;
      acc.rejected = slice.rejected;
      acc.shed = slice.shed;
      acc.expired = slice.expired;
      acc.lost = slice.lost;
      acc.reservoir = slice.reservoir;
      acc.latency_count = slice.latency_count;
      acc.max_latency_ms = slice.max_latency_ms;
      acc.rng = Rng(slice.rng_state);
      clients_.emplace(slice.id, std::move(acc));
    }
    if (snap->has_limiter && limiter_ != nullptr) {
      limiter_->restore(snap->limiter);
    }
  }

  // The scheduler is not running, so its thread-private ladder state is safe
  // to reset here; the index itself was already restored non-degraded by the
  // exiting scheduler (or by a gallery snapshot load).
  degraded_mode_ = false;
  system_.set_index_degraded(false);

  const std::int64_t base =
      snap != nullptr ? snap->epoch : epoch_.load(std::memory_order_relaxed);
  epoch_.store(base + 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
    crashed_.store(false, std::memory_order_release);
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

void RetrievalServer::scheduler_loop() {
  std::vector<Request> batch;
  std::vector<Request> expired;
  for (;;) {
    std::size_t occupancy = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ set and everything drained
      if (config_.batch_timeout_ms > 0.0 && !stop_ &&
          queue_.size() < config_.max_batch) {
        // Latency-aware batching: pay a bounded wall wait for a fuller
        // batch, draining early the moment the batch fills or shutdown
        // begins. The queue only shrinks on this thread, so it is still
        // non-empty when the wait returns.
        not_empty_.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(config_.batch_timeout_ms),
            [this] { return stop_ || queue_.size() >= config_.max_batch; });
      }
      occupancy = queue_.size();
      batch.clear();
      expired.clear();
      // Shed expired requests before they cost a batch slot (and before the
      // backend pays for extraction): only live requests fill the batch.
      const double now_ms = clock_->now_ms();
      while (batch.size() < config_.max_batch && !queue_.empty()) {
        Request r = std::move(queue_.front());
        queue_.pop_front();
        if (r.has_deadline && now_ms > r.deadline_ms) {
          expired.push_back(std::move(r));
        } else {
          batch.push_back(std::move(r));
        }
      }
    }
    not_full_.notify_all();
    // Ladder decisions use the occupancy this tick *saw*, before draining:
    // the batch about to be served is the one that pays (or stops paying)
    // the recall trade.
    update_degradation(occupancy);
    if (!expired.empty()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        requests_expired_ += static_cast<std::int64_t>(expired.size());
        for (const auto& r : expired) ++client_slot(r.client_id).expired;
      }
      const auto error = std::make_exception_ptr(
          ServeError(ServeErrorCode::kExpired, /*billed=*/true,
                     "RetrievalServer: deadline expired while queued"));
      for (auto& r : expired) r.promise.set_exception(error);
    }
    if (!batch.empty()) process_batch(batch);
  }
  // Drained for shutdown: leave the index exactly as a never-degraded
  // server would, and settle the open degraded stint into the accumulator.
  if (degraded_mode_) {
    system_.set_index_degraded(false);
    degraded_mode_ = false;
    const double now_ms = clock_->now_ms();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    degraded_accum_ms_ += std::max(0.0, now_ms - degraded_since_ms_);
    degraded_stat_ = false;
  }
}

void RetrievalServer::update_degradation(std::size_t occupancy) {
  const auto decile = std::min<std::size_t>(
      10, occupancy * 10 / config_.queue_capacity);
  bool entered = false;
  bool left = false;
  if (config_.degrade_high > 0.0) {
    const double frac = static_cast<double>(occupancy) /
                        static_cast<double>(config_.queue_capacity);
    if (!degraded_mode_ && frac >= config_.degrade_high) {
      // set_index_degraded reports whether the index has a cheaper mode at
      // all — the flat exact scan does not, and then the server never
      // pretends to be degraded.
      degraded_mode_ = system_.set_index_degraded(true);
      entered = degraded_mode_;
    } else if (degraded_mode_ && frac <= config_.degrade_low) {
      system_.set_index_degraded(false);
      degraded_mode_ = false;
      left = true;
    }
  }
  const double now_ms = clock_->now_ms();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++occupancy_deciles_[decile];
  if (entered) {
    ++degrade_entries_;
    degraded_since_ms_ = now_ms;
    degraded_stat_ = true;
  } else if (left) {
    degraded_accum_ms_ += std::max(0.0, now_ms - degraded_since_ms_);
    degraded_stat_ = false;
  }
}

void RetrievalServer::process_batch(std::vector<Request>& batch) {
  // A crash kills in-flight work: a batch picked up after the crash flag
  // went up dies as lost instead of being served by a "dead" process.
  if (crashed_.load(std::memory_order_acquire)) {
    fail_lost(batch);
    return;
  }
  // Fault decisions are drawn up front, one per request in arrival order, so
  // the injected schedule is a pure function of the injector seed and the
  // request sequence — independent of batching.
  std::vector<FaultKind> faults(batch.size(), FaultKind::kNone);
  if (config_.fault_injector != nullptr) {
    for (auto& f : faults) f = config_.fault_injector->next();
  }

  // Featurize the whole tick in one extract_batch call. A failure here (bad
  // geometry, extractor misuse) poisons the batch, not the scheduler: every
  // affected future gets a fatal ServeError and the loop keeps serving.
  std::vector<video::Video> videos;
  videos.reserve(batch.size());
  for (auto& r : batch) videos.push_back(std::move(r.video));

  std::vector<Tensor> features;
  try {
    features = system_.extractor().extract_batch(videos);
  } catch (const std::exception& e) {
    const auto error = std::make_exception_ptr(
        ServeError(ServeErrorCode::kFatal, /*billed=*/true,
                   std::string("RetrievalServer: backend failure: ") +
                       e.what()));
    for (auto& r : batch) r.promise.set_exception(error);
    return;
  }

  // Answer the index lookups for every request that will need one, fanned
  // out across the compute pool (each inner shard scan goes serial via
  // RetrievalSystem::retrieve_feature's worker-context guard, so this is a
  // flat per-request fan-out, not nested). Answers are bitwise identical to
  // the serial loop — each slot is written by exactly one worker — and
  // fulfillment below stays in arrival order.
  struct Answer {
    metrics::RetrievalList list;
    std::exception_ptr error;
  };
  std::vector<Answer> answers(batch.size());
  std::vector<std::size_t> needs_answer;
  needs_answer.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (faults[i] == FaultKind::kNone || faults[i] == FaultKind::kDelay) {
      needs_answer.push_back(i);
    }
  }
  const auto answer_one = [&](std::size_t i) {
    try {
      const auto neighbors = system_.retrieve_feature(features[i], batch[i].m);
      answers[i].list.reserve(neighbors.size());
      for (const auto& n : neighbors) answers[i].list.push_back(n.id);
    } catch (const std::exception& e) {
      answers[i].error = std::make_exception_ptr(
          ServeError(ServeErrorCode::kFatal, /*billed=*/true,
                     std::string("RetrievalServer: backend failure: ") +
                         e.what()));
    }
  };
  if (needs_answer.size() > 1) {
    compute_pool().parallel_for(needs_answer.size(), [&](std::size_t j) {
      answer_one(needs_answer[j]);
    });
  } else {
    for (const std::size_t i : needs_answer) answer_one(i);
  }

  // Last pre-response crash check: if the process "died" while the answers
  // were being computed, none of them ever reached a client.
  if (crashed_.load(std::memory_order_acquire)) {
    fail_lost(batch);
    return;
  }

  // Per-request outcome for client attribution: served carries its latency,
  // faulted is counted against the client the injector hit.
  std::vector<std::pair<std::size_t, double>> served_lat;
  served_lat.reserve(batch.size());
  std::vector<std::size_t> faulted_idx;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    switch (faults[i]) {
      case FaultKind::kTransientError:
        batch[i].promise.set_exception(std::make_exception_ptr(
            ServeError(ServeErrorCode::kTransient, /*billed=*/true,
                       "RetrievalServer: injected transient error")));
        faulted_idx.push_back(i);
        continue;
      case FaultKind::kFatalError:
        batch[i].promise.set_exception(std::make_exception_ptr(
            ServeError(ServeErrorCode::kFatal, /*billed=*/true,
                       "RetrievalServer: injected fatal victim error")));
        faulted_idx.push_back(i);
        continue;
      case FaultKind::kDrop:
        // Abandoning the promise makes the future ready with
        // std::future_error{broken_promise} — the lost-response signal.
        batch[i].promise = std::promise<metrics::RetrievalList>();
        faulted_idx.push_back(i);
        continue;
      case FaultKind::kDelay:
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            config_.fault_injector->config().delay_ms));
        break;
      case FaultKind::kNone:
        break;
    }
    if (answers[i].error != nullptr) {
      batch[i].promise.set_exception(answers[i].error);
      continue;
    }
    served_lat.emplace_back(i, batch[i].queued.elapsed_ms());
    batch[i].promise.set_value(std::move(answers[i].list));
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  queries_served_ += static_cast<std::int64_t>(served_lat.size());
  if (degraded_mode_) {  // scheduler thread: its own ladder state
    degraded_served_ += static_cast<std::int64_t>(served_lat.size());
  }
  faults_injected_ += static_cast<std::int64_t>(faulted_idx.size());
  ++batches_;
  ++batch_size_counts_[batch.size()];
  for (const auto& [i, ms] : served_lat) {
    record_latency(ms);
    auto& c = client_slot(batch[i].client_id);
    ++c.served;
    record_client_latency(c, ms, config_.client_latency_reservoir);
  }
  for (const std::size_t i : faulted_idx) {
    ++client_slot(batch[i].client_id).faulted;
  }
}

RetrievalServer::ClientAccounting& RetrievalServer::client_slot(
    const std::string& client_id) {
  auto it = clients_.find(client_id);
  if (it == clients_.end()) {
    it = clients_.emplace(client_id, ClientAccounting{}).first;
    // Seeding from the id (not insertion order) keeps each client's retained
    // sample set independent of which clients happened to arrive first.
    it->second.rng = Rng(kReservoirSeed ^ client_seed_hash(client_id));
  }
  return it->second;
}

void RetrievalServer::record_client_latency(ClientAccounting& c, double ms,
                                            std::size_t reservoir_cap) {
  c.max_latency_ms = std::max(c.max_latency_ms, ms);
  if (c.reservoir.size() < reservoir_cap) {
    c.reservoir.push_back(ms);
  } else if (reservoir_cap > 0) {
    const auto j =
        c.rng.uniform_index(static_cast<std::uint64_t>(c.latency_count) + 1);
    if (j < c.reservoir.size()) c.reservoir[j] = ms;
  }
  ++c.latency_count;
}

void RetrievalServer::record_retry_after(double hint_ms) {
  // Power-of-two buckets: 0 holds hints <= 1 ms, b holds (2^(b-1), 2^b],
  // the last bucket everything beyond.
  std::size_t b = 0;
  double upper = 1.0;
  while (b + 1 < retry_after_buckets_.size() && hint_ms > upper) {
    upper *= 2.0;
    ++b;
  }
  ++retry_after_buckets_[b];
}

void RetrievalServer::record_latency(double ms) {
  max_latency_ms_ = std::max(max_latency_ms_, ms);
  if (latency_reservoir_.size() < config_.latency_reservoir) {
    latency_reservoir_.push_back(ms);
  } else {
    // Algorithm R: sample i replaces a reservoir slot with probability R/i,
    // keeping a uniform sample of everything observed so far.
    const auto j = reservoir_rng_.uniform_index(
        static_cast<std::uint64_t>(latency_count_) + 1);
    if (j < latency_reservoir_.size()) latency_reservoir_[j] = ms;
  }
  ++latency_count_;
}

ServerStats RetrievalServer::stats() const {
  ServerStats out;
  out.server_epoch = epoch_.load(std::memory_order_relaxed);
  std::vector<double> latencies;
  std::map<std::string, std::vector<double>> client_latencies;
  const double now_ms = clock_->now_ms();  // clock read outside the lock
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out.queries_served = queries_served_;
    out.batches = batches_;
    out.faults_injected = faults_injected_;
    out.requests_throttled = requests_throttled_;
    out.requests_rejected = requests_rejected_;
    out.requests_shed = requests_shed_;
    out.requests_expired = requests_expired_;
    out.requests_lost = requests_lost_;
    out.crashes = crashes_;
    out.batch_size_counts = batch_size_counts_;
    out.latency_count = latency_count_;
    out.latency_samples_retained =
        static_cast<std::int64_t>(latency_reservoir_.size());
    out.max_latency_ms = max_latency_ms_;
    out.degrade_entries = degrade_entries_;
    out.degraded_now = degraded_stat_;
    out.degraded_served = degraded_served_;
    // An open degraded stint counts up to the snapshot, so degraded_ms is
    // monotone in time, not only at exit ticks.
    out.degraded_ms =
        degraded_accum_ms_ +
        (degraded_stat_ ? std::max(0.0, now_ms - degraded_since_ms_) : 0.0);
    out.occupancy_deciles = occupancy_deciles_;
    out.retry_after_buckets = retry_after_buckets_;
    latencies = latency_reservoir_;
    for (const auto& [id, acc] : clients_) {
      ClientStats cs;
      cs.served = acc.served;
      cs.faulted = acc.faulted;
      cs.throttled = acc.throttled;
      cs.rejected = acc.rejected;
      cs.shed = acc.shed;
      cs.expired = acc.expired;
      cs.lost = acc.lost;
      cs.latency_count = acc.latency_count;
      cs.max_latency_ms = acc.max_latency_ms;
      out.per_client.emplace(id, cs);
      client_latencies.emplace(id, acc.reservoir);
    }
  }
  out.p50_latency_ms = percentile(latencies, 0.50);
  out.p95_latency_ms = percentile(latencies, 0.95);
  for (auto& [id, xs] : client_latencies) {
    auto& cs = out.per_client[id];
    cs.p50_latency_ms = percentile(xs, 0.50);
    cs.p95_latency_ms = percentile(xs, 0.95);
  }
  return out;
}

void RetrievalServer::set_client_rate(double rate_per_sec) {
  if (limiter_ == nullptr) {
    throw std::logic_error(
        "RetrievalServer::set_client_rate: rate limiting is disabled "
        "(client_rate was 0 at construction)");
  }
  limiter_->set_rate(rate_per_sec, clock_->now_ms());
}

double RetrievalServer::client_rate() const {
  return limiter_ == nullptr ? 0.0 : limiter_->rate();
}

void RetrievalServer::reset_stats() {
  const double now_ms = clock_->now_ms();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  queries_served_ = 0;
  batches_ = 0;
  faults_injected_ = 0;
  requests_throttled_ = 0;
  requests_rejected_ = 0;
  requests_shed_ = 0;
  requests_expired_ = 0;
  requests_lost_ = 0;
  crashes_ = 0;
  std::fill(batch_size_counts_.begin(), batch_size_counts_.end(), 0);
  std::fill(occupancy_deciles_.begin(), occupancy_deciles_.end(), 0);
  std::fill(retry_after_buckets_.begin(), retry_after_buckets_.end(), 0);
  degrade_entries_ = 0;
  degraded_accum_ms_ = 0.0;
  degraded_served_ = 0;
  // A reset during an open degraded stint restarts the stint's clock; the
  // ladder state itself (degraded or not) is serving reality, not a stat.
  if (degraded_stat_) degraded_since_ms_ = now_ms;
  latency_reservoir_.clear();
  latency_count_ = 0;
  max_latency_ms_ = 0.0;
  reservoir_rng_ = Rng(kReservoirSeed);
  clients_.clear();
}

}  // namespace duo::serve
