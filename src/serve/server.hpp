#pragma once

// RetrievalServer: the victim R(·) as a deployed, latency-bound service
// rather than a synchronous in-process call. Clients submit(video, m) from
// any thread and get a std::future for the retrieval list; a dedicated
// scheduler thread drains up to `max_batch` queued requests per tick,
// featurizes them with one FeatureExtractor::extract_batch call (amortizing
// extractor-replica setup across the batch), answers each against the index
// (per-request lookups fanned out over compute_pool(), each inner shard
// scan serial), and fulfills the futures in arrival order.
//
// The server is index-agnostic: it serves whatever GalleryIndex the
// RetrievalSystem was configured with (retrieval::IndexConfig — exact flat
// scan or the sharded, quantized IvfIndex for million-video galleries); no
// server-side knob changes.
//
// Correctness contract: answers are bitwise identical to direct
// RetrievalSystem::retrieve calls regardless of client count, arrival order,
// or max_batch — batching amortizes cost, it never changes results
// (extract_batch guarantees bitwise equality with serial extraction, and
// the batched index fan-out writes each answer slot from exactly one
// worker).
//
// Concurrency contract: submit is MPMC-safe and applies backpressure — it
// blocks while the bounded queue is full (submit_with_deadline bounds the
// wait instead). The server has exclusive use of the RetrievalSystem's
// extractor while running; do not call system.retrieve()/extract_features()
// directly between construction and shutdown(). shutdown() is graceful: it
// stops accepting new requests, drains every queued request, and joins the
// scheduler, so no fulfilled-before-shutdown future is ever abandoned; it is
// idempotent AND safe to race from multiple threads (late callers block
// until the draining join completes). A submit that arrives after (or loses
// the race with) shutdown gets a ServeError{kShutdown} set instead.
//
// Overload model (all decisions read time through ServerConfig::clock, so a
// VirtualClock makes them deterministic):
//  - Per-client rate limiting: when client_rate > 0, a token bucket per
//    RequestOptions::client_id gates admission; a denied request fails with
//    ServeError{kThrottled} carrying a retry_after_ms hint. Throttled
//    requests never touch the queue and are NOT billed.
//  - Admission policy: once queue occupancy reaches admission_threshold ×
//    queue_capacity, kReject fails new submits with ServeError{kOverloaded}
//    (+ retry_after hint, not billed), kShed admits them by evicting the
//    queued request closest to its deadline — the least useful work left —
//    falling back to oldest-first among undeadlined requests (the victim's
//    future fails with ServeError{kShed}; the evictee WAS accepted, so it
//    stays billed). kBlock is the legacy backpressure behaviour.
//  - Deadline propagation: RequestOptions::ttl_ms attaches a deadline at
//    enqueue; the scheduler sheds expired requests *before* paying for
//    extraction (ServeError{kExpired}, billed — they were accepted) and they
//    never consume batch slots.
//
// Fault model: when ServerConfig::fault_injector is set, the scheduler
// consults it once per request in arrival order while fulfilling — injected
// transient errors fail the future with a retryable ServeError, delays
// stall the answer, drops abandon the promise (the future surfaces
// std::future_error{broken_promise}), and fatal faults fail it with a
// non-retryable ServeError. The backend work still happens, so every
// injected fault is billed; see serve/fault_injection.hpp.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "metrics/metrics.hpp"
#include "retrieval/system.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "video/video.hpp"

namespace duo::serve {

class FaultInjector;  // serve/fault_injection.hpp

struct ServerConfig {
  // Maximum requests drained into one extract_batch call per scheduler tick.
  std::size_t max_batch = 8;
  // Bounded request queue; submit blocks while the queue holds this many.
  std::size_t queue_capacity = 64;
  // Bounded reservoir for latency percentiles (exact max is kept
  // separately); memory stays O(latency_reservoir) however long the server
  // lives.
  std::size_t latency_reservoir = 512;
  // Optional fault schedule applied per request at fulfillment time.
  std::shared_ptr<FaultInjector> fault_injector;

  // Overload policy. All time reads go through `clock` (null = wall time).
  std::shared_ptr<Clock> clock;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  // Queue-occupancy fraction at which kReject/kShed kick in; the admit limit
  // is max(1, floor(admission_threshold × queue_capacity)). Ignored under
  // kBlock.
  double admission_threshold = 1.0;
  // retry_after hint attached to admission kReject failures.
  double reject_retry_after_ms = 5.0;
  // Per-client token bucket: sustained requests/sec and burst per
  // RequestOptions::client_id. 0 disables rate limiting.
  double client_rate = 0.0;
  double client_burst = 4.0;
  // Bounded per-client latency reservoir (the global reservoir keeps
  // `latency_reservoir` samples; each client additionally keeps this many).
  std::size_t client_latency_reservoir = 128;
  // Latency-aware batching: > 0 lets a scheduler tick that woke with fewer
  // than max_batch queued requests wait up to this many milliseconds of
  // real wall time for a fuller batch before draining (it drains early the
  // moment max_batch requests are queued, or on shutdown). 0 drains
  // immediately — the legacy latency-first behaviour. Batch composition
  // never affects answers, so the correctness contract is unchanged.
  double batch_timeout_ms = 0.0;
  // Graceful-degradation ladder: when tick-start queue occupancy reaches
  // degrade_high × queue_capacity, the scheduler puts the index in degraded
  // mode (GalleryIndex::set_degraded — IVF probes degraded_nprobe cells,
  // trading recall for latency); it leaves degraded mode once occupancy
  // falls back to degrade_low × queue_capacity. The gap is the hysteresis
  // band that keeps the ladder from flapping tick-to-tick. degrade_high = 0
  // disables degradation entirely (default). While degraded, answers may
  // differ from direct RetrievalSystem::retrieve calls — the one deliberate
  // exception to the bitwise correctness contract, always observable via
  // ServerStats.
  double degrade_high = 0.0;
  double degrade_low = 0.25;
};

// Per-request metadata carried alongside (video, m).
struct RequestOptions {
  // Rate-limiting key — "one API key, one bucket". Empty is itself a valid
  // key (the anonymous client).
  std::string client_id;
  // Freshness budget: > 0 attaches deadline = now + ttl_ms at enqueue; the
  // scheduler sheds the request unextracted once the deadline passes. 0
  // means no deadline. Negative means already expired — deterministically
  // shed on the next scheduler tick (useful in tests).
  double ttl_ms = 0.0;

  bool has_deadline() const noexcept { return ttl_ms != 0.0; }
};

// Per-client slice of the server-side accounting, keyed by
// RequestOptions::client_id. Billing semantics mirror the global counters:
// served/faulted/expired/shed terminate accepted (billed) requests;
// throttled/rejected turn-aways were never accepted (unbilled). The ledger
// `billed == served + faulted + expired + shed` therefore holds per client,
// not just globally. Latency percentiles come from a bounded per-client
// reservoir of ServerConfig::client_latency_reservoir samples.
struct ClientStats {
  std::int64_t served = 0;
  std::int64_t faulted = 0;
  std::int64_t throttled = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  // Subset of `faulted`: accepted requests that died with the server in a
  // crash (queued or in flight). Folding them into faulted keeps the ledger
  // formula unchanged across crashes; `lost` preserves the breakdown.
  std::int64_t lost = 0;
  std::int64_t latency_count = 0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double max_latency_ms = 0.0;

  // Queries the victim billed this client for.
  std::int64_t billed() const noexcept {
    return served + faulted + expired + shed;
  }
};

// Snapshot of server-side accounting (see RetrievalServer::stats).
struct ServerStats {
  std::int64_t queries_served = 0;   // futures fulfilled with a value
  std::int64_t batches = 0;          // scheduler ticks that processed work
  std::int64_t faults_injected = 0;  // requests failed/dropped by injection
  // Overload accounting. throttled/rejected were never accepted (unbilled);
  // expired/shed were accepted and then discarded (billed).
  std::int64_t requests_throttled = 0;  // per-client rate limit denials
  std::int64_t requests_rejected = 0;   // admission kReject turn-aways
  std::int64_t requests_shed = 0;       // evicted by admission kShed
  std::int64_t requests_expired = 0;    // deadline passed while queued
  // Crash accounting. requests_lost counts accepted requests that died with
  // the server (a subset of faults_injected, so the billing ledger
  // `billed == served + faulted + expired + shed` holds verbatim across
  // crashes); crashes counts crash() calls; server_epoch starts at 1 and
  // increments on every restart — a client that saw epoch N+1 knows every
  // request it had in flight during epoch N is gone.
  std::int64_t requests_lost = 0;
  std::int64_t crashes = 0;
  std::int64_t server_epoch = 1;
  // batch_size_counts[s] = number of ticks that drained exactly s requests;
  // index 0 is unused, size() == max_batch + 1.
  std::vector<std::int64_t> batch_size_counts;
  // Per-request submit→fulfill wall latency. Percentiles are estimated over
  // a bounded uniform reservoir of `latency_samples_retained` samples out of
  // `latency_count` observed; the max is exact over all samples.
  std::int64_t latency_count = 0;
  std::int64_t latency_samples_retained = 0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  // Degradation observability: entries into degraded mode, total clock time
  // spent degraded (including the current stint when degraded_now), whether
  // the server is degraded at snapshot time, and how many answers were
  // served while degraded (the requests whose recall may be reduced).
  std::int64_t degrade_entries = 0;
  double degraded_ms = 0.0;
  bool degraded_now = false;
  std::int64_t degraded_served = 0;
  // occupancy_deciles[d] = scheduler ticks whose tick-start queue occupancy
  // was in [d, d+1) tenths of queue_capacity; index 10 counts ticks at (or
  // beyond) full. size() == 11.
  std::vector<std::int64_t> occupancy_deciles;
  // retry_after_buckets[b] = retry_after hints handed out with throttle /
  // admission-reject failures, bucketed by power of two: bucket 0 holds
  // hints <= 1 ms, bucket b holds (2^(b-1), 2^b] ms, the last bucket
  // everything beyond ~1 s. size() == 12.
  std::vector<std::int64_t> retry_after_buckets;
  // Per-client breakdown keyed by RequestOptions::client_id (std::map for
  // deterministic iteration order in reports). Every counter above is the
  // sum of the per-client slices plus, for latency percentiles, the global
  // reservoir's own estimate.
  std::map<std::string, ClientStats> per_client;

  double mean_batch_size() const noexcept {
    return batches == 0
               ? 0.0
               : static_cast<double>(queries_served) /
                     static_cast<double>(batches);
  }
};

// Everything a RetrievalServer must persist for billing reconciliation to
// hold across a crash/restart: the global counters and histograms, the
// latency reservoirs (with their replacement-Rng states, so post-restart
// retention decisions continue the pre-crash stream exactly), every
// per-client ledger slice, the per-client token-bucket levels, and the
// degradation accounting. Deliberately NOT included: queue contents (a crash
// loses in-flight work — that is the point; the lost requests are already
// terminally accounted as faulted+lost), the live degraded bit (recovery
// restores the configured index mode; the hysteresis ladder re-enters on its
// own), and the gallery index (snapshotted separately via
// RetrievalSystem::save_gallery_index). Serialize with save_snapshot /
// load_snapshot below.
struct ServerSnapshot {
  std::int64_t epoch = 1;

  std::int64_t queries_served = 0;
  std::int64_t batches = 0;
  std::int64_t faults_injected = 0;
  std::int64_t requests_throttled = 0;
  std::int64_t requests_rejected = 0;
  std::int64_t requests_shed = 0;
  std::int64_t requests_expired = 0;
  std::int64_t requests_lost = 0;
  std::int64_t crashes = 0;
  std::vector<std::int64_t> batch_size_counts;
  std::vector<std::int64_t> occupancy_deciles;
  std::vector<std::int64_t> retry_after_buckets;

  std::vector<double> latency_reservoir;
  std::int64_t latency_count = 0;
  double max_latency_ms = 0.0;
  std::uint64_t reservoir_rng_state = 0;

  std::int64_t degrade_entries = 0;
  double degraded_accum_ms = 0.0;
  std::int64_t degraded_served = 0;

  struct ClientSlice {
    std::string id;
    std::int64_t served = 0;
    std::int64_t faulted = 0;
    std::int64_t throttled = 0;
    std::int64_t rejected = 0;
    std::int64_t shed = 0;
    std::int64_t expired = 0;
    std::int64_t lost = 0;
    std::vector<double> reservoir;
    std::int64_t latency_count = 0;
    double max_latency_ms = 0.0;
    std::uint64_t rng_state = 0;

    friend bool operator==(const ClientSlice&, const ClientSlice&) = default;
  };
  std::vector<ClientSlice> clients;  // sorted by id

  bool has_limiter = false;
  RateLimiter::State limiter;  // meaningful only when has_limiter

  friend bool operator==(const ServerSnapshot&, const ServerSnapshot&) =
      default;
};

// Durable snapshot files: magic + FNV-1a fingerprint over the payload,
// committed via models::io::atomic_write — same corruption guarantees as
// retrieval::save_index / load_index. load_snapshot leaves `snap` untouched
// on a malformed, truncated, or fingerprint-mismatched file.
bool save_snapshot(const ServerSnapshot& snap, const std::string& path);
bool load_snapshot(ServerSnapshot& snap, const std::string& path);

// Result of a bounded-deadline submission. When `accepted` is false the
// request was never enqueued (queue stayed full past the deadline, admission
// rejected it, the rate limiter throttled it, or the server is stopped) and
// the victim was NOT billed; `future` then already holds the ServeError
// explaining why.
struct SubmitOutcome {
  std::future<metrics::RetrievalList> future;
  bool accepted = false;
};

class RetrievalServer {
 public:
  // Seed of the latency reservoir's replacement stream: fixed, so reservoir
  // contents are a pure function of the observed latency sequence.
  static constexpr std::uint64_t kReservoirSeed = 0x5EEDBA5EDB0BA7E5ULL;

  // Borrow an externally owned system (must outlive the server).
  explicit RetrievalServer(retrieval::RetrievalSystem& system,
                           ServerConfig config = {});
  // Own the system outright.
  explicit RetrievalServer(
      std::unique_ptr<retrieval::RetrievalSystem> system,
      ServerConfig config = {});
  ~RetrievalServer();

  RetrievalServer(const RetrievalServer&) = delete;
  RetrievalServer& operator=(const RetrievalServer&) = delete;

  // Enqueue one retrieval request; thread-safe. Blocks while the queue is
  // full (under kBlock). On a stopped server the returned future holds
  // ServeError{kShutdown}; throttle/admission rejections likewise come back
  // as a ready future holding the typed error.
  std::future<metrics::RetrievalList> submit(video::Video v, std::size_t m,
                                             const RequestOptions& opts = {});

  // Like submit, but waits at most `deadline` for queue space instead of
  // blocking indefinitely. Rejections (deadline expired → kOverloaded,
  // admission kReject → kOverloaded, rate limit → kThrottled, stopped
  // server → kShutdown) come back with accepted=false and are not billed —
  // the request never reached the backend.
  SubmitOutcome submit_with_deadline(video::Video v, std::size_t m,
                                     std::chrono::milliseconds deadline,
                                     const RequestOptions& opts = {});

  // Stop accepting requests, drain every queued request, join the scheduler.
  // Idempotent and safe to call concurrently from multiple threads; every
  // caller returns only once draining has completed. Called by the
  // destructor.
  void shutdown();
  bool stopped() const;

  // --- crash / restart lifecycle -----------------------------------------
  // Abrupt process-death simulation: NO draining. Every queued request and
  // any batch the scheduler had in flight fails with a retryable
  // ServeError{kConnectionLost, billed=true} (they were accepted, so they
  // stay billed — counted as faulted+lost, keeping the ledger formula
  // intact), the scheduler is joined, and subsequent submits fail with
  // kConnectionLost (unbilled) instead of the terminal kShutdown, so
  // resilient clients keep retrying through the downtime. Idempotent; a
  // no-op on an already-stopped server.
  void crash();

  // Whether the server is down due to crash() (as opposed to shutdown()).
  bool crashed() const;

  // Complete accounting snapshot for durable recovery. Requires stopped()
  // (throws std::logic_error otherwise): a consistent ledger cannot be read
  // out from under a live scheduler.
  ServerSnapshot snapshot() const;

  // Bring a crashed (or shut-down) server back up on the same clock and the
  // same RetrievalSystem, with server_epoch bumped. The snapshot overload
  // restores every ledger, reservoir, and token-bucket level first — billing
  // reconciliation then holds across the restart as if the crash never
  // happened; the bare overload restarts with fresh accounting (epoch still
  // increments). Degraded mode always restarts OFF — the hysteresis ladder
  // re-enters under live load. Throws std::logic_error on a running server.
  void restart();
  void restart(const ServerSnapshot& snap);

  // Monotone restart generation, starting at 1. Stamped into ServerStats.
  std::int64_t epoch() const noexcept;

  // Consistent snapshot of the accounting counters. Percentiles come from a
  // bounded reservoir (see ServerStats); reset_stats restarts the reservoir.
  ServerStats stats() const;
  void reset_stats();

  // Mid-run rate-limit change: retunes every existing and future per-client
  // bucket to `rate_per_sec` (settled at the current clock time, so the
  // change never rewrites past accrual). Requires rate limiting to be
  // enabled at construction (client_rate > 0); throws std::logic_error
  // otherwise. The AIMD re-convergence scenario: the victim quietly drops
  // its limit and adaptive clients must rediscover it.
  void set_client_rate(double rate_per_sec);
  // The limiter's current sustained rate (client_rate when never retuned).
  double client_rate() const;

  const ServerConfig& config() const noexcept { return config_; }
  Clock& clock() noexcept { return *clock_; }
  // The served system. Only safe to touch directly once stopped().
  retrieval::RetrievalSystem& system() noexcept { return system_; }

 private:
  struct Request {
    video::Video video;
    std::size_t m = 0;
    std::promise<metrics::RetrievalList> promise;
    Stopwatch queued;       // reset at enqueue; read at fulfillment
    bool has_deadline = false;
    double deadline_ms = 0.0;  // absolute, in clock_->now_ms() terms
    std::string client_id;     // RequestOptions::client_id, for attribution
  };

  // Mutable per-client accounting slice (guarded by stats_mutex_). Each
  // client gets its own Algorithm-R reservoir seeded from its id, so the
  // retained sample set is a pure function of that client's latency
  // sequence — independent of how other clients' requests interleave.
  struct ClientAccounting {
    std::int64_t served = 0;
    std::int64_t faulted = 0;
    std::int64_t throttled = 0;
    std::int64_t rejected = 0;
    std::int64_t shed = 0;
    std::int64_t expired = 0;
    std::int64_t lost = 0;  // subset of faulted (crash casualties)
    std::vector<double> reservoir;
    std::int64_t latency_count = 0;
    double max_latency_ms = 0.0;
    Rng rng{0};
  };

  void start();
  // Join the scheduler thread; serializes racing callers and is idempotent
  // (late callers see an unjoinable thread). A mutex instead of the old
  // std::once_flag because restart() must be able to relaunch the scheduler
  // — a once_flag can never be re-armed.
  void join_scheduler();
  // Fail `lost` requests with ServeError{kConnectionLost, billed=true} and
  // account them as faulted+lost, globally and per client.
  void fail_lost(std::vector<Request>& lost);
  // Shared restart path (snap == nullptr → fresh accounting).
  void restart_internal(const ServerSnapshot* snap);
  // Shared enqueue path: nullptr deadline = wait forever. Returns false
  // (with the rejection ServeError set on the promise) when not enqueued.
  bool enqueue(Request& req, const std::chrono::milliseconds* deadline,
               const RequestOptions& opts);
  void scheduler_loop();
  void process_batch(std::vector<Request>& batch);
  // Walk the degradation ladder for a tick that started with `occupancy`
  // queued requests (also records the occupancy histogram). Called from the
  // scheduler thread only, outside mutex_.
  void update_degradation(std::size_t occupancy);
  void record_latency(double ms);          // requires stats_mutex_ held
  void record_retry_after(double hint_ms);  // requires stats_mutex_ held
  // Lazily creates the client's slice. Requires stats_mutex_ held.
  ClientAccounting& client_slot(const std::string& client_id);
  static void record_client_latency(ClientAccounting& c, double ms,
                                    std::size_t reservoir_cap);

  std::unique_ptr<retrieval::RetrievalSystem> owned_;  // empty when borrowed
  retrieval::RetrievalSystem& system_;
  ServerConfig config_;
  std::shared_ptr<Clock> clock_;
  std::unique_ptr<RateLimiter> limiter_;  // null when client_rate == 0
  std::size_t admit_limit_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool stop_ = false;
  // True while down due to crash() — distinguishes the retryable
  // "reconnect later" submit failure from terminal kShutdown. Atomic so the
  // scheduler can poll it mid-batch without taking mutex_.
  std::atomic<bool> crashed_{false};
  std::atomic<std::int64_t> epoch_{1};
  std::mutex join_mutex_;  // serializes the scheduler join across racers

  mutable std::mutex stats_mutex_;
  std::int64_t queries_served_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t faults_injected_ = 0;
  std::int64_t requests_throttled_ = 0;
  std::int64_t requests_rejected_ = 0;
  std::int64_t requests_shed_ = 0;
  std::int64_t requests_expired_ = 0;
  std::int64_t requests_lost_ = 0;
  std::int64_t crashes_ = 0;
  std::vector<std::int64_t> batch_size_counts_;
  // Algorithm-R reservoir over latencies + exact running max and count.
  std::vector<double> latency_reservoir_;
  std::int64_t latency_count_ = 0;
  double max_latency_ms_ = 0.0;
  Rng reservoir_rng_{kReservoirSeed};
  std::map<std::string, ClientAccounting> clients_;
  // Degradation ladder state. degraded_mode_ is the scheduler thread's
  // private view (no lock); everything below it is the stats mirror under
  // stats_mutex_, from which stats() reports.
  bool degraded_mode_ = false;
  std::int64_t degrade_entries_ = 0;
  double degraded_accum_ms_ = 0.0;   // completed stints
  double degraded_since_ms_ = 0.0;   // start of the current stint
  bool degraded_stat_ = false;       // mirror of degraded_mode_
  std::int64_t degraded_served_ = 0;
  std::vector<std::int64_t> occupancy_deciles_;
  std::vector<std::int64_t> retry_after_buckets_;

  std::thread scheduler_;  // last member: started after everything above
};

}  // namespace duo::serve
