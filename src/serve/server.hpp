#pragma once

// RetrievalServer: the victim R(·) as a deployed, latency-bound service
// rather than a synchronous in-process call. Clients submit(video, m) from
// any thread and get a std::future for the retrieval list; a dedicated
// scheduler thread drains up to `max_batch` queued requests per tick,
// featurizes them with one FeatureExtractor::extract_batch call (amortizing
// extractor-replica setup across the batch), answers each against the index,
// and fulfills the futures.
//
// Correctness contract: answers are bitwise identical to direct
// RetrievalSystem::retrieve calls regardless of client count, arrival order,
// or max_batch — batching amortizes cost, it never changes results
// (extract_batch guarantees bitwise equality with serial extraction).
//
// Concurrency contract: submit is MPMC-safe and applies backpressure — it
// blocks while the bounded queue is full. The server has exclusive use of
// the RetrievalSystem's extractor while running; do not call
// system.retrieve()/extract_features() directly between construction and
// shutdown(). shutdown() is graceful: it stops accepting new requests,
// drains every queued request, and joins the scheduler, so no fulfilled-
// before-shutdown future is ever abandoned. A submit that arrives after
// (or loses the race with) shutdown gets its exception set instead.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "metrics/metrics.hpp"
#include "retrieval/system.hpp"
#include "video/video.hpp"

namespace duo::serve {

struct ServerConfig {
  // Maximum requests drained into one extract_batch call per scheduler tick.
  std::size_t max_batch = 8;
  // Bounded request queue; submit blocks while the queue holds this many.
  std::size_t queue_capacity = 64;
};

// Snapshot of server-side accounting (see RetrievalServer::stats).
struct ServerStats {
  std::int64_t queries_served = 0;  // futures fulfilled with a value
  std::int64_t batches = 0;         // scheduler ticks that processed work
  // batch_size_counts[s] = number of ticks that drained exactly s requests;
  // index 0 is unused, size() == max_batch + 1.
  std::vector<std::int64_t> batch_size_counts;
  // Per-request submit→fulfill wall latency percentiles (ms).
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double max_latency_ms = 0.0;

  double mean_batch_size() const noexcept {
    return batches == 0
               ? 0.0
               : static_cast<double>(queries_served) /
                     static_cast<double>(batches);
  }
};

class RetrievalServer {
 public:
  // Borrow an externally owned system (must outlive the server).
  explicit RetrievalServer(retrieval::RetrievalSystem& system,
                           ServerConfig config = {});
  // Own the system outright.
  explicit RetrievalServer(
      std::unique_ptr<retrieval::RetrievalSystem> system,
      ServerConfig config = {});
  ~RetrievalServer();

  RetrievalServer(const RetrievalServer&) = delete;
  RetrievalServer& operator=(const RetrievalServer&) = delete;

  // Enqueue one retrieval request; thread-safe. Blocks while the queue is
  // full. On a stopped server the returned future holds std::runtime_error.
  std::future<metrics::RetrievalList> submit(video::Video v, std::size_t m);

  // Stop accepting requests, drain every queued request, join the scheduler.
  // Idempotent (but, like ThreadPool::shutdown, must not race itself from
  // two threads). Called by the destructor.
  void shutdown();
  bool stopped() const;

  // Consistent snapshot of the accounting counters. Percentiles are computed
  // over all latencies observed so far (memory grows with queries served —
  // fine at test/bench scale, reset via reset_stats for long runs).
  ServerStats stats() const;
  void reset_stats();

  const ServerConfig& config() const noexcept { return config_; }
  // The served system. Only safe to touch directly once stopped().
  retrieval::RetrievalSystem& system() noexcept { return system_; }

 private:
  struct Request {
    video::Video video;
    std::size_t m = 0;
    std::promise<metrics::RetrievalList> promise;
    Stopwatch queued;  // reset at enqueue; read at fulfillment
  };

  void scheduler_loop();
  void process_batch(std::vector<Request>& batch);

  std::unique_ptr<retrieval::RetrievalSystem> owned_;  // empty when borrowed
  retrieval::RetrievalSystem& system_;
  ServerConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool stop_ = false;

  mutable std::mutex stats_mutex_;
  std::int64_t queries_served_ = 0;
  std::int64_t batches_ = 0;
  std::vector<std::int64_t> batch_size_counts_;
  std::vector<double> latencies_ms_;

  std::thread scheduler_;  // last member: started after everything above
};

}  // namespace duo::serve
