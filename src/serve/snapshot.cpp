#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "models/serialization.hpp"
#include "serve/server.hpp"

namespace duo::serve {

namespace {

namespace io = models::io;

// File layout mirrors the checkpoint formats (DUOW1 params, DUOIX1 index):
// magic, FNV-1a fingerprint over the payload, payload size, payload. The
// fingerprint makes torn or bit-flipped files fail loudly instead of
// restoring a subtly wrong ledger.
constexpr char kSnapshotMagic[8] = {'D', 'U', 'O', 'S', 'N', '1', '\0', '\0'};

void write_bool(std::ostream& out, bool b) {
  io::write_i64(out, b ? 1 : 0);
}

bool read_bool(std::istream& in, bool& b) {
  std::int64_t v = 0;
  if (!io::read_i64(in, v)) return false;
  if (v != 0 && v != 1) return false;
  b = v != 0;
  return true;
}

void write_payload(std::ostream& out, const ServerSnapshot& snap) {
  io::write_i64(out, snap.epoch);
  io::write_i64(out, snap.queries_served);
  io::write_i64(out, snap.batches);
  io::write_i64(out, snap.faults_injected);
  io::write_i64(out, snap.requests_throttled);
  io::write_i64(out, snap.requests_rejected);
  io::write_i64(out, snap.requests_shed);
  io::write_i64(out, snap.requests_expired);
  io::write_i64(out, snap.requests_lost);
  io::write_i64(out, snap.crashes);
  io::write_i64_vec(out, snap.batch_size_counts);
  io::write_i64_vec(out, snap.occupancy_deciles);
  io::write_i64_vec(out, snap.retry_after_buckets);
  io::write_f64_vec(out, snap.latency_reservoir);
  io::write_i64(out, snap.latency_count);
  io::write_f64(out, snap.max_latency_ms);
  io::write_u64(out, snap.reservoir_rng_state);
  io::write_i64(out, snap.degrade_entries);
  io::write_f64(out, snap.degraded_accum_ms);
  io::write_i64(out, snap.degraded_served);
  io::write_i64(out, static_cast<std::int64_t>(snap.clients.size()));
  for (const auto& c : snap.clients) {
    io::write_string(out, c.id);
    io::write_i64(out, c.served);
    io::write_i64(out, c.faulted);
    io::write_i64(out, c.throttled);
    io::write_i64(out, c.rejected);
    io::write_i64(out, c.shed);
    io::write_i64(out, c.expired);
    io::write_i64(out, c.lost);
    io::write_f64_vec(out, c.reservoir);
    io::write_i64(out, c.latency_count);
    io::write_f64(out, c.max_latency_ms);
    io::write_u64(out, c.rng_state);
  }
  write_bool(out, snap.has_limiter);
  if (snap.has_limiter) {
    io::write_f64(out, snap.limiter.rate);
    io::write_f64(out, snap.limiter.burst);
    io::write_i64(out,
                  static_cast<std::int64_t>(snap.limiter.buckets.size()));
    for (const auto& [id, bucket] : snap.limiter.buckets) {
      io::write_string(out, id);
      io::write_f64(out, bucket.rate);
      io::write_f64(out, bucket.burst);
      io::write_f64(out, bucket.tokens);
      io::write_f64(out, bucket.last_ms);
      write_bool(out, bucket.primed);
    }
  }
}

bool read_payload(std::istream& in, ServerSnapshot& snap) {
  if (!io::read_i64(in, snap.epoch) || snap.epoch < 1) return false;
  if (!io::read_i64(in, snap.queries_served)) return false;
  if (!io::read_i64(in, snap.batches)) return false;
  if (!io::read_i64(in, snap.faults_injected)) return false;
  if (!io::read_i64(in, snap.requests_throttled)) return false;
  if (!io::read_i64(in, snap.requests_rejected)) return false;
  if (!io::read_i64(in, snap.requests_shed)) return false;
  if (!io::read_i64(in, snap.requests_expired)) return false;
  if (!io::read_i64(in, snap.requests_lost)) return false;
  if (!io::read_i64(in, snap.crashes)) return false;
  if (!io::read_i64_vec(in, snap.batch_size_counts)) return false;
  if (!io::read_i64_vec(in, snap.occupancy_deciles)) return false;
  if (!io::read_i64_vec(in, snap.retry_after_buckets)) return false;
  if (!io::read_f64_vec(in, snap.latency_reservoir)) return false;
  if (!io::read_i64(in, snap.latency_count)) return false;
  if (!io::read_f64(in, snap.max_latency_ms)) return false;
  if (!io::read_u64(in, snap.reservoir_rng_state)) return false;
  if (!io::read_i64(in, snap.degrade_entries)) return false;
  if (!io::read_f64(in, snap.degraded_accum_ms)) return false;
  if (!io::read_i64(in, snap.degraded_served)) return false;
  std::int64_t client_count = 0;
  if (!io::read_i64(in, client_count)) return false;
  if (client_count < 0 || client_count > (1 << 24)) return false;
  snap.clients.clear();
  snap.clients.reserve(static_cast<std::size_t>(client_count));
  std::string prev_id;
  for (std::int64_t i = 0; i < client_count; ++i) {
    ServerSnapshot::ClientSlice c;
    if (!io::read_string(in, c.id)) return false;
    // The writer emits slices sorted by id; enforce it so a restored ledger
    // cannot smuggle in duplicate client slices.
    if (i > 0 && c.id <= prev_id) return false;
    prev_id = c.id;
    if (!io::read_i64(in, c.served)) return false;
    if (!io::read_i64(in, c.faulted)) return false;
    if (!io::read_i64(in, c.throttled)) return false;
    if (!io::read_i64(in, c.rejected)) return false;
    if (!io::read_i64(in, c.shed)) return false;
    if (!io::read_i64(in, c.expired)) return false;
    if (!io::read_i64(in, c.lost)) return false;
    if (!io::read_f64_vec(in, c.reservoir)) return false;
    if (!io::read_i64(in, c.latency_count)) return false;
    if (!io::read_f64(in, c.max_latency_ms)) return false;
    if (!io::read_u64(in, c.rng_state)) return false;
    snap.clients.push_back(std::move(c));
  }
  if (!read_bool(in, snap.has_limiter)) return false;
  snap.limiter = RateLimiter::State{};
  if (snap.has_limiter) {
    if (!io::read_f64(in, snap.limiter.rate)) return false;
    if (!io::read_f64(in, snap.limiter.burst)) return false;
    if (snap.limiter.rate <= 0.0 || snap.limiter.burst < 1.0) return false;
    std::int64_t bucket_count = 0;
    if (!io::read_i64(in, bucket_count)) return false;
    if (bucket_count < 0 || bucket_count > (1 << 24)) return false;
    snap.limiter.buckets.reserve(static_cast<std::size_t>(bucket_count));
    std::string prev_bucket;
    for (std::int64_t i = 0; i < bucket_count; ++i) {
      std::pair<std::string, TokenBucketState> entry;
      if (!io::read_string(in, entry.first)) return false;
      if (i > 0 && entry.first <= prev_bucket) return false;
      prev_bucket = entry.first;
      if (!io::read_f64(in, entry.second.rate)) return false;
      if (!io::read_f64(in, entry.second.burst)) return false;
      if (!io::read_f64(in, entry.second.tokens)) return false;
      if (!io::read_f64(in, entry.second.last_ms)) return false;
      if (!read_bool(in, entry.second.primed)) return false;
      if (entry.second.rate <= 0.0 || entry.second.burst < 1.0) return false;
      snap.limiter.buckets.push_back(std::move(entry));
    }
  }
  return true;
}

}  // namespace

bool save_snapshot(const ServerSnapshot& snap, const std::string& path) {
  std::ostringstream payload_stream;
  write_payload(payload_stream, snap);
  if (!payload_stream) return false;
  const std::string payload = payload_stream.str();
  return io::atomic_write(path, [&](std::ostream& out) {
    out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
    io::write_u64(out, io::fnv1a(payload.data(), payload.size()));
    io::write_i64(out, static_cast<std::int64_t>(payload.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
  });
}

bool load_snapshot(ServerSnapshot& snap, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kSnapshotMagic)] = {};
  if (!in.read(magic, sizeof(magic))) return false;
  for (std::size_t i = 0; i < sizeof(magic); ++i) {
    if (magic[i] != kSnapshotMagic[i]) return false;
  }
  std::uint64_t fingerprint = 0;
  std::int64_t size = 0;
  if (!io::read_u64(in, fingerprint)) return false;
  if (!io::read_i64(in, size)) return false;
  if (size < 0 || size > (std::int64_t{1} << 31)) return false;
  std::string payload(static_cast<std::size_t>(size), '\0');
  if (!in.read(payload.data(), size)) return false;
  if (io::fnv1a(payload.data(), payload.size()) != fingerprint) return false;
  // Stage into a scratch snapshot so a file that fails validation halfway
  // leaves the caller's snapshot untouched.
  ServerSnapshot staged;
  std::istringstream payload_in(payload);
  if (!read_payload(payload_in, staged)) return false;
  snap = std::move(staged);
  return true;
}

}  // namespace duo::serve
