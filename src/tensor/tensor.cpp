#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>

namespace duo {

std::int64_t shape_numel(const Tensor::Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    DUO_CHECK_MSG(d >= 0, "negative dimension");
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  DUO_CHECK_MSG(shape_numel(shape_) == static_cast<std::int64_t>(data_.size()),
                "data size does not match shape");
}

Tensor Tensor::uniform(Shape shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = rng.uniform_f(lo, hi);
  return t;
}

Tensor Tensor::normal(Shape shape, float mean, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = rng.normal_f(mean, stddev);
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DUO_CHECK_MSG(shape_numel(new_shape) == size(), "reshape changes numel");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

std::size_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  DUO_CHECK_MSG(idx.size() == shape_.size(), "index rank mismatch");
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (const auto i : idx) {
    DUO_CHECK_MSG(i >= 0 && i < shape_[axis], "index out of range");
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return static_cast<std::size_t>(flat);
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  DUO_CHECK_MSG(same_shape(other), "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  DUO_CHECK_MSG(same_shape(other), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  DUO_CHECK_MSG(same_shape(other), "shape mismatch in *=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float s) noexcept {
  for (auto& x : data_) x += s;
  return *this;
}

Tensor& Tensor::operator*=(float s) noexcept {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::axpy(float alpha, const Tensor& other) {
  DUO_CHECK_MSG(same_shape(other), "shape mismatch in axpy");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) noexcept {
  for (auto& x : data_) x = std::clamp(x, lo, hi);
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor t = *this;
  t += other;
  return t;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor t = *this;
  t -= other;
  return t;
}

Tensor Tensor::operator*(const Tensor& other) const {
  Tensor t = *this;
  t *= other;
  return t;
}

Tensor Tensor::operator*(float s) const {
  Tensor t = *this;
  t *= s;
  return t;
}

Tensor Tensor::operator-() const { return *this * -1.0f; }

Tensor Tensor::abs() const {
  Tensor t = *this;
  for (auto& x : t.data_) x = std::fabs(x);
  return t;
}

Tensor Tensor::clamped(float lo, float hi) const {
  Tensor t = *this;
  t.clamp_(lo, hi);
  return t;
}

Tensor Tensor::sign() const {
  Tensor t = *this;
  for (auto& x : t.data_) x = (x > 0.0f) ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  return t;
}

double Tensor::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::mean() const noexcept {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

float Tensor::max() const {
  DUO_CHECK_MSG(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const {
  DUO_CHECK_MSG(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

double Tensor::dot(const Tensor& other) const {
  DUO_CHECK_MSG(size() == other.size(), "size mismatch in dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    acc += static_cast<double>(data_[i]) * other.data_[i];
  }
  return acc;
}

std::int64_t Tensor::norm_l0(float eps) const noexcept {
  std::int64_t n = 0;
  for (const auto x : data_) {
    if (std::fabs(x) > eps) ++n;
  }
  return n;
}

double Tensor::norm_l1() const noexcept {
  double acc = 0.0;
  for (const auto x : data_) acc += std::fabs(static_cast<double>(x));
  return acc;
}

double Tensor::norm_l2() const noexcept { return std::sqrt(dot(*this)); }

float Tensor::norm_linf() const noexcept {
  float m = 0.0f;
  for (const auto x : data_) m = std::max(m, std::fabs(x));
  return m;
}

Tensor Tensor::matmul(const Tensor& other) const {
  DUO_CHECK_MSG(rank() == 2 && other.rank() == 2, "matmul requires 2D");
  const std::int64_t m = shape_[0], k = shape_[1];
  DUO_CHECK_MSG(other.shape_[0] == k, "matmul inner dim mismatch");
  const std::int64_t n = other.shape_[1];
  Tensor out({m, n});
  // ikj loop order: streams over contiguous rows of `other` and `out`.
  const float* a = data();
  const float* b = other.data();
  float* c = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = b + kk * n;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor Tensor::transposed() const {
  DUO_CHECK_MSG(rank() == 2, "transpose requires 2D");
  const std::int64_t m = shape_[0], n = shape_[1];
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out.data()[j * m + i] = data()[i * n + j];
    }
  }
  return out;
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  if (!same_shape(other)) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor operator*(float s, const Tensor& t) { return t * s; }

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << t.shape_string() << " {";
  const std::int64_t n = std::min<std::int64_t>(t.size(), 8);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << t[i];
  }
  if (t.size() > n) os << ", …";
  os << '}';
  return os;
}

}  // namespace duo
