#pragma once

// A small dense ND float tensor. Owning, contiguous, row-major. This is the
// numeric substrate for the whole library: videos, network activations,
// perturbation masks, and feature vectors are all Tensors.
//
// Design notes:
//  - No views/strides: every tensor owns contiguous storage. The workloads
//    here (small 3D-CNN video models, mask algebra) never need aliasing, and
//    value semantics keep attack code easy to reason about.
//  - Shapes use int64_t dims; total element counts stay well under 2^31 but
//    intermediate products (e.g. im2col columns) are computed in 64-bit.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace duo {

class Tensor {
 public:
  using Shape = std::vector<std::int64_t>;

  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  // Tensor adopting the given data (size must match the shape product).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor uniform(Shape shape, float lo, float hi, Rng& rng);
  static Tensor normal(Shape shape, float mean, float stddev, Rng& rng);

  // -- shape ---------------------------------------------------------------
  const Shape& shape() const noexcept { return shape_; }
  std::int64_t dim(std::size_t axis) const {
    DUO_CHECK(axis < shape_.size());
    return shape_[axis];
  }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::int64_t size() const noexcept { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const noexcept { return data_.empty(); }
  bool same_shape(const Tensor& other) const noexcept { return shape_ == other.shape_; }

  // Reshape preserving element count (returns a copy; storage is contiguous).
  Tensor reshaped(Shape new_shape) const;

  // -- element access ------------------------------------------------------
  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const noexcept { return {data_.data(), data_.size()}; }

  float& operator[](std::int64_t i) {
    DUO_CHECK(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    DUO_CHECK(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }

  // Multi-index access (rank must match argument count).
  float& at(std::int64_t i, std::int64_t j) { return data_[flat_index({i, j})]; }
  float at(std::int64_t i, std::int64_t j) const { return data_[flat_index({i, j})]; }
  float& at(std::int64_t i, std::int64_t j, std::int64_t k) {
    return data_[flat_index({i, j, k})];
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_[flat_index({i, j, k})];
  }
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    return data_[flat_index({i, j, k, l})];
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const {
    return data_[flat_index({i, j, k, l})];
  }
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l,
            std::int64_t m) {
    return data_[flat_index({i, j, k, l, m})];
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l,
           std::int64_t m) const {
    return data_[flat_index({i, j, k, l, m})];
  }

  // -- in-place mutation ---------------------------------------------------
  void fill(float value) noexcept;
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);  // elementwise
  Tensor& operator+=(float s) noexcept;
  Tensor& operator*=(float s) noexcept;
  // this += alpha * other  (fused AXPY; the hot update in every optimizer).
  Tensor& axpy(float alpha, const Tensor& other);
  // Clamp every element to [lo, hi].
  Tensor& clamp_(float lo, float hi) noexcept;

  // -- value-returning ops -------------------------------------------------
  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  Tensor operator*(const Tensor& other) const;  // elementwise (Hadamard ⊙)
  Tensor operator*(float s) const;
  Tensor operator-() const;
  Tensor abs() const;
  Tensor clamped(float lo, float hi) const;
  // Elementwise sign (-1, 0, +1).
  Tensor sign() const;

  // -- reductions ----------------------------------------------------------
  double sum() const noexcept;
  double mean() const noexcept;
  float max() const;
  float min() const;
  double dot(const Tensor& other) const;

  // -- norms (paper §III-C notation) ----------------------------------------
  // ‖·‖₀: number of nonzero elements.
  std::int64_t norm_l0(float eps = 0.0f) const noexcept;
  double norm_l1() const noexcept;
  double norm_l2() const noexcept;
  float norm_linf() const noexcept;

  // -- linear algebra --------------------------------------------------------
  // 2D matmul: (m×k)·(k×n) → (m×n).
  Tensor matmul(const Tensor& other) const;
  // 2D transpose.
  Tensor transposed() const;

  bool allclose(const Tensor& other, float atol = 1e-5f) const;

  std::string shape_string() const;

 private:
  std::size_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

Tensor operator*(float s, const Tensor& t);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

// Total element count for a shape (checks non-negative dims).
std::int64_t shape_numel(const Tensor::Shape& shape);

}  // namespace duo
