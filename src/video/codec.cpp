#include "video/codec.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <vector>

namespace duo::video {

namespace {
constexpr char kMagic[8] = {'D', 'U', 'O', 'V', '1', '\0', '\0', '\0'};

struct Header {
  char magic[8];
  std::int64_t frames;
  std::int64_t width;
  std::int64_t height;
  std::int64_t channels;
  std::int64_t label;
  std::int64_t id;
};
}  // namespace

bool save_video(const Video& v, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const VideoGeometry& g = v.geometry();
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.frames = g.frames;
  h.width = g.width;
  h.height = g.height;
  h.channels = g.channels;
  h.label = v.label();
  h.id = v.id();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));

  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(g.total_elements()));
  const float* data = v.data().data();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const float clamped = std::min(255.0f, std::max(0.0f, data[i]));
    bytes[i] = static_cast<std::uint8_t>(std::lround(clamped));
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<Video> load_video(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  if (h.frames <= 0 || h.width <= 0 || h.height <= 0 || h.channels <= 0) {
    return std::nullopt;
  }
  VideoGeometry g{h.frames, h.width, h.height, h.channels};
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(g.total_elements()));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) return std::nullopt;

  Video v(g, static_cast<int>(h.label), h.id);
  float* data = v.data().data();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    data[i] = static_cast<float>(bytes[i]);
  }
  return v;
}

}  // namespace duo::video
