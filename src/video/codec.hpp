#pragma once

// Trivial binary video container (".duov"): magic, geometry, label, id,
// raw uint8 pixel data. Used by the examples to persist adversarial videos
// and inspect them out-of-process.

#include <optional>
#include <string>

#include "video/video.hpp"

namespace duo::video {

// Serialize `v` (pixels rounded to uint8) to `path`. Returns false on I/O
// failure.
bool save_video(const Video& v, const std::string& path);

// Load a video written by save_video. Returns nullopt on failure or if the
// file is not a valid .duov container.
std::optional<Video> load_video(const std::string& path);

}  // namespace duo::video
