#include "video/frame_sampler.hpp"

namespace duo::video {

std::vector<std::int64_t> uniform_sample_indices(std::int64_t total_frames,
                                                 std::int64_t target_frames) {
  DUO_CHECK(total_frames > 0 && target_frames > 0);
  std::vector<std::int64_t> idx;
  idx.reserve(static_cast<std::size_t>(target_frames));
  for (std::int64_t i = 0; i < target_frames; ++i) {
    // Center of the i-th of target_frames equal segments.
    const double pos = (static_cast<double>(i) + 0.5) *
                       static_cast<double>(total_frames) /
                       static_cast<double>(target_frames);
    std::int64_t f = static_cast<std::int64_t>(pos);
    if (f >= total_frames) f = total_frames - 1;
    idx.push_back(f);
  }
  return idx;
}

Video uniform_sample(const Video& v, std::int64_t target_frames) {
  const VideoGeometry& g = v.geometry();
  if (g.frames == target_frames) return v;
  const auto indices = uniform_sample_indices(g.frames, target_frames);

  VideoGeometry out_g = g;
  out_g.frames = target_frames;
  Video out(out_g, v.label(), v.id());
  const std::int64_t frame_elems = g.elements_per_frame();
  const float* src = v.data().data();
  float* dst = out.data().data();
  for (std::int64_t i = 0; i < target_frames; ++i) {
    const float* s = src + indices[static_cast<std::size_t>(i)] * frame_elems;
    float* d = dst + i * frame_elems;
    for (std::int64_t e = 0; e < frame_elems; ++e) d[e] = s[e];
  }
  return out;
}

}  // namespace duo::video
