#pragma once

// Frame sampling. The paper (§V-A, following [1]) uniformly samples a
// 16-frame snippet from each video before feeding the retrieval model.

#include "video/video.hpp"

namespace duo::video {

// Uniformly sample `target_frames` frames from `v` (indices spread evenly
// across [0, N)). If the video already has exactly `target_frames` frames it
// is returned unchanged. Requires N >= 1.
Video uniform_sample(const Video& v, std::int64_t target_frames);

// The frame indices uniform_sample picks, exposed for tests.
std::vector<std::int64_t> uniform_sample_indices(std::int64_t total_frames,
                                                 std::int64_t target_frames);

}  // namespace duo::video
