#include "video/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace duo::video {

namespace {
constexpr float kTwoPi = 6.283185307179586f;
}

DatasetSpec DatasetSpec::ucf101_like(std::uint64_t seed) {
  DatasetSpec s;
  s.name = "UCF101";
  s.num_classes = 20;
  s.train_per_class = 8;
  s.test_per_class = 4;
  s.geometry = {16, 24, 24, 3};
  s.seed = seed;
  return s;
}

DatasetSpec DatasetSpec::hmdb51_like(std::uint64_t seed) {
  DatasetSpec s;
  s.name = "HMDB51";
  s.num_classes = 10;
  s.train_per_class = 8;
  s.test_per_class = 4;
  s.geometry = {16, 24, 24, 3};
  s.seed = seed;
  return s;
}

DatasetSpec DatasetSpec::ucf101_full(std::uint64_t seed) {
  DatasetSpec s;
  s.name = "UCF101-full";
  s.num_classes = 101;
  s.train_per_class = 92;  // ≈ 9,324 training videos
  s.test_per_class = 40;   // ≈ 3,996 testing videos (paper Table I)
  s.geometry = VideoGeometry::paper_scale();
  s.seed = seed;
  return s;
}

DatasetSpec DatasetSpec::hmdb51_full(std::uint64_t seed) {
  DatasetSpec s;
  s.name = "HMDB51-full";
  s.num_classes = 51;
  s.train_per_class = 96;  // ≈ 4,900 training videos
  s.test_per_class = 41;   // ≈ 2,100 testing videos
  s.geometry = VideoGeometry::paper_scale();
  s.seed = seed;
  return s;
}

SyntheticGenerator::SyntheticGenerator(DatasetSpec spec) : spec_(std::move(spec)) {
  DUO_CHECK(spec_.num_classes > 1);
  Rng rng(spec_.seed * 0x9E3779B97F4A7C15ULL + 7);
  patterns_.reserve(static_cast<std::size_t>(spec_.num_classes));
  const int frames = static_cast<int>(spec_.geometry.frames);
  for (int c = 0; c < spec_.num_classes; ++c) {
    ClassPattern p;
    // Low spatial frequencies: wavelengths of several pixels even at the
    // miniature 16–32 px geometry, so content survives the mild smoothing
    // defenses apply (a 3×3 median must not erase the class signal).
    p.freq_x = rng.uniform_f(0.5f, 2.0f);
    p.freq_y = rng.uniform_f(0.5f, 2.0f);
    p.phase = rng.uniform_f(0.0f, kTwoPi);
    p.velocity_x = rng.uniform_f(-2.5f, 2.5f);
    p.velocity_y = rng.uniform_f(-2.5f, 2.5f);
    for (auto& m : p.color_mix) m = rng.uniform_f(0.25f, 1.0f);
    p.event_length = rng.uniform_int(3, 5);
    p.event_start = rng.uniform_int(0, std::max(0, frames - p.event_length - 1));
    p.event_freq = rng.uniform_f(1.5f, 3.5f);
    patterns_.push_back(p);
  }
}

Video SyntheticGenerator::make_video(int label, std::int64_t id,
                                     std::uint64_t instance_seed) const {
  DUO_CHECK(label >= 0 && label < spec_.num_classes);
  const ClassPattern& p = patterns_[static_cast<std::size_t>(label)];
  const VideoGeometry& g = spec_.geometry;
  Rng rng(instance_seed);

  // Per-video jitter: substantial parameter perturbations + random spatial
  // offset. The jitter width controls intra-class spread, which in turn
  // controls how hard the retrieval problem is — tuned so trained victims
  // land in the paper's mAP regime (≈40–65%, Fig. 3) rather than at
  // near-perfect separation.
  const float jfx = p.freq_x * rng.uniform_f(0.85f, 1.15f);
  const float jfy = p.freq_y * rng.uniform_f(0.85f, 1.15f);
  const float jphase = p.phase + rng.uniform_f(-0.45f, 0.45f);
  const float jvx = p.velocity_x * rng.uniform_f(0.7f, 1.3f);
  const float jvy = p.velocity_y * rng.uniform_f(0.7f, 1.3f);
  const float off_x = rng.uniform_f(0.0f, static_cast<float>(g.width));
  const float off_y = rng.uniform_f(0.0f, static_cast<float>(g.height));
  // Shared "scene background": the same spatial wave for every class with a
  // per-video random phase. It contributes class-independent feature
  // variance, so retrieval lists of different-class queries overlap — the
  // regime the paper's Table II "w/o attack" AP@m of 25–68% implies.
  const float bg_phase = rng.uniform_f(0.0f, kTwoPi);
  const float bg_vx = rng.uniform_f(-1.5f, 1.5f);
  // Per-video signal strength: some videos express their action weakly
  // (distant camera, occlusion). Weak-signal videos sit near the feature
  // centroid and show up in many retrieval lists — the "hub" items that give
  // different-class queries overlapping lists (Table II "w/o attack" rows).
  const float signal = rng.uniform_f(0.75f, 1.0f);
  // Mild sensor noise. Kept low enough that content (not noise) dominates
  // the learned features — real decoded video is similarly smooth, which is
  // what makes feature-squeezing defenses viable on clean traffic (§V-D).
  const float noise_sigma = rng.uniform_f(1.0f, 2.5f);

  Video v(g, label, id);
  const float inv_w = 1.0f / static_cast<float>(g.width);
  const float inv_h = 1.0f / static_cast<float>(g.height);
  for (std::int64_t n = 0; n < g.frames; ++n) {
    const float t = static_cast<float>(n);
    const bool in_event = n >= p.event_start &&
                          n < p.event_start + p.event_length;
    for (std::int64_t y = 0; y < g.height; ++y) {
      for (std::int64_t x = 0; x < g.width; ++x) {
        const float fx = (static_cast<float>(x) + jvx * t + off_x) * inv_w;
        const float fy = (static_cast<float>(y) + jvy * t + off_y) * inv_h;
        float base = std::sin(kTwoPi * jfx * fx + jphase) *
                     std::cos(kTwoPi * jfy * fy);
        if (in_event) {
          // Class-discriminative flash: a distinct diagonal grating only
          // present in the event window.
          base += 0.8f * std::sin(kTwoPi * p.event_freq * (fx + fy) + jphase);
        }
        const float bg = std::sin(
            kTwoPi * 1.3f *
                ((static_cast<float>(x) + bg_vx * t) * inv_w +
                 static_cast<float>(y) * inv_h) +
            bg_phase);
        for (std::int64_t c = 0; c < g.channels; ++c) {
          const float mix = p.color_mix[static_cast<std::size_t>(c % 3)];
          const float value = 127.5f + 62.0f * signal * mix * base +
                              28.0f * bg + rng.normal_f(0.0f, noise_sigma);
          // Integer pixels, like real decoded video; keeps quantized
          // perturbation accounting exact (attack/perturbation.hpp).
          v.pixel(n, y, x, c) = std::round(std::clamp(value, 0.0f, 255.0f));
        }
      }
    }
  }
  return v;
}

Dataset SyntheticGenerator::generate() const {
  Dataset ds;
  ds.spec = spec_;
  ds.train.reserve(static_cast<std::size_t>(spec_.train_size()));
  ds.test.reserve(static_cast<std::size_t>(spec_.test_size()));
  Rng seeder(spec_.seed);
  std::int64_t id = 0;
  for (int c = 0; c < spec_.num_classes; ++c) {
    for (int i = 0; i < spec_.train_per_class; ++i) {
      ds.train.push_back(make_video(c, id++, seeder.next_u64()));
    }
    for (int i = 0; i < spec_.test_per_class; ++i) {
      ds.test.push_back(make_video(c, id++, seeder.next_u64()));
    }
  }
  return ds;
}

}  // namespace duo::video
