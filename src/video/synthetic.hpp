#pragma once

// Synthetic class-conditional video generation, substituting for UCF101 and
// HMDB51 (DESIGN.md §2). Each class defines a procedural "action": a textured
// moving pattern with class-specific spatial frequency, color mixing,
// velocity, and a short class-specific "event window" — a burst of frames
// where a discriminative flash pattern appears. Videos of the same class
// share these parameters up to small per-video jitter plus pixel noise, so:
//
//  * same-class videos cluster in any reasonable feature space (retrieval
//    works, mAP is meaningfully high for trained extractors), and
//  * the event-window frames carry more class evidence than others, which
//    reproduces the paper's "key frames" phenomenon that SparseTransfer's
//    frame search exploits.

#include <cstdint>
#include <string>
#include <vector>

#include "video/video.hpp"

namespace duo::video {

struct DatasetSpec {
  std::string name;
  int num_classes = 16;
  int train_per_class = 8;
  int test_per_class = 4;
  VideoGeometry geometry;
  std::uint64_t seed = 1;

  int train_size() const noexcept { return num_classes * train_per_class; }
  int test_size() const noexcept { return num_classes * test_per_class; }

  // Miniature analogue of UCF101 (101 classes / 9,324 train / 3,996 test at
  // paper scale; the miniature keeps the 101:51 class ratio vs HMDB).
  static DatasetSpec ucf101_like(std::uint64_t seed = 101);
  // Miniature analogue of HMDB51 (51 classes / 4,900 train / 2,100 test).
  static DatasetSpec hmdb51_like(std::uint64_t seed = 51);
  // Paper-scale variants (slow; used when DUO_BENCH_SCALE=full).
  static DatasetSpec ucf101_full(std::uint64_t seed = 101);
  static DatasetSpec hmdb51_full(std::uint64_t seed = 51);
};

struct Dataset {
  DatasetSpec spec;
  std::vector<Video> train;
  std::vector<Video> test;
};

// Per-class procedural action parameters (exposed for tests).
struct ClassPattern {
  float freq_x = 1.0f;
  float freq_y = 1.0f;
  float phase = 0.0f;
  float velocity_x = 0.0f;  // pixels per frame
  float velocity_y = 0.0f;
  float color_mix[3] = {1.0f, 1.0f, 1.0f};
  int event_start = 0;   // first frame of the discriminative event window
  int event_length = 4;  // number of event frames
  float event_freq = 4.0f;
};

class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(DatasetSpec spec);

  // Deterministic: the same spec always produces the same dataset.
  Dataset generate() const;

  // Generate one video of a given class with an instance seed.
  Video make_video(int label, std::int64_t id, std::uint64_t instance_seed) const;

  const ClassPattern& pattern(int label) const {
    return patterns_.at(static_cast<std::size_t>(label));
  }

 private:
  DatasetSpec spec_;
  std::vector<ClassPattern> patterns_;
};

}  // namespace duo::video
