#include "video/video.hpp"

namespace duo::video {

Video::Video(VideoGeometry geometry, int label, std::int64_t id)
    : data_(geometry.tensor_shape()), geometry_(geometry), label_(label), id_(id) {}

Video::Video(Tensor data, VideoGeometry geometry, int label, std::int64_t id)
    : data_(std::move(data)), geometry_(geometry), label_(label), id_(id) {
  DUO_CHECK_MSG(data_.shape() == geometry_.tensor_shape(),
                "Video: data shape does not match geometry");
}

Tensor Video::to_model_input() const {
  const auto& g = geometry_;
  Tensor out({g.channels, g.frames, g.height, g.width});
  constexpr float kInv255 = 1.0f / 255.0f;
  for (std::int64_t n = 0; n < g.frames; ++n) {
    for (std::int64_t y = 0; y < g.height; ++y) {
      for (std::int64_t x = 0; x < g.width; ++x) {
        for (std::int64_t c = 0; c < g.channels; ++c) {
          out.at(c, n, y, x) = data_.at(n, y, x, c) * kInv255;
        }
      }
    }
  }
  return out;
}

Tensor Video::from_model_space(const Tensor& model_tensor,
                               const VideoGeometry& g, bool scale_to_pixels) {
  DUO_CHECK_MSG(model_tensor.shape() ==
                    Tensor::Shape({g.channels, g.frames, g.height, g.width}),
                "from_model_space: shape mismatch");
  Tensor out(g.tensor_shape());
  const float scale = scale_to_pixels ? 255.0f : 1.0f;
  for (std::int64_t n = 0; n < g.frames; ++n) {
    for (std::int64_t y = 0; y < g.height; ++y) {
      for (std::int64_t x = 0; x < g.width; ++x) {
        for (std::int64_t c = 0; c < g.channels; ++c) {
          out.at(n, y, x, c) = model_tensor.at(c, n, y, x) * scale;
        }
      }
    }
  }
  return out;
}

}  // namespace duo::video
