#pragma once

// Video representation. Following the paper's notation, a video is
// v ∈ R^{N×W×H×C}: N frames of W×H pixels with C channels, pixel values in
// [0, 255]. Storage is row-major [N, H, W, C] (frames of H rows of W pixels).
//
// Models consume the layout [C, T, H, W] scaled to [0, 1]; conversions are
// exact inverses of each other so attack perturbations computed in model
// space map back to pixel space losslessly (up to float rounding).

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace duo::video {

struct VideoGeometry {
  std::int64_t frames = 16;   // N
  std::int64_t width = 32;    // W
  std::int64_t height = 32;   // H
  std::int64_t channels = 3;  // C

  std::int64_t pixels_per_frame() const noexcept { return width * height; }
  std::int64_t elements_per_frame() const noexcept {
    return width * height * channels;
  }
  std::int64_t total_elements() const noexcept {
    return frames * elements_per_frame();
  }
  Tensor::Shape tensor_shape() const {
    return {frames, height, width, channels};
  }
  bool operator==(const VideoGeometry&) const = default;

  // Paper-scale geometry (UCF101: 16×112×112×3 → 602,112 elements).
  static VideoGeometry paper_scale() { return {16, 112, 112, 3}; }
};

class Video {
 public:
  Video() = default;
  Video(VideoGeometry geometry, int label, std::int64_t id);
  Video(Tensor data, VideoGeometry geometry, int label, std::int64_t id);

  const VideoGeometry& geometry() const noexcept { return geometry_; }
  int label() const noexcept { return label_; }
  std::int64_t id() const noexcept { return id_; }

  Tensor& data() noexcept { return data_; }
  const Tensor& data() const noexcept { return data_; }

  float pixel(std::int64_t frame, std::int64_t y, std::int64_t x,
              std::int64_t c) const {
    return data_.at(frame, y, x, c);
  }
  float& pixel(std::int64_t frame, std::int64_t y, std::int64_t x,
               std::int64_t c) {
    return data_.at(frame, y, x, c);
  }

  // Clamp all pixels to the valid [0, 255] range.
  void clamp_valid() noexcept { data_.clamp_(0.0f, 255.0f); }

  // Model-space conversion: [N,H,W,C]·[0,255] → [C,N,H,W]·[0,1].
  Tensor to_model_input() const;

  // Inverse of to_model_input (for gradients: maps model-space tensors back
  // to pixel layout; scale_to_pixels=true multiplies by 255).
  static Tensor from_model_space(const Tensor& model_tensor,
                                 const VideoGeometry& geometry,
                                 bool scale_to_pixels);

 private:
  Tensor data_;  // [N, H, W, C], values in [0, 255]
  VideoGeometry geometry_;
  int label_ = -1;
  std::int64_t id_ = -1;
};

}  // namespace duo::video
