#pragma once

// Shared test fixture: a tiny synthetic world (dataset + trained victim
// retrieval system + trained surrogate) built once per test binary. Keeping
// it a lazy singleton makes the attack tests fast while still exercising the
// full pipeline against a *trained* victim.

#include <memory>
#include <vector>

#include "attack/surrogate.hpp"
#include "models/feature_extractor.hpp"
#include "nn/losses.hpp"
#include "retrieval/system.hpp"
#include "retrieval/trainer.hpp"
#include "video/synthetic.hpp"

namespace duo::testing {

struct TinyWorld {
  video::DatasetSpec spec;
  video::Dataset dataset;
  std::unique_ptr<retrieval::RetrievalSystem> victim;
  std::unique_ptr<models::FeatureExtractor> surrogate;
  std::unique_ptr<attack::VideoStore> store;

  static const TinyWorld& instance() {
    static TinyWorld world = build();
    return world;
  }

  // Non-const access for tests that need to mutate the victim (the retrieval
  // index itself is immutable; extractor caches are per-call state).
  static TinyWorld& mutable_instance() {
    return const_cast<TinyWorld&>(instance());
  }

 private:
  static TinyWorld build() {
    TinyWorld w;
    w.spec = video::DatasetSpec::hmdb51_like(77);
    w.spec.num_classes = 5;
    w.spec.train_per_class = 6;
    w.spec.test_per_class = 2;
    w.spec.geometry = {8, 16, 16, 3};
    w.dataset = video::SyntheticGenerator(w.spec).generate();

    // Victim: trained TPN + ArcFace.
    Rng vrng(101);
    auto extractor = models::make_extractor(models::ModelKind::kTPN,
                                            w.spec.geometry, 16, vrng);
    nn::ArcFaceLoss loss(16, w.spec.num_classes, vrng);
    retrieval::TrainerConfig tcfg;
    tcfg.epochs = 4;
    tcfg.batch_size = 10;
    tcfg.learning_rate = 3e-3f;
    retrieval::train_extractor(*extractor, loss, w.dataset.train, tcfg);
    w.victim =
        std::make_unique<retrieval::RetrievalSystem>(std::move(extractor), 2);
    w.victim->add_all(w.dataset.train);

    // Attacker-side store: gallery videos are publicly fetchable.
    w.store = std::make_unique<attack::VideoStore>(w.dataset.train);

    // Surrogate: C3D trained on query-harvested triplets.
    Rng srng(202);
    w.surrogate = models::make_extractor(models::ModelKind::kC3D,
                                         w.spec.geometry, 16, srng);
    retrieval::BlackBoxHandle handle(*w.victim);
    attack::SurrogateHarvestConfig hcfg;
    hcfg.m = 8;
    hcfg.rounds = 2;
    hcfg.target_video_count = 20;
    hcfg.target_triplets = 150;  // keep the fixture light
    const auto harvested = attack::harvest_surrogate_dataset(
        handle, *w.store, {w.dataset.train[0].id(), w.dataset.train[7].id()},
        hcfg);
    attack::SurrogateTrainConfig scfg;
    scfg.epochs = 3;
    scfg.triplets_per_epoch = 40;
    attack::train_surrogate(*w.surrogate, harvested, *w.store, scfg);
    return w;
  }
};

}  // namespace duo::testing
