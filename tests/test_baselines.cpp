#include <gtest/gtest.h>

#include "baselines/heu.hpp"
#include "baselines/timi.hpp"
#include "baselines/vanilla.hpp"
#include "fixtures.hpp"
#include "metrics/metrics.hpp"

namespace duo::baselines {
namespace {

using duo::testing::TinyWorld;

TEST(RandomSupport, RespectsBudgets) {
  video::VideoGeometry g{8, 16, 16, 3};
  Rng rng(1);
  const attack::Perturbation p = random_support(g, 120, 3, rng);
  EXPECT_EQ(p.selected_pixels(), 120);
  EXPECT_EQ(p.selected_frames(), 3);
  // Pixels all live inside selected frames.
  const Tensor combined_mask = p.pixel_mask() * p.frame_mask();
  EXPECT_EQ(combined_mask.norm_l0(), 120);
}

TEST(RandomSupport, DifferentSeedsDiffer) {
  video::VideoGeometry g{8, 16, 16, 3};
  Rng r1(1), r2(2);
  const auto a = random_support(g, 50, 2, r1);
  const auto b = random_support(g, 50, 2, r2);
  EXPECT_FALSE(a.pixel_mask().allclose(b.pixel_mask()));
}

TEST(Vanilla, ProducesSparseBoundedPerturbation) {
  auto& w = TinyWorld::mutable_instance();
  VanillaConfig cfg;
  cfg.k = 150;
  cfg.n = 3;
  cfg.query.iter_numQ = 30;
  cfg.query.tau = 20.0f;
  cfg.query.m = 8;
  VanillaAttack attack(cfg);
  EXPECT_EQ(attack.name(), "Vanilla");

  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome =
      attack.run(w.dataset.train[0], w.dataset.train[12], handle);

  EXPECT_LE(metrics::sparsity(outcome.perturbation), cfg.k);
  EXPECT_LE(outcome.perturbation.norm_linf(), cfg.query.tau + 0.5f);
  EXPECT_GT(outcome.queries, 0);
  EXPECT_EQ(outcome.queries, handle.query_count());
}

TEST(Timi, PerturbsDenselyUpToTau) {
  auto& w = TinyWorld::mutable_instance();
  TimiConfig cfg;
  cfg.iterations = 5;
  cfg.tau = 10.0f;
  TimiAttack attack(*w.surrogate, cfg);
  EXPECT_EQ(attack.name(), "TIMI-C3D");

  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome =
      attack.run(w.dataset.train[1], w.dataset.train[13], handle);

  // Dense: the vast majority of elements are perturbed (Table II: Spa ≈
  // the full tensor for TIMI).
  const auto total = w.spec.geometry.total_elements();
  EXPECT_GT(metrics::sparsity(outcome.perturbation), total / 2);
  EXPECT_LE(outcome.perturbation.norm_linf(), cfg.tau + 0.5f);
  // Transfer-only: no black-box queries.
  EXPECT_EQ(outcome.queries, 0);
  EXPECT_EQ(handle.query_count(), 0);
}

TEST(Timi, MovesTowardTargetOnSurrogate) {
  auto& w = TinyWorld::mutable_instance();
  TimiConfig cfg;
  cfg.iterations = 8;
  cfg.tau = 10.0f;
  TimiAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto& v = w.dataset.train[2];
  const auto& vt = w.dataset.train[14];
  const auto outcome = attack.run(v, vt, handle);

  const Tensor ft = w.surrogate->extract(vt);
  const double before = (w.surrogate->extract(v) - ft).norm_l2();
  const double after = (w.surrogate->extract(outcome.adversarial) - ft).norm_l2();
  EXPECT_LT(after, before);
}

TEST(SaliencySupport, SelectsRequestedBudgets) {
  auto& w = TinyWorld::mutable_instance();
  const auto p = saliency_support(w.dataset.train[0], 100, 3);
  EXPECT_EQ(p.selected_pixels(), 100);
  EXPECT_EQ(p.selected_frames(), 3);
}

TEST(SaliencySupport, PrefersHighMotionFrames) {
  // Build a video with one frame that differs drastically from neighbors;
  // motion-based key-frame selection must include it.
  video::VideoGeometry g{8, 8, 8, 3};
  video::Video v(g, 0, 0);
  v.data().fill(100.0f);
  const std::int64_t fe = g.elements_per_frame();
  for (std::int64_t e = 0; e < fe; ++e) v.data()[5 * fe + e] = 250.0f;

  const auto p = saliency_support(v, 50, 2);
  const auto frames = p.selected_frame_indices();
  // Frame 5 and/or its successor 6 carry the motion spike.
  const bool has_spike =
      std::find(frames.begin(), frames.end(), 5) != frames.end() ||
      std::find(frames.begin(), frames.end(), 6) != frames.end();
  EXPECT_TRUE(has_spike);
}

TEST(HeuNes, RunsAndRespectsBudgets) {
  auto& w = TinyWorld::mutable_instance();
  HeuConfig cfg;
  cfg.k = 120;
  cfg.n = 3;
  cfg.tau = 20.0f;
  cfg.nes_iterations = 3;
  cfg.nes_population = 3;
  cfg.m = 8;
  HeuAttack attack(HeuStrategy::kNatureEstimated, cfg);
  EXPECT_EQ(attack.name(), "HEU-Nes");

  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome =
      attack.run(w.dataset.train[3], w.dataset.train[16], handle);
  EXPECT_LE(metrics::sparsity(outcome.perturbation), cfg.k);
  EXPECT_LE(outcome.perturbation.norm_linf(), cfg.tau + 0.5f);
  // NES spends 2·population queries per iteration plus bookkeeping.
  EXPECT_GE(outcome.queries,
            static_cast<std::int64_t>(cfg.nes_iterations) * 2 * cfg.nes_population);
}

TEST(HeuSim, UsesRandomStrategy) {
  auto& w = TinyWorld::mutable_instance();
  HeuConfig cfg;
  cfg.k = 120;
  cfg.n = 3;
  cfg.nes_iterations = 2;
  cfg.nes_population = 2;
  cfg.m = 8;
  HeuAttack attack(HeuStrategy::kRandom, cfg);
  EXPECT_EQ(attack.name(), "HEU-Sim");

  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome =
      attack.run(w.dataset.train[4], w.dataset.train[18], handle);
  EXPECT_LE(metrics::sparsity(outcome.perturbation), cfg.k);
}

TEST(HeuNes, THistoryRecorded) {
  auto& w = TinyWorld::mutable_instance();
  HeuConfig cfg;
  cfg.nes_iterations = 3;
  cfg.nes_population = 2;
  cfg.m = 8;
  HeuAttack attack(HeuStrategy::kNatureEstimated, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome =
      attack.run(w.dataset.train[5], w.dataset.train[20], handle);
  EXPECT_EQ(outcome.t_history.size(),
            static_cast<std::size_t>(cfg.nes_iterations) + 1);
}

}  // namespace
}  // namespace duo::baselines
