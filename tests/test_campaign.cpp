// Campaign subsystem tests: manifest round-trip, mixed-traffic ledger
// reconciliation, the ISSUE kill-and-resume acceptance campaign, thread-count
// determinism, and duo-session equivalence against a direct DuoAttack run.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "attack/duo.hpp"
#include "campaign/fairness.hpp"
#include "campaign/manifest.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "common/thread_pool.hpp"
#include "fixtures.hpp"
#include "models/serialization.hpp"
#include "retrieval/system.hpp"

namespace duo {
namespace {

using campaign::CampaignManifest;
using campaign::CampaignOutcome;
using campaign::CampaignRunner;
using campaign::SessionRole;
using campaign::SessionSpec;

template <typename Fn>
auto with_compute_threads(std::size_t threads, Fn&& fn) {
  ThreadPool pool(threads);
  struct Restore {
    ~Restore() { set_compute_pool(nullptr); }
  } restore;
  set_compute_pool(&pool);
  return fn();
}

// Fresh per-test scratch directory for campaign checkpoints.
std::string scratch_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "duo_campaign_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

const std::vector<video::Video>& roster() {
  return testing::TinyWorld::instance().dataset.test;
}

SessionSpec benign_spec(const std::string& id, std::uint64_t seed, int queries,
                        double think_ms = 0.0) {
  SessionSpec s;
  s.client_id = id;
  s.role = SessionRole::kBenign;
  s.seed = seed;
  s.m = 6;
  s.queries = queries;
  s.think_ms = think_ms;
  return s;
}

SessionSpec sparse_spec(const std::string& id, std::uint64_t seed,
                        int iterations, std::int64_t source,
                        std::int64_t target) {
  SessionSpec s;
  s.client_id = id;
  s.role = SessionRole::kSparse;
  s.seed = seed;
  s.m = 8;
  s.iterations = iterations;
  s.support_k = 60;
  s.support_n = 3;
  s.source_index = source;
  s.target_index = target;
  return s;
}

SessionSpec duo_spec(const std::string& id, std::uint64_t seed, int iterations,
                     int rounds, std::int64_t source, std::int64_t target) {
  SessionSpec s;
  s.client_id = id;
  s.role = SessionRole::kDuo;
  s.seed = seed;
  s.m = 8;
  s.iterations = iterations;
  s.rounds = rounds;
  s.support_k = 60;
  s.support_n = 2;
  s.source_index = source;
  s.target_index = target;
  return s;
}

// Shared retry shape for served campaigns: no circuit breaker (a fatal kill
// is detected by retry exhaustion, which checkpoints deterministically) and
// enough attempts that 5% transient faults never exhaust the budget.
void harden_policies(CampaignManifest& m) {
  m.max_attempts = 8;
  m.circuit_threshold = 0;
  m.query_timeout_ms = 5000.0;
  m.submit_deadline_ms = 5000.0;
}

void expect_same_outcomes(const CampaignOutcome& a, const CampaignOutcome& b,
                          const char* what) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size()) << what;
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const auto& sa = a.sessions[i];
    const auto& sb = b.sessions[i];
    EXPECT_EQ(sa.client_id, sb.client_id) << what;
    EXPECT_TRUE(sa.completed) << what << ": " << sa.client_id << " "
                              << sa.error;
    EXPECT_TRUE(sb.completed) << what << ": " << sb.client_id << " "
                              << sb.error;
    EXPECT_EQ(sa.outcome_hash, sb.outcome_hash)
        << what << ": " << sa.client_id;
    EXPECT_EQ(sa.final_t, sb.final_t) << what << ": " << sa.client_id;
    if (sa.t_history.size() != sb.t_history.size()) {
      std::ostringstream dbg;
      dbg << "a:";
      for (double t : sa.t_history) dbg << " " << t;
      dbg << "\nb:";
      for (double t : sb.t_history) dbg << " " << t;
      ADD_FAILURE() << what << ": " << sa.client_id << "\n" << dbg.str();
      continue;
    }
    ASSERT_EQ(sa.t_history.size(), sb.t_history.size())
        << what << ": " << sa.client_id;
    for (std::size_t j = 0; j < sa.t_history.size(); ++j) {
      EXPECT_EQ(sa.t_history[j], sb.t_history[j])
          << what << ": " << sa.client_id << " iter " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

CampaignManifest full_manifest() {
  CampaignManifest m;
  m.name = "roundtrip";
  m.seed = 99;
  m.virtual_clock = false;
  m.max_batch = 5;
  m.queue_capacity = 33;
  m.admission = serve::AdmissionPolicy::kShed;
  m.admission_threshold = 0.75;
  m.reject_retry_after_ms = 7.25;
  m.client_rate = 123.5;
  m.client_burst = 3.0;
  m.batch_timeout_ms = 1.75;
  m.degrade_high = 0.875;
  m.degrade_low = 0.375;
  m.fault_error_prob = 0.05;
  m.fault_delay_prob = 0.125;
  m.fault_drop_prob = 0.0625;
  m.fault_delay_ms = 2.5;
  m.fault_error_from = 42;
  m.fault_seed = 17;
  m.pacer_rate = 456.125;
  m.pacer_burst = 6.0;
  m.pacer_aimd = true;
  m.aimd_increase = 2.5;
  m.aimd_decrease = 0.625;
  m.aimd_floor = 0.25;
  m.aimd_ceiling = 5000.0;
  m.max_attempts = 11;
  m.query_timeout_ms = 321.5;
  m.submit_deadline_ms = 222.25;
  m.circuit_threshold = 4;
  m.circuit_cooldown_ms = 55.5;
  m.checkpoint_dir = "ck/dir";
  campaign::CrashEvent first_crash;
  first_crash.at_ms = 40.0;
  first_crash.restart_after_ms = 5.0;
  campaign::CrashEvent second_crash;
  second_crash.at_ms = 90.5;
  second_crash.restart_after_ms = 2.25;
  m.crashes = {first_crash, second_crash};

  SessionSpec b = benign_spec("reader-0", 5, 12, 3.5);
  b.ttl_ms = 250.0;
  b.checkpoint = "custom/reader.ck";
  SessionSpec sp = sparse_spec("attacker-0", 7, 9, 2, 4);
  SessionSpec du = duo_spec("attacker-1", 8, 6, 2, 1, 3);
  m.sessions = {b, sp, du};
  return m;
}

TEST(Manifest, RoundTripsThroughStream) {
  const CampaignManifest m = full_manifest();
  std::stringstream ss;
  campaign::write_manifest(ss, m);

  CampaignManifest parsed;
  ASSERT_TRUE(campaign::parse_manifest(ss, parsed)) << ss.str();
  EXPECT_TRUE(parsed == m) << ss.str();
}

TEST(Manifest, RoundTripsThroughFile) {
  const CampaignManifest m = full_manifest();
  const std::string path = ::testing::TempDir() + "duo_campaign_manifest.txt";
  ASSERT_TRUE(campaign::save_manifest(m, path));
  CampaignManifest loaded;
  ASSERT_TRUE(campaign::load_manifest(loaded, path));
  EXPECT_TRUE(loaded == m);
  std::remove(path.c_str());
}

TEST(Manifest, RejectsUnknownKeysAndBadRoles) {
  CampaignManifest out;
  out.name = "untouched";

  std::stringstream bad_global("campaign x\nbogus_knob 3\n");
  EXPECT_FALSE(campaign::parse_manifest(bad_global, out));

  std::stringstream bad_session("session a\nrole sparse\nbogus_knob 1\n");
  EXPECT_FALSE(campaign::parse_manifest(bad_session, out));

  std::stringstream bad_role("session a\nrole wizard\n");
  EXPECT_FALSE(campaign::parse_manifest(bad_role, out));

  // A failed parse is all-or-nothing: the output manifest is untouched.
  EXPECT_EQ(out.name, "untouched");
  EXPECT_TRUE(out.sessions.empty());
}

TEST(Manifest, ParsesCommentsAndBlankLines) {
  std::stringstream in(
      "# a campaign\r\n"
      "campaign tiny\n"
      "\n"
      "seed 3\n"
      "session reader\n"
      "# per-session\n"
      "role benign\n"
      "queries 4\n");
  CampaignManifest m;
  ASSERT_TRUE(campaign::parse_manifest(in, m));
  EXPECT_EQ(m.name, "tiny");
  EXPECT_EQ(m.seed, 3u);
  ASSERT_EQ(m.sessions.size(), 1u);
  EXPECT_EQ(m.sessions[0].client_id, "reader");
  EXPECT_EQ(m.sessions[0].role, SessionRole::kBenign);
  EXPECT_EQ(m.sessions[0].queries, 4);
}

// ---------------------------------------------------------------------------
// Fairness ledger
// ---------------------------------------------------------------------------

TEST(Fairness, JainIndex) {
  EXPECT_DOUBLE_EQ(campaign::jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(campaign::jain_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(campaign::jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(campaign::jain_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(Fairness, SummarizeDetectsLedgerMismatch) {
  serve::ServerStats stats;
  serve::ClientStats a;
  a.served = 4;
  a.faulted = 1;
  serve::ClientStats b;
  b.served = 2;
  b.throttled = 3;
  stats.per_client = {{"a", a}, {"b", b}};
  stats.queries_served = 6;
  stats.faults_injected = 1;
  stats.requests_throttled = 3;

  campaign::FairnessSummary ok = campaign::summarize_fairness(stats);
  EXPECT_TRUE(ok.ledger_ok);
  EXPECT_EQ(ok.clients, 2);
  EXPECT_EQ(ok.billed_total, 7);
  EXPECT_EQ(ok.most_served_client, "a");
  EXPECT_EQ(ok.least_served_client, "b");
  EXPECT_GT(ok.jain_served, 0.0);
  EXPECT_LE(ok.jain_served, 1.0);

  // Losing a served request from the global counter breaks reconciliation.
  stats.queries_served = 5;
  EXPECT_FALSE(campaign::summarize_fairness(stats).ledger_ok);
}

// ---------------------------------------------------------------------------
// Runner validation
// ---------------------------------------------------------------------------

TEST(Campaign, RejectsUnrunnableManifests) {
  auto& world = testing::TinyWorld::mutable_instance();
  CampaignManifest empty;
  EXPECT_THROW(CampaignRunner(*world.victim, roster(), empty),
               std::invalid_argument);

  CampaignManifest no_roster;
  no_roster.sessions = {benign_spec("r", 1, 2)};
  const std::vector<video::Video> none;
  EXPECT_THROW(CampaignRunner(*world.victim, none, no_roster),
               std::invalid_argument);

  CampaignManifest bad_index;
  bad_index.sessions = {
      sparse_spec("a", 1, 2, 0, static_cast<std::int64_t>(roster().size()))};
  EXPECT_THROW(CampaignRunner(*world.victim, roster(), bad_index),
               std::invalid_argument);

  CampaignManifest duo_no_surrogate;
  duo_no_surrogate.sessions = {duo_spec("d", 1, 2, 1, 0, 1)};
  EXPECT_THROW(CampaignRunner(*world.victim, roster(), duo_no_surrogate),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mixed traffic: ledger + fairness + determinism across reruns
// ---------------------------------------------------------------------------

CampaignManifest mixed_manifest() {
  CampaignManifest m;
  m.name = "mixed";
  m.seed = 21;
  harden_policies(m);
  m.client_rate = 500.0;  // per-client throttling is in play
  m.client_burst = 2.0;
  m.fault_error_prob = 0.05;  // transient faults absorbed by retries
  m.fault_seed = 9;
  m.pacer_rate = 4000.0;  // shared "one API key" pacer
  m.pacer_burst = 4.0;
  m.sessions = {
      sparse_spec("attacker-0", 31, 6, 0, 3),
      sparse_spec("attacker-1", 32, 6, 2, 5),
      benign_spec("reader-0", 41, 6, 2.0),
      benign_spec("reader-1", 42, 6),
      benign_spec("reader-2", 43, 6, 1.0),
      benign_spec("reader-3", 44, 6),
  };
  return m;
}

TEST(Campaign, MixedTrafficLedgerReconciles) {
  auto& world = testing::TinyWorld::mutable_instance();
  const CampaignManifest m = mixed_manifest();

  CampaignOutcome out = CampaignRunner(*world.victim, roster(), m).run();
  EXPECT_TRUE(out.all_completed());
  EXPECT_TRUE(out.ledger_ok);
  EXPECT_EQ(out.client_billed, out.server_billed);
  EXPECT_TRUE(out.fairness.ledger_ok);
  EXPECT_EQ(out.fairness.clients,
            static_cast<std::int64_t>(m.sessions.size()));
  EXPECT_GT(out.fairness.jain_served, 0.0);
  EXPECT_LE(out.fairness.jain_served, 1.0 + 1e-12);
  EXPECT_GT(out.pacer_granted, 0);
  for (const auto& spec : m.sessions) {
    ASSERT_EQ(out.server.per_client.count(spec.client_id), 1u)
        << spec.client_id;
  }
  for (const auto& s : out.sessions) {
    EXPECT_GT(s.queries_billed, 0) << s.client_id;
    EXPECT_NE(s.outcome_hash, 0u) << s.client_id;
  }

  // The report renders from any outcome without touching the server again.
  std::ostringstream report;
  campaign::print_report(report, out);
  EXPECT_NE(report.str().find("reconciled"), std::string::npos)
      << report.str();

  // Outcomes are bitwise stable across reruns even though throttle/fault
  // attribution depends on scheduling.
  CampaignOutcome again = CampaignRunner(*world.victim, roster(), m).run();
  EXPECT_TRUE(again.ledger_ok);
  expect_same_outcomes(out, again, "rerun");
}

// ---------------------------------------------------------------------------
// Kill-and-resume acceptance campaign (ISSUE 8):
// 4 attack sessions + 8 benign streams under per-client rate limiting and 5%
// injected faults; killed mid-run via fault_error_from, resumed healthy, and
// required to match an uninterrupted reference bitwise per session.
// ---------------------------------------------------------------------------

CampaignManifest acceptance_manifest() {
  CampaignManifest m;
  m.name = "acceptance";
  m.seed = 77;
  harden_policies(m);
  m.client_rate = 500.0;
  m.client_burst = 2.0;
  m.fault_error_prob = 0.05;
  m.fault_seed = 13;
  m.sessions = {
      sparse_spec("attacker-0", 301, 8, 0, 4),
      sparse_spec("attacker-1", 302, 8, 1, 5),
      sparse_spec("attacker-2", 303, 8, 2, 6),
      duo_spec("attacker-3", 304, 6, 1, 3, 7),
  };
  for (int i = 0; i < 8; ++i) {
    m.sessions.push_back(benign_spec("reader-" + std::to_string(i),
                                     400 + static_cast<std::uint64_t>(i), 6,
                                     i % 2 == 0 ? 2.0 : 0.0));
  }
  return m;
}

TEST(Campaign, KillAndResumeMatchesUninterrupted) {
  auto& world = testing::TinyWorld::mutable_instance();
  const CampaignManifest healthy = acceptance_manifest();

  // Reference: the uninterrupted campaign (no checkpointing involved).
  CampaignOutcome reference =
      CampaignRunner(*world.victim, roster(), healthy, world.surrogate.get())
          .run();
  ASSERT_TRUE(reference.all_completed());
  EXPECT_TRUE(reference.ledger_ok);

  // Kill: from arrival 45 every request fails transiently forever, so every
  // session exhausts its retry budget and dies with a checkpoint on disk.
  const std::string dir = scratch_dir("acceptance");
  CampaignManifest killed_manifest = healthy;
  killed_manifest.checkpoint_dir = dir;
  killed_manifest.fault_error_from = 45;
  CampaignOutcome killed = CampaignRunner(*world.victim, roster(),
                                          killed_manifest,
                                          world.surrogate.get())
                               .run();
  EXPECT_FALSE(killed.all_completed());
  // Even a dying campaign keeps its books: every accepted submission is
  // accounted as served/faulted/expired/shed on both sides.
  EXPECT_TRUE(killed.ledger_ok);

  // Resume: the same manifest against a healthy victim picks every session
  // up from its checkpoint and must land bitwise on the reference outcomes.
  CampaignManifest resumed_manifest = killed_manifest;
  resumed_manifest.fault_error_from = -1;
  CampaignOutcome resumed = CampaignRunner(*world.victim, roster(),
                                           resumed_manifest,
                                           world.surrogate.get())
                                .run();
  EXPECT_TRUE(resumed.ledger_ok);
  expect_same_outcomes(reference, resumed, "kill/resume");

  // Cumulative reported spend covers both processes; this run's billing
  // alone does not (some progress was restored, not re-bought) for at least
  // the sessions that had advanced before the kill.
  std::int64_t restored = 0;
  for (std::size_t i = 0; i < resumed.sessions.size(); ++i) {
    EXPECT_GE(resumed.sessions[i].queries_reported,
              resumed.sessions[i].queries_billed)
        << resumed.sessions[i].client_id;
    restored += resumed.sessions[i].queries_reported -
                resumed.sessions[i].queries_billed;
  }
  EXPECT_GT(restored, 0);

  // Clean completion removed every per-session checkpoint.
  for (const auto& spec : resumed_manifest.sessions) {
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/" + spec.client_id + ".ck"))
        << spec.client_id;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Crash/restart acceptance campaign (ISSUE 10): sparse + duo + benign traffic
// with two abrupt mid-run crash/restart cycles, snapshot round-tripped
// through durable files, required to match the crash-free campaign bitwise
// with the billing ledger reconciled globally and per client.
// ---------------------------------------------------------------------------

TEST(Campaign, CrashRestartCyclesMatchCrashFreeBitwise) {
  auto& world = testing::TinyWorld::mutable_instance();
  CampaignManifest m;
  m.name = "crashy";
  m.seed = 88;
  harden_policies(m);
  m.client_rate = 500.0;  // token-bucket levels must survive the restarts
  m.client_burst = 2.0;
  m.sessions = {
      sparse_spec("attacker-0", 311, 6, 0, 4),
      duo_spec("attacker-1", 312, 5, 1, 2, 6),
      // Think-time readers keep the campaign clock moving so the crash
      // schedule is reached while the attack sessions are still in flight.
      benign_spec("reader-0", 411, 10, 3.0),
      benign_spec("reader-1", 412, 10, 2.0),
  };

  CampaignOutcome reference =
      CampaignRunner(*world.victim, roster(), m, world.surrogate.get()).run();
  ASSERT_TRUE(reference.all_completed());
  EXPECT_TRUE(reference.ledger_ok);
  EXPECT_EQ(reference.crashes_survived, 0);
  EXPECT_EQ(reference.server.server_epoch, 1);

  const std::string dir = scratch_dir("crashy");
  CampaignManifest crashy = m;
  crashy.checkpoint_dir = dir;
  campaign::CrashEvent first;
  first.at_ms = 2.0;
  first.restart_after_ms = 1.0;
  campaign::CrashEvent second;
  second.at_ms = 5.0;
  second.restart_after_ms = 1.0;
  crashy.crashes = {first, second};

  CampaignOutcome crashed =
      CampaignRunner(*world.victim, roster(), crashy, world.surrogate.get())
          .run();
  EXPECT_TRUE(crashed.all_completed());
  EXPECT_EQ(crashed.crashes_survived, 2);
  EXPECT_EQ(crashed.server.crashes, 2);
  EXPECT_EQ(crashed.server.server_epoch, 3);
  // The ledger reconciles across both restarts — client vs server and per
  // client vs global, with crash casualties folded in as faulted+lost.
  EXPECT_TRUE(crashed.ledger_ok);
  EXPECT_EQ(crashed.requests_lost, crashed.server.requests_lost);
  // Every billed crash casualty was replayed by its session's reconnect
  // policy (replays also count unbilled bounces off the down server).
  EXPECT_GE(crashed.queries_replayed, crashed.requests_lost);

  // Tentpole acceptance: attack outcomes are bitwise identical to the
  // crash-free campaign — crash timing perturbs only billing schedules.
  expect_same_outcomes(reference, crashed, "crash/restart");

  // The chaos schedule round-tripped the accounting snapshot and the gallery
  // index through durable files in checkpoint_dir.
  EXPECT_TRUE(std::filesystem::exists(dir + "/server.snap"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/gallery.idx"));

  // The report surfaces the crash line.
  std::ostringstream report;
  campaign::print_report(report, crashed);
  EXPECT_NE(report.str().find("crashes: survived=2"), std::string::npos)
      << report.str();
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Determinism across compute-thread counts
// ---------------------------------------------------------------------------

TEST(Campaign, OutcomesIndependentOfComputeThreads) {
  auto& world = testing::TinyWorld::mutable_instance();
  CampaignManifest m;
  m.name = "threads";
  m.seed = 5;
  harden_policies(m);
  m.sessions = {
      sparse_spec("attacker-0", 61, 5, 0, 3),
      benign_spec("reader-0", 62, 5),
      benign_spec("reader-1", 63, 5, 1.5),
  };

  const CampaignOutcome one = with_compute_threads(1, [&] {
    return CampaignRunner(*world.victim, roster(), m).run();
  });
  const CampaignOutcome four = with_compute_threads(4, [&] {
    return CampaignRunner(*world.victim, roster(), m).run();
  });
  EXPECT_TRUE(one.ledger_ok);
  EXPECT_TRUE(four.ledger_ok);
  expect_same_outcomes(one, four, "compute threads");
}

// ---------------------------------------------------------------------------
// A campaign duo session is the same attack as a direct DuoAttack run
// ---------------------------------------------------------------------------

TEST(Campaign, DuoSessionMatchesDirectAttack) {
  auto& world = testing::TinyWorld::mutable_instance();
  const SessionSpec spec = duo_spec("attacker-duo", 501, 5, 1, 0, 3);
  CampaignManifest m;
  m.name = "duo-equiv";
  m.seed = 11;
  harden_policies(m);
  m.sessions = {spec};

  CampaignOutcome out =
      CampaignRunner(*world.victim, roster(), m, world.surrogate.get()).run();
  ASSERT_TRUE(out.all_completed()) << out.sessions[0].error;

  // Mirror of run_duo's config construction (campaign/session.cpp).
  attack::DuoConfig cfg;
  cfg.transfer.k = spec.support_k;
  cfg.transfer.n = std::min(spec.support_n, roster()[0].geometry().frames);
  cfg.transfer.outer_iterations = 1;
  cfg.transfer.theta_steps = 3;
  cfg.iter_numH = spec.rounds;
  cfg.m = spec.m;
  cfg.query.iter_numQ = spec.iterations;
  cfg.query.seed = spec.seed;
  attack::DuoAttack direct(*world.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*world.victim);
  const attack::AttackOutcome expected =
      direct.run(roster()[static_cast<std::size_t>(spec.source_index)],
                 roster()[static_cast<std::size_t>(spec.target_index)],
                 handle);

  EXPECT_EQ(out.sessions[0].outcome_hash,
            models::io::fnv1a(expected.adversarial.data()));
  ASSERT_EQ(out.sessions[0].t_history.size(), expected.t_history.size());
  for (std::size_t i = 0; i < expected.t_history.size(); ++i) {
    EXPECT_EQ(out.sessions[0].t_history[i], expected.t_history[i]) << i;
  }
  // The campaign session pipelines candidate queries: a speculative −ε
  // forward whose answer goes unused is still billed, so the session may
  // spend slightly more than the serial direct run — never less.
  EXPECT_GE(out.sessions[0].queries_reported, expected.queries);
}

}  // namespace
}  // namespace duo
