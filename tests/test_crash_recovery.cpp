// Crash/recovery tests (ISSUE 10): durable index snapshots, server
// crash/restart with a reconciled billing ledger, and client reconnect with
// bitwise-identical attack outcomes.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/objective.hpp"
#include "attack/sparse_query.hpp"
#include "baselines/vanilla.hpp"
#include "common/rng.hpp"
#include "fixtures.hpp"
#include "retrieval/index.hpp"
#include "retrieval/ivf_index.hpp"
#include "serve/admission.hpp"
#include "serve/async_handle.hpp"
#include "serve/errors.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"

namespace duo {
namespace {

using duo::testing::TinyWorld;

attack::Perturbation noisy_support(const video::Video& v, std::uint64_t seed) {
  Rng rng(seed);
  attack::Perturbation p = baselines::random_support(v.geometry(), 150, 3, rng);
  Tensor noise =
      Tensor::uniform(v.geometry().tensor_shape(), -10.0f, 10.0f, rng);
  p.magnitude() = noise * p.pixel_mask() * p.frame_mask();
  return p;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::int64_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << label << " diverges at element " << i;
  }
}

std::vector<retrieval::GalleryEntry> synthetic_entries(std::int64_t dim,
                                                       std::size_t count,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<retrieval::GalleryEntry> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    retrieval::GalleryEntry e;
    e.id = static_cast<std::int64_t>(i);
    e.label = static_cast<int>(i % 5);
    e.feature = Tensor::uniform({dim}, -1.0f, 1.0f, rng);
    entries.push_back(e);
  }
  return entries;
}

void expect_same_neighbors(const std::vector<retrieval::Neighbor>& got,
                           const std::vector<retrieval::Neighbor>& want,
                           const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " rank " << i;
    EXPECT_EQ(got[i].label, want[i].label) << label << " rank " << i;
    // Bitwise, not allclose: a loaded index must answer exactly.
    EXPECT_EQ(got[i].distance_sq, want[i].distance_sq) << label << " rank "
                                                       << i;
  }
}

TEST(CrashRecovery, FlatIndexStateRoundTripsBitwise) {
  constexpr std::int64_t kDim = 6;
  retrieval::RetrievalIndex index(kDim, 3);
  for (const auto& e : synthetic_entries(kDim, 20, 31)) index.add(e);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  index.save_state(buf);
  retrieval::RetrievalIndex loaded(kDim, 3);
  ASSERT_TRUE(loaded.load_state(buf));
  EXPECT_EQ(loaded.size(), index.size());

  Rng rng(77);
  for (int probe = 0; probe < 4; ++probe) {
    const Tensor q = Tensor::uniform({kDim}, -1.0f, 1.0f, rng);
    expect_same_neighbors(loaded.query(q, 20), index.query(q, 20),
                          "flat probe " + std::to_string(probe));
  }

  // Round-robin cursor survives the round trip: the next add lands on the
  // same shard either way, so subsequent answers keep matching.
  retrieval::GalleryEntry extra;
  extra.id = 1000;
  extra.label = 1;
  extra.feature = Tensor::uniform({kDim}, -1.0f, 1.0f, rng);
  index.add(extra);
  loaded.add(extra);
  const Tensor q = Tensor::uniform({kDim}, -1.0f, 1.0f, rng);
  expect_same_neighbors(loaded.query(q, 21), index.query(q, 21),
                        "flat post-load add");
}

TEST(CrashRecovery, IvfIndexStateRoundTripsBitwise) {
  constexpr std::int64_t kDim = 6;
  for (const bool quantize : {true, false}) {
    for (const bool trained : {true, false}) {
      const std::string label = std::string("ivf quantize=") +
                                (quantize ? "on" : "off") +
                                (trained ? " trained" : " pending");
      retrieval::IndexConfig cfg;
      cfg.kind = retrieval::IndexKind::kIvf;
      cfg.num_nodes = 2;
      cfg.num_cells = 4;
      cfg.nprobe = 4;
      cfg.quantize = quantize;
      cfg.train_after = 1 << 20;  // never auto-train; finalize() decides
      cfg.seed = 7;

      retrieval::IvfIndex index(kDim, cfg);
      for (const auto& e : synthetic_entries(kDim, 40, 41)) index.add(e);
      if (trained) index.finalize();
      ASSERT_EQ(index.trained(), trained) << label;

      std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
      index.save_state(buf);
      retrieval::IvfIndex loaded(kDim, cfg);
      ASSERT_TRUE(loaded.load_state(buf)) << label;
      EXPECT_EQ(loaded.trained(), trained) << label;
      EXPECT_EQ(loaded.size(), index.size()) << label;

      Rng rng(55);
      for (int probe = 0; probe < 4; ++probe) {
        const Tensor q = Tensor::uniform({kDim}, -1.0f, 1.0f, rng);
        expect_same_neighbors(loaded.query(q, 10), index.query(q, 10),
                              label + " probe " + std::to_string(probe));
      }

      if (!trained) {
        // A pending buffer that round-tripped must train to the identical
        // cell structure (same content, same seed → same k-means).
        index.finalize();
        loaded.finalize();
        const Tensor q = Tensor::uniform({kDim}, -1.0f, 1.0f, rng);
        expect_same_neighbors(loaded.query(q, 10), index.query(q, 10),
                              label + " post-load finalize");
      }
    }
  }
}

TEST(CrashRecovery, IndexLoadRejectsMismatchAndCorruption) {
  constexpr std::int64_t kDim = 6;
  retrieval::RetrievalIndex flat(kDim, 2);
  for (const auto& e : synthetic_entries(kDim, 12, 13)) flat.add(e);

  const std::string path = ::testing::TempDir() + "duo_crash_idx.bin";
  std::remove(path.c_str());
  EXPECT_FALSE(retrieval::load_index(flat, path));  // missing file
  ASSERT_TRUE(retrieval::save_index(flat, path));

  // Kind mismatch: a flat snapshot must not load into an IVF index.
  retrieval::IndexConfig icfg;
  icfg.kind = retrieval::IndexKind::kIvf;
  retrieval::IvfIndex ivf(kDim, icfg);
  EXPECT_FALSE(retrieval::load_index(ivf, path));
  EXPECT_EQ(ivf.size(), 0u);  // untouched on failure

  // Dim mismatch.
  retrieval::RetrievalIndex narrow(kDim - 1, 2);
  EXPECT_FALSE(retrieval::load_index(narrow, path));
  EXPECT_EQ(narrow.size(), 0u);

  // A flipped payload byte breaks the fingerprint.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  retrieval::RetrievalIndex fresh(kDim, 2);
  EXPECT_FALSE(retrieval::load_index(fresh, path));
  EXPECT_EQ(fresh.size(), 0u);
  std::remove(path.c_str());
}

// Regression for the IvfIndex move constructor (and the save/load contract):
// the live degraded bit is the serve scheduler's load response, not index
// content — a snapshot taken while degraded must come back up with the
// configured nprobe.
TEST(CrashRecovery, DegradedBitNeverLeaksIntoSnapshotsOrMoves) {
  constexpr std::int64_t kDim = 6;
  retrieval::IndexConfig cfg;
  cfg.kind = retrieval::IndexKind::kIvf;
  cfg.num_cells = 8;
  cfg.nprobe = 8;
  cfg.degraded_nprobe = 1;
  cfg.quantize = false;
  cfg.train_after = 1 << 20;
  cfg.seed = 7;
  retrieval::IvfIndex index(kDim, cfg);
  for (const auto& e : synthetic_entries(kDim, 64, 91)) index.add(e);
  index.finalize();

  Rng rng(17);
  const Tensor q = Tensor::uniform({kDim}, -1.0f, 1.0f, rng);
  const auto healthy = index.query(q, 10);

  ASSERT_TRUE(index.set_degraded(true));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  index.save_state(buf);

  retrieval::IvfIndex loaded(kDim, cfg);
  ASSERT_TRUE(loaded.load_state(buf));
  EXPECT_FALSE(loaded.degraded());
  expect_same_neighbors(loaded.query(q, 10), healthy,
                        "loaded-from-degraded answers at configured nprobe");

  retrieval::IvfIndex moved(std::move(loaded));
  EXPECT_FALSE(moved.degraded());
  expect_same_neighbors(moved.query(q, 10), healthy, "moved-from-degraded");
}

TEST(CrashRecovery, TokenBucketAndRateLimiterStateRoundTrip) {
  serve::TokenBucket bucket(2.0, 2.0);
  EXPECT_EQ(bucket.try_acquire(10.0), 0.0);
  EXPECT_EQ(bucket.try_acquire(10.0), 0.0);
  EXPECT_GT(bucket.try_acquire(10.0), 0.0);  // burst drained

  // A restored bucket makes the snapshotted bucket's decisions — even when
  // the restore target was configured completely differently (the state
  // carries rate/burst), and even though the burst was empty at snapshot
  // time (no fresh burst after recovery).
  serve::TokenBucket restored(99.0, 50.0);
  restored.restore(bucket.state());
  for (const double t : {11.0, 400.0, 600.0, 610.0, 5000.0}) {
    EXPECT_EQ(restored.try_acquire(t), bucket.try_acquire(t)) << "t=" << t;
  }

  serve::RateLimiter limiter(5.0, 2.0);
  (void)limiter.try_acquire("beta", 0.0);
  (void)limiter.try_acquire("alpha", 0.0);
  (void)limiter.try_acquire("alpha", 0.0);
  const serve::RateLimiter::State snap = limiter.snapshot();
  ASSERT_EQ(snap.buckets.size(), 2u);
  EXPECT_EQ(snap.buckets[0].first, "alpha");  // sorted, deterministic
  EXPECT_EQ(snap.buckets[1].first, "beta");

  serve::RateLimiter fresh(5.0, 2.0);
  fresh.restore(snap);
  EXPECT_EQ(fresh.clients_seen(), 2);
  for (const double t : {1.0, 150.0, 400.0, 401.0}) {
    for (const char* id : {"alpha", "beta", "gamma"}) {
      EXPECT_EQ(fresh.try_acquire(id, t), limiter.try_acquire(id, t))
          << id << " t=" << t;
    }
  }
}

serve::ServerSnapshot sample_snapshot() {
  serve::ServerSnapshot snap;
  snap.epoch = 3;
  snap.queries_served = 17;
  snap.batches = 9;
  snap.faults_injected = 4;
  snap.requests_throttled = 2;
  snap.requests_rejected = 1;
  snap.requests_shed = 1;
  snap.requests_expired = 2;
  snap.requests_lost = 3;
  snap.crashes = 2;
  snap.batch_size_counts = {0, 3, 4, 2};
  snap.occupancy_deciles = {5, 2, 1, 0, 0, 0, 0, 0, 0, 0, 1};
  snap.retry_after_buckets = {1, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  snap.latency_reservoir = {0.5, 1.25, 9.0};
  snap.latency_count = 17;
  snap.max_latency_ms = 9.0;
  snap.reservoir_rng_state = 0xABCDEF0123456789ULL;
  snap.degrade_entries = 1;
  snap.degraded_accum_ms = 12.5;
  snap.degraded_served = 6;
  serve::ServerSnapshot::ClientSlice a;
  a.id = "alpha";
  a.served = 10;
  a.faulted = 3;
  a.lost = 2;
  a.reservoir = {0.5, 1.25};
  a.latency_count = 10;
  a.max_latency_ms = 1.25;
  a.rng_state = 11;
  serve::ServerSnapshot::ClientSlice b;
  b.id = "beta";
  b.served = 7;
  b.expired = 2;
  b.shed = 1;
  b.reservoir = {9.0};
  b.latency_count = 7;
  b.max_latency_ms = 9.0;
  b.rng_state = 22;
  snap.clients = {a, b};
  snap.has_limiter = true;
  snap.limiter.rate = 5.0;
  snap.limiter.burst = 2.0;
  snap.limiter.buckets = {
      {"alpha", serve::TokenBucketState{5.0, 2.0, 0.5, 100.0, true}},
      {"beta", serve::TokenBucketState{5.0, 2.0, 2.0, 0.0, false}},
  };
  return snap;
}

TEST(CrashRecovery, ServerSnapshotFileRoundTripsAndRejectsCorruption) {
  const serve::ServerSnapshot snap = sample_snapshot();
  const std::string path = ::testing::TempDir() + "duo_crash_server.snap";
  std::remove(path.c_str());

  serve::ServerSnapshot loaded;
  EXPECT_FALSE(serve::load_snapshot(loaded, path));  // missing file
  ASSERT_TRUE(serve::save_snapshot(snap, path));
  ASSERT_TRUE(serve::load_snapshot(loaded, path));
  EXPECT_TRUE(loaded == snap);

  // Flip one payload byte: the fingerprint rejects, the output is untouched.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    bytes[bytes.size() - 5] ^= 0x01;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  serve::ServerSnapshot untouched = sample_snapshot();
  untouched.epoch = 42;  // sentinel
  EXPECT_FALSE(serve::load_snapshot(untouched, path));
  EXPECT_EQ(untouched.epoch, 42);

  // Garbage bytes.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a server snapshot";
  }
  EXPECT_FALSE(serve::load_snapshot(loaded, path));

  // Client slices out of order are structurally invalid (the snapshot
  // contract says sorted-by-id); the loader rejects rather than trusting.
  serve::ServerSnapshot unsorted = snap;
  std::swap(unsorted.clients[0], unsorted.clients[1]);
  ASSERT_TRUE(serve::save_snapshot(unsorted, path));
  EXPECT_FALSE(serve::load_snapshot(loaded, path));
  std::remove(path.c_str());
}

// The core lifecycle: crash() fails every queued request as a billed
// connection loss, submits during downtime bounce unbilled, and restart(snap)
// resumes serving with the epoch bumped and the ledger intact.
TEST(CrashRecovery, CrashFailsQueuedRequestsBilledAndRestartResumes) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[2];
  const auto ref = w.victim->retrieve(v, 8);

  serve::ServerConfig scfg;
  // Latency-aware batching keeps sub-max_batch submissions queued (a real
  // wall-time wait), so the two requests below are deterministically still
  // in the queue when crash() lands microseconds later.
  scfg.max_batch = 4;
  scfg.batch_timeout_ms = 1500.0;
  serve::RetrievalServer server(*w.victim, scfg);
  serve::RequestOptions opts;
  opts.client_id = "crash-client";

  EXPECT_THROW((void)server.snapshot(), std::logic_error);  // running
  EXPECT_THROW(server.restart(), std::logic_error);

  auto f1 = server.submit(v, 8, opts);
  auto f2 = server.submit(v, 8, opts);
  server.crash();
  EXPECT_TRUE(server.stopped());
  EXPECT_TRUE(server.crashed());
  server.crash();  // idempotent

  for (auto* f : {&f1, &f2}) {
    try {
      (void)f->get();
      FAIL() << "queued request must die with the crash";
    } catch (const serve::ServeError& e) {
      EXPECT_TRUE(e.connection_lost());
      EXPECT_TRUE(e.retryable());
      EXPECT_TRUE(e.billed());  // accepted before the crash → stays billed
      EXPECT_FALSE(e.overload());
    }
  }

  // Down, not shut down: a submit bounces with the retryable reconnect
  // error and bills nothing.
  auto f3 = server.submit(v, 8, opts);
  try {
    (void)f3.get();
    FAIL() << "submit while crashed must fail";
  } catch (const serve::ServeError& e) {
    EXPECT_TRUE(e.connection_lost());
    EXPECT_FALSE(e.billed());
  }

  serve::ServerSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.epoch, 1);
  EXPECT_EQ(snap.requests_lost, 2);
  EXPECT_EQ(snap.faults_injected, 2);
  EXPECT_EQ(snap.crashes, 1);
  ASSERT_EQ(snap.clients.size(), 1u);
  EXPECT_EQ(snap.clients[0].id, "crash-client");
  EXPECT_EQ(snap.clients[0].lost, 2);
  EXPECT_EQ(snap.clients[0].faulted, 2);

  server.restart(snap);
  EXPECT_FALSE(server.stopped());
  EXPECT_FALSE(server.crashed());
  EXPECT_EQ(server.epoch(), 2);

  auto f4 = server.submit(v, 8, opts);
  EXPECT_EQ(f4.get(), ref);  // bitwise-identical answers after recovery
  server.shutdown();

  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.server_epoch, 2);
  EXPECT_EQ(st.crashes, 1);
  EXPECT_EQ(st.queries_served, 1);
  EXPECT_EQ(st.requests_lost, 2);
  EXPECT_EQ(st.faults_injected, 2);
  // Ledger formula holds verbatim across the crash: lost ⊂ faulted.
  EXPECT_EQ(st.queries_served + st.faults_injected + st.requests_expired +
                st.requests_shed,
            3);
  const auto it = st.per_client.find("crash-client");
  ASSERT_NE(it, st.per_client.end());
  EXPECT_EQ(it->second.billed(), 3);
  EXPECT_EQ(it->second.lost, 2);

  // A snapshot with mangled histogram shapes must not restore.
  serve::ServerSnapshot bad = server.snapshot();
  bad.occupancy_deciles.resize(2);
  EXPECT_THROW(server.restart(bad), std::logic_error);
}

TEST(CrashRecovery, RestartWithoutSnapshotStartsFreshLedger) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[3];
  serve::RetrievalServer server(*w.victim);
  (void)server.submit(v, 8).get();
  server.shutdown();
  EXPECT_EQ(server.stats().queries_served, 1);

  server.restart();  // fresh process: accounting starts over, epoch moves on
  EXPECT_EQ(server.epoch(), 2);
  EXPECT_EQ(server.stats().queries_served, 0);
  (void)server.submit(v, 8).get();
  server.shutdown();
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.queries_served, 1);
  EXPECT_EQ(st.server_epoch, 2);
}

// ISSUE satellite: the server dies with a pipelined ±ε candidate pair in
// flight. The resilient client replays both across the restart; each is
// billed exactly once more, answers are bitwise identical, and the ledger
// reconciles client-side vs server-side.
TEST(CrashRecovery, PipelinedPairReplaysAcrossRestartBitwise) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v_plus = w.dataset.train[1];
  const auto& v_minus = w.dataset.train[9];
  const auto ref_plus = w.victim->retrieve(v_plus, 8);
  const auto ref_minus = w.victim->retrieve(v_minus, 8);

  serve::ServerConfig scfg;
  scfg.max_batch = 4;
  scfg.batch_timeout_ms = 1000.0;  // holds both candidates queued (see above)
  serve::RetrievalServer server(*w.victim, scfg);
  serve::RequestOptions opts;
  opts.client_id = "attacker";
  serve::AsyncBlackBoxHandle async(server, opts);
  serve::RetryPolicy policy;
  policy.query_timeout = std::chrono::milliseconds(20000);
  serve::ResilientHandle resilient(async, policy);

  auto plus = resilient.submit(v_plus, 8);
  auto minus = resilient.submit(v_minus, 8);
  server.crash();
  serve::ServerSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.requests_lost, 2);
  server.restart(snap);

  // get() classifies the connection loss, waits out the downtime (already
  // over), and resubmits — in submission order, so the ±ε replay sequence
  // matches the crash-free schedule.
  EXPECT_EQ(plus.get(), ref_plus);
  EXPECT_EQ(minus.get(), ref_minus);
  server.shutdown();

  EXPECT_EQ(resilient.connection_losses(), 2);
  EXPECT_EQ(resilient.retries(), 0);  // reconnects are not attempt-counted
  EXPECT_EQ(resilient.queries_billed(), 4);  // lost pair + replayed pair

  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.server_epoch, 2);
  EXPECT_EQ(st.queries_served, 2);
  EXPECT_EQ(st.requests_lost, 2);
  EXPECT_EQ(st.queries_served + st.faults_injected + st.requests_expired +
                st.requests_shed,
            resilient.queries_billed());
  const auto it = st.per_client.find("attacker");
  ASSERT_NE(it, st.per_client.end());
  EXPECT_EQ(it->second.billed(), 4);
  EXPECT_EQ(it->second.lost, 2);
}

// ISSUE acceptance (direct form): a pipelined sparse-query attack rides out
// two abrupt crash/restart cycles — snapshot-restored each time — and its
// trajectory and adversarial video stay bitwise identical to the crash-free
// reference, with the billing ledger reconciled exactly.
TEST(CrashRecovery, SparseAttackSurvivesCrashRestartCyclesBitwise) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle direct(*w.victim);
  const auto ctx = attack::make_objective_context(direct, v, vt, 8);
  const attack::Perturbation pert = noisy_support(v, 21);

  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 16;
  cfg.m = 8;
  const auto ref = attack::sparse_query(v, pert, direct, ctx, cfg);

  serve::RetrievalServer server(*w.victim);
  serve::AsyncBlackBoxHandle async(server);
  serve::RetryPolicy policy;
  // Generous answer timeout: crash losses surface as fast typed failures,
  // not timeouts, so the timeout only needs to cover honest (possibly
  // sanitizer-slowed) service.
  policy.query_timeout = std::chrono::milliseconds(20000);
  serve::ResilientHandle resilient(async, policy);

  // Two abrupt mid-attack crash/restart cycles from a chaos thread, each
  // restored from an accounting snapshot. If the attack outruns the chaos
  // schedule on a fast machine, the cycles hit an idle server — the bitwise
  // and ledger assertions below hold either way.
  std::thread chaos([&server] {
    for (int cycle = 0; cycle < 2; ++cycle) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      server.crash();
      serve::ServerSnapshot snap = server.snapshot();
      server.restart(snap);
    }
  });

  std::optional<attack::SparseQueryResult> got;
  try {
    got = attack::sparse_query_pipelined(v, pert, resilient, ctx, cfg);
  } catch (const std::exception& e) {
    chaos.join();
    server.shutdown();
    FAIL() << "crashes must never surface through the reconnect policy: "
           << e.what();
  }
  chaos.join();
  server.shutdown();

  EXPECT_EQ(got->t_history, ref.t_history);
  expect_bitwise_equal(got->v_adv.data(), ref.v_adv.data(), "v_adv");
  EXPECT_GE(got->queries_spent, ref.queries_spent);

  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.crashes, 2);
  EXPECT_EQ(st.server_epoch, 3);
  // Every lost request was a billed connection loss the client survived;
  // unbilled bounces during downtime are counted client-side only.
  EXPECT_GE(resilient.connection_losses(), st.requests_lost);
  // Ledger reconciliation across both restarts, global and per client.
  const std::int64_t server_billed = st.queries_served + st.faults_injected +
                                     st.requests_expired + st.requests_shed;
  EXPECT_EQ(server_billed, resilient.queries_billed());
  std::int64_t client_sum = 0;
  std::int64_t lost_sum = 0;
  for (const auto& [id, c] : st.per_client) {
    client_sum += c.billed();
    lost_sum += c.lost;
  }
  EXPECT_EQ(client_sum, server_billed);
  EXPECT_EQ(lost_sum, st.requests_lost);
}

}  // namespace
}  // namespace duo
