#include <gtest/gtest.h>

#include <cmath>

#include "defense/defense.hpp"
#include "fixtures.hpp"

namespace duo::defense {
namespace {

using duo::testing::TinyWorld;

TEST(FeatureSqueezing, BitDepthReductionQuantizes) {
  video::VideoGeometry g{2, 4, 4, 3};
  video::Video v(g, 0, 0);
  Rng rng(1);
  for (auto& x : v.data().flat()) x = std::round(rng.uniform_f(0.0f, 255.0f));

  FeatureSqueezingConfig cfg;
  cfg.bit_depth = 3;
  cfg.median_radius = 0;  // isolate the quantization
  FeatureSqueezing squeeze(cfg);
  const video::Video out = squeeze.apply(v);

  // 3 bits → 8 levels: every output value must be one of them.
  const float levels = 7.0f;
  for (std::int64_t i = 0; i < out.data().size(); ++i) {
    const float q = out.data()[i] / 255.0f * levels;
    EXPECT_NEAR(q, std::round(q), 1e-3);
  }
}

TEST(FeatureSqueezing, MedianFilterRemovesImpulseNoise) {
  video::VideoGeometry g{1, 8, 8, 1};
  video::Video v(g, 0, 0);
  v.data().fill(100.0f);
  v.data().at(0, 4, 4, 0) = 255.0f;  // isolated spike

  FeatureSqueezingConfig cfg;
  cfg.bit_depth = 8;
  cfg.median_radius = 1;
  FeatureSqueezing squeeze(cfg);
  const video::Video out = squeeze.apply(v);
  EXPECT_NEAR(out.data().at(0, 4, 4, 0), 100.0f, 3.0f);
}

TEST(Noise2Self, ReducesGaussianNoise) {
  // Build a smooth video + noise; the J-invariant denoiser must bring it
  // closer to the clean signal.
  video::VideoGeometry g{4, 12, 12, 1};
  video::Video clean(g, 0, 0);
  for (std::int64_t n = 0; n < g.frames; ++n) {
    for (std::int64_t y = 0; y < g.height; ++y) {
      for (std::int64_t x = 0; x < g.width; ++x) {
        clean.pixel(n, y, x, 0) =
            127.0f + 60.0f * std::sin(0.4f * static_cast<float>(x + y + n));
      }
    }
  }
  video::Video noisy = clean;
  Rng rng(2);
  for (auto& p : noisy.data().flat()) {
    p = std::clamp(p + rng.normal_f(0.0f, 20.0f), 0.0f, 255.0f);
  }

  Noise2Self denoiser(Noise2SelfConfig{});
  const video::Video denoised = denoiser.apply(noisy);

  const double err_noisy = (noisy.data() - clean.data()).norm_l2();
  const double err_denoised = (denoised.data() - clean.data()).norm_l2();
  EXPECT_LT(err_denoised, err_noisy);
}

TEST(Noise2Self, NearIdentityOnSmoothContent) {
  video::VideoGeometry g{2, 8, 8, 1};
  video::Video v(g, 0, 0);
  for (std::int64_t n = 0; n < g.frames; ++n) {
    for (std::int64_t y = 0; y < g.height; ++y) {
      for (std::int64_t x = 0; x < g.width; ++x) {
        v.pixel(n, y, x, 0) = 50.0f + 2.0f * static_cast<float>(x);
      }
    }
  }
  Noise2Self denoiser(Noise2SelfConfig{});
  const video::Video out = denoiser.apply(v);
  // Interior pixels are linear in neighbors, so prediction is near-exact.
  EXPECT_NEAR(out.pixel(1, 4, 4, 0), v.pixel(1, 4, 4, 0), 2.0f);
}

TEST(Detector, CalibratedThresholdPassesCleanVideos) {
  auto& w = TinyWorld::mutable_instance();
  Detector det(*w.victim, std::make_unique<FeatureSqueezing>(
                              FeatureSqueezingConfig{}),
               8);
  std::vector<video::Video> clean(w.dataset.train.begin(),
                                  w.dataset.train.begin() + 10);
  det.calibrate(clean);
  for (const auto& v : clean) {
    EXPECT_FALSE(det.is_adversarial(v));
  }
}

TEST(Detector, ScoreIsBounded) {
  auto& w = TinyWorld::mutable_instance();
  Detector det(*w.victim,
               std::make_unique<Noise2Self>(Noise2SelfConfig{}), 8);
  const double s = det.score(w.dataset.train[0]);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(Detector, FlagsGrosslyPerturbedVideo) {
  auto& w = TinyWorld::mutable_instance();
  Detector det(*w.victim, std::make_unique<FeatureSqueezing>(
                              FeatureSqueezingConfig{}),
               8);
  std::vector<video::Video> clean(w.dataset.train.begin(),
                                  w.dataset.train.begin() + 8);
  det.calibrate(clean);

  // Salt-and-pepper garbage: squeezing changes its retrieval dramatically.
  video::Video garbage = w.dataset.train[0];
  Rng rng(3);
  for (auto& p : garbage.data().flat()) {
    if (rng.bernoulli(0.3)) p = rng.bernoulli(0.5) ? 0.0f : 255.0f;
  }
  const auto rate = det.detection_rate({garbage});
  EXPECT_GT(rate, 0.0);
}

TEST(Detector, DetectionRateOfEmptySetIsZero) {
  auto& w = TinyWorld::mutable_instance();
  Detector det(*w.victim, std::make_unique<FeatureSqueezing>(
                              FeatureSqueezingConfig{}),
               8);
  EXPECT_DOUBLE_EQ(det.detection_rate({}), 0.0);
}

TEST(Detector, EmptyCalibrationThrows) {
  auto& w = TinyWorld::mutable_instance();
  Detector det(*w.victim, std::make_unique<FeatureSqueezing>(
                              FeatureSqueezingConfig{}),
               8);
  EXPECT_THROW(det.calibrate({}), std::logic_error);
}

TEST(Detector, TransformNameExposed) {
  auto& w = TinyWorld::mutable_instance();
  Detector fs(*w.victim,
              std::make_unique<FeatureSqueezing>(FeatureSqueezingConfig{}), 8);
  Detector n2s(*w.victim, std::make_unique<Noise2Self>(Noise2SelfConfig{}), 8);
  EXPECT_EQ(fs.transform_name(), "feature-squeezing");
  EXPECT_EQ(n2s.transform_name(), "noise2self");
}

}  // namespace
}  // namespace duo::defense
