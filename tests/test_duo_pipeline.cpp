// End-to-end integration tests of the DUO pipeline against a trained victim.

#include <gtest/gtest.h>

#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "fixtures.hpp"
#include "metrics/metrics.hpp"

namespace duo::attack {
namespace {

using duo::testing::TinyWorld;

DuoConfig quick_duo() {
  DuoConfig cfg;
  cfg.transfer.k = 200;
  cfg.transfer.n = 3;
  cfg.transfer.tau = 30.0f;
  cfg.transfer.outer_iterations = 2;
  cfg.transfer.theta_steps = 5;
  cfg.query.iter_numQ = 60;
  cfg.iter_numH = 2;
  cfg.m = 8;
  return cfg;
}

TEST(DuoPipeline, NameFollowsSurrogate) {
  auto& w = TinyWorld::mutable_instance();
  DuoAttack attack(*w.surrogate, quick_duo());
  EXPECT_EQ(attack.name(), "DUO-C3D");
}

TEST(DuoPipeline, ProducesSparseBoundedAdversarialVideo) {
  auto& w = TinyWorld::mutable_instance();
  DuoAttack attack(*w.surrogate, quick_duo());
  retrieval::BlackBoxHandle handle(*w.victim);

  const auto& v = w.dataset.train[0];
  const auto& vt = w.dataset.train[13];
  const auto outcome = attack.run(v, vt, handle);

  const auto cfg = quick_duo();
  // Sparsity: far below the dense tensor, at most k per outer round.
  EXPECT_LE(metrics::sparsity(outcome.perturbation),
            cfg.transfer.k * cfg.iter_numH);
  EXPECT_GT(metrics::sparsity(outcome.perturbation), 0);
  // Perturbed frames bounded by n per outer round.
  EXPECT_LE(metrics::perturbed_frames(outcome.perturbation,
                                      v.geometry().elements_per_frame()),
            static_cast<std::int64_t>(cfg.transfer.n) * cfg.iter_numH);
  // Budget: each round adds at most τ on its own base.
  EXPECT_LE(outcome.perturbation.norm_linf(),
            cfg.transfer.tau * static_cast<float>(cfg.iter_numH) + 1.0f);
  // Valid video.
  EXPECT_GE(outcome.adversarial.data().min(), 0.0f);
  EXPECT_LE(outcome.adversarial.data().max(), 255.0f);
  EXPECT_GT(outcome.queries, 0);
}

TEST(DuoPipeline, TargetedAttackSucceedsOnAverage) {
  // The paper's success criterion: AP@m(R(v_adv), R(v_t)) should exceed
  // AP@m(R(v), R(v_t)) — the adversarial list is more target-like. Averaged
  // over a few pairs to absorb per-pair noise.
  auto& w = TinyWorld::mutable_instance();
  DuoAttack attack(*w.surrogate, quick_duo());

  const auto pairs = sample_attack_pairs(w.dataset.train, 4, 99);
  const auto eval = evaluate_attack(attack, *w.victim, pairs, 8);
  EXPECT_GE(eval.mean_ap_m_after_pct, eval.mean_ap_m_before_pct);
  EXPECT_GT(eval.mean_ap_m_after_pct, 0.0);
}

TEST(DuoPipeline, THistorySpansAllOuterIterations) {
  auto& w = TinyWorld::mutable_instance();
  auto cfg = quick_duo();
  cfg.query.iter_numQ = 20;
  DuoAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome =
      attack.run(w.dataset.train[2], w.dataset.train[15], handle);
  // Each of the iter_numH SparseQuery phases records iter_numQ entries.
  EXPECT_GE(outcome.t_history.size(),
            static_cast<std::size_t>(cfg.iter_numH) * 10);
}

TEST(DuoPipeline, MoreOuterIterationsNeverReducesSparsityBudgetUse) {
  auto& w = TinyWorld::mutable_instance();
  auto cfg1 = quick_duo();
  cfg1.iter_numH = 1;
  auto cfg2 = quick_duo();
  cfg2.iter_numH = 2;

  retrieval::BlackBoxHandle h1(*w.victim), h2(*w.victim);
  DuoAttack a1(*w.surrogate, cfg1), a2(*w.surrogate, cfg2);
  const auto& v = w.dataset.train[3];
  const auto& vt = w.dataset.train[17];
  const auto o1 = a1.run(v, vt, h1);
  const auto o2 = a2.run(v, vt, h2);
  // Table VIII shape: more outer loops → at least as many queries spent.
  EXPECT_GE(o2.queries, o1.queries);
}

TEST(SampleAttackPairs, PairsHaveDistinctLabels) {
  auto& w = TinyWorld::mutable_instance();
  const auto pairs = sample_attack_pairs(w.dataset.train, 10, 7);
  ASSERT_EQ(pairs.size(), 10u);
  for (const auto& p : pairs) {
    EXPECT_NE(p.v.label(), p.v_t.label());
  }
}

TEST(SampleAttackPairs, DeterministicForSeed) {
  auto& w = TinyWorld::mutable_instance();
  const auto a = sample_attack_pairs(w.dataset.train, 5, 42);
  const auto b = sample_attack_pairs(w.dataset.train, 5, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].v.id(), b[i].v.id());
    EXPECT_EQ(a[i].v_t.id(), b[i].v_t.id());
  }
}

TEST(EvaluateWithoutAttack, MatchesManualComputation) {
  auto& w = TinyWorld::mutable_instance();
  const auto pairs = sample_attack_pairs(w.dataset.train, 3, 5);
  const double harness = evaluate_without_attack(*w.victim, pairs, 8);

  double manual = 0.0;
  for (const auto& p : pairs) {
    manual += metrics::ap_at_m(w.victim->retrieve(p.v, 8),
                               w.victim->retrieve(p.v_t, 8)) *
              100.0;
  }
  manual /= static_cast<double>(pairs.size());
  EXPECT_NEAR(harness, manual, 1e-9);
}

}  // namespace
}  // namespace duo::attack
