// Ensemble retrieval (paper §V-D "a potential defense against DUO").

#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "metrics/metrics.hpp"
#include "nn/losses.hpp"
#include "retrieval/ensemble.hpp"
#include "retrieval/trainer.hpp"

namespace duo::retrieval {
namespace {

using duo::testing::TinyWorld;

std::unique_ptr<RetrievalSystem> make_member(const video::Dataset& dataset,
                                             models::ModelKind kind,
                                             std::uint64_t seed) {
  Rng rng(seed);
  auto extractor = models::make_extractor(kind, dataset.spec.geometry, 16, rng);
  nn::ArcFaceLoss loss(16, dataset.spec.num_classes, rng);
  TrainerConfig cfg;
  cfg.epochs = 3;
  cfg.seed = seed;
  train_extractor(*extractor, loss, dataset.train, cfg);
  auto system = std::make_unique<RetrievalSystem>(std::move(extractor), 2);
  system->add_all(dataset.train);
  return system;
}

TEST(Ensemble, RequiresMembers) {
  EnsembleRetrievalSystem ensemble;
  auto& w = TinyWorld::mutable_instance();
  EXPECT_THROW(ensemble.retrieve(w.dataset.train[0], 5), std::logic_error);
}

TEST(Ensemble, SingleMemberMatchesThatMember) {
  auto& w = TinyWorld::mutable_instance();
  EnsembleRetrievalSystem ensemble;
  ensemble.add_member(
      make_member(w.dataset, models::ModelKind::kC3D, 9001));
  const auto& v = w.dataset.train[3];
  const auto fused = ensemble.retrieve(v, 5);
  const auto direct = ensemble.member(0).retrieve(v, 5);
  EXPECT_EQ(fused, direct);
}

TEST(Ensemble, FusesMultipleBackbones) {
  auto& w = TinyWorld::mutable_instance();
  EnsembleRetrievalSystem ensemble;
  ensemble.add_member(make_member(w.dataset, models::ModelKind::kC3D, 9002));
  ensemble.add_member(
      make_member(w.dataset, models::ModelKind::kResNet18, 9003));
  EXPECT_EQ(ensemble.member_count(), 2u);

  const auto& v = w.dataset.train[5];
  const auto fused = ensemble.retrieve(v, 8);
  ASSERT_EQ(fused.size(), 8u);
  // A gallery video is closest to itself in every member, so rank-fusion
  // must put it first.
  EXPECT_EQ(fused.front(), v.id());
}

TEST(Ensemble, RetrievalQualityAtLeastComparableToMembers) {
  auto& w = TinyWorld::mutable_instance();
  auto m1 = make_member(w.dataset, models::ModelKind::kC3D, 9004);
  auto m2 = make_member(w.dataset, models::ModelKind::kResNet18, 9005);
  RetrievalSystem* p1 = m1.get();
  RetrievalSystem* p2 = m2.get();
  EnsembleRetrievalSystem ensemble;
  ensemble.add_member(std::move(m1));
  ensemble.add_member(std::move(m2));

  // mAP of the fused list over test queries vs the weaker single member.
  auto map_of = [&](auto&& retrieve) {
    double acc = 0.0;
    for (const auto& q : w.dataset.test) {
      const auto list = retrieve(q);
      std::vector<bool> relevant(list.size());
      for (std::size_t i = 0; i < list.size(); ++i) {
        relevant[i] = p1->label_of(list[i]) == q.label();
      }
      acc += metrics::average_precision(relevant,
                                        p1->relevant_count(q.label()));
    }
    return acc / static_cast<double>(w.dataset.test.size());
  };

  const double map_fused =
      map_of([&](const video::Video& q) { return ensemble.retrieve(q, 8); });
  const double map_1 =
      map_of([&](const video::Video& q) { return p1->retrieve(q, 8); });
  const double map_2 =
      map_of([&](const video::Video& q) { return p2->retrieve(q, 8); });
  EXPECT_GE(map_fused, std::min(map_1, map_2) * 0.9);
}

TEST(Ensemble, BlackBoxHandleWrapsEnsemble) {
  auto& w = TinyWorld::mutable_instance();
  EnsembleRetrievalSystem ensemble;
  ensemble.add_member(make_member(w.dataset, models::ModelKind::kC3D, 9006));
  BlackBoxHandle handle(
      [&ensemble](const video::Video& v, std::size_t m) {
        return ensemble.retrieve(v, m);
      });
  const auto list = handle.retrieve(w.dataset.train[0], 5);
  EXPECT_EQ(list.size(), 5u);
  EXPECT_EQ(handle.query_count(), 1);
}

TEST(Ensemble, MismatchedGallerySizeRejected) {
  auto& w = TinyWorld::mutable_instance();
  EnsembleRetrievalSystem ensemble;
  ensemble.add_member(make_member(w.dataset, models::ModelKind::kC3D, 9007));

  Rng rng(9008);
  auto extractor = models::make_extractor(models::ModelKind::kC3D,
                                          w.spec.geometry, 16, rng);
  auto partial = std::make_unique<RetrievalSystem>(std::move(extractor), 1);
  partial->add_to_gallery(w.dataset.train[0]);  // gallery of one
  EXPECT_THROW(ensemble.add_member(std::move(partial)), std::logic_error);
}

}  // namespace
}  // namespace duo::retrieval
