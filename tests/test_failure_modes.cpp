// Failure-injection and boundary-condition tests: how the library behaves
// under misuse, degenerate inputs, and adversarially unhelpful conditions.

#include <gtest/gtest.h>

#include "attack/duo.hpp"
#include "attack/evaluation.hpp"
#include "attack/sparse_query.hpp"
#include "attack/sparse_transfer.hpp"
#include "baselines/timi.hpp"
#include "fixtures.hpp"
#include "metrics/metrics.hpp"
#include "nn/conv3d.hpp"
#include "nn/linear.hpp"
#include "retrieval/index.hpp"

namespace duo {
namespace {

using duo::testing::TinyWorld;

TEST(FailureModes, ConvRejectsTooSmallInput) {
  Rng rng(1);
  nn::Conv3dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = {3, 3, 3};
  spec.stride = {1, 1, 1};
  spec.padding = {0, 0, 0};
  nn::Conv3d layer(spec, rng);
  // 2×2×2 spatial extent cannot fit a 3×3×3 kernel without padding.
  EXPECT_THROW(layer.forward(Tensor({1, 2, 2, 2})), std::logic_error);
}

TEST(FailureModes, BackwardBeforeForwardThrows) {
  Rng rng(2);
  nn::Linear layer(3, 2, rng);
  EXPECT_THROW(layer.backward(Tensor({2})), std::logic_error);
}

TEST(FailureModes, MismatchedGradShapeThrows) {
  Rng rng(3);
  nn::Linear layer(3, 2, rng);
  (void)layer.forward(Tensor({3}));
  EXPECT_THROW(layer.backward(Tensor({5})), std::logic_error);
}

TEST(FailureModes, EmptyGalleryQueryReturnsEmpty) {
  retrieval::DataNode node(4);
  const auto result = node.query(Tensor({4}), 10);
  EXPECT_TRUE(result.empty());
}

TEST(FailureModes, AttackOnIdenticalSourceAndTargetIsStable) {
  // v == v_t: the targeted objective starts satisfied. The attack must not
  // crash and must return a valid (possibly unchanged) video.
  auto& w = TinyWorld::mutable_instance();
  attack::DuoConfig cfg;
  cfg.transfer.k = 100;
  cfg.transfer.n = 2;
  cfg.transfer.outer_iterations = 1;
  cfg.transfer.theta_steps = 3;
  cfg.query.iter_numQ = 10;
  cfg.iter_numH = 1;
  cfg.m = 8;
  attack::DuoAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto& v = w.dataset.train[0];
  const auto outcome = attack.run(v, v, handle);
  EXPECT_GE(outcome.adversarial.data().min(), 0.0f);
  EXPECT_LE(outcome.adversarial.data().max(), 255.0f);
}

TEST(FailureModes, SparseQueryWithZeroIterationsReturnsInitial) {
  auto& w = TinyWorld::mutable_instance();
  const auto& v = w.dataset.train[1];
  const auto& vt = w.dataset.train[9];
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto ctx = attack::make_objective_context(handle, v, vt, 8);
  attack::Perturbation pert(v.geometry());
  attack::SparseQueryConfig cfg;
  cfg.iter_numQ = 1;  // only the initial evaluation
  const auto result = attack::sparse_query(v, pert, handle, ctx, cfg);
  EXPECT_EQ(result.t_history.size(), 1u);
}

TEST(FailureModes, SparseTransferOnUniformVideoStaysFinite) {
  // A constant video has no texture for the surrogate to grab onto; the
  // attack must still return finite, in-budget masks.
  auto& w = TinyWorld::mutable_instance();
  video::Video flat(w.spec.geometry, 0, 4242);
  flat.data().fill(128.0f);

  attack::SparseTransferConfig cfg;
  cfg.k = 100;
  cfg.n = 2;
  cfg.outer_iterations = 2;
  cfg.theta_steps = 4;
  const auto result =
      attack::sparse_transfer(flat, w.dataset.train[3], *w.surrogate, cfg);
  EXPECT_EQ(result.perturbation.selected_pixels(), 100);
  for (const auto loss : result.loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
  }
  EXPECT_LE(result.perturbation.magnitude().norm_linf(), cfg.tau + 1e-4f);
}

TEST(FailureModes, TimiOnBlackVideoProducesValidPixels) {
  auto& w = TinyWorld::mutable_instance();
  video::Video black(w.spec.geometry, 0, 4243);  // all zeros
  baselines::TimiConfig cfg;
  cfg.iterations = 4;
  baselines::TimiAttack attack(*w.surrogate, cfg);
  retrieval::BlackBoxHandle handle(*w.victim);
  const auto outcome = attack.run(black, w.dataset.train[2], handle);
  // All perturbations must be non-negative (clamped at 0 from below).
  EXPECT_GE(outcome.adversarial.data().min(), 0.0f);
  EXPECT_LE(outcome.adversarial.data().max(), 255.0f);
  EXPECT_LE(outcome.perturbation.norm_linf(), cfg.tau + 0.5f);
}

TEST(FailureModes, EvaluateAttackWithZeroPairs) {
  auto& w = TinyWorld::mutable_instance();
  attack::DuoConfig cfg;
  cfg.transfer.k = 50;
  cfg.transfer.n = 2;
  cfg.query.iter_numQ = 5;
  cfg.iter_numH = 1;
  attack::DuoAttack attack(*w.surrogate, cfg);
  const auto eval = attack::evaluate_attack(attack, *w.victim, {}, 8);
  EXPECT_EQ(eval.pairs.size(), 0u);
  EXPECT_DOUBLE_EQ(eval.mean_ap_m_after_pct, 0.0);
}

TEST(FailureModes, SamplePairsFromSingleClassThrows) {
  // All-same-label pool cannot produce differently-labeled pairs.
  auto& w = TinyWorld::mutable_instance();
  std::vector<video::Video> single_class;
  for (const auto& v : w.dataset.train) {
    if (v.label() == 0) single_class.push_back(v);
  }
  ASSERT_GE(single_class.size(), 2u);
  EXPECT_THROW(attack::sample_attack_pairs(single_class, 1, 5),
               std::logic_error);
}

TEST(FailureModes, QuantizationNeverCreatesOutOfRangePixels) {
  auto& w = TinyWorld::mutable_instance();
  attack::Perturbation p(w.spec.geometry);
  Rng rng(5);
  p.magnitude() = Tensor::uniform(w.spec.geometry.tensor_shape(), -300.0f,
                                  300.0f, rng);  // wildly over budget
  const video::Video adv = p.apply_to(w.dataset.train[0]);
  EXPECT_GE(adv.data().min(), 0.0f);
  EXPECT_LE(adv.data().max(), 255.0f);
  for (std::int64_t i = 0; i < adv.data().size(); ++i) {
    EXPECT_FLOAT_EQ(adv.data()[i], std::round(adv.data()[i]));
  }
}

}  // namespace
}  // namespace duo
